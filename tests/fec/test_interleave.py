"""Block interleaving."""

import numpy as np
import pytest

from repro.fec.interleave import BlockInterleaver


class TestRoundtrip:
    @pytest.mark.parametrize("length", [0, 1, 1023, 1024, 5000])
    def test_roundtrip_any_length(self, length, rng):
        interleaver = BlockInterleaver(16, 64)
        bits = rng.integers(0, 2, length).astype(np.uint8)
        out = interleaver.deinterleave(interleaver.interleave(bits), length)
        assert np.array_equal(out, bits)

    def test_output_padded_to_block_multiple(self, rng):
        interleaver = BlockInterleaver(4, 8)
        bits = rng.integers(0, 2, 33).astype(np.uint8)
        assert len(interleaver.interleave(bits)) == 64

    def test_misaligned_deinterleave_rejected(self):
        with pytest.raises(ValueError):
            BlockInterleaver(4, 8).deinterleave(np.zeros(33, dtype=np.uint8))


class TestBurstSpreading:
    def test_adjacent_bits_separated_by_rows(self):
        """The design guarantee: a channel burst of b adjacent bits lands
        at least `rows` apart after deinterleaving."""
        interleaver = BlockInterleaver(16, 64)
        n = interleaver.block_size
        # Track positions: interleave an index array.
        index_in = np.arange(n, dtype=np.int64)
        blocks = index_in.reshape(1, 16, 64)
        index_out = blocks.transpose(0, 2, 1).reshape(-1)
        # Adjacent channel positions originate `columns` apart (they are
        # successive rows of one column: row-major stride = 64).
        gaps = np.abs(np.diff(index_out))
        assert (gaps == 64).mean() > 0.9
        assert interleaver.burst_spread() == 64

    def test_interleaving_defeats_burst_for_viterbi(self, rng):
        """End-to-end: a 40-bit burst breaks the 1/2 code raw, but not
        through the interleaver."""
        from repro.fec.rcpc import RcpcCodec

        codec = RcpcCodec("1/2")
        interleaver = BlockInterleaver(32, 64)
        bits = rng.integers(0, 2, 1_000).astype(np.uint8)
        coded = codec.encode(bits)

        def run(with_interleave: bool) -> int:
            stream = interleaver.interleave(coded) if with_interleave else coded.copy()
            stream = stream.copy()
            stream[300:340] ^= 1  # contiguous burst
            if with_interleave:
                stream = interleaver.deinterleave(stream, len(coded))
            return int((codec.decode(stream) != bits).sum())

        assert run(with_interleave=False) > 0
        assert run(with_interleave=True) == 0
