"""The adaptive FEC rate controller."""

import pytest

from repro.fec.adaptive import AdaptiveFecController


class TestRateSelection:
    def test_clean_strong_link_uses_weakest_code(self):
        controller = AdaptiveFecController()
        for _ in range(20):
            decision = controller.observe(30, 3, 15)
        assert decision.rate_name == "8/9"
        assert decision.overhead_fraction == pytest.approx(0.125)

    def test_error_region_uses_strongest_code(self):
        controller = AdaptiveFecController()
        for _ in range(20):
            decision = controller.observe(6, 3, 15)
        assert decision.rate_name == "1/2"

    def test_marginal_level_steps_up(self):
        controller = AdaptiveFecController()
        for _ in range(20):
            decision = controller.observe(10, 3, 15)
        assert decision.rate_name == "2/3"

    def test_wideband_interference_alarm(self):
        """Silence near the signal level + depressed quality: the
        Table-12 signature selects maximum redundancy."""
        controller = AdaptiveFecController()
        for _ in range(20):
            decision = controller.observe(30, 25, 13)
        assert decision.rate_name == "1/2"
        assert "interference" in decision.reason

    def test_quality_depression_alone_steps_up(self):
        controller = AdaptiveFecController()
        for _ in range(20):
            decision = controller.observe(30, 3, 12)
        assert decision.rate_name in ("2/3", "4/5")


class TestSmoothing:
    def test_single_outlier_does_not_thrash(self):
        controller = AdaptiveFecController()
        for _ in range(30):
            controller.observe(30, 3, 15)
        decision = controller.observe(6, 3, 15)  # one bad reading
        assert decision.rate_name == "8/9"

    def test_sustained_change_adapts(self):
        controller = AdaptiveFecController()
        for _ in range(30):
            controller.observe(30, 3, 15)
        for _ in range(30):
            decision = controller.observe(6, 3, 15)
        assert decision.rate_name == "1/2"

    def test_history_recorded(self):
        controller = AdaptiveFecController()
        controller.observe(30, 3, 15)
        controller.observe(30, 3, 15)
        assert len(controller.history) == 2

    def test_rate_index_ordering(self):
        controller = AdaptiveFecController()
        assert controller.rate_index("8/9") < controller.rate_index("1/2")
