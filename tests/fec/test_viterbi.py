"""Viterbi decoding: clean, noisy, and erased channels."""

import numpy as np
import pytest

from repro.fec.convolutional import ConvolutionalCode
from repro.fec.viterbi import ERASED, viterbi_decode


@pytest.fixture
def code():
    return ConvolutionalCode()


class TestCleanDecoding:
    def test_roundtrip(self, code, rng):
        bits = rng.integers(0, 2, 500).astype(np.uint8)
        assert np.array_equal(viterbi_decode(code, code.encode(bits)), bits)

    def test_empty_input(self, code):
        assert len(viterbi_decode(code, np.empty(0, dtype=np.uint8))) == 0

    def test_misaligned_length_rejected(self, code):
        with pytest.raises(ValueError):
            viterbi_decode(code, np.zeros(7, dtype=np.uint8))

    def test_small_code_roundtrip(self, rng):
        code = ConvolutionalCode(constraint_length=3, generators=(0o7, 0o5))
        bits = rng.integers(0, 2, 100).astype(np.uint8)
        assert np.array_equal(viterbi_decode(code, code.encode(bits)), bits)


class TestErrorCorrection:
    def test_corrects_isolated_errors(self, code, rng):
        bits = rng.integers(0, 2, 400).astype(np.uint8)
        coded = code.encode(bits)
        # One error every ~40 coded bits: well within K=7 capability.
        damaged = coded.copy()
        damaged[::40] ^= 1
        assert np.array_equal(viterbi_decode(code, damaged), bits)

    def test_corrects_3_percent_random(self, code, rng):
        bits = rng.integers(0, 2, 1_000).astype(np.uint8)
        coded = code.encode(bits)
        damaged = coded.copy()
        positions = rng.choice(len(coded), size=int(0.03 * len(coded)), replace=False)
        damaged[positions] ^= 1
        residual = int((viterbi_decode(code, damaged) != bits).sum())
        assert residual == 0

    def test_fails_gracefully_at_heavy_noise(self, code, rng):
        bits = rng.integers(0, 2, 500).astype(np.uint8)
        coded = code.encode(bits)
        damaged = coded ^ (rng.random(len(coded)) < 0.25).astype(np.uint8)
        decoded = viterbi_decode(code, damaged)
        # Not required to succeed, but must return the right shape.
        assert len(decoded) == len(bits)

    def test_dense_burst_overwhelms_without_interleaving(self, code, rng):
        """A contiguous 60-bit burst exceeds the code's memory."""
        bits = rng.integers(0, 2, 500).astype(np.uint8)
        coded = code.encode(bits)
        damaged = coded.copy()
        damaged[100:160] ^= 1
        residual = int((viterbi_decode(code, damaged) != bits).sum())
        assert residual > 0


class TestErasures:
    def test_30_percent_erasures_recoverable(self, code, rng):
        bits = rng.integers(0, 2, 500).astype(np.uint8)
        coded = code.encode(bits)
        received = coded.copy()
        positions = rng.choice(len(coded), size=int(0.3 * len(coded)), replace=False)
        received[positions] = ERASED
        assert np.array_equal(viterbi_decode(code, received), bits)

    def test_all_erased_decodes_something(self, code):
        received = np.full(100, ERASED, dtype=np.uint8)
        decoded = viterbi_decode(code, received)
        assert len(decoded) == 50 - code.tail_bits()

    def test_erasures_plus_errors(self, code, rng):
        bits = rng.integers(0, 2, 500).astype(np.uint8)
        coded = code.encode(bits)
        received = coded.copy()
        erase = rng.choice(len(coded), size=int(0.2 * len(coded)), replace=False)
        received[erase] = ERASED
        flip = rng.choice(
            np.setdiff1d(np.arange(len(coded)), erase), size=10, replace=False
        )
        received[flip] ^= 1
        assert np.array_equal(viterbi_decode(code, received), bits)


class TestUnterminated:
    def test_unterminated_roundtrip_mostly_correct(self, code, rng):
        bits = rng.integers(0, 2, 300).astype(np.uint8)
        coded = code.encode(bits, terminate=False)
        decoded = viterbi_decode(code, coded, terminated=False)
        # The final few bits may be ambiguous without termination.
        assert np.array_equal(decoded[:-8], bits[:-8])


class TestWeightedDecoding:
    """Poor-man's soft decision: per-position confidence weights."""

    def test_uniform_weights_match_unweighted(self, code, rng):
        import numpy as np

        bits = rng.integers(0, 2, 300).astype(np.uint8)
        coded = code.encode(bits)
        damaged = coded.copy()
        positions = rng.choice(len(coded), size=20, replace=False)
        damaged[positions] ^= 1
        plain = viterbi_decode(code, damaged)
        weighted = viterbi_decode(
            code, damaged, weights=np.ones(len(coded))
        )
        assert np.array_equal(plain, weighted)

    def test_downweighting_confines_damage_to_the_window(self, code, rng):
        """A 50%-BER window carries no information either way, but a
        decoder that *knows* which span to distrust confines the damage
        to that window's own info bits and still corrects scattered
        errors elsewhere — full-confidence decoding lets the garbage
        window corrupt decisions beyond it."""
        import numpy as np

        bits = rng.integers(0, 2, 500).astype(np.uint8)
        coded = code.encode(bits)
        damaged = coded.copy()
        # Garbage window + scattered errors elsewhere.
        window = slice(300, 360)
        flips = 300 + np.flatnonzero(rng.random(60) < 0.5)
        damaged[flips] ^= 1
        outside = np.array([40, 200, 480, 700, 900])
        damaged[outside] ^= 1
        hard = viterbi_decode(code, damaged)
        weights = np.ones(len(coded))
        weights[window] = 0.05
        soft = viterbi_decode(code, damaged, weights=weights)
        # Info bits covered by the window (coded pos / 2), with slack
        # for the code's memory.
        lo, hi = 300 // 2 - 8, 360 // 2 + 8
        soft_outside = int(
            (soft[:lo] != bits[:lo]).sum() + (soft[hi:] != bits[hi:]).sum()
        )
        soft_total = int((soft != bits).sum())
        assert soft_outside == 0  # damage quarantined
        assert soft_total <= hi - lo  # and bounded by the window's span

    def test_zero_weight_equals_erasure(self, code, rng):
        import numpy as np

        from repro.fec.viterbi import ERASED

        bits = rng.integers(0, 2, 300).astype(np.uint8)
        coded = code.encode(bits)
        garbled = coded.copy()
        garbled[50:80] ^= 1
        weights = np.ones(len(coded))
        weights[50:80] = 0.0
        weighted = viterbi_decode(code, garbled, weights=weights)
        erased = coded.copy()
        erased[50:80] = ERASED
        via_erasure = viterbi_decode(code, erased)
        assert np.array_equal(weighted, via_erasure)

    def test_bad_weights_shape_rejected(self, code):
        import numpy as np

        with pytest.raises(ValueError):
            viterbi_decode(
                code, np.zeros(100, dtype=np.uint8), weights=np.ones(99)
            )

    def test_rcpc_weights_passthrough(self, rng):
        """Weights thread through the depuncturer: damage stays
        confined to the distrusted window's info span."""
        import numpy as np

        from repro.fec.rcpc import RcpcCodec

        codec = RcpcCodec("1/2")
        bits = rng.integers(0, 2, 256).astype(np.uint8)
        tx = codec.encode(bits)
        damaged = tx.copy()
        damaged[100:140] ^= (rng.random(40) < 0.5).astype(np.uint8)
        weights = np.ones(len(tx))
        weights[100:140] = 0.05
        decoded = codec.decode(damaged, weights=weights)
        lo, hi = 100 // 2 - 8, 140 // 2 + 8
        errors_outside = int(
            (decoded[:lo] != bits[:lo]).sum()
            + (decoded[hi:] != bits[hi:]).sum()
        )
        assert errors_outside == 0

    def test_rcpc_bad_weights_length_rejected(self, rng):
        import numpy as np

        from repro.fec.rcpc import RcpcCodec

        codec = RcpcCodec("1/2")
        bits = rng.integers(0, 2, 64).astype(np.uint8)
        tx = codec.encode(bits)
        with pytest.raises(ValueError):
            codec.decode(tx, weights=np.ones(len(tx) - 1))
