"""Batched Viterbi/RCPC decode: byte-identity with the scalar path.

The batched decoders are the same add-compare-select kernel with the
step loop lifted to ``(batch, states)`` arrays — branch metrics
accumulate in the same floating-point order, so equivalence here is
*byte* identity across random damage, erasure, weight, and termination
patterns, not a statistical bound.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fec.convolutional import ConvolutionalCode
from repro.fec.rcpc import RATE_ORDER, RcpcCodec
from repro.fec.viterbi import ERASED, viterbi_decode, viterbi_decode_batch


@pytest.fixture
def code():
    return ConvolutionalCode()


@pytest.fixture
def rng():
    return np.random.default_rng(2024)


def _damaged_batch(code, rng, batch, info_bits, flip=0.03, erase=0.0):
    rows = []
    for _ in range(batch):
        bits = rng.integers(0, 2, info_bits).astype(np.uint8)
        coded = code.encode(bits)
        coded[rng.random(coded.size) < flip] ^= 1
        if erase:
            coded[rng.random(coded.size) < erase] = ERASED
        rows.append(coded)
    return np.stack(rows)


class TestViterbiBatchIdentity:
    @pytest.mark.parametrize("terminated", [True, False])
    def test_matches_scalar_across_random_patterns(
        self, code, rng, terminated
    ):
        received = _damaged_batch(code, rng, 9, 64, flip=0.05, erase=0.08)
        batched = viterbi_decode_batch(code, received, terminated=terminated)
        for row in range(received.shape[0]):
            scalar = viterbi_decode(
                code, received[row], terminated=terminated
            )
            np.testing.assert_array_equal(batched[row], scalar)

    def test_matches_scalar_with_random_weights(self, code, rng):
        received = _damaged_batch(code, rng, 6, 48, flip=0.06, erase=0.05)
        weights = rng.random(received.shape)
        batched = viterbi_decode_batch(code, received, weights=weights)
        for row in range(received.shape[0]):
            scalar = viterbi_decode(
                code, received[row], weights=weights[row]
            )
            np.testing.assert_array_equal(batched[row], scalar)

    def test_all_ones_weights_identical_to_no_weights(self, code, rng):
        received = _damaged_batch(code, rng, 5, 64, flip=0.04, erase=0.1)
        plain = viterbi_decode_batch(code, received)
        weighted = viterbi_decode_batch(
            code, received, weights=np.ones(received.shape)
        )
        np.testing.assert_array_equal(plain, weighted)

    def test_batch_of_one_equals_scalar(self, code, rng):
        received = _damaged_batch(code, rng, 1, 128, flip=0.03)
        np.testing.assert_array_equal(
            viterbi_decode_batch(code, received)[0],
            viterbi_decode(code, received[0]),
        )

    def test_empty_batch_and_empty_steps(self, code):
        assert viterbi_decode_batch(
            code, np.empty((0, 12), dtype=np.uint8)
        ).shape == (0, 0)
        assert viterbi_decode_batch(
            code, np.empty((3, 0), dtype=np.uint8)
        ).shape == (3, 0)

    def test_shape_validation(self, code):
        with pytest.raises(ValueError, match="2-D"):
            viterbi_decode_batch(code, np.zeros(16, dtype=np.uint8))
        with pytest.raises(ValueError, match="multiple"):
            viterbi_decode_batch(code, np.zeros((2, 15), dtype=np.uint8))
        with pytest.raises(ValueError, match="weights shape"):
            viterbi_decode_batch(
                code,
                np.zeros((2, 16), dtype=np.uint8),
                weights=np.ones((2, 8)),
            )


class TestRcpcBatchIdentity:
    @pytest.mark.parametrize("rate_name", RATE_ORDER)
    def test_matches_scalar_per_rate(self, rate_name, rng):
        codec = RcpcCodec(rate_name)
        batch, info_bits = 7, 96
        rows = []
        for _ in range(batch):
            bits = rng.integers(0, 2, info_bits).astype(np.uint8)
            transmitted = codec.encode(bits)
            transmitted[rng.random(transmitted.size) < 0.02] ^= 1
            rows.append(transmitted)
        received = np.stack(rows)
        weights = rng.random(received.shape)
        for w in (None, weights):
            batched = codec.decode_batch(received, weights=w)
            for row in range(batch):
                scalar = codec.decode(
                    received[row], None if w is None else w[row]
                )
                np.testing.assert_array_equal(batched[row], scalar)

    def test_clean_roundtrip(self, rng):
        codec = RcpcCodec("2/3")
        info = rng.integers(0, 2, (5, 64)).astype(np.uint8)
        received = np.stack([codec.encode(row) for row in info])
        decoded = codec.decode_batch(received)
        np.testing.assert_array_equal(decoded, info)

    def test_shape_validation(self):
        codec = RcpcCodec("1/2")
        with pytest.raises(ValueError, match="2-D"):
            codec.decode_batch(np.zeros(16, dtype=np.uint8))
        with pytest.raises(ValueError, match="weights shape"):
            codec.decode_batch(
                np.zeros((2, 16), dtype=np.uint8), weights=np.ones((2, 4))
            )

    def test_mixed_weighted_and_unweighted_rows_batch_together(self, rng):
        """fec_eval batches marked (weighted) and unmarked rows in one
        decode by giving unmarked rows all-ones weights — that must
        equal scalar decodes with weights=None for those rows."""
        codec = RcpcCodec("4/5")
        info = rng.integers(0, 2, (4, 48)).astype(np.uint8)
        received = np.stack([codec.encode(row) for row in info])
        received[rng.random(received.shape) < 0.03] ^= 1
        weights = np.ones(received.shape)
        weights[1] = rng.random(received.shape[1])
        batched = codec.decode_batch(received, weights=weights)
        np.testing.assert_array_equal(
            batched[0], codec.decode(received[0])
        )
        np.testing.assert_array_equal(
            batched[1], codec.decode(received[1], weights[1])
        )
