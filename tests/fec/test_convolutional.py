"""The K=7 convolutional encoder."""

import numpy as np
import pytest

from repro.fec.convolutional import ConvolutionalCode, parity


class TestParity:
    @pytest.mark.parametrize(
        "value,expected",
        [(0, 0), (1, 1), (3, 0), (7, 1), (0o171, 0o171.bit_count() & 1)],
    )
    def test_known_values(self, value, expected):
        assert parity(value) == expected


class TestCodeConstruction:
    def test_default_is_nasa_k7(self):
        code = ConvolutionalCode()
        assert code.constraint_length == 7
        assert code.generators == (0o171, 0o133)
        assert code.n_states == 64
        assert code.rate == 0.5

    def test_generator_too_wide_rejected(self):
        with pytest.raises(ValueError):
            ConvolutionalCode(constraint_length=3, generators=(0o171,))

    def test_bad_constraint_length_rejected(self):
        with pytest.raises(ValueError):
            ConvolutionalCode(constraint_length=1)


class TestEncoding:
    def test_output_length_terminated(self):
        code = ConvolutionalCode()
        coded = code.encode(np.zeros(100, dtype=np.uint8))
        assert len(coded) == (100 + 6) * 2

    def test_output_length_unterminated(self):
        code = ConvolutionalCode()
        coded = code.encode(np.zeros(100, dtype=np.uint8), terminate=False)
        assert len(coded) == 200

    def test_all_zero_input_all_zero_output(self):
        code = ConvolutionalCode()
        assert not code.encode(np.zeros(50, dtype=np.uint8)).any()

    def test_linearity(self, rng):
        """Convolutional codes are linear: enc(a ^ b) == enc(a) ^ enc(b)."""
        code = ConvolutionalCode()
        a = rng.integers(0, 2, 64).astype(np.uint8)
        b = rng.integers(0, 2, 64).astype(np.uint8)
        lhs = code.encode((a ^ b))
        rhs = code.encode(a) ^ code.encode(b)
        assert np.array_equal(lhs, rhs)

    def test_impulse_response_is_generators(self):
        """A single 1 bit produces the generator taps as output."""
        code = ConvolutionalCode()
        coded = code.encode(np.array([1], dtype=np.uint8))
        # First output pair corresponds to the MSB taps of each generator.
        g0_bits = [(0o171 >> (6 - i)) & 1 for i in range(7)]
        g1_bits = [(0o133 >> (6 - i)) & 1 for i in range(7)]
        expected = np.array(
            [bit for pair in zip(g0_bits, g1_bits) for bit in pair],
            dtype=np.uint8,
        )
        assert np.array_equal(coded, expected)

    def test_smaller_code_works(self):
        code = ConvolutionalCode(constraint_length=3, generators=(0o7, 0o5))
        coded = code.encode(np.array([1, 0, 1], dtype=np.uint8))
        assert len(coded) == (3 + 2) * 2
