"""Rate-compatible punctured codes."""

from fractions import Fraction

import numpy as np
import pytest

from repro.fec.rcpc import PUNCTURE_PERIOD, RATE_ORDER, RcpcCodec, RcpcFamily, _PATTERNS


class TestFamilyStructure:
    def test_rates_declared(self):
        assert RATE_ORDER == ("8/9", "4/5", "2/3", "1/2")

    @pytest.mark.parametrize("name", RATE_ORDER)
    def test_rate_value(self, name):
        codec = RcpcCodec(name)
        num, den = name.split("/")
        assert codec.rate == Fraction(int(num), int(den))

    def test_overheads_span_hagenauer_range(self):
        overheads = [RcpcCodec(r).overhead for r in RATE_ORDER]
        assert overheads[0] == pytest.approx(0.125)  # 12.5 %
        assert overheads[-1] == pytest.approx(1.0)  # 100 %
        assert overheads == sorted(overheads)

    def test_rate_compatibility(self):
        """Every lower-rate pattern transmits a superset of the positions
        of every higher-rate pattern — Hagenauer's defining property."""
        for stronger, weaker in zip(RATE_ORDER[1:], RATE_ORDER[:-1]):
            strong_pattern = _PATTERNS[stronger]
            weak_pattern = _PATTERNS[weaker]
            assert ((strong_pattern - weak_pattern) >= 0).all()

    def test_unknown_rate_rejected(self):
        with pytest.raises(ValueError):
            RcpcCodec("3/4")

    def test_family_codecs(self):
        family = RcpcFamily()
        assert [c.rate_name for c in family.codecs()] == list(RATE_ORDER)


class TestEncodeDecode:
    @pytest.mark.parametrize("name", RATE_ORDER)
    def test_clean_roundtrip(self, name, rng):
        codec = RcpcCodec(name)
        bits = rng.integers(0, 2, 512).astype(np.uint8)
        assert np.array_equal(codec.decode(codec.encode(bits)), bits)

    @pytest.mark.parametrize("name", RATE_ORDER)
    def test_coded_length_accounting(self, name, rng):
        codec = RcpcCodec(name)
        bits = rng.integers(0, 2, 512).astype(np.uint8)
        assert len(codec.encode(bits)) == codec.coded_length(512)

    def test_stronger_rates_send_more_bits(self, rng):
        lengths = [RcpcCodec(r).coded_length(512) for r in RATE_ORDER]
        assert lengths == sorted(lengths)

    def test_stronger_rates_correct_more(self, rng):
        """The family's raison d'être: robustness rises with redundancy."""
        bits = rng.integers(0, 2, 1_024).astype(np.uint8)
        residuals = []
        for name in RATE_ORDER:
            codec = RcpcCodec(name)
            transmitted = codec.encode(bits)
            positions = rng.choice(
                len(transmitted), size=int(0.02 * len(transmitted)), replace=False
            )
            residuals.append(codec.roundtrip_errors(bits, positions))
        assert residuals[-1] == 0  # 1/2 handles 2 %
        assert residuals[0] > residuals[-1]  # 8/9 does not

    def test_roundtrip_errors_zero_for_clean(self, rng):
        bits = rng.integers(0, 2, 256).astype(np.uint8)
        assert RcpcCodec("2/3").roundtrip_errors(bits, np.array([], dtype=np.int64)) == 0

    def test_puncture_period(self):
        assert PUNCTURE_PERIOD == 8
