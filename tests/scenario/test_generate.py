"""Generated fleets: seeded determinism and serial/parallel identity."""

from __future__ import annotations

from repro.scenario.compiler import compile_scenario
from repro.scenario.fleet import run_fleet
from repro.scenario.generate import (
    dense_office,
    grid_fleet,
    interferer_pareto_fleet,
    random_fleet,
    stack_floors,
)


def test_grid_fleet_covers_the_full_product():
    fleet = grid_fleet()
    assert len(fleet) == 20  # 5 distances x 2 wall counts x 2 phone counts
    names = [spec.name for spec in fleet]
    assert len(set(names)) == len(names)
    for spec in fleet:
        compile_scenario(spec)  # every member is valid


def test_random_fleet_is_seed_deterministic():
    a = random_fleet(6, seed=42)
    b = random_fleet(6, seed=42)
    assert a == b  # identical specs, element for element
    c = random_fleet(6, seed=43)
    assert a != c
    for spec in a:
        compile_scenario(spec)


def test_stack_floors_produces_cross_floor_links():
    compiled = compile_scenario(stack_floors(floors=3))
    assert len(compiled.links) == 3
    crossings = sorted(link.floor_crossings for link in compiled.links)
    assert crossings == [0, 1, 1]  # middle-floor AP, one slab each way
    # Cross-floor links pay the slab attenuation: weaker than same-floor.
    by_crossings = sorted(
        compiled.links, key=lambda link: link.floor_crossings
    )
    assert by_crossings[0].predicted_level > by_crossings[-1].predicted_level


def test_dense_office_is_deterministic_and_dense():
    a = dense_office(stations=50)
    assert a == dense_office(stations=50)
    compiled = compile_scenario(a)
    assert len(compiled.links) == 50


def test_pareto_fleet_sweeps_phone_distance():
    fleet = interferer_pareto_fleet()
    assert len(fleet) >= 5
    for spec in fleet:
        assert spec.interferers
        compile_scenario(spec)


def test_run_fleet_jobs_identical(tmp_path):
    fleet = random_fleet(4, seed=7, packets=80)
    serial = run_fleet(fleet, seed=123, jobs=1)
    parallel = run_fleet(fleet, seed=123, jobs=3)
    assert serial.rows == parallel.rows


def test_run_fleet_same_seed_same_rows():
    fleet = grid_fleet()[:4]
    first = run_fleet(fleet, seed=5, packets=60)
    second = run_fleet(fleet, seed=5, packets=60)
    assert first.rows == second.rows
    shifted = run_fleet(fleet, seed=6, packets=60)
    assert first.rows != shifted.rows
