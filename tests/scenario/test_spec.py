"""Spec model: builder, validation, dict/YAML round-trips."""

from __future__ import annotations

import pytest

from repro.scenario.spec import (
    ScenarioBuilder,
    ScenarioError,
    ScenarioSpec,
)
from repro.scenario.yamlio import (
    scenario_filename,
    spec_from_yaml,
    spec_to_yaml,
)


def _office() -> ScenarioSpec:
    return (
        ScenarioBuilder("test/office", description="a test office")
        .calibrate(29.5, at_distance_ft=8.0)
        .station("tx", 0.0, 0.0, role="tx")
        .station("rx", 8.0, 0.0, role="rx")
        .traffic(packets=1440)
        .build()
    )


def test_builder_builds_valid_spec():
    spec = _office()
    assert spec.name == "test/office"
    assert [s.name for s in spec.stations] == ["tx", "rx"]
    assert spec.traffic.packets == 1440


def test_validation_collects_all_problems_in_one_error():
    builder = (
        ScenarioBuilder("bad")
        .station("a", 0.0, 0.0, role="tx")
        .station("a", 1.0, 0.0, role="rx")  # duplicate name
        .link("a", "missing")  # unknown endpoint
    )
    with pytest.raises(ScenarioError) as exc:
        builder.build()
    message = str(exc.value)
    assert "calibration" in message  # missing anchor
    assert "duplicate station" in message
    assert "missing" in message


def test_unknown_interferer_kind_rejected():
    builder = (
        ScenarioBuilder("bad-kind")
        .calibrate(20.0, at_distance_ft=5.0)
        .station("tx", 0.0, 0.0, role="tx")
        .station("rx", 5.0, 0.0, role="rx")
        .interferer("microwave_oven")
    )
    with pytest.raises(ScenarioError) as exc:
        builder.build()
    assert "microwave_oven" in str(exc.value)
    # The error lists what *would* be accepted.
    assert "spread_phone" in str(exc.value)


def test_dict_round_trip_is_lossless():
    spec = _office()
    assert ScenarioSpec.from_dict(spec.to_dict()) == spec


def test_from_dict_rejects_unknown_keys():
    payload = _office().to_dict()
    payload["wombat"] = 3
    with pytest.raises(ScenarioError) as exc:
        ScenarioSpec.from_dict(payload)
    assert "wombat" in str(exc.value)


def test_yaml_round_trip_is_lossless():
    spec = _office()
    text = spec_to_yaml(spec)
    assert spec_from_yaml(text) == spec
    # And stable: re-serialising the parsed spec gives the same text.
    assert spec_to_yaml(spec_from_yaml(text)) == text


def test_yaml_rejects_non_mapping():
    with pytest.raises(ScenarioError):
        spec_from_yaml("- just\n- a\n- list\n")


def test_scenario_filename_flattens_slashes():
    assert scenario_filename("paper/office") == "paper--office.yaml"


def test_builtin_specs_all_round_trip():
    from repro.scenario.builtin import builtin_specs

    for spec in builtin_specs():
        assert spec_from_yaml(spec_to_yaml(spec)) == spec
