"""Golden equivalence: DSL-compiled scenarios == the hand-coded setups.

The experiment modules used to build their ``TrialConfig`` objects by
hand; they now compile them from the scenario registry.  These tests
pin the compiled configurations to inline copies of the original
hand-coded constructions — structurally where the configs are fully
comparable, and byte-identically on the persisted trial traces, so any
drift in the compiler or the built-in specs shows up as a failure here
rather than as silently shifted tables.
"""

from __future__ import annotations

import pytest

from repro.environment import (
    CONCRETE_BLOCK_WALL,
    FloorPlan,
    INTERIOR_DOOR,
    METAL_OBSTACLE,
    PLASTER_MESH_WALL,
    Point,
    PropagationModel,
    Wall,
)
from repro.interference.spreadspectrum import SpreadSpectrumPhonePair
from repro.scenario.registry import REGISTRY
from repro.trace.outsiders import OutsiderTraffic
from repro.trace.persist import save_trace
from repro.trace.trial import TrialConfig, run_fast_trial

PACKETS = 300


def _trace_bytes(config, tmp_path, tag):
    output = run_fast_trial(config)
    path = tmp_path / f"{tag}.wlt2"
    save_trace(output.trace, str(path), format="v2")
    return path.read_bytes()


def _assert_byte_identical(legacy_config, compiled_config, tmp_path, tag):
    legacy = _trace_bytes(legacy_config, tmp_path, f"{tag}-legacy")
    compiled = _trace_bytes(compiled_config, tmp_path, f"{tag}-compiled")
    assert legacy == compiled, f"{tag}: compiled trial diverged from legacy"


def test_table2_office_byte_identical(tmp_path):
    propagation = PropagationModel.calibrated(level=29.5, at_distance_ft=8.0)
    legacy = TrialConfig(
        name="office1",
        packets=PACKETS,
        seed=11,
        propagation=propagation,
        tx_position=Point(0.0, 0.0),
        rx_position=Point(8.0, 0.0),
    )
    compiled = REGISTRY.compile("paper/office").trial_config(
        name="office1", packets=PACKETS, seed=11
    )
    assert compiled.propagation == propagation
    assert (compiled.tx_position, compiled.rx_position) == (
        legacy.tx_position,
        legacy.rx_position,
    )
    _assert_byte_identical(legacy, compiled, tmp_path, "office")


@pytest.mark.parametrize(
    "trial,scenario,level,anchor_ft,plan",
    [
        ("Air 1", "paper/table4-air1", 30.58, 7.0, None),
        ("Wall 1", "paper/table4-wall1", 30.58, 7.0, "plaster"),
        ("Air 2", "paper/table4-air2", 28.58, 11.0, None),
        ("Wall 2", "paper/table4-wall2", 28.58, 11.0, "concrete"),
    ],
)
def test_table4_byte_identical(tmp_path, trial, scenario, level, anchor_ft, plan):
    floorplan = None
    if plan == "plaster":
        floorplan = FloorPlan(
            name="plaster office",
            walls=[Wall.between(3.5, -8.0, 3.5, 8.0, PLASTER_MESH_WALL)],
        )
    elif plan == "concrete":
        floorplan = FloorPlan(
            name="concrete office",
            walls=[Wall.between(5.5, -8.0, 5.5, 8.0, CONCRETE_BLOCK_WALL)],
        )
    propagation = PropagationModel.calibrated(
        level=level, at_distance_ft=anchor_ft, floorplan=floorplan
    )
    legacy = TrialConfig(
        name=trial,
        packets=PACKETS,
        seed=64,
        propagation=propagation,
        tx_position=Point(anchor_ft, 0.0),
        rx_position=Point(0.0, 0.0),
    )
    compiled = REGISTRY.compile(scenario).trial_config(
        name=trial, packets=PACKETS, seed=64
    )
    assert compiled.propagation == propagation
    _assert_byte_identical(legacy, compiled, tmp_path, trial)


def _legacy_multiroom_propagation() -> PropagationModel:
    plan = FloorPlan(name="figure-4 building")
    plan.add_wall(
        Wall.between(-5.0, -6.0, -5.0, 6.0, CONCRETE_BLOCK_WALL, "w-wall")
    )
    plan.add_wall(
        Wall.between(-8.0, 15.0, 8.0, 15.0, CONCRETE_BLOCK_WALL, "n-wall-1")
    )
    plan.add_wall(Wall.between(-8.0, 32.0, 8.0, 32.0, INTERIOR_DOOR, "n-door"))
    plan.add_wall(
        Wall.between(5.0, -3.0, 5.0, 3.0, CONCRETE_BLOCK_WALL, "e-wall-1")
    )
    plan.add_wall(
        Wall.between(12.0, -3.0, 12.0, 3.0, CONCRETE_BLOCK_WALL, "e-wall-2")
    )
    plan.add_wall(
        Wall.between(18.0, -3.0, 18.0, 3.0, METAL_OBSTACLE, "e-cabinet-1")
    )
    plan.add_wall(
        Wall.between(22.0, -3.0, 22.0, 3.0, METAL_OBSTACLE, "e-cabinet-2")
    )
    plan.add_wall(Wall.between(26.0, -3.0, 26.0, 3.0, INTERIOR_DOOR, "e-door"))
    return PropagationModel.calibrated(
        level=28.58, at_distance_ft=9.0, floorplan=plan
    )


@pytest.mark.parametrize(
    "link,tx",
    [
        ("Tx1", Point(7.2, 5.4)),
        ("Tx2", Point(-9.6, 0.0)),
        ("Tx4", Point(0.0, 45.0)),
        ("Tx5", Point(30.0, 0.0)),
    ],
)
def test_multiroom_byte_identical(tmp_path, link, tx):
    legacy = TrialConfig(
        name=link,
        packets=PACKETS,
        seed=65,
        propagation=_legacy_multiroom_propagation(),
        tx_position=tx,
        rx_position=Point(0.0, 0.0),
    )
    compiled = REGISTRY.compile("paper/multiroom").trial_config(
        link=link, packets=PACKETS, seed=65
    )
    assert compiled.tx_position == tx
    _assert_byte_identical(legacy, compiled, tmp_path, link)


def _legacy_table11_config(trial, interference, outsiders, seed=73):
    propagation = PropagationModel.calibrated(level=29.63, at_distance_ft=25.0)
    return TrialConfig(
        name=trial,
        packets=PACKETS,
        seed=seed,
        propagation=propagation,
        tx_position=Point(25.0, 0.0),
        rx_position=Point(0.0, 0.0),
        interference=interference,
        outsiders=outsiders,
    )


PHONE_NEAR = Point(0.4, 0.3)
PHONE_FAR = Point(11.0, 8.7)


@pytest.mark.parametrize(
    "trial,scenario,interference,outsiders",
    [
        (
            "Phones off",
            "paper/table11-phones-off",
            [],
            OutsiderTraffic(mean_level=5.5, level_sd=2.2, rate_per_test_packet=0.45),
        ),
        (
            "RS base",
            "paper/table11-rs-base",
            [
                SpreadSpectrumPhonePair(
                    handset_position=PHONE_FAR,
                    base_position=PHONE_NEAR,
                    variant="rs",
                    base_level_at_1ft=31.5,
                    name="rs-et909",
                )
            ],
            None,
        ),
        (
            "AT&T handset",
            "paper/table11-att-handset",
            [
                SpreadSpectrumPhonePair(
                    handset_position=PHONE_NEAR,
                    base_position=Point(0.0, 30.0),
                    variant="att",
                    base_level_at_1ft=33.0,
                    handset_level_at_1ft=23.5,
                    name="att-9300",
                )
            ],
            None,
        ),
    ],
)
def test_table11_configs_equal_and_byte_identical(
    tmp_path, trial, scenario, interference, outsiders
):
    legacy = _legacy_table11_config(trial, interference, outsiders)
    compiled = REGISTRY.compile(scenario).trial_config(
        name=trial, packets=PACKETS, seed=73
    )
    # Legacy passed explicit interference lists and outsiders, so the
    # whole config is structurally comparable here.
    assert compiled == legacy
    _assert_byte_identical(legacy, compiled, tmp_path, trial.replace(" ", "-"))


def test_registry_unknown_name_lists_valid_names():
    from repro.scenario.spec import ScenarioError

    with pytest.raises(ScenarioError) as exc:
        REGISTRY.get("paper/no-such-thing")
    message = str(exc.value)
    assert "paper/no-such-thing" in message
    assert "paper/office" in message  # valid names are listed


def test_engine_rejects_plans_tagged_with_unknown_scenario():
    from repro.experiments.engine import (
        ENGINE,
        ExperimentSpec,
        PlanContext,
        TrialPlan,
    )

    def build_plans(ctx: PlanContext):
        return [
            TrialPlan(
                "t", lambda seed: seed, {}, scenario="bogus/not-registered"
            )
        ]

    spec = ExperimentSpec(
        name="bogus-scenario-test",
        artifact="none",
        description="plan tagged with an unregistered scenario",
        build_plans=build_plans,
        aggregate=lambda ctx, values: values,
    )
    with pytest.raises(Exception) as exc:
        ENGINE.run(spec, scale=1.0, seed=0)
    assert "bogus/not-registered" in str(exc.value)


def test_experiment_plans_are_tagged_with_registered_scenarios():
    """Every paper experiment advertises which topology its trials use."""
    from repro.experiments import engine as engine_module

    tagged = {}
    for spec in engine_module.specs():
        ctx = engine_module.PlanContext(
            scale=0.01, seed=spec.default_seed, jobs=1
        )
        for plan in spec.build_plans(ctx):
            if plan.scenario is not None:
                assert plan.scenario in REGISTRY, (
                    f"{spec.name}:{plan.name} tags unregistered "
                    f"scenario {plan.scenario!r}"
                )
                tagged.setdefault(spec.name, set()).add(plan.scenario)
    # The paper-table experiments all declare their topologies.
    for name in ("table2", "table4", "table5", "table8", "table10",
                 "table11", "table14", "table3", "fec"):
        assert name in tagged, f"experiment {name} has untagged plans"
