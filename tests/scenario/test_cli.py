"""CLI smoke tests and the scenarios/ YAML drift pin."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.__main__ import main

REPO_ROOT = Path(__file__).resolve().parents[2]
SCENARIOS_DIR = REPO_ROOT / "scenarios"


def test_scenario_list(capsys):
    assert main(["scenario", "list"]) == 0
    out = capsys.readouterr().out
    assert "paper/office" in out
    assert "demo/dense-office" in out
    assert "scenario(s) registered" in out


def test_scenario_validate_shipped_dir(capsys):
    assert main(["scenario", "validate", str(SCENARIOS_DIR)]) == 0
    out = capsys.readouterr().out
    assert "0 invalid" in out


def test_scenario_validate_flags_bad_yaml(tmp_path, capsys):
    bad = tmp_path / "broken.yaml"
    bad.write_text("name: broken\nstations: []\n")
    assert main(["scenario", "validate", str(bad)]) == 1
    captured = capsys.readouterr()
    assert "INVALID" in captured.err


def test_scenario_render(capsys):
    assert main(["scenario", "render", "paper/multiroom",
                 "--width", "40", "--height", "12"]) == 0
    out = capsys.readouterr().out
    assert "#" in out  # walls drawn
    assert "Tx5" in out  # link legend


def test_scenario_render_unknown_name_lists_valid(capsys):
    assert main(["scenario", "render", "paper/nope"]) == 2
    err = capsys.readouterr().err
    assert "paper/nope" in err
    assert "paper/office" in err


def test_scenario_run_named(capsys):
    assert main(["scenario", "run", "paper/office",
                 "--packets", "50"]) == 0
    out = capsys.readouterr().out
    assert "paper/office" in out
    assert "Goodput%" in out


def test_scenario_run_needs_names_or_generate(capsys):
    assert main(["scenario", "run"]) == 2
    assert "--generate" in capsys.readouterr().err


def test_scenario_run_generated_fleet(capsys):
    assert main(["scenario", "run", "--generate", "grid",
                 "--packets", "20", "--jobs", "2", "--pareto"]) == 0
    out = capsys.readouterr().out
    assert "20 scenario(s)" in out


def test_scenario_export_matches_shipped_dir(tmp_path, capsys):
    """Drift pin: scenarios/ in the repo == a fresh built-in export."""
    assert main(["scenario", "export", str(tmp_path)]) == 0
    capsys.readouterr()
    exported = sorted(p.name for p in tmp_path.glob("*.yaml"))
    shipped = sorted(p.name for p in SCENARIOS_DIR.glob("*.yaml"))
    assert exported == shipped
    for name in exported:
        assert (tmp_path / name).read_text() == (
            SCENARIOS_DIR / name
        ).read_text(), f"scenarios/{name} drifted from the built-in spec"


def test_scenario_run_loaded_yaml_file(tmp_path, capsys):
    from repro.scenario.builtin import builtin_specs
    from repro.scenario.yamlio import save

    spec = next(s for s in builtin_specs() if s.name == "paper/office")
    path = tmp_path / "office-copy.yaml"
    save(spec, path)
    assert main(["scenario", "run", str(path), "--packets", "40"]) == 0
    assert "paper/office" in capsys.readouterr().out


@pytest.mark.parametrize("name", ["paper/table14-masked", "demo/three-floor"])
def test_scenario_render_smoke(name, capsys):
    assert main(["scenario", "render", name]) == 0
    assert "link" in capsys.readouterr().out
