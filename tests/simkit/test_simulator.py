"""Kernel clock, scheduling, and run loops."""

import pytest

from repro.simkit.simulator import SimulationError


class TestScheduling:
    def test_clock_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_events_fire_in_order_and_advance_clock(self, sim):
        times = []
        sim.schedule(2.0, lambda: times.append(sim.now))
        sim.schedule(1.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [1.0, 2.0]

    def test_schedule_into_past_raises(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.step()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_events_scheduled_during_run_fire(self, sim):
        order = []

        def outer():
            order.append("outer")
            sim.schedule(1.0, lambda: order.append("inner"))

        sim.schedule(1.0, outer)
        sim.run()
        assert order == ["outer", "inner"]
        assert sim.now == 2.0

    def test_cancel_prevents_firing(self, sim):
        fired = []
        event = sim.schedule(1.0, lambda: fired.append(1))
        sim.cancel(event)
        sim.run()
        assert fired == []


class TestRunLoops:
    def test_run_returns_events_fired(self, sim):
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        assert sim.run() == 5

    def test_run_max_events(self, sim):
        for i in range(10):
            sim.schedule(float(i), lambda: None)
        assert sim.run(max_events=3) == 3
        assert len(sim.queue) == 7

    def test_run_until_leaves_later_events(self, sim):
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run_until(2.0)
        assert fired == [1]
        assert sim.now == 2.0
        sim.run()
        assert fired == [1, 5]

    def test_run_until_advances_clock_when_queue_drains(self, sim):
        sim.run_until(7.5)
        assert sim.now == 7.5

    def test_stop_exits_run(self, sim):
        fired = []

        def stopper():
            fired.append("stop")
            sim.stop()

        sim.schedule(1.0, stopper)
        sim.schedule(2.0, lambda: fired.append("late"))
        sim.run()
        assert fired == ["stop"]

    def test_events_fired_accumulates(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_fired == 2

    def test_underscore_events_fired_deprecated(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.warns(DeprecationWarning, match="events_fired"):
            assert sim._events_fired == 1
