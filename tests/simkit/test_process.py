"""Generator-based processes."""

import pytest

from repro.simkit.process import Process, Timeout, Waiter


class TestTimeout:
    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Timeout(-1.0)

    def test_process_sleeps(self, sim):
        trace = []

        def body():
            trace.append(("start", sim.now))
            yield Timeout(2.5)
            trace.append(("end", sim.now))

        Process(sim, body())
        sim.run()
        assert trace == [("start", 0.0), ("end", 2.5)]

    def test_sequential_timeouts_accumulate(self, sim):
        times = []

        def body():
            for _ in range(3):
                yield Timeout(1.0)
                times.append(sim.now)

        Process(sim, body())
        sim.run()
        assert times == [1.0, 2.0, 3.0]


class TestWaiter:
    def test_process_blocks_until_trigger(self, sim):
        waiter = Waiter()
        got = []

        def body():
            value = yield waiter
            got.append((value, sim.now))

        Process(sim, body())
        sim.schedule(4.0, lambda: waiter.trigger("payload"))
        sim.run()
        assert got == [("payload", 4.0)]

    def test_pre_triggered_waiter_resumes_immediately(self, sim):
        waiter = Waiter()
        waiter.trigger("early")
        got = []

        def body():
            value = yield waiter
            got.append(value)

        Process(sim, body())
        sim.run()
        assert got == ["early"]

    def test_double_trigger_keeps_first_value(self, sim):
        waiter = Waiter()
        waiter.trigger("first")
        waiter.trigger("second")
        assert waiter.value == "first"


class TestProcessCompletion:
    def test_return_value_stored(self, sim):
        def body():
            yield Timeout(1.0)
            return "done"

        process = Process(sim, body())
        sim.run()
        assert process.finished
        assert process.result == "done"

    def test_bad_yield_type_raises(self, sim):
        def body():
            yield "not a request"

        Process(sim, body())
        with pytest.raises(TypeError):
            sim.run()

    def test_two_processes_interleave(self, sim):
        order = []

        def maker(name, delay):
            def body():
                yield Timeout(delay)
                order.append(name)

            return body()

        Process(sim, maker("slow", 2.0))
        Process(sim, maker("fast", 1.0))
        sim.run()
        assert order == ["fast", "slow"]
