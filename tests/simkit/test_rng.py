"""Named random streams: determinism and independence."""

import numpy as np

from repro.simkit.rng import RngRegistry, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "channel") == derive_seed(42, "channel")

    def test_differs_by_name(self):
        assert derive_seed(42, "channel") != derive_seed(42, "mac")

    def test_differs_by_root(self):
        assert derive_seed(1, "channel") != derive_seed(2, "channel")

    def test_fits_32_bits(self):
        for seed in (0, 1, 2**31, 2**63 - 1):
            assert 0 <= derive_seed(seed, "x") < 2**32


class TestRngRegistry:
    def test_same_name_same_stream_object(self):
        reg = RngRegistry(seed=1)
        assert reg.stream("a") is reg.stream("a")

    def test_different_names_independent_draws(self):
        reg = RngRegistry(seed=1)
        a = reg.stream("a").random(100)
        b = reg.stream("b").random(100)
        assert not np.allclose(a, b)

    def test_reproducible_across_registries(self):
        draws_1 = RngRegistry(seed=7).stream("x").random(50)
        draws_2 = RngRegistry(seed=7).stream("x").random(50)
        assert np.array_equal(draws_1, draws_2)

    def test_new_stream_does_not_perturb_existing(self):
        """The property the registry exists for: adding a consumer of a
        new stream must not change draws on existing streams."""
        reg_1 = RngRegistry(seed=7)
        reg_1.stream("a").random(10)
        tail_1 = reg_1.stream("a").random(10)

        reg_2 = RngRegistry(seed=7)
        reg_2.stream("a").random(10)
        reg_2.stream("newcomer").random(1000)  # interloper
        tail_2 = reg_2.stream("a").random(10)
        assert np.array_equal(tail_1, tail_2)

    def test_fork_gives_distinct_seed_space(self):
        reg = RngRegistry(seed=7)
        child_1 = reg.fork("trial-1").stream("a").random(10)
        child_2 = reg.fork("trial-2").stream("a").random(10)
        assert not np.allclose(child_1, child_2)

    def test_names_lists_created_streams(self):
        reg = RngRegistry(seed=1)
        reg.stream("zeta")
        reg.stream("alpha")
        assert reg.names() == ["alpha", "zeta"]
