"""Event queue ordering and cancellation."""

from repro.simkit.event import EventQueue


def _noop():
    pass


class TestEventQueueOrdering:
    def test_pops_in_time_order(self):
        q = EventQueue()
        q.push(3.0, _noop, name="c")
        q.push(1.0, _noop, name="a")
        q.push(2.0, _noop, name="b")
        names = [q.pop().name for _ in range(3)]
        assert names == ["a", "b", "c"]

    def test_same_time_fifo(self):
        q = EventQueue()
        for label in "abcde":
            q.push(1.0, _noop, name=label)
        names = [q.pop().name for _ in range(5)]
        assert names == list("abcde")

    def test_priority_breaks_time_ties(self):
        q = EventQueue()
        q.push(1.0, _noop, priority=5, name="low")
        q.push(1.0, _noop, priority=0, name="high")
        assert q.pop().name == "high"

    def test_pop_empty_returns_none(self):
        assert EventQueue().pop() is None


class TestEventQueueCancellation:
    def test_cancelled_event_is_skipped(self):
        q = EventQueue()
        victim = q.push(1.0, _noop, name="victim")
        q.push(2.0, _noop, name="survivor")
        q.cancel(victim)
        assert q.pop().name == "survivor"

    def test_cancel_updates_length(self):
        q = EventQueue()
        event = q.push(1.0, _noop)
        assert len(q) == 1
        q.cancel(event)
        assert len(q) == 0
        assert not q

    def test_double_cancel_is_idempotent(self):
        q = EventQueue()
        event = q.push(1.0, _noop)
        q.cancel(event)
        q.cancel(event)
        assert len(q) == 0

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        first = q.push(1.0, _noop)
        q.push(2.0, _noop)
        q.cancel(first)
        assert q.peek_time() == 2.0

    def test_peek_time_empty(self):
        assert EventQueue().peek_time() is None
