"""The process-pool runner: determinism, metrics merge, telemetry shards.

The acceptance bar for the parallel subsystem is byte-identical results
for any ``jobs`` value — these tests compare parallel runs against
serial ones at every layer: task values, experiment rows, merged
counters, and the telemetry stream the ``stats`` subcommand folds.
"""

from __future__ import annotations

import os

import pytest

from repro import obs
from repro.experiments import baseline, multiroom
from repro.obs.events import read_telemetry
from repro.obs.stats import summarize_telemetry
from repro.parallel import (
    Task,
    default_jobs,
    find_shards,
    merged_manifest_record,
    run_tasks,
    shard_path,
)
from repro.parallel.runner import TaskResult
from repro.simkit.rng import RngRegistry, derive_seed


def _square(value: int, seed: int) -> int:
    return value * value + seed


def _draw(seed: int) -> float:
    """A task whose result depends only on its seed, via the registry."""
    registry = RngRegistry(seed)
    return float(registry.stream("x").random())


def _tasks(count: int = 4) -> list[Task]:
    return [
        Task(f"t{i}", _square, {"value": i, "seed": 10 + i}, seed=10 + i)
        for i in range(count)
    ]


class TestRunTasks:
    def test_serial_runs_inline_in_order(self):
        results = run_tasks(_tasks(), jobs=1)
        assert [r.name for r in results] == ["t0", "t1", "t2", "t3"]
        assert [r.value for r in results] == [10, 12, 16, 22]

    def test_parallel_matches_serial(self):
        serial = [r.value for r in run_tasks(_tasks(), jobs=1)]
        parallel = [r.value for r in run_tasks(_tasks(), jobs=2)]
        assert parallel == serial

    def test_seeded_tasks_worker_independent(self):
        """Results derive from per-task seeds, not worker identity:
        more workers than tasks, fewer workers than tasks, and serial
        all agree."""
        tasks = [
            Task(f"d{i}", _draw, {"seed": derive_seed(99, f"d{i}")})
            for i in range(5)
        ]
        serial = [r.value for r in run_tasks(tasks, jobs=1)]
        assert [r.value for r in run_tasks(tasks, jobs=2)] == serial
        assert [r.value for r in run_tasks(tasks, jobs=8)] == serial

    def test_single_task_stays_inline(self):
        results = run_tasks(_tasks(1), jobs=8)
        assert results[0].value == 10

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1


class TestObservabilityMerge:
    def test_parallel_counters_equal_serial(self, tmp_path):
        """The headline invariant: final merged counters match a serial
        run exactly, and the telemetry family carries per-task manifests
        plus one merged manifest."""
        telemetry = tmp_path / "run.jsonl"
        with obs.session() as state:
            baseline.run(scale=0.01, seed=1996, jobs=1)
            serial_counters = state.metrics.counters_snapshot()
        with obs.session(telemetry_path=str(telemetry)) as state:
            baseline.run(scale=0.01, seed=1996, jobs=2)
            parallel_counters = state.metrics.counters_snapshot()
        assert parallel_counters == serial_counters

        summary = summarize_telemetry(telemetry)
        assert len(summary.shard_paths) == 2
        assert len(summary.manifests) == 9  # one per office trial
        assert len(summary.merged_manifests) == 1
        merged = summary.merged_manifests[0]
        assert merged["experiment"] == "table2-trials"
        assert merged["jobs"] == 2
        assert sorted(merged["merged_from"]) == sorted(
            m["experiment"] for m in summary.manifests
        )
        # Merged totals equal the sum of the per-task manifests the
        # stats totals are built from (no double counting).
        assert merged["packets_offered"] == summary.total_packets_offered

    def test_rows_identical_across_jobs(self):
        serial = baseline.run(scale=0.01, seed=7, jobs=1)
        parallel = baseline.run(scale=0.01, seed=7, jobs=3)
        assert [
            (r.name, r.packets_sent, r.packet_loss_percent, r.body_bits_damaged)
            for r in serial.rows
        ] == [
            (r.name, r.packets_sent, r.packet_loss_percent, r.body_bits_damaged)
            for r in parallel.rows
        ]

    def test_multiroom_identical_across_jobs(self):
        serial = multiroom.run(scale=0.1, seed=65, jobs=1)
        parallel = multiroom.run(scale=0.1, seed=65, jobs=2)
        assert [
            (r.name, r.packet_loss_percent) for r in serial.metrics_rows
        ] == [(r.name, r.packet_loss_percent) for r in parallel.metrics_rows]
        assert serial.level_mean("Tx5") == parallel.level_mean("Tx5")
        assert parallel.tx5_classified is not None

    def test_unobserved_run_writes_nothing(self, tmp_path):
        obs.reset()
        results = run_tasks(_tasks(), jobs=2)
        assert all(r.manifest is None for r in results)
        assert all(r.metrics_state is None for r in results)


class TestShards:
    def test_shard_path_layout(self):
        assert str(shard_path("run.jsonl", 0)).endswith("run.shard-000.jsonl")
        assert str(shard_path("run.jsonl.gz", 12)).endswith(
            "run.shard-012.jsonl.gz"
        )

    def test_find_shards_sorted_and_self_excluding(self, tmp_path):
        parent = tmp_path / "run.jsonl"
        parent.write_text("{}\n")
        for index in (2, 0, 1):
            shard_path(parent, index).write_text("{}\n")
        found = find_shards(parent)
        assert [p.name for p in found] == [
            "run.shard-000.jsonl",
            "run.shard-001.jsonl",
            "run.shard-002.jsonl",
        ]
        # A shard is not the parent of further shards.
        assert find_shards(found[0]) == []

    def test_gzip_shards_complete_on_disk(self, tmp_path):
        """Workers exit through os._exit, so only an explicit close in
        the worker's teardown lands the gzip end-of-stream trailer —
        flush alone leaves .gz shards unreadable (regression)."""
        telemetry = tmp_path / "run.jsonl.gz"
        with obs.session(telemetry_path=str(telemetry)):
            baseline.run(scale=0.01, seed=1996, jobs=2)
        shards = find_shards(telemetry)
        assert len(shards) == 2
        for shard in shards:  # every shard fully decompresses
            header, records = read_telemetry(shard)
            assert header["kind"] == "repro-telemetry"
            assert records
        summary = summarize_telemetry(telemetry)
        assert len(summary.shard_paths) == 2
        assert len(summary.manifests) == 9


class TestMergedManifest:
    def test_sums_and_labels(self):
        results = [
            TaskResult(
                name=f"t{i}",
                value=None,
                wall_clock_s=0.5,
                manifest={
                    "events_fired": 10 * (i + 1),
                    "packets_offered": 100,
                    "rng_streams": {"channel": i},
                    "layer_counters": {"trace.packets_offered": 100},
                    "git_rev": "abc",
                },
            )
            for i in range(3)
        ]
        record = merged_manifest_record("combo", results, wall_clock_s=1.25)
        assert record["type"] == "manifest"
        assert record["experiment"] == "combo"
        assert record["merged_from"] == ["t0", "t1", "t2"]
        assert record["events_fired"] == 60
        assert record["packets_offered"] == 300
        assert record["rng_streams"]["channel"] == 3
        assert record["layer_counters"]["trace.packets_offered"] == 300
        assert record["wall_clock_s"] == 1.25


@pytest.mark.slow
class TestReportDeterminism:
    def test_report_lines_byte_identical(self):
        """The ISSUE acceptance check, at test scale: the comparison
        table is byte-identical for jobs=1 and jobs=2."""
        from repro.experiments.report import build_report

        serial = build_report(scale=0.02, seed=1996, jobs=1)
        parallel = build_report(scale=0.02, seed=1996, jobs=2)
        assert parallel.table_markdown() == serial.table_markdown()
        assert [
            (r.experiment, r.events_fired, r.packets_offered)
            for r in parallel.resources
        ] == [
            (r.experiment, r.events_fired, r.packets_offered)
            for r in serial.resources
        ]


@pytest.mark.skipif(os.cpu_count() == 1, reason="single-core host")
class TestActualParallelism:
    def test_uses_multiple_workers(self, tmp_path):
        """On multi-core hosts a 2-job run really does spread across
        two worker processes (two shards with records)."""
        telemetry = tmp_path / "run.jsonl"
        with obs.session(telemetry_path=str(telemetry)):
            baseline.run(scale=0.01, seed=1, jobs=2)
        shards = find_shards(telemetry)
        assert len(shards) == 2
