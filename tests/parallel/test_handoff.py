"""The columnar handoff across pool boundaries."""

import pickle

import pytest

from repro.analysis.classify import classify_trace
from repro.analysis.metrics import metrics_from_classified
from repro.parallel.handoff import (
    PortableClassifiedTrace,
    TraceHandle,
    export_classified,
    export_trace,
    merge_trace_handles,
    resolve_portable,
)
from repro.trace.columnar import ColumnarTrace
from repro.trace.trial import TrialConfig, run_fast_trial

TRANSPORTS = ["file", "shm", "inline"]


@pytest.fixture(scope="module")
def trace():
    return run_fast_trial(
        TrialConfig(name="handoff", packets=300, mean_level=10.0, seed=21)
    ).trace


@pytest.fixture(scope="module")
def classified(trace):
    return classify_trace(trace)


def _assert_same_records(original, loaded):
    assert loaded.packets_received == len(original.records)
    for a, b in zip(original.records, loaded.records):
        assert bytes(a.data) == bytes(b.data)
        assert a.time == b.time
        assert a.status.signal_level == b.status.signal_level


class TestTraceHandle:
    @pytest.mark.parametrize("via", TRANSPORTS)
    def test_roundtrip(self, trace, via):
        handle = export_trace(trace, via=via)
        loaded = handle.load()
        assert isinstance(loaded, ColumnarTrace)
        _assert_same_records(trace, loaded)

    @pytest.mark.parametrize("via", TRANSPORTS)
    def test_handle_survives_pickle(self, trace, via):
        """The whole point: the handle crosses the pool boundary as a
        pickle of constant (file/shm) or flat-buffer (inline) size."""
        handle = pickle.loads(pickle.dumps(export_trace(trace, via=via)))
        _assert_same_records(trace, handle.load())

    def test_file_handle_pickles_small(self, trace):
        handle = export_trace(trace, via="file")
        try:
            assert len(pickle.dumps(handle)) < 500
        finally:
            handle.release()

    def test_file_consumed_on_load(self, trace, tmp_path):
        import os

        handle = export_trace(trace, via="file", directory=tmp_path)
        location = handle.location
        assert os.path.exists(location)
        loaded = handle.load()
        assert not os.path.exists(location)  # unlinked once mapped
        _assert_same_records(trace, loaded)  # mapping stays valid

    @pytest.mark.parametrize("via", TRANSPORTS)
    def test_release_discards(self, trace, via):
        export_trace(trace, via=via).release()

    def test_unknown_transport_rejected(self, trace):
        with pytest.raises(ValueError, match="transport"):
            export_trace(trace, via="carrier-pigeon")
        with pytest.raises(ValueError, match="kind"):
            TraceHandle(kind="carrier-pigeon", location="x").load()


class TestPortableClassified:
    @pytest.mark.parametrize("via", TRANSPORTS)
    def test_resolve_equivalent(self, classified, via):
        portable = export_classified(classified, via=via)
        resolved = pickle.loads(pickle.dumps(portable)).resolve()
        assert len(resolved.packets) == len(classified.packets)
        for a, b in zip(classified.packets, resolved.packets):
            assert a.packet_class == b.packet_class
            assert a.sequence == b.sequence
            assert a.wrapper_damaged == b.wrapper_damaged
            assert a.body_bits_damaged == b.body_bits_damaged
            assert a.truncated_bytes_missing == b.truncated_bytes_missing
            assert (a.syndrome is None) == (b.syndrome is None)
            if a.syndrome is not None:
                assert repr(a.syndrome) == repr(b.syndrome)
        assert repr(metrics_from_classified(classified)) == repr(
            metrics_from_classified(resolved)
        )

    def test_resolve_portable_protocol(self, classified):
        portable = export_classified(classified, via="inline")
        assert isinstance(portable, PortableClassifiedTrace)
        resolved = resolve_portable(portable)
        assert resolved.__class__.__name__ == "ClassifiedTrace"

    def test_resolve_portable_passthrough(self):
        sentinel = object()
        assert resolve_portable(sentinel) is sentinel
        assert resolve_portable(None) is None


class TestMerge:
    def test_merge_concatenates_shards(self, trace):
        handles = [
            export_trace(trace, via="file"),
            export_trace(trace, via="inline"),
        ]
        merged = merge_trace_handles(handles, name="merged")
        assert merged.name == "merged"
        assert merged.packets_received == 2 * len(trace.records)
        assert merged.packets_sent == 2 * trace.packets_sent
        doubled = list(trace.records) + list(trace.records)
        for view, record in zip(merged.records, doubled):
            assert bytes(view.data) == bytes(record.data)
