"""Cross-process span propagation: one stitched trace for any jobs=N.

The acceptance bar mirrors the parallel subsystem's: a pool run must
produce the *identical* span tree to a serial run — same deterministic
ids, same parent linkage — differing only in the volatile fields
(timings, pids).  These tests drive real pool workers and compare the
merged telemetry stream's span records against the serial run's.
"""

from __future__ import annotations

from repro import obs
from repro.experiments import engine
from repro.obs.export import load_run_records
from repro.obs.spans import span_structure, span_tree
from repro.parallel import Task, run_tasks
from repro.simkit.rng import RngRegistry


def _draw(seed: int) -> float:
    registry = RngRegistry(seed)
    return float(registry.stream("x").random())


def _tasks(count: int = 4) -> list[Task]:
    return [
        Task(f"t{i}", _draw, {"seed": 10 + i}, seed=10 + i)
        for i in range(count)
    ]


def _traced_run(tmp_path, jobs: int, label: str) -> list[dict]:
    path = tmp_path / f"run-{label}.jsonl"
    with obs.session(telemetry_path=str(path), trace_label="prop"):
        run_tasks(_tasks(), jobs=jobs, label="fan")
    return load_run_records(path)


class TestCrossProcessLinkage:
    def test_workers_join_the_parent_trace(self, tmp_path):
        records = _traced_run(tmp_path, jobs=2, label="join")
        spans = [r for r in records if r.get("type") == "span"]
        assert len({r["trace"] for r in spans}) == 1
        # spans were emitted from the parent and at least one worker
        assert len({r["pid"] for r in spans}) >= 2

    def test_task_spans_parent_under_run_tasks(self, tmp_path):
        records = _traced_run(tmp_path, jobs=2, label="parent")
        roots, children = span_tree(records)
        assert [r["name"] for r in roots] == ["parallel.run_tasks"]
        task_names = sorted(
            r["name"] for r in children[roots[0]["span"]]
        )
        assert task_names == ["t0", "t1", "t2", "t3"]

    def test_span_structure_identical_serial_vs_parallel(self, tmp_path):
        serial = _traced_run(tmp_path, jobs=1, label="serial")
        parallel = _traced_run(tmp_path, jobs=3, label="parallel")
        assert span_structure(serial) == span_structure(parallel)
        assert len(span_structure(serial)) == 5  # run_tasks + 4 tasks

    def test_trace_id_is_deterministic_across_runs(self, tmp_path):
        first = _traced_run(tmp_path, jobs=2, label="first")
        second = _traced_run(tmp_path, jobs=2, label="second")
        assert span_structure(first) == span_structure(second)


class TestEngineTrace:
    def test_engine_spans_stitch_for_any_jobs(self, tmp_path):
        def run(jobs: int):
            path = tmp_path / f"engine-{jobs}.jsonl"
            with obs.session(telemetry_path=str(path), trace_label="e"):
                engine.ENGINE.run("table4", scale=0.02, seed=7, jobs=jobs)
            return load_run_records(path)

        serial, parallel = run(1), run(2)
        assert span_structure(serial) == span_structure(parallel)
        roots, children = span_tree(parallel)
        assert [r["name"] for r in roots] == ["engine.table4"]
        phases = {r["name"] for r in children[roots[0]["span"]]}
        assert phases == {"engine.plan", "engine.execute",
                          "engine.aggregate"}


class TestProgressHeartbeats:
    def test_heartbeats_reach_the_sink(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with obs.session(telemetry_path=str(path), trace_label="hb"):
            run_tasks(_tasks(), jobs=2, label="fan", progress=True)
        records = load_run_records(path)
        beats = [r for r in records if r.get("type") == "heartbeat"]
        assert beats, "progress=True must emit heartbeat records"
        final = beats[-1]
        assert final["done"] == final["total"] == 4
        assert final["label"] == "fan"
        assert {"packets_offered", "packets_per_s", "rss_kb",
                "unix"} <= set(final)
        assert [b["done"] for b in beats] == sorted(
            b["done"] for b in beats
        )

    def test_serial_progress_heartbeats(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with obs.session(telemetry_path=str(path), trace_label="hb"):
            run_tasks(_tasks(2), jobs=1, label="fan", progress=True)
        records = load_run_records(path)
        beats = [r for r in records if r.get("type") == "heartbeat"]
        assert [b["done"] for b in beats] == [1, 2]

    def test_no_heartbeats_without_progress(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with obs.session(telemetry_path=str(path), trace_label="hb"):
            run_tasks(_tasks(), jobs=2, label="fan")
        records = load_run_records(path)
        assert not any(r.get("type") == "heartbeat" for r in records)

    def test_progress_without_sink_prints_stderr(self, capsys):
        run_tasks(_tasks(2), jobs=1, label="fan", progress=True)
        err = capsys.readouterr().err
        assert "progress: fan 2/2" in err

    def test_engine_threads_progress(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with obs.session(telemetry_path=str(path), trace_label="e"):
            engine.ENGINE.run(
                "table4", scale=0.02, seed=7, jobs=2, progress=True
            )
        records = load_run_records(path)
        assert any(r.get("type") == "heartbeat" for r in records)
