"""The snoop agent: caching, suppression, local recovery."""

import pytest

from repro.simkit.simulator import Simulator
from repro.transport.link import HalfDuplexLink, LinkConfig
from repro.transport.snoop import (
    SnoopNetwork,
    WiredConfig,
    WiredPipe,
    run_snoop_transfer,
)
from repro.transport.tcp import run_transfer


class TestWiredPipe:
    def test_lossless_ordered_delivery(self):
        sim = Simulator(seed=1)
        pipe = WiredPipe(sim, WiredConfig(bandwidth_bps=1e6, latency_s=0.01))
        arrivals = []
        pipe.send(1000, lambda: arrivals.append(("a", sim.now)))
        pipe.send(1000, lambda: arrivals.append(("b", sim.now)))
        sim.run()
        assert [name for name, _ in arrivals] == ["a", "b"]
        airtime = (1000 + 58) * 8 / 1e6
        assert arrivals[0][1] == pytest.approx(airtime + 0.01)
        assert arrivals[1][1] == pytest.approx(2 * airtime + 0.01)


class TestSnoopAgentMechanics:
    def _network(self, level=29.5, seed=1):
        sim = Simulator(seed=seed)
        wireless = HalfDuplexLink(sim, LinkConfig(mean_level=level))
        network = SnoopNetwork(sim, WiredPipe(sim), wireless)
        return sim, network

    def test_caches_forwarded_segments(self):
        sim, network = self._network()
        delivered = []

        class FakeReceiver:
            def on_segment(self, seq):
                delivered.append(seq)

        network.receiver = FakeReceiver()
        network._agent_data_arrived(0, 1024)
        assert 0 in network._cache
        assert network.stats.segments_cached == 1
        sim.run_until(0.1)
        assert delivered == [0]

    def test_new_ack_purges_and_forwards(self):
        sim, network = self._network()
        acks = []

        class FakeSender:
            def on_ack(self, ack):
                acks.append(ack)

        network.sender = FakeSender()
        network._cache = {0: 0, 1: 0}
        network._agent_ack_arrived(2)
        assert network._cache == {}
        sim.run_until(0.1)
        assert acks == [2]

    def test_dupack_suppressed_and_locally_retransmitted(self):
        sim, network = self._network()
        acks = []
        segments = []

        class FakeSender:
            def on_ack(self, ack):
                acks.append(ack)

        class FakeReceiver:
            def on_segment(self, seq):
                segments.append(seq)

        network.sender = FakeSender()
        network.receiver = FakeReceiver()
        network._cache = {3: 0, 4: 0}
        network._last_ack_seen = 3
        network._agent_ack_arrived(3)  # duplicate for cached 3
        sim.run_until(0.1)
        assert acks == []  # suppressed
        assert segments == [3]  # locally retransmitted
        assert network.stats.dupacks_suppressed == 1
        assert network.stats.local_retransmissions == 1

    def test_uncached_dupack_passes_through(self):
        sim, network = self._network()
        acks = []

        class FakeSender:
            def on_ack(self, ack):
                acks.append(ack)

        network.sender = FakeSender()
        network._last_ack_seen = 5
        network._agent_ack_arrived(5)  # dup, nothing cached
        sim.run_until(0.1)
        assert acks == [5]

    def test_local_rto_bounded(self):
        sim, network = self._network()
        network._local_rto = 99.0
        assert network._current_rto() <= network.max_local_rto_s
        network._backed_off_rto = 50.0
        assert network._current_rto() <= network.max_local_rto_s


class TestSnoopEndToEnd:
    def test_clean_transfer_unharmed(self):
        sender, network, link, sim = run_snoop_transfer(
            LinkConfig(mean_level=29.5), total_segments=150, seed=2,
            time_limit_s=60,
        )
        assert sender.finished
        assert network.stats.local_retransmissions == 0
        assert sender.stats.timeouts == 0

    def test_snoop_beats_plain_at_region_edge(self):
        plain, _, _ = run_transfer(
            LinkConfig(mean_level=8.0), total_segments=200, seed=7,
            time_limit_s=120,
        )
        snoop, network, _, _ = run_snoop_transfer(
            LinkConfig(mean_level=8.0), total_segments=200, seed=7,
            time_limit_s=120,
        )
        assert snoop.finished
        plain_time = plain.finish_time if plain.finished else 120.0
        assert snoop.finish_time < plain_time / 1.5
        # The whole point: the fixed sender never saw the losses.
        assert snoop.stats.timeouts == 0
        assert network.stats.dupacks_suppressed > 0
