"""TCP-Reno mechanics over clean and lossy links."""

from repro.simkit.simulator import Simulator
from repro.transport.link import HalfDuplexLink, LinkConfig
from repro.transport.tcp import TcpReceiver, TcpSender, run_transfer


def _transfer(level: float, segments: int = 100, seed: int = 1, arq: int = 0):
    return run_transfer(
        LinkConfig(mean_level=level, arq_retries=arq),
        total_segments=segments,
        seed=seed,
        time_limit_s=120.0,
    )


class TestCleanTransfer:
    def test_completes_without_retransmission(self):
        sender, link, sim = _transfer(29.5)
        assert sender.finished
        assert sender.stats.retransmissions == 0
        assert sender.stats.timeouts == 0

    def test_throughput_near_link_rate(self):
        sender, link, sim = _transfer(29.5, segments=300)
        mbps = 300 * 1024 * 8 / sender.finish_time / 1e6
        # 2 Mb/s channel minus header+ACK overhead: ~1.75 Mb/s.
        assert 1.6 < mbps < 1.9

    def test_slow_start_doubles_window(self):
        from repro.transport.tcp import DirectNetwork

        sim = Simulator(seed=1)
        link = HalfDuplexLink(sim, LinkConfig(mean_level=29.5))
        network = DirectNetwork(link)
        TcpReceiver(sim, network)
        sender = TcpSender(sim, network, total_segments=64)
        sender.start()
        # After a few RTTs of slow start the window has grown well past
        # the initial 2 segments.
        sim.run_until(0.2)
        assert sender.cwnd > 8

    def test_rtt_estimator_converges(self):
        sender, link, sim = _transfer(29.5, segments=200)
        assert sender.srtt is not None
        # RTT ~ data airtime + ack airtime + 2 latencies, plus queueing
        # behind the shared channel (a full window can be in flight).
        assert 0.003 < sender.srtt < 0.25
        assert sender.rto >= sender.config.rto_min_s


class TestLossRecovery:
    def test_fast_retransmit_fires_on_moderate_loss(self):
        sender, link, sim = _transfer(8.5, segments=400, seed=7)
        assert sender.finished
        assert sender.stats.fast_retransmits > 0

    def test_error_region_collapses_plain_tcp(self):
        plain, _, _ = _transfer(6.5, segments=200, seed=7)
        helped, _, _ = _transfer(6.5, segments=200, seed=7, arq=3)
        assert helped.finished
        helped_time = helped.finish_time
        if plain.finished:
            assert plain.finish_time > 3 * helped_time
        else:
            assert helped.finished  # plain stalled inside the limit

    def test_timeouts_back_off_exponentially(self):
        sender, link, sim = _transfer(5.5, segments=50, seed=3)
        if sender.stats.timeouts >= 2:
            assert sender.rto > sender.config.rto_min_s

    def test_receiver_reorders_out_of_order_segments(self):
        sim = Simulator(seed=1)
        acks = []

        class FakeNetwork:
            sender = None
            receiver = None

            def send_ack(self, ack):
                acks.append(ack)

        receiver = TcpReceiver(sim, FakeNetwork())
        receiver.on_segment(0)
        receiver.on_segment(2)  # gap
        receiver.on_segment(1)  # fills it
        assert acks == [1, 1, 3]


class TestStats:
    def test_goodput_accounting(self):
        sender, link, sim = _transfer(8.5, segments=300, seed=11)
        stats = sender.stats
        assert stats.goodput_segments == stats.segments_sent - stats.retransmissions
        assert stats.acks_received > 0
