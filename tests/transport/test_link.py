"""The half-duplex link adapter."""

import pytest

from repro.simkit.simulator import Simulator
from repro.transport.link import FRAME_OVERHEAD_BYTES, HalfDuplexLink, LinkConfig


class TestCleanLink:
    def test_delivery_and_timing(self):
        sim = Simulator(seed=1)
        link = HalfDuplexLink(sim, LinkConfig(mean_level=29.5))
        delivered = []
        link.send(1024, lambda: delivered.append(sim.now))
        sim.run()
        airtime = (1024 + FRAME_OVERHEAD_BYTES) * 8 / 2e6
        assert delivered == [pytest.approx(airtime + link.config.latency_s)]

    def test_fifo_serialization(self):
        """Two frames share the channel: the second waits its turn."""
        sim = Simulator(seed=1)
        link = HalfDuplexLink(sim, LinkConfig(mean_level=29.5))
        times = []
        link.send(1024, lambda: times.append(("a", sim.now)))
        link.send(0, lambda: times.append(("b", sim.now)))
        sim.run()
        airtime_a = (1024 + FRAME_OVERHEAD_BYTES) * 8 / 2e6
        airtime_b = FRAME_OVERHEAD_BYTES * 8 / 2e6
        assert times[0][0] == "a"
        assert times[1][1] == pytest.approx(
            airtime_a + airtime_b + link.config.latency_s
        )

    def test_nearly_lossless_when_strong(self):
        sim = Simulator(seed=2)
        link = HalfDuplexLink(sim, LinkConfig(mean_level=29.5))
        delivered = []
        for _ in range(500):
            link.send(1024, lambda: delivered.append(1))
        sim.run()
        assert len(delivered) >= 498


class TestLossyLink:
    def test_error_region_drops_frames(self):
        sim = Simulator(seed=3)
        link = HalfDuplexLink(sim, LinkConfig(mean_level=6.5))
        delivered = []
        for _ in range(400):
            link.send(1024, lambda: delivered.append(1))
        sim.run()
        assert link.stats.frames_lost_after_arq > 20
        assert len(delivered) == 400 - link.stats.frames_lost_after_arq

    def test_arq_recovers_most_losses(self):
        def losses(arq: int) -> int:
            sim = Simulator(seed=3)
            link = HalfDuplexLink(
                sim, LinkConfig(mean_level=6.5, arq_retries=arq)
            )
            for _ in range(400):
                link.send(1024, lambda: None)
            sim.run()
            return link.stats.frames_lost_after_arq

        assert losses(3) < losses(0) / 5

    def test_arq_costs_airtime(self):
        def busy(arq: int) -> float:
            sim = Simulator(seed=3)
            link = HalfDuplexLink(
                sim, LinkConfig(mean_level=6.5, arq_retries=arq)
            )
            for _ in range(200):
                link.send(1024, lambda: None)
            sim.run()
            return link.stats.busy_time_s

        assert busy(3) > busy(0) * 1.05
