"""End-to-end server tests: sessions, equivalence, backpressure, drain.

Each test runs a real :class:`TraceAnalysisServer` on an ephemeral
loopback port and talks to it with the loadgen client (or a raw
socket, for the misbehaving-client cases).  The load here is tiny —
these are correctness tests; throughput lives in
``benchmarks/bench_serve_ingest.py``.
"""

import asyncio
import hashlib

import numpy as np
import pytest

from repro.analysis.classify import (
    IncrementalClassifier,
    classify_trace,
    verdict_row_bytes,
)
from repro.framing.bits import flip_bits
from repro.framing.testpacket import BODY_START
from repro.phy.modem import ModemRxStatus
from repro.serve import protocol
from repro.serve.loadgen import chunk_payloads, run_loadgen, run_session
from repro.serve.protocol import FrameType, ProtocolError
from repro.serve.server import ServeConfig, TraceAnalysisServer
from repro.trace.columnar import ColumnarTrace
from repro.trace.records import PacketRecord, TrialTrace

STATUS = ModemRxStatus(29, 3, 15, 0)
WEAK_STATUS = ModemRxStatus(6, 3, 8, 1)


def _mixed_columnar(spec, factory, repeats: int = 8) -> ColumnarTrace:
    """A trace cycling clean / truncated / bit-damaged / outsider."""
    trace = TrialTrace(name="serve", spec=spec, packets_sent=4 * repeats)
    for base in range(0, 4 * repeats, 4):
        trace.records.append(
            PacketRecord.from_bytes(factory.build(base), STATUS)
        )
        trace.records.append(
            PacketRecord.from_bytes(
                factory.build(base + 1)[:600], WEAK_STATUS
            )
        )
        trace.records.append(
            PacketRecord.from_bytes(
                flip_bits(
                    factory.build(base + 2),
                    np.array([BODY_START * 8 + 1]),
                ),
                WEAK_STATUS,
            )
        )
        trace.records.append(
            PacketRecord.from_bytes(b"\xa5" * 80, WEAK_STATUS)
        )
    return ColumnarTrace.from_trace(trace)


def _reference(trace: ColumnarTrace) -> tuple[str, dict]:
    clf = IncrementalClassifier(trace.spec, trace.packets_sent)
    clf.feed(trace)
    digest = hashlib.blake2b(
        verdict_row_bytes(clf.verdict_columns()), digest_size=8
    ).hexdigest()
    return digest, clf.count_summary()


async def _serve(config: ServeConfig, work):
    server = TraceAnalysisServer(config)
    await server.start()
    try:
        return await work(server)
    finally:
        await server.stop()


class TestEndToEnd:
    @pytest.mark.parametrize("chunk_records", [1, 7, 1000])
    def test_session_matches_batch(self, spec, factory, chunk_records):
        """Any wire chunking reproduces the batch digest and counts."""
        trace = _mixed_columnar(spec, factory)
        digest, counts = _reference(trace)

        async def work(server):
            return await run_loadgen(
                server.address,
                trace,
                sessions=3,
                chunk_records=chunk_records,
            )

        report = asyncio.run(
            _serve(ServeConfig(heartbeat_s=0), work)
        )
        assert len(report.sessions) == 3
        for session in report.sessions:
            assert session.summary["verdict_digest"] == digest
            assert session.summary["counts"] == counts
            assert session.records == trace.packets_received

    def test_pooled_equals_inline(self, spec, factory):
        """jobs=2 (pool workers, shm handoff) == jobs=1 (inline)."""
        trace = _mixed_columnar(spec, factory)

        async def work(server):
            return await run_loadgen(
                server.address, trace, sessions=2, chunk_records=9
            )

        inline = asyncio.run(
            _serve(ServeConfig(jobs=1, heartbeat_s=0), work)
        )
        pooled = asyncio.run(
            _serve(
                ServeConfig(jobs=2, transport="shm", heartbeat_s=0), work
            )
        )
        digest, counts = _reference(trace)
        for report in (inline, pooled):
            for session in report.sessions:
                assert session.summary["verdict_digest"] == digest
                assert session.summary["counts"] == counts

    def test_zero_record_session(self, spec):
        """An empty trace still completes the full protocol round."""
        trace = ColumnarTrace.from_trace(
            TrialTrace(name="empty", spec=spec, packets_sent=0)
        )

        async def work(server):
            return await run_loadgen(
                server.address, trace, sessions=2, chunk_records=4
            )

        report = asyncio.run(_serve(ServeConfig(heartbeat_s=0), work))
        for session in report.sessions:
            assert session.records == 0
            assert sum(session.summary["counts"].values()) == 0

    def test_unix_socket(self, spec, factory, tmp_path):
        trace = _mixed_columnar(spec, factory, repeats=2)
        digest, _ = _reference(trace)
        path = str(tmp_path / "serve.sock")

        async def work(server):
            return await run_loadgen(
                server.address, trace, sessions=2, chunk_records=5
            )

        report = asyncio.run(
            _serve(ServeConfig(unix_path=path, heartbeat_s=0), work)
        )
        assert all(
            s.summary["verdict_digest"] == digest for s in report.sessions
        )


class TestRobustness:
    def test_abort_mid_stream_then_new_session(self, spec, factory):
        """A client dying mid-stream doesn't poison the server: the
        next session on the same server completes normally."""
        trace = _mixed_columnar(spec, factory)
        payloads = chunk_payloads(trace, 8)
        digest, _ = _reference(trace)

        async def work(server):
            host, port = server.address
            # Session 1: HELLO + one chunk, then vanish without END.
            reader, writer = await asyncio.open_connection(host, port)
            protocol.write_frame(
                writer,
                FrameType.HELLO,
                protocol.hello_payload(
                    "doomed", "abort-test", trace.spec, trace.packets_sent
                ),
            )
            await writer.drain()
            await protocol.read_frame(reader)  # HELLO_OK
            protocol.write_frame(writer, FrameType.CHUNK, payloads[0])
            await writer.drain()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            # Session 2: a clean full run on the same server.
            return await run_session(
                server.address,
                payloads,
                trace.spec,
                trace.packets_sent,
                session_id="survivor",
            )

        report = asyncio.run(_serve(ServeConfig(heartbeat_s=0), work))
        assert report.summary["verdict_digest"] == digest
        assert report.records == trace.packets_received

    def test_rst_disconnect_does_not_leak_session(self, spec, factory):
        """An abrupt reset (TCP RST, not a clean FIN) must still put
        the sentinel on the session queue: the handler's consumer
        unblocks, the session is removed, and the server stays
        usable — no hung handler task leaks until shutdown."""
        import socket as socketmod
        import struct

        trace = _mixed_columnar(spec, factory)
        payloads = chunk_payloads(trace, 8)
        digest, _ = _reference(trace)

        async def work(server):
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            protocol.write_frame(
                writer,
                FrameType.HELLO,
                protocol.hello_payload(
                    "reset", "rst-test", trace.spec, trace.packets_sent
                ),
            )
            await writer.drain()
            await protocol.read_frame(reader)  # HELLO_OK: session live
            assert "reset" in server._sessions
            protocol.write_frame(writer, FrameType.CHUNK, payloads[0])
            await writer.drain()
            sock = writer.get_extra_info("socket")
            sock.setsockopt(
                socketmod.SOL_SOCKET,
                socketmod.SO_LINGER,
                struct.pack("ii", 1, 0),  # close() now sends RST
            )
            writer.close()
            loop = asyncio.get_running_loop()
            deadline = loop.time() + 5.0
            while server._sessions:
                assert loop.time() < deadline, (
                    "reset session was never cleaned up"
                )
                await asyncio.sleep(0.01)
            # The same server then completes a clean session.
            return await run_session(
                server.address,
                payloads,
                trace.spec,
                trace.packets_sent,
                session_id="after-reset",
            )

        report = asyncio.run(_serve(ServeConfig(heartbeat_s=0), work))
        assert report.summary["verdict_digest"] == digest
        assert report.records == trace.packets_received

    def test_duplicate_session_id_rejected(self, spec, factory):
        """A HELLO reusing a live session id gets an ERROR instead of
        clobbering the first session's state."""
        trace = _mixed_columnar(spec, factory, repeats=1)

        async def work(server):
            host, port = server.address
            r1, w1 = await asyncio.open_connection(host, port)
            protocol.write_frame(
                w1,
                FrameType.HELLO,
                protocol.hello_payload(
                    "dup", "first", trace.spec, trace.packets_sent
                ),
            )
            await w1.drain()
            await protocol.read_frame(r1)  # HELLO_OK: "dup" is live
            r2, w2 = await asyncio.open_connection(host, port)
            protocol.write_frame(
                w2,
                FrameType.HELLO,
                protocol.hello_payload(
                    "dup", "second", trace.spec, trace.packets_sent
                ),
            )
            await w2.drain()
            rejection = await protocol.read_frame(r2)
            w2.close()
            # The first session is unharmed and finishes normally.
            protocol.write_frame(w1, FrameType.END)
            await w1.drain()
            summary = None
            while summary is None:
                frame_type, payload = await protocol.read_frame(r1)
                if frame_type is FrameType.SUMMARY:
                    summary = protocol.decode_json(payload)
            w1.close()
            return rejection, summary

        (frame_type, payload), summary = asyncio.run(
            _serve(ServeConfig(heartbeat_s=0), work)
        )
        assert frame_type is FrameType.ERROR
        assert "already active" in protocol.decode_json(payload)["error"]
        assert summary["session"] == "dup"

    def test_failed_chunk_error_reaches_client(self, spec, factory):
        """A chunk the server cannot classify is answered with ERROR,
        never ACK — the client must surface it promptly rather than
        parking forever on the exhausted credit window."""
        trace = _mixed_columnar(spec, factory, repeats=1)
        garbage = [b"not a columnar block"] * 8

        async def work(server):
            return await asyncio.wait_for(
                run_session(
                    server.address,
                    garbage,
                    trace.spec,
                    trace.packets_sent,
                    session_id="garbage",
                ),
                timeout=10.0,
            )

        with pytest.raises(ProtocolError, match="classification failed"):
            asyncio.run(
                _serve(ServeConfig(window_chunks=2, heartbeat_s=0), work)
            )

    def test_worker_matcher_cache_bounded(self, spec):
        """The (spec, packets_sent) matcher cache is an LRU: many
        distinct client-controlled keys cannot grow it past the cap."""
        from repro.serve import server as server_mod
        from repro.trace.columnar import spec_to_dict

        server_mod._WORKER_MATCHERS.clear()
        try:
            spec_dict = spec_to_dict(spec)
            total = server_mod._WORKER_MATCHER_CAP + 8
            for packets_sent in range(1, total + 1):
                key = (tuple(sorted(spec_dict.items())), packets_sent)
                server_mod._matcher_for(key, spec_dict, packets_sent)
                assert (
                    len(server_mod._WORKER_MATCHERS)
                    <= server_mod._WORKER_MATCHER_CAP
                )
            kept = {key[1] for key in server_mod._WORKER_MATCHERS}
            assert kept == set(
                range(total - server_mod._WORKER_MATCHER_CAP + 1, total + 1)
            )
        finally:
            server_mod._WORKER_MATCHERS.clear()

    def test_garbage_handshake_rejected(self, spec, factory):
        async def work(server):
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            protocol.write_frame(writer, FrameType.CHUNK, b"not-hello")
            await writer.drain()
            item = await protocol.read_frame(reader)
            writer.close()
            return item

        frame_type, payload = asyncio.run(
            _serve(ServeConfig(heartbeat_s=0), work)
        )
        assert frame_type is FrameType.ERROR
        assert "HELLO" in protocol.decode_json(payload)["error"]

    def test_queue_depth_stays_bounded(self, spec, factory):
        """A client that ignores the credit window and floods chunks
        still sees the server's queue bounded at queue_chunks."""
        trace = _mixed_columnar(spec, factory, repeats=16)
        payloads = chunk_payloads(trace, 2)  # many small chunks
        queue_chunks = 3

        async def work(server):
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            protocol.write_frame(
                writer,
                FrameType.HELLO,
                protocol.hello_payload(
                    "flood", "flood-test", trace.spec, trace.packets_sent
                ),
            )
            await writer.drain()
            await protocol.read_frame(reader)  # HELLO_OK
            # Blast every chunk without waiting for a single ACK.
            for payload in payloads:
                protocol.write_frame(writer, FrameType.CHUNK, payload)
            protocol.write_frame(writer, FrameType.END)
            await writer.drain()
            summary = None
            while summary is None:
                frame_type, payload = await protocol.read_frame(reader)
                if frame_type is FrameType.SUMMARY:
                    summary = protocol.decode_json(payload)
            writer.close()
            return summary

        summary = asyncio.run(
            _serve(
                ServeConfig(queue_chunks=queue_chunks, heartbeat_s=0),
                work,
            )
        )
        assert summary["records"] == trace.packets_received
        assert 1 <= summary["max_queue_depth"] <= queue_chunks

    def test_draining_server_rejects_new_hello(self, spec, factory):
        """After stop() begins, a connection that got through the race
        window is told the server is draining."""
        trace = _mixed_columnar(spec, factory, repeats=1)

        async def main():
            server = TraceAnalysisServer(ServeConfig(heartbeat_s=0))
            await server.start()
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            server._accepting = False  # simulate the drain window
            protocol.write_frame(
                writer,
                FrameType.HELLO,
                protocol.hello_payload(
                    "late", "late-test", trace.spec, trace.packets_sent
                ),
            )
            await writer.drain()
            item = await protocol.read_frame(reader)
            writer.close()
            await server.stop()
            return item

        frame_type, payload = asyncio.run(main())
        assert frame_type is FrameType.ERROR
        assert "drain" in protocol.decode_json(payload)["error"]


class TestTelemetry:
    def test_session_spans_recorded(self, spec, factory, tmp_path):
        """One serve.session span per session, parented under one
        serve.run root, readable by the span tooling."""
        from repro import obs
        from repro.obs.spans import span_tree

        trace = _mixed_columnar(spec, factory, repeats=2)
        telemetry = tmp_path / "serve.jsonl"
        obs.configure(telemetry_path=str(telemetry), trace_label="test")
        try:

            async def work(server):
                return await run_loadgen(
                    server.address, trace, sessions=3, chunk_records=4
                )

            asyncio.run(_serve(ServeConfig(heartbeat_s=0), work))
            recorder = obs.STATE.spans
            spans = list(recorder.finished)
        finally:
            obs.reset()
        by_name = {}
        for record in spans:
            by_name.setdefault(record["name"], []).append(record)
        assert len(by_name["serve.run"]) == 1
        assert len(by_name["serve.session"]) == 3
        root = by_name["serve.run"][0]
        for session_span in by_name["serve.session"]:
            assert session_span["parent"] == root["span"]
            assert session_span["attrs"]["records"] == (
                trace.packets_received
            )
            assert session_span["status"] == "ok"
        # The tree stitches: 3 children under the one root.
        roots, children = span_tree(spans)
        assert root in roots
        assert len(children.get(root["span"], [])) == 3
