"""Shm-ring transport: slot lifecycle, leak-freedom, equivalence.

Three layers of coverage for the zero-copy ingest path:

* **Unit** — :class:`RingTransport` / :class:`RingClient` slot
  accounting: lease/release discipline, loud overflow counting, reset
  between owners, and segment unlink on close (checked against the
  actual ``/dev/shm`` listing).
* **Equivalence matrix** — every pooled transport × coalescing
  combination reproduces, byte for byte, the verdict digest of the
  inline single-chunk path (the acceptance contract every serve PR
  rides on).
* **Lifecycle under misbehavior** — an abrupt client disconnect
  mid-chunk leaks no shm segments and frees every ring slot for the
  next session; a mis-sized ring falls back to socket framing loudly
  (summary ``ring_overflows``), never silently.
"""

import asyncio
import hashlib
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.analysis.classify import IncrementalClassifier, verdict_row_bytes
from repro.framing.bits import flip_bits
from repro.framing.testpacket import BODY_START
from repro.parallel.handoff import RingClient, RingTransport
from repro.phy.modem import ModemRxStatus
from repro.serve import protocol
from repro.serve.loadgen import run_loadgen
from repro.serve.protocol import FrameType
from repro.serve.server import ServeConfig, TraceAnalysisServer
from repro.trace.columnar import ColumnarTrace
from repro.trace.records import PacketRecord, TrialTrace

STATUS = ModemRxStatus(29, 3, 15, 0)
WEAK_STATUS = ModemRxStatus(6, 3, 8, 1)

SHM_DIR = "/dev/shm"
needs_dev_shm = pytest.mark.skipif(
    not os.path.isdir(SHM_DIR), reason="no /dev/shm on this platform"
)


def _shm_names() -> set:
    return set(os.listdir(SHM_DIR))


def _mixed_columnar(spec, factory, repeats: int = 8) -> ColumnarTrace:
    """A trace cycling clean / truncated / bit-damaged / outsider."""
    trace = TrialTrace(name="ring", spec=spec, packets_sent=4 * repeats)
    for base in range(0, 4 * repeats, 4):
        trace.records.append(
            PacketRecord.from_bytes(factory.build(base), STATUS)
        )
        trace.records.append(
            PacketRecord.from_bytes(
                factory.build(base + 1)[:600], WEAK_STATUS
            )
        )
        trace.records.append(
            PacketRecord.from_bytes(
                flip_bits(
                    factory.build(base + 2),
                    np.array([BODY_START * 8 + 1]),
                ),
                WEAK_STATUS,
            )
        )
        trace.records.append(
            PacketRecord.from_bytes(b"\xa5" * 80, WEAK_STATUS)
        )
    return ColumnarTrace.from_trace(trace)


def _reference(trace: ColumnarTrace) -> tuple[str, dict]:
    clf = IncrementalClassifier(trace.spec, trace.packets_sent)
    clf.feed(trace)
    digest = hashlib.blake2b(
        verdict_row_bytes(clf.verdict_columns()), digest_size=8
    ).hexdigest()
    return digest, clf.count_summary()


async def _serve(config: ServeConfig, work):
    server = TraceAnalysisServer(config)
    await server.start()
    try:
        return await work(server)
    finally:
        await server.stop()


class TestRingUnit:
    def test_lease_release_lifecycle(self):
        ring = RingTransport(slots=2, slot_bytes=64)
        try:
            first = ring.lease(b"a" * 10)
            second = ring.lease(b"b" * 64)
            assert first is not None and second is not None
            assert {first.index, second.index} == {0, 1}
            assert ring.slots_free == 0
            # Exhaustion is an overflow, not a block or an exception.
            assert ring.lease(b"c") is None
            assert ring.overflows == 1
            ring.release(first.index)
            assert ring.slots_free == 1
            third = ring.lease(b"d" * 3)
            assert third is not None and third.index == first.index
            stats = ring.stats()
            assert stats["leases"] == 3
            assert stats["overflows"] == 1
            assert stats["max_in_use"] == 2
        finally:
            ring.close()

    def test_oversized_payload_overflows(self):
        ring = RingTransport(slots=4, slot_bytes=16)
        try:
            assert ring.lease(b"x" * 17) is None
            assert ring.overflows == 1
            assert ring.slots_free == 4  # nothing was consumed
        finally:
            ring.close()

    def test_double_release_rejected(self):
        ring = RingTransport(slots=2, slot_bytes=8)
        try:
            handle = ring.lease(b"hi")
            ring.release(handle.index)
            with pytest.raises(ValueError):
                ring.release(handle.index)
            with pytest.raises(ValueError):
                ring.release(99)
        finally:
            ring.close()

    def test_reset_restores_fresh_ring(self):
        ring = RingTransport(slots=2, slot_bytes=8)
        try:
            ring.lease(b"a")
            ring.lease(b"b")
            ring.lease(b"c")  # overflow
            ring.reset()
            assert ring.slots_free == 2
            assert ring.leases == 0
            assert ring.overflows == 0
            assert ring.max_in_use == 0
            assert ring.lease(b"d") is not None
        finally:
            ring.close()
        with pytest.raises(ValueError):
            ring.reset()

    @needs_dev_shm
    def test_client_roundtrip_and_unlink(self):
        """Client writes a slot, worker-side view reads it back, close
        unlinks the segment from /dev/shm."""
        before = _shm_names()
        ring = RingTransport(slots=3, slot_bytes=32)
        assert ring.name in _shm_names()
        client = RingClient(ring.name, ring.slots, ring.slot_bytes)
        placed = client.write(b"payload-bytes")
        assert placed is not None
        slot, nbytes = placed
        from multiprocessing import shared_memory

        from repro.parallel import handoff as _handoff

        reader = shared_memory.SharedMemory(name=ring.name)
        # The ring owner unlinks; keep this attach out of the resource
        # tracker so interpreter exit doesn't warn about a "leak".
        _handoff._untrack_shm(ring.name)
        offset = slot * ring.slot_bytes
        assert bytes(reader.buf[offset : offset + nbytes]) == b"payload-bytes"
        reader.close()
        # Exhaust the client's free list, reclaim, write again.
        while client.write(b"x") is not None:
            pass
        assert client.fallbacks >= 1
        client.reclaim([slot])
        assert client.write(b"again") is not None
        client.close()
        ring.close()
        assert ring.name not in _shm_names()
        assert _shm_names() - before == set()


class TestTransportMatrix:
    """Acceptance contract: pooled/ring/coalesced == inline single-chunk."""

    @pytest.fixture(scope="class")
    def trace(self):
        from repro.framing.testpacket import (
            TestPacketFactory,
            TestPacketSpec,
        )

        spec = TestPacketSpec.default()
        return _mixed_columnar(spec, TestPacketFactory(spec))

    @pytest.fixture(scope="class")
    def inline_single_chunk(self, trace):
        """The reference digest, produced by the inline (jobs=1) path
        fed the whole trace as ONE chunk."""

        async def work(server):
            return await run_loadgen(
                server.address,
                trace,
                sessions=1,
                chunk_records=trace.packets_received,
            )

        report = asyncio.run(
            _serve(
                ServeConfig(jobs=1, transport="inline", heartbeat_s=0),
                work,
            )
        )
        summary = report.sessions[0].summary
        batch_digest, batch_counts = _reference(trace)
        assert summary["verdict_digest"] == batch_digest
        assert summary["counts"] == batch_counts
        return summary["verdict_digest"], summary["counts"]

    @pytest.mark.parametrize("transport", ["ring", "shm", "file"])
    @pytest.mark.parametrize("coalesce", [1, 4])
    def test_pooled_matches_inline(
        self, trace, inline_single_chunk, transport, coalesce
    ):
        digest, counts = inline_single_chunk

        async def work(server):
            return await run_loadgen(
                server.address, trace, sessions=2, chunk_records=9
            )

        report = asyncio.run(
            _serve(
                ServeConfig(
                    jobs=2,
                    transport=transport,
                    coalesce_chunks=coalesce,
                    heartbeat_s=0,
                ),
                work,
            )
        )
        assert len(report.sessions) == 2
        for session in report.sessions:
            assert session.summary["verdict_digest"] == digest
            assert session.summary["counts"] == counts

    def test_socket_client_on_ring_server_matches(
        self, trace, inline_single_chunk
    ):
        """A client that declines the ring grant (plain CHUNK frames)
        still lands on the ring transport server-side — same digest."""
        digest, counts = inline_single_chunk

        async def work(server):
            return await run_loadgen(
                server.address,
                trace,
                sessions=1,
                chunk_records=7,
                use_ring=False,
            )

        report = asyncio.run(
            _serve(
                ServeConfig(jobs=2, transport="ring", heartbeat_s=0), work
            )
        )
        session = report.sessions[0]
        assert not session.ring_used
        assert session.summary["verdict_digest"] == digest
        assert session.summary["counts"] == counts


@needs_dev_shm
class TestSlotLifecycle:
    def test_abrupt_disconnect_mid_chunk_leaks_nothing(
        self, spec, factory
    ):
        """A client that dies mid-frame after parking a chunk in a
        ring slot leaks no shm segment: the session unwinds, the next
        session gets a clean ring, and server stop leaves ``/dev/shm``
        exactly as it found it."""
        trace = _mixed_columnar(spec, factory)
        digest, counts = _reference(trace)
        payloads = [
            protocol.encode_chunk(trace, 0, trace.packets_received)
        ]
        before = _shm_names()

        async def work(server):
            reader, writer = await asyncio.open_connection(
                *server.address
            )
            frames = protocol.FrameReader(reader)
            protocol.write_frame(
                writer,
                FrameType.HELLO,
                protocol.hello_payload(
                    "abrupt-1",
                    "abrupt",
                    trace.spec,
                    trace.packets_sent,
                    shm_ring=True,
                    chunk_bytes=max(len(p) for p in payloads),
                ),
            )
            await writer.drain()
            frame_type, payload = await frames.read_frame()
            assert frame_type is FrameType.HELLO_OK
            grant = protocol.decode_json(bytes(payload))["ring"]
            client = RingClient(
                str(grant["name"]),
                int(grant["slots"]),
                int(grant["slot_bytes"]),
            )
            try:
                # Park a chunk in a slot and reference it...
                slot, nbytes = client.write(payloads[0])
                protocol.write_frame(
                    writer,
                    FrameType.CHUNK_REF,
                    protocol.chunk_ref_payload(slot, nbytes),
                )
                # ...then die mid-way through the next frame: a length
                # prefix promising bytes that never arrive.
                writer.write(b"\x00\x00\xff\xff")
                await writer.drain()
            finally:
                client.close()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            # The server unwinds the session on reader EOF; give the
            # loop a few turns, then prove a fresh session gets a
            # clean, fully-free ring (pooled rings are reset between
            # owners — leaked slots would surface as overflows here).
            for _ in range(50):
                await asyncio.sleep(0.01)
                if not server._sessions:
                    break
            report = await run_loadgen(
                server.address,
                trace,
                sessions=1,
                chunk_records=trace.packets_received,
                payloads=payloads,
            )
            return report.sessions[0]

        session = asyncio.run(
            _serve(
                ServeConfig(jobs=2, transport="ring", heartbeat_s=0),
                work,
            )
        )
        assert session.ring_used
        assert session.summary["verdict_digest"] == digest
        assert session.summary["counts"] == counts
        assert session.summary["ring_overflows"] == 0
        leaked = _shm_names() - before
        assert leaked == set(), f"leaked shm segments: {leaked}"

    def test_ring_overflow_falls_back_loudly(self, spec, factory):
        """Slots too small for any chunk: every chunk rides the socket
        slow lane, the summary says so (``ring_overflows``), and the
        verdicts are still exact."""
        trace = _mixed_columnar(spec, factory)
        digest, counts = _reference(trace)
        chunk_records = 9
        chunks = -(-trace.packets_received // chunk_records)

        async def work(server):
            return await run_loadgen(
                server.address,
                trace,
                sessions=1,
                chunk_records=chunk_records,
            )

        report = asyncio.run(
            _serve(
                ServeConfig(
                    jobs=2,
                    transport="ring",
                    ring_slot_bytes=64,  # far below any chunk payload
                    heartbeat_s=0,
                ),
                work,
            )
        )
        session = report.sessions[0]
        assert session.summary["verdict_digest"] == digest
        assert session.summary["counts"] == counts
        # Loud: every fallback is counted, none are silent.
        assert session.summary["ring_overflows"] == chunks
        assert not session.ring_used

    def test_sigterm_unlinks_rings_and_reaps_workers(
        self, spec, factory, tmp_path
    ):
        """SIGTERM (``systemd stop``, a container runtime's grace
        period) must drain like SIGINT: every ring — live or pooled —
        unlinked from ``/dev/shm``, shard workers reaped, exit 0.  The
        default signal action would leak one segment per session."""
        trace = _mixed_columnar(spec, factory)
        sock = str(tmp_path / "term.sock")
        before = _shm_names()
        srv = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--unix", sock, "--jobs", "2",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            deadline = time.monotonic() + 30
            while not os.path.exists(sock):
                assert srv.poll() is None, srv.communicate()[0]
                assert time.monotonic() < deadline, "server never bound"
                time.sleep(0.05)
            report = asyncio.run(
                run_loadgen(sock, trace, sessions=1, chunk_records=16)
            )
            assert report.sessions[0].ring_used
            # The closed session's ring is still parked in the pool.
            assert _shm_names() - before
            srv.send_signal(signal.SIGTERM)
            out, _ = srv.communicate(timeout=30)
            assert srv.returncode == 0, out
        finally:
            if srv.poll() is None:  # pragma: no cover
                srv.kill()
                srv.communicate()
        leaked = _shm_names() - before
        assert leaked == set(), f"leaked shm segments: {leaked}"
