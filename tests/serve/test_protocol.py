"""Wire-protocol unit tests: framing, handshake, chunk payloads."""

import asyncio

import numpy as np
import pytest

from repro.phy.modem import ModemRxStatus
from repro.serve import protocol
from repro.serve.protocol import FrameType, ProtocolError
from repro.trace.columnar import ColumnarTrace
from repro.trace.records import PacketRecord, TrialTrace

STATUS = ModemRxStatus(29, 3, 15, 0)


def _read_one(*frames: bytes):
    """Feed bytes to a fresh StreamReader (inside a running loop) and
    read one frame."""

    async def go():
        reader = asyncio.StreamReader()
        for data in frames:
            reader.feed_data(data)
        reader.feed_eof()
        return await protocol.read_frame(reader)

    return asyncio.run(go())


@pytest.fixture
def columnar(spec, factory) -> ColumnarTrace:
    trace = TrialTrace(name="proto", spec=spec, packets_sent=6)
    trace.records.extend(
        PacketRecord.from_bytes(factory.build(sequence), STATUS)
        for sequence in range(6)
    )
    return ColumnarTrace.from_trace(trace)


class TestFraming:
    def test_round_trip(self):
        encoded = protocol.frame(FrameType.CHUNK, b"payload")
        frame_type, payload = _read_one(encoded)
        assert frame_type is FrameType.CHUNK
        assert payload == b"payload"

    def test_empty_payload(self):
        encoded = protocol.frame(FrameType.END)
        frame_type, payload = _read_one(encoded)
        assert frame_type is FrameType.END
        assert payload == b""

    def test_clean_eof_is_none(self):
        assert _read_one() is None

    def test_eof_mid_length_prefix_raises(self):
        with pytest.raises(ProtocolError, match="mid-frame"):
            _read_one(b"\x00\x00")

    def test_eof_mid_body_raises(self):
        whole = protocol.frame(FrameType.CHUNK, b"x" * 100)
        with pytest.raises(ProtocolError, match="mid-frame"):
            _read_one(whole[:20])

    def test_unknown_frame_type_raises(self):
        encoded = (2).to_bytes(4, "big") + bytes([0x7F, 0x00])
        with pytest.raises(ProtocolError, match="unknown frame type"):
            _read_one(encoded)

    def test_zero_length_raises(self):
        with pytest.raises(ProtocolError, match="invalid frame length"):
            _read_one(b"\x00\x00\x00\x00")

    def test_oversize_declared_length_raises(self):
        huge = (protocol.MAX_FRAME_BYTES + 1).to_bytes(4, "big")
        with pytest.raises(ProtocolError, match="invalid frame length"):
            _read_one(huge)

    def test_oversize_encode_raises(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            protocol.frame(
                FrameType.CHUNK, b"\x00" * protocol.MAX_FRAME_BYTES
            )

    def test_back_to_back_frames(self):
        data = protocol.frame(FrameType.HELLO, b"a") + protocol.frame(
            FrameType.END
        )
        async def read_three():
            reader = asyncio.StreamReader()
            reader.feed_data(data)
            reader.feed_eof()
            return (
                await protocol.read_frame(reader),
                await protocol.read_frame(reader),
                await protocol.read_frame(reader),
            )

        first, second, third = asyncio.run(read_three())
        assert first == (FrameType.HELLO, b"a")
        assert second == (FrameType.END, b"")
        assert third is None


class TestHello:
    def test_round_trip(self, spec):
        payload = protocol.hello_payload(
            "s1", "unit", spec, packets_sent=42, total_records=7
        )
        doc = protocol.parse_hello(payload)
        assert doc["session"] == "s1"
        assert doc["packets_sent"] == 42
        assert doc["total_records"] == 7
        assert doc["spec"] == spec

    def test_version_mismatch(self, spec):
        import json

        doc = json.loads(
            protocol.hello_payload("s1", "unit", spec, 1).decode()
        )
        doc["version"] = 99
        with pytest.raises(ProtocolError, match="version"):
            protocol.parse_hello(protocol.encode_json(doc))

    def test_missing_key(self):
        with pytest.raises(ProtocolError, match="missing"):
            protocol.parse_hello(
                protocol.encode_json({"version": 1, "session": "x"})
            )

    def test_malformed_json(self):
        with pytest.raises(ProtocolError, match="malformed"):
            protocol.decode_json(b"\xff\xfe not json")

    def test_non_object_payload(self):
        with pytest.raises(ProtocolError, match="object"):
            protocol.decode_json(b"[1, 2]")


class TestChunks:
    def test_round_trip(self, columnar):
        payload = protocol.encode_chunk(columnar)
        decoded = protocol.decode_chunk(payload)
        assert decoded.packets_received == columnar.packets_received
        assert decoded.spec == columnar.spec
        np.testing.assert_array_equal(decoded.lengths, columnar.lengths)
        for index in range(columnar.packets_received):
            assert decoded.data(index) == columnar.data(index)

    def test_slice_round_trip(self, columnar):
        payload = protocol.encode_chunk(columnar, 2, 5)
        decoded = protocol.decode_chunk(payload)
        assert decoded.packets_received == 3
        for offset, index in enumerate(range(2, 5)):
            assert decoded.data(offset) == columnar.data(index)

    def test_empty_slice_round_trip(self, columnar):
        payload = protocol.encode_chunk(columnar, 3, 3)
        decoded = protocol.decode_chunk(payload)
        assert decoded.packets_received == 0

    def test_truncated_chunk_raises(self, columnar):
        payload = protocol.encode_chunk(columnar)
        with pytest.raises(ValueError):
            protocol.decode_chunk(payload[: len(payload) // 2])
