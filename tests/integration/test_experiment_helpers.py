"""Unit tests of the experiment modules' result helpers."""

import pytest

from repro.experiments.diversity_ablation import DiversityPoint, DiversityResult
from repro.experiments.error_vs_level import LevelBin
from repro.experiments.signal_vs_distance import DistancePoint, PathLossResult
from repro.experiments.throughput import OFFERED_RATE_BPS, ThroughputPoint, ThroughputResult
from repro.experiments.tcp_over_wavelan import TransferOutcome


class TestLevelBin:
    def test_fractions(self):
        bin_ = LevelBin(level=7, sent=100, received=90, damaged=9)
        assert bin_.loss_fraction == pytest.approx(0.10)
        assert bin_.damage_fraction == pytest.approx(0.10)

    def test_empty_bin(self):
        bin_ = LevelBin(level=7, sent=0, received=0, damaged=0)
        assert bin_.loss_fraction == 0.0
        assert bin_.damage_fraction == 0.0


class TestPathLossHelpers:
    def _result(self):
        result = PathLossResult()
        for d, mean in [(2, 30.0), (4, 28.0), (6, 20.0), (8, 27.0), (10, 26.0)]:
            result.points.append(DistancePoint(d, 100, int(mean) - 1, mean, int(mean) + 1))
        return result

    def test_dip_depth_detects_notch(self):
        result = self._result()
        # Neighbours within the 6 ft window: d = 2, 4, 8, 10.
        neighbour_mean = (30.0 + 28.0 + 27.0 + 26.0) / 4
        assert result.dip_depth(6.0) == pytest.approx(neighbour_mean - 20.0)

    def test_dip_depth_no_points(self):
        assert PathLossResult().dip_depth(6.0) == 0.0

    def test_mean_series(self):
        series = self._result().mean_series()
        assert series[0] == (2, 30.0)
        assert len(series) == 5


class TestThroughputHelpers:
    def _point(self, undamaged=90, recovered=5):
        return ThroughputPoint(
            level=7.0,
            packets_sent=100,
            undamaged=undamaged,
            body_damaged=8,
            truncated=1,
            lost=1,
            fec_recovered=recovered,
        )

    def test_raw_goodput(self):
        point = self._point()
        assert point.raw_goodput_bps == pytest.approx(OFFERED_RATE_BPS * 0.9)

    def test_fec_goodput_includes_overhead(self):
        point = self._point()
        fec = point.fec_goodput_bps(0.25)
        assert fec == pytest.approx(OFFERED_RATE_BPS * 0.95 / 1.25)

    def test_crossover_level(self):
        result = ThroughputResult(fec_overhead=0.25)
        # Strong link: raw wins; weak link: fec wins.
        result.points.append(
            ThroughputPoint(29.5, 100, 100, 0, 0, 0, 0)
        )
        result.points.append(
            ThroughputPoint(5.0, 100, 40, 30, 10, 20, 28)
        )
        assert result.crossover_level() == 5.0


class TestDiversityHelpers:
    def test_improvement_ratio(self):
        result = DiversityResult()
        result.points.append(DiversityPoint(7.0, 1, 100, 10, 10))
        result.points.append(DiversityPoint(7.0, 2, 100, 5, 5))
        assert result.improvement(7.0) == pytest.approx(2.0)

    def test_improvement_handles_zero(self):
        result = DiversityResult()
        result.points.append(DiversityPoint(7.0, 1, 100, 2, 0))
        result.points.append(DiversityPoint(7.0, 2, 100, 0, 0))
        assert result.improvement(7.0) == float("inf")


class TestTransferOutcome:
    def test_mbps(self):
        outcome = TransferOutcome(
            scenario="s", variant="plain", finished=True,
            throughput_bps=1_500_000.0, segments_delivered=100,
            tcp_retransmissions=0, tcp_timeouts=0, link_retransmissions=0,
        )
        assert outcome.throughput_mbps == pytest.approx(1.5)
