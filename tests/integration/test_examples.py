"""The example scripts must run end to end (examples rot otherwise).

The quick ones run in-process on every test run; the heavyweight ones
are marked slow.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def _run_example(name: str, capsys) -> str:
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


class TestFastExamples:
    def test_quickstart(self, capsys):
        out = _run_example("quickstart", capsys)
        assert "Table-1-style metrics" in out
        assert "quickstart-office" in out
        assert "human body" in out

    def test_tcp_over_wireless(self, capsys):
        out = _run_example("tcp_over_wireless", capsys)
        assert "desk next to the base station" in out
        assert "the stairwell" in out
        # The clean stops finish in about a second.
        assert " 0.9 s" in out or " 1.0 s" in out

    def test_scenario_sweep(self, capsys):
        out = _run_example("scenario_sweep", capsys)
        assert "Sweeping 20 generated scenarios" in out
        assert "Goodput%" in out
        assert "Weakest clean link" in out
        assert "interference, not distance or walls" in out


@pytest.mark.slow
class TestSlowExamples:
    def test_offline_analysis(self, capsys):
        out = _run_example("offline_analysis", capsys)
        assert "cheapest rate surviving this link" in out or "no rate" in out

    def test_interference_survey(self, capsys):
        out = _run_example("interference_survey", capsys)
        assert "quiet baseline" in out
        assert "competing WaveLAN, masked" in out
