"""The unified experiment engine: registry, seed streams, golden pins.

Three pillars:

* **Registry coverage** — every experiment module registers exactly one
  spec, the CLI surfaces (``list``, per-name subcommands, ``report``)
  are generated from the registry, and aliases resolve without
  shadowing canonical names.
* **Seed streams** — every trial's RNG stream is a pure function of
  ``(root seed, experiment name, trial label)``; no two trials anywhere
  in a full ``report`` run collide, which is what makes sharing one
  root seed across all experiments sound.
* **Golden equivalence** — the engine's plumbing (plan -> task -> seed
  injection -> aggregation) is behaviour-neutral: running through
  ``ExperimentEngine`` equals a hand-rolled loop over the module's
  worker function with the same derived seeds.
"""

import pkgutil

import pytest

import repro.experiments as experiments_pkg
from repro.experiments import baseline, engine, phones_spread, walls
from repro.experiments.engine import (
    ENGINE,
    ExperimentSpec,
    PlanContext,
    TrialPlan,
    experiment,
)
from repro.experiments.report import report_specs
from repro.simkit.rng import spawn_seed

# Package modules that are infrastructure, not experiments.
NON_EXPERIMENT_MODULES = {"engine", "report", "scenarios", "tracedir"}


class TestRegistry:
    def test_every_experiment_module_registers_exactly_one_spec(self):
        """New module => new spec; the CLI and report pick it up free."""
        modules = {
            info.name
            for info in pkgutil.iter_modules(experiments_pkg.__path__)
            if info.name not in NON_EXPERIMENT_MODULES
        }
        by_module: dict[str, list[str]] = {}
        for spec in engine.specs():
            short = spec.module.rsplit(".", 1)[-1]
            by_module.setdefault(short, []).append(spec.name)
        assert set(by_module) == modules
        for short, names in by_module.items():
            assert len(names) == 1, f"{short} registered {names}"

    def test_cli_parser_accepts_every_registered_name(self):
        """Subcommands are generated from the registry, aliases too."""
        from repro.__main__ import _build_parser

        parser = _build_parser()
        for name in engine.known_names():
            args = parser.parse_args([name])
            assert args.experiment == engine.canonical_name(name)

    def test_cli_list_covers_registry(self, capsys):
        from repro.__main__ import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for spec in engine.specs():
            assert spec.name in out
            for alias in spec.aliases:
                assert alias in out

    def test_report_covers_every_spec_with_report_lines(self):
        with_lines = [
            spec.name for spec in engine.specs()
            if spec.report_lines is not None
        ]
        assert [spec.name for spec in report_specs()] == with_lines
        assert len(with_lines) >= 13  # every paper table/figure headline

    def test_duplicate_registration_rejected(self):
        decorate = experiment(
            name="table2",  # already taken by baseline
            artifact="dup",
            description="dup",
            aggregate=lambda ctx, values: values,
        )
        with pytest.raises(ValueError, match="registered twice"):
            decorate(lambda ctx: [])

    def test_alias_collision_rejected(self):
        decorate = experiment(
            name="definitely-new",
            artifact="dup",
            description="dup",
            aggregate=lambda ctx, values: values,
            aliases=("table6",),  # already an alias of table5
        )
        with pytest.raises(ValueError, match="already taken"):
            decorate(lambda ctx: [])
        assert "definitely-new" not in {s.name for s in engine.specs()}

    def test_parallel_flag_matches_plan_count(self):
        """``parallel_names()`` (the --jobs help text) is honest: every
        listed experiment really fans into more than one plan."""
        for spec in engine.specs():
            ctx = PlanContext(
                scale=spec.default_scale,
                seed=spec.default_seed,
                extras=dict(spec.report_extras),
            )
            plans = spec.build_plans(ctx)
            assert (len(plans) > 1) == spec.parallel, spec.name

    def test_traceable_specs_have_traceable_plans(self):
        for spec in engine.specs():
            ctx = PlanContext(scale=spec.default_scale, seed=spec.default_seed)
            plans = spec.build_plans(ctx)
            assert any(p.traceable for p in plans) == spec.traceable, spec.name


class TestSeedStreams:
    def test_spawn_seed_is_pure_and_label_sensitive(self):
        assert spawn_seed(1996, "table2", "office1") == spawn_seed(
            1996, "table2", "office1"
        )
        assert spawn_seed(1996, "table2", "office1") != spawn_seed(
            1996, "table2", "office2"
        )
        assert spawn_seed(1996, "table2", "office1") != spawn_seed(
            1996, "table4", "office1"
        )
        # Label order matters: (a, b) and (b, a) are different streams.
        assert spawn_seed(7, "a", "b") != spawn_seed(7, "b", "a")

    def test_no_two_trials_in_a_full_report_share_a_stream(self):
        """The report hands ONE root seed to every experiment; the
        engine's ``(root, experiment, label)`` derivation must keep all
        trial streams distinct — the collision the old ``seed + index``
        scheme could not rule out."""
        root = 1996
        seeds: dict[int, tuple[str, str]] = {}
        total_plans = 0
        for spec in report_specs():
            scale = (
                spec.report_scale(0.25)
                if spec.report_scale is not None
                else 0.25
            )
            ctx = PlanContext(
                scale=scale, seed=root, extras=dict(spec.report_extras)
            )
            for plan in spec.build_plans(ctx):
                total_plans += 1
                if plan.seed_arg is None:
                    continue
                label = plan.seed_label or plan.name
                derived = engine.trial_seed(root, spec.name, label)
                owner = (spec.name, label)
                assert seeds.get(derived, owner) == owner, (
                    f"stream collision: {owner} vs {seeds[derived]}"
                )
                seeds[derived] = owner
        assert len(seeds) == total_plans  # every plan has its own stream
        assert total_plans > 40

    def test_derived_seed_ignores_job_count_and_plan_order(self):
        """A trial's seed depends only on (root, experiment, label) —
        the engine derives it in the parent before any fan-out."""
        ctx1 = PlanContext(scale=0.1, seed=11, jobs=1)
        ctx8 = PlanContext(scale=0.1, seed=11, jobs=8)
        spec = engine.get("table4")
        for plan1, plan8 in zip(spec.build_plans(ctx1), spec.build_plans(ctx8)):
            assert plan1.name == plan8.name
            assert engine.trial_seed(
                ctx1.seed, spec.name, plan1.name
            ) == engine.trial_seed(ctx8.seed, spec.name, plan8.name)


class TestGoldenEquivalence:
    """Engine runs equal hand-rolled loops over the worker functions."""

    def test_baseline_rows_match_hand_rolled_loop(self):
        scale, seed = 0.01, 1996
        result = baseline.run(scale=scale, seed=seed)
        expected = [
            baseline._run_trial(
                name,
                max(1000, int(paper_count * scale)),
                engine.trial_seed(seed, "table2", name),
            )
            for name, paper_count in baseline.PAPER_TRIALS
        ]
        assert result.rows == expected

    def test_walls_rows_match_hand_rolled_loop(self):
        from repro.experiments.scenarios import single_wall_scenarios

        scale, seed = 0.05, 64
        result = walls.run(scale=scale, seed=seed)
        packets = max(500, int(walls.PAPER_PACKETS * scale))
        expected = [
            walls._run_wall(
                setup.name, packets, engine.trial_seed(seed, "table4", setup.name)
            )
            for setup in single_wall_scenarios()
        ]
        assert result.metrics_rows == [m for m, _ in expected]
        assert result.signal_rows == [s for _, s in expected]

    def test_phones_spread_match_hand_rolled_loop(self):
        scale, seed = 0.1, 73
        result = ENGINE.run(
            "table11", scale=scale, seed=seed,
            extras={"keep_classified": False},
        )
        packets = max(400, int(phones_spread.PAPER_PACKETS * scale))
        expected = [
            phones_spread._run_trial(
                trial,
                packets,
                engine.trial_seed(seed, "table11", trial),
                keep_classified=False,
            )
            for trial in phones_spread.TRIALS
        ]
        assert result.summaries == [b.summary for b in expected]
        assert result.metrics_rows == [b.metrics for b in expected]
        assert result.signal_rows == [b.signal_row for b in expected]
        assert result.classified == {}  # keep_classified=False dropped them


def _single_plan_fn(seed: int) -> int:
    """Module-level so the engine can build a Task around it."""
    return seed


_SOLO_SPEC = ExperimentSpec(
    name="solo-test",
    artifact="test",
    description="single-plan spec for warning tests",
    build_plans=lambda ctx: [TrialPlan("only", _single_plan_fn, {})],
    aggregate=lambda ctx, values: values[0],
)


class TestLoudWarnings:
    """Flags that cannot apply warn on stderr instead of no-opping."""

    def test_save_traces_on_non_traceable_experiment_warns(
        self, tmp_path, capsys
    ):
        trace_dir = tmp_path / "traces"
        ENGINE.run("burst", scale=0.001, seed=3, trace_dir=str(trace_dir))
        err = capsys.readouterr().err
        assert "warning:" in err
        assert "does not capture packet traces" in err
        assert not trace_dir.exists()  # flag really was dropped

    def test_jobs_on_single_plan_experiment_warns(self, capsys):
        value = ENGINE.run(_SOLO_SPEC, jobs=4)
        err = capsys.readouterr().err
        assert "warning:" in err
        assert "single trial plan" in err
        # ... but the run still completes, serially, with a derived seed.
        assert value == engine.trial_seed(0, "solo-test", "only")

    def test_no_warning_on_clean_run(self, capsys):
        ENGINE.run(_SOLO_SPEC)
        assert "warning:" not in capsys.readouterr().err
