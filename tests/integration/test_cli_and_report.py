"""The CLI surface and the reproduction-report builder."""

import pytest

from repro.experiments.report import ReportLine, ReproductionReport


class TestReportContainer:
    def test_counts(self):
        report = ReproductionReport()
        report.add("T1", "q1", "p", "m", True)
        report.add("T1", "q2", "p", "m", False)
        assert report.total == 2
        assert report.in_band_count == 1

    def test_markdown_shape(self):
        report = ReproductionReport()
        report.add("T2 baseline", "loss", "<= .07%", "0.03%", True)
        text = report.markdown()
        assert "1/1 headline quantities in band" in text
        assert "| T2 baseline | loss |" in text

    def test_out_of_band_flagged(self):
        line = ReportLine("T", "q", "p", "m", False)
        assert "**NO**" in line.markdown()


class TestCliExperiments:
    def test_alias_resolution(self):
        """table6/7/9/12/13 and figure2 resolve to their carrier spec."""
        from repro.experiments import engine

        for alias in ("figure2", "table6", "table7", "table9", "table12",
                      "table13"):
            spec = engine.get(alias)
            assert spec.name != alias
            assert engine.canonical_name(alias) == spec.name

    def test_aliases_never_shadow_canonical_names(self):
        """'all' covers each spec exactly once: no alias is also a
        canonical name, so iterating the registry never duplicates."""
        from repro.experiments import engine

        canonical = {spec.name for spec in engine.specs()}
        aliases = set(engine.alias_map())
        assert not canonical & aliases
        assert set(engine.alias_map().values()) <= canonical

    def test_every_experiment_module_has_run_and_main(self):
        import importlib

        from repro.experiments import engine

        for spec in engine.specs():
            module = importlib.import_module(spec.module)
            assert callable(getattr(module, "run"))
            assert callable(getattr(module, "main"))


@pytest.mark.slow
class TestReportEndToEnd:
    def test_small_scale_report_mostly_in_band(self, tmp_path):
        """A tiny-scale report still lands most quantities in band
        (the bands are shape claims, not decimals)."""
        from repro.experiments.report import build_report

        report = build_report(scale=0.1, seed=1996)
        assert report.total >= 20
        assert report.in_band_count >= report.total - 3
