"""End-to-end pipeline: simulate → trace → analyze, checked against the
simulator's ground truth (a luxury the paper's authors did not have)."""

import pytest

from repro.analysis.classify import PacketClass, classify_trace
from repro.analysis.metrics import metrics_from_classified
from repro.trace.outsiders import OutsiderTraffic
from repro.trace.trial import TrialConfig, run_fast_trial


class TestAnalysisAgainstGroundTruth:
    def test_loss_accounting_matches(self):
        """Analysis-derived loss equals ground-truth non-delivery, up to
        the unmatchable-packet ambiguity the paper acknowledges."""
        output = run_fast_trial(
            TrialConfig(name="t", packets=4_000, mean_level=8.0, seed=21)
        )
        metrics = metrics_from_classified(classify_trace(output.trace))
        truth_lost = output.trace.packets_sent - output.dispositions.delivered
        # A delivered packet can be corrupted beyond recognition, in
        # which case the analysis counts it lost and logs an "outsider"
        # — exactly the ambiguity the paper acknowledges.  The accounting
        # must balance: apparent losses = true losses + unrecognizable
        # deliveries (no outsider traffic is configured in this trial).
        assert metrics.packets_lost == truth_lost + metrics.outsiders_received

    def test_no_false_losses_on_clean_channel(self):
        output = run_fast_trial(
            TrialConfig(name="t", packets=5_000, mean_level=29.5, seed=22)
        )
        metrics = metrics_from_classified(classify_trace(output.trace))
        assert metrics.packets_received == output.dispositions.delivered
        assert metrics.body_bits_damaged == 0
        assert metrics.packets_truncated == 0

    def test_damage_classes_sum_to_received(self):
        output = run_fast_trial(
            TrialConfig(name="t", packets=3_000, mean_level=6.5, seed=23)
        )
        classified = classify_trace(output.trace)
        counted = sum(
            len(classified.by_class(cls))
            for cls in (
                PacketClass.UNDAMAGED,
                PacketClass.TRUNCATED,
                PacketClass.WRAPPER_DAMAGED,
                PacketClass.BODY_DAMAGED,
            )
        )
        assert counted == len(classified.test_packets)
        assert counted + len(classified.outsiders) == len(classified.packets)

    def test_sequences_unique_and_plausible(self):
        output = run_fast_trial(
            TrialConfig(name="t", packets=2_000, mean_level=12.0, seed=24)
        )
        classified = classify_trace(output.trace)
        sequences = [p.sequence for p in classified.test_packets]
        assert len(set(sequences)) == len(sequences)
        assert all(0 <= s < 2_000 for s in sequences)

    def test_outsiders_do_not_contaminate_test_metrics(self):
        output = run_fast_trial(
            TrialConfig(
                name="t",
                packets=2_000,
                mean_level=29.5,
                seed=25,
                outsiders=OutsiderTraffic(rate_per_test_packet=0.2, mean_level=8.0),
            )
        )
        classified = classify_trace(output.trace)
        metrics = metrics_from_classified(classified)
        assert metrics.packets_received <= 2_000
        assert metrics.outsiders_received == len(classified.outsiders)
        assert metrics.outsiders_received > 100

    def test_signal_metrics_reflect_channel(self):
        from repro.analysis.signalstats import stats_for_packets

        output = run_fast_trial(
            TrialConfig(name="t", packets=2_000, mean_level=13.8, seed=26)
        )
        classified = classify_trace(output.trace)
        stats = stats_for_packets("all", classified.test_packets)
        assert stats.level.mean == pytest.approx(13.8, abs=0.5)
        assert stats.quality.mean > 14.5
        assert stats.silence.mean == pytest.approx(2.8, abs=0.6)


class TestFecOnRealSyndromes:
    def test_attenuation_syndromes_recoverable_at_half_rate(self):
        """The Section-8 claim on the Tx5-style channel: observed bursts
        are 'trivial to correct using error coding'."""
        import numpy as np

        from repro.fec.interleave import BlockInterleaver
        from repro.fec.rcpc import RcpcCodec

        output = run_fast_trial(
            TrialConfig(name="t", packets=4_000, mean_level=9.0, seed=27)
        )
        classified = classify_trace(output.trace)
        syndromes = [
            p.syndrome
            for p in classified.by_class(PacketClass.BODY_DAMAGED)
            if p.syndrome is not None
        ][:25]
        assert syndromes, "expected body damage at level 9"

        codec = RcpcCodec("1/2")
        interleaver = BlockInterleaver(32, 64)
        rng = np.random.default_rng(1)
        info = rng.integers(0, 2, 1024).astype(np.uint8)
        transmitted = codec.encode(info)
        recovered = 0
        for syndrome in syndromes:
            scale = len(transmitted) / 8192
            positions = np.unique(
                (syndrome.body_bit_positions * scale).astype(np.int64)
            )
            stream = interleaver.scramble(transmitted).copy()
            positions = positions[positions < len(transmitted)]
            stream[positions] ^= 1
            damaged = interleaver.unscramble(stream)
            if np.array_equal(codec.decode(damaged), info):
                recovered += 1
        assert recovered == len(syndromes)
