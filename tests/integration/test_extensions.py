"""The extension experiments (X1, X4, X5) at reduced scale."""

import pytest

from repro.experiments import burst_ablation, cdma_extension, fec_eval, mac_ablation


class TestFecEval:
    @pytest.fixture(scope="class")
    def result(self):
        return fec_eval.run(scale=0.5, seed=81, syndrome_limit=15)

    def test_tx5_trivially_correctable_with_interleaving(self, result):
        """The Section-6.2 claim, closed: 'trivial to correct using
        error coding'."""
        outcome = result.outcome("Tx5 attenuation", "4/5", interleaved=True)
        assert outcome.recovery_fraction == 1.0

    def test_redundancy_monotone_on_tx5(self, result):
        raw = [
            result.outcome("Tx5 attenuation", rate, interleaved=False)
            for rate in ("8/9", "1/2")
        ]
        assert raw[1].recovery_fraction >= raw[0].recovery_fraction

    def test_ss_phone_partially_recoverable(self, result):
        weak = result.outcome("SS-phone handset", "8/9", interleaved=False)
        strong = result.outcome("SS-phone handset", "1/2", interleaved=True)
        assert strong.residual_bit_errors < weak.residual_bit_errors

    def test_adaptive_escalates_under_interference(self, result):
        tx5, ss = result.adaptive
        assert ss.mean_overhead > tx5.mean_overhead
        assert ss.rate_counts["1/2"] > ss.rate_counts["8/9"]


class TestBurstAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return burst_ablation.run(scale=0.5, seed=91)

    def test_bursts_defeat_raw_codes(self, result):
        iid = result.outcome(1e-2, "1/2", "iid", False)
        burst = result.outcome(1e-2, "1/2", "burst", False)
        assert iid.recovery_fraction > burst.recovery_fraction + 0.3

    def test_interleaving_restores_burst_channel(self, result):
        raw = result.outcome(1e-2, "1/2", "burst", False)
        ilv = result.outcome(1e-2, "1/2", "burst", True)
        assert ilv.recovery_fraction > raw.recovery_fraction + 0.3

    def test_interleaving_noop_on_iid(self, result):
        raw = result.outcome(1e-2, "1/2", "iid", False)
        ilv = result.outcome(1e-2, "1/2", "iid", True)
        assert abs(raw.recovery_fraction - ilv.recovery_fraction) < 0.25


class TestCdmaExtension:
    @pytest.fixture(scope="class")
    def result(self):
        return cdma_extension.run(scale=0.4, seed=95)

    def test_family_tradeoff_shape(self, result):
        assert result.tradeoff[(1, 9)] <= 2
        assert result.tradeoff[(2, 7)] >= 10

    def test_power_control_is_decisive(self, result):
        same = result.outcome("same code")
        pc = result.outcome("power control only")
        assert same.metrics.packet_loss_percent > 40.0
        assert pc.metrics.packet_loss_percent < 3.0

    def test_code_diversity_alone_insufficient_at_11_chips(self, result):
        cdma = result.outcome("cdma (11 chips)")
        assert cdma.metrics.packet_loss_percent > 30.0


class TestMacAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return mac_ablation.run(scale=0.4, seed=83)

    def test_blind_cd_catastrophic(self, result):
        assert result.outcome("csma_cd_blind").delivery_fraction < 0.3

    def test_csma_ca_recovers(self, result):
        ca = result.outcome("csma_ca")
        blind = result.outcome("csma_cd_blind")
        assert ca.delivery_fraction > blind.delivery_fraction + 0.5

    def test_wired_cd_is_the_ceiling(self, result):
        wired = result.outcome("csma_cd_wired")
        assert wired.delivery_fraction > 0.9
