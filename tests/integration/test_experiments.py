"""The experiment modules reproduce the paper's qualitative findings.

These run at reduced scale for speed; the benchmarks run them at (or
near) the paper's trial lengths.  Each assertion encodes a *shape*
claim from the paper — orderings, rough factors, crossovers.
"""

import pytest

from repro.experiments import (
    baseline,
    body,
    competing,
    error_vs_level,
    multiroom,
    phones_narrowband,
    phones_spread,
    signal_vs_distance,
)


class TestBaseline:
    """Table 2: near-perfect link in the office."""

    @pytest.fixture(scope="class")
    def result(self):
        return baseline.run(scale=0.02, seed=1996)

    def test_loss_well_under_one_per_thousand(self, result):
        # Paper: .01-.07%; at this reduced scale each trial is only
        # ~1-2k packets, so allow small-sample noise on the estimate.
        assert result.worst_loss_percent < 0.3

    def test_essentially_no_bit_errors(self, result):
        assert result.aggregate_ber < 1e-7

    def test_all_nine_trials_present(self, result):
        assert len(result.rows) == 9


class TestSignalVsDistance:
    """Figure 1: smooth dropoff with room-specific dips."""

    @pytest.fixture(scope="class")
    def result(self):
        return signal_vs_distance.run(scale=0.4, seed=51)

    def test_overall_decay(self, result):
        points = {p.distance_ft: p.level_mean for p in result.points}
        assert points[0] > points[20] > points[50] > points[80]

    def test_multipath_dips_present(self, result):
        assert result.dip_depth(6.0) > 2.0
        assert result.dip_depth(30.0) > 2.0

    def test_far_side_reaches_error_region(self, result):
        points = {p.distance_ft: p.level_mean for p in result.points}
        assert points[80] < 10.0


class TestErrorVsLevel:
    """Table 3 / Figure 2: the error region below level 8."""

    @pytest.fixture(scope="class")
    def result(self):
        return error_vs_level.run(scale=0.4, seed=53)

    def test_damaged_packets_live_below_8(self, result):
        damaged = result.group("Body damaged")
        undamaged = result.group("Undamaged")
        assert damaged.level.mean < 8.5
        assert undamaged.level.mean > damaged.level.mean + 2.0

    def test_truncated_quality_depressed(self, result):
        truncated = result.group("Truncated")
        assert truncated.quality.mean < 12.5

    def test_error_region_boundary(self, result):
        for b in result.level_bins:
            if b.level >= 10:
                assert b.loss_fraction < 0.01
                assert b.damage_fraction < 0.03
            if b.level <= 5:
                assert b.loss_fraction + b.damage_fraction > 0.2

    def test_outsiders_distinguished_by_quality(self, result):
        outsiders = result.group("Damaged outsiders")
        undamaged = result.group("Undamaged")
        assert outsiders.quality.mean < undamaged.quality.mean - 1.0


class TestMultiroom:
    """Tables 5-7: obstacles cost levels; errors appear at Tx5."""

    @pytest.fixture(scope="class")
    def result(self):
        return multiroom.run(scale=0.5, seed=65)

    def test_level_ordering_matches_paper(self, result):
        levels = {name: result.level_mean(name) for name in ("Tx1", "Tx2", "Tx4", "Tx5")}
        assert levels["Tx1"] > levels["Tx2"] > levels["Tx4"] > levels["Tx5"]

    def test_level_magnitudes(self, result):
        for name, paper in multiroom.PAPER_LEVEL_MEANS.items():
            assert result.level_mean(name) == pytest.approx(paper, abs=1.5)

    def test_tx1_tx2_clean(self, result):
        for name in ("Tx1", "Tx2"):
            metrics = result.metrics(name)
            assert metrics.body_bits_damaged == 0
            assert metrics.packet_loss_percent < 0.2

    def test_tx5_first_corrupted_bodies(self, result):
        metrics = result.metrics("Tx5")
        assert metrics.body_damaged_packets > 0
        assert metrics.body_bits_damaged > 0
        # Trivially correctable: a handful of bits per packet.
        assert metrics.worst_body_bits < 100


class TestBody:
    """Tables 8-9: a person costs ~6 levels and induces damage."""

    @pytest.fixture(scope="class")
    def result(self):
        return body.run(scale=1.0, seed=65)

    def test_body_cost(self, result):
        assert result.body_cost_levels == pytest.approx(5.8, abs=1.2)

    def test_no_body_control_clean(self, result):
        metrics = result.metrics("No body")
        assert metrics.body_bits_damaged == 0
        assert metrics.packets_truncated == 0

    def test_body_induces_all_three_damage_kinds(self, result):
        metrics = result.metrics("Body")
        assert metrics.packets_lost > 0
        assert metrics.packets_truncated > 0
        assert metrics.body_damaged_packets > 50


class TestNarrowbandPhones:
    """Table 10: silence rises, nothing breaks."""

    @pytest.fixture(scope="class")
    def result(self):
        return phones_narrowband.run(scale=0.4, seed=710)

    def test_zero_damage_in_every_configuration(self, result):
        assert result.total_damaged_test_packets == 0

    def test_silence_ordering_fingerprint(self, result):
        s = {t: result.silence_mean(t) for t in phones_narrowband.TRIALS}
        assert (
            s["Bases nearby"]
            > s["Cluster"]
            > s["Handsets nearby"]
            > s["Handsets nearby talking"]
            > s["Phones off"]
        )

    def test_loss_stays_at_background(self, result):
        for metrics in result.metrics_rows:
            assert metrics.packet_loss_percent < 0.5


class TestSpreadSpectrumPhones:
    """Tables 11-13: the knife edge."""

    @pytest.fixture(scope="class")
    def result(self):
        return phones_spread.run(scale=0.5, seed=73)

    def test_base_near_half_loss_full_truncation(self, result):
        for trial in ("RS base", "RS cluster", "AT&T cluster"):
            summary = result.summary(trial)
            assert 35.0 < summary.loss_percent < 70.0
            assert summary.truncated_percent > 80.0

    def test_remote_cluster_harmless_but_noisy(self, result):
        summary = result.summary("RS remote cluster")
        assert summary.loss_percent < 1.0
        assert summary.truncated_percent == 0.0
        assert summary.body_percent == 0.0
        assert result.silence_mean("RS remote cluster") > 10.0

    def test_handset_intermediate_regime(self, result):
        summary = result.summary("AT&T handset")
        assert summary.loss_percent < 5.0
        assert summary.truncated_percent < 10.0
        assert 40.0 < summary.body_percent < 75.0
        assert 0.02 < summary.worst_body_fraction < 0.08

    def test_phones_off_control_clean(self, result):
        summary = result.summary("Phones off")
        assert summary.body_percent == 0.0


class TestCompetingWaveLan:
    """Table 14: the receive threshold masks the competition."""

    @pytest.fixture(scope="class")
    def result(self):
        return competing.run(scale=0.1, seed=74)

    def test_masked_competition_no_errors(self, result):
        masked = result.metrics("With interference")
        assert masked.body_bits_damaged == 0
        assert masked.packet_loss_percent < 0.2

    def test_silence_rises_level_unchanged(self, result):
        silence_delta = result.silence_mean("With interference") - result.silence_mean(
            "Without interference"
        )
        level_delta = abs(
            result.level_mean("With interference")
            - result.level_mean("Without interference")
        )
        assert silence_delta > 8.0  # paper: 3.35 -> 13.62
        assert level_delta < 1.0

    def test_unmasked_link_unusable(self, result):
        unusable = result.unusable_metrics
        assert unusable.packet_loss_percent > 50.0


class TestJobsInvariance:
    """``jobs=N`` must be a pure wall-clock knob: fanning the
    interference experiments over a process pool returns results
    byte-identical to the serial run (every random stream derives from
    per-trial seeds fixed in the parent)."""

    def test_phones_spread(self):
        serial = phones_spread.run(scale=0.3, seed=73, jobs=1)
        pooled = phones_spread.run(scale=0.3, seed=73, jobs=2)
        assert repr(serial.summaries) == repr(pooled.summaries)
        assert repr(serial.metrics_rows) == repr(pooled.metrics_rows)
        assert repr(serial.signal_rows) == repr(pooled.signal_rows)

    def test_phones_narrowband(self):
        serial = phones_narrowband.run(scale=0.3, seed=710, jobs=1)
        pooled = phones_narrowband.run(scale=0.3, seed=710, jobs=2)
        assert repr(serial.metrics_rows) == repr(pooled.metrics_rows)
        assert repr(serial.signal_rows) == repr(pooled.signal_rows)
        assert repr(serial.outsider_rows) == repr(pooled.outsider_rows)

    def test_competing(self):
        serial = competing.run(scale=0.05, seed=74, jobs=1)
        pooled = competing.run(scale=0.05, seed=74, jobs=3)
        assert repr(serial.metrics_rows) == repr(pooled.metrics_rows)
        assert repr(serial.signal_rows) == repr(pooled.signal_rows)
        assert repr(serial.unusable_metrics) == repr(pooled.unusable_metrics)
