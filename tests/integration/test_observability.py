"""End-to-end observability: CLI telemetry, manifests, and stats.

The acceptance path of the instrumentation bus: run a real experiment
through ``python -m repro`` with telemetry and metrics on, then check
the per-layer accounting and the ``stats`` subcommand against the
emitted file.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.__main__ import main
from repro.obs import runtime


@pytest.fixture(autouse=True)
def _reset_obs_state():
    obs.reset()
    yield
    obs.reset()


@pytest.fixture(scope="module")
def telemetry_run(tmp_path_factory):
    """One table2 run with telemetry + metrics, shared by the module."""
    path = tmp_path_factory.mktemp("obs") / "table2.jsonl"
    exit_code = main(
        ["table2", "--scale", "0.01", "--telemetry", str(path), "--metrics"]
    )
    return exit_code, path


class TestTelemetryCli:
    def test_exits_cleanly_and_resets_state(self, telemetry_run):
        exit_code, _ = telemetry_run
        assert exit_code == 0
        assert runtime.STATE.enabled is False  # CLI tore the session down

    def test_file_is_valid_jsonl(self, telemetry_run):
        _, path = telemetry_run
        with open(path, encoding="utf-8") as stream:
            lines = [json.loads(line) for line in stream]
        assert lines[0]["kind"] == "repro-telemetry"
        header, records = obs.read_telemetry(path)
        assert len(records) == len(lines) - 1

    def test_manifest_has_nonzero_layer_counters(self, telemetry_run):
        _, path = telemetry_run
        _, records = obs.read_telemetry(path)
        manifests = [r for r in records if r["type"] == "manifest"]
        (manifest,) = manifests
        assert manifest["experiment"] == "table2"
        assert manifest["scale"] == 0.01
        assert manifest["wall_clock_s"] > 0
        assert manifest["packets_offered"] > 0
        counters = manifest["layer_counters"]
        for layer in ("phy.", "mac.", "link."):
            layer_total = sum(
                v for k, v in counters.items() if k.startswith(layer)
            )
            assert layer_total > 0, f"no nonzero {layer}* counters"

    def test_rng_streams_accounted(self, telemetry_run):
        _, path = telemetry_run
        _, records = obs.read_telemetry(path)
        (manifest,) = [r for r in records if r["type"] == "manifest"]
        assert manifest["rng_streams"], "expected at least one rng stream"
        assert all(v > 0 for v in manifest["rng_streams"].values())

    def test_final_metrics_record_present(self, telemetry_run):
        _, path = telemetry_run
        _, records = obs.read_telemetry(path)
        (metrics_record,) = [r for r in records if r["type"] == "metrics"]
        counters = metrics_record["metrics"]["counters"]
        assert counters["trace.packets_offered"] > 0
        timers = metrics_record["metrics"]["timers"]
        assert timers["profile.trial_fast"]["count"] > 0

    def test_metrics_flag_prints_summary(self, telemetry_run, capsys):
        # Re-run with --metrics only (no telemetry) and capture stdout.
        exit_code = main(["table2", "--scale", "0.01", "--metrics"])
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "counters:" in captured.out
        assert "phy.packets_sampled" in captured.out


class TestStatsCli:
    def test_stats_summarizes_telemetry(self, telemetry_run, capsys):
        _, path = telemetry_run
        assert main(["stats", str(path)]) == 0
        captured = capsys.readouterr()
        assert "table2" in captured.out
        assert "packets offered" in captured.out

    def test_stats_without_target_errors(self, capsys):
        assert main(["stats"]) == 2
        captured = capsys.readouterr()
        assert "usage" in captured.err


class TestSeedStabilityUnderObservation:
    def test_observation_does_not_change_results(self):
        """Instrumentation must be purely observational: the same seed
        gives bit-identical results with and without a session."""
        from repro.experiments import baseline

        bare = baseline.run(scale=0.01, seed=7)
        with obs.session():
            observed = baseline.run(scale=0.01, seed=7)
        assert observed.aggregate_ber == bare.aggregate_ber
        assert observed.worst_loss_percent == bare.worst_loss_percent
        assert [r.body_bits_received for r in observed.rows] == [
            r.body_bits_received for r in bare.rows
        ]
