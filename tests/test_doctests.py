"""Run the doctests embedded in the library's docstrings."""

import doctest

import pytest

import repro.framing.checksum
import repro.framing.crc
import repro.phy.dqpsk
import repro.phy.dsss
import repro.simkit.rng
import repro.units

DOCTEST_MODULES = [
    repro.units,
    repro.framing.crc,
    repro.framing.checksum,
    repro.phy.dsss,
    repro.phy.dqpsk,
    repro.simkit.rng,
]


@pytest.mark.parametrize(
    "module", DOCTEST_MODULES, ids=lambda m: m.__name__
)
def test_doctests(module):
    result = doctest.testmod(module)
    assert result.attempted > 0, f"{module.__name__} has no doctests to run"
    assert result.failed == 0
