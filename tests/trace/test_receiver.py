"""The promiscuous trace recorder."""

from repro.analysis import analyze_trial
from repro.environment.geometry import Point
from repro.environment.propagation import PropagationModel
from repro.framing.testpacket import TestPacketFactory
from repro.link.network import WaveLanNetwork
from repro.trace.receiver import TraceRecorder


class TestTraceRecorder:
    def _setup(self, spec):
        network = WaveLanNetwork.create(PropagationModel.office(), seed=3)
        network.add_station(1, Point(0, 0))
        receiver = network.add_station(2, Point(8, 0), with_mac=False)
        recorder = TraceRecorder(receiver, spec=spec, trial_name="rec")
        return network, recorder

    def test_records_receptions(self, spec):
        network, recorder = self._setup(spec)
        factory = TestPacketFactory(spec)
        for sequence in range(5):
            network.send(1, factory.build(sequence))
        network.run_for(0.1)
        assert recorder.packets_recorded == 5

    def test_trace_is_analyzable(self, spec):
        network, recorder = self._setup(spec)
        factory = TestPacketFactory(spec)
        for sequence in range(10):
            network.send(1, factory.build(sequence))
        network.run_for(0.2)
        metrics = analyze_trial(recorder.to_trace(packets_sent=10))
        assert metrics.packets_received == recorder.packets_recorded
        assert metrics.body_bits_damaged == 0

    def test_preserves_existing_hook(self, spec):
        network = WaveLanNetwork.create(PropagationModel.office(), seed=3)
        network.add_station(1, Point(0, 0))
        receiver = network.add_station(2, Point(8, 0), with_mac=False)
        seen = []
        receiver.on_receive = seen.append
        recorder = TraceRecorder(receiver, spec=spec)
        network.send(1, bytes(100))
        network.run_for(0.05)
        assert len(seen) == 1
        assert recorder.packets_recorded == 1

    def test_reset(self, spec):
        network, recorder = self._setup(spec)
        network.send(1, bytes(100))
        network.run_for(0.05)
        assert recorder.packets_recorded == 1
        recorder.reset()
        assert recorder.packets_recorded == 0


class TestCli:
    def test_list(self, capsys):
        from repro.__main__ import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table5" in out and "figure1" in out

    def test_unknown_experiment(self, capsys):
        from repro.__main__ import main

        assert main(["tableX"]) == 2

    def test_runs_one_experiment(self, capsys):
        from repro.__main__ import main

        assert main(["table4", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "Wall cost" in out
