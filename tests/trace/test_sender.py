"""The burst test-traffic sender."""

import pytest

from repro.framing.testpacket import FRAME_BYTES
from repro.trace.sender import HOST_LIMITED_RATE_BPS, BurstSender


class TestBurstSender:
    def test_sends_requested_count_in_sequence(self, sim, spec):
        sent = []
        sender = BurstSender.for_spec(sim, spec, sent.append, count=5)
        sender.start()
        sim.run()
        assert sender.sent == 5
        assert len(sent) == 5
        # Frames carry increasing sequence numbers (check body words).
        words = [frame[44:48] for frame in sent]
        assert words == [i.to_bytes(4, "big") for i in range(5)]

    def test_host_limited_pacing(self, sim, spec):
        times = []
        sender = BurstSender.for_spec(
            sim, spec, lambda f: times.append(sim.now), count=3
        )
        sender.start()
        sim.run()
        interval = FRAME_BYTES * 8.0 / HOST_LIMITED_RATE_BPS
        assert times[1] - times[0] == pytest.approx(interval)
        assert times[2] - times[1] == pytest.approx(interval)

    def test_custom_rate(self, sim, spec):
        times = []
        sender = BurstSender.for_spec(
            sim, spec, lambda f: times.append(sim.now), count=2, rate_bps=2e6
        )
        sender.start()
        sim.run()
        assert times[1] - times[0] == pytest.approx(FRAME_BYTES * 8.0 / 2e6)

    def test_on_done_callback(self, sim, spec):
        done = []
        sender = BurstSender.for_spec(sim, spec, lambda f: None, count=2)
        sender.on_done = lambda: done.append(sim.now)
        sender.start()
        sim.run()
        assert len(done) == 1

    def test_zero_count(self, sim, spec):
        sent = []
        sender = BurstSender.for_spec(sim, spec, sent.append, count=0)
        sender.start()
        sim.run()
        assert sent == []
