"""Statistical equivalence of the two fast-trial execution paths.

``run_fast_trial`` runs the vectorized ``_run_bulk`` path unless
``force_per_packet`` pins the scalar ``_run_per_packet`` reference
loop.  Both must sample the same calibrated impairment model — a quiet
(no-op) interference source must not shift the error statistics beyond
sampling noise.  (Equivalence with *active* interference sources is
covered by ``tests/trace/test_bulk_interference.py``.)  The paths
consume their RNG streams differently, so the comparison is
distributional, not byte-wise: rates are checked within a few standard
errors deep in the paper's error region (level 6.5, where misses,
truncations, and body damage all occur at measurable rates).
"""

import math

from repro.analysis.classify import PacketClass, classify_trace
from repro.phy.errormodel import InterferenceSample
from repro.trace.trial import TrialConfig, run_fast_trial

PACKETS = 6_000
MEAN_LEVEL = 6.5


class _QuietSource:
    """An interference source that never interferes — forces the
    per-packet path without perturbing the physics."""

    name = "quiet"

    def sample_packet(self, rx_position, signal_level, rng):
        return InterferenceSample(source_name=self.name)


def _rates(seed: int, per_packet: bool) -> dict[str, float]:
    config = TrialConfig(
        name="equiv",
        packets=PACKETS,
        mean_level=MEAN_LEVEL,
        seed=seed,
        interference=[_QuietSource()] if per_packet else (),
        force_per_packet=per_packet,
    )
    output = run_fast_trial(config)
    classified = classify_trace(output.trace)
    by_class = {
        cls: len(classified.by_class(cls))
        for cls in (
            PacketClass.UNDAMAGED,
            PacketClass.TRUNCATED,
            PacketClass.BODY_DAMAGED,
        )
    }
    return {
        "delivered": output.dispositions.delivered / PACKETS,
        "missed": output.dispositions.missed / PACKETS,
        "truncated": by_class[PacketClass.TRUNCATED] / PACKETS,
        "body_damaged": by_class[PacketClass.BODY_DAMAGED] / PACKETS,
    }


def _sigma(p: float) -> float:
    """Standard error of a proportion estimated from PACKETS samples."""
    p = min(max(p, 1.0 / PACKETS), 1.0 - 1.0 / PACKETS)
    return math.sqrt(p * (1.0 - p) / PACKETS)


class TestPathEquivalence:
    def test_rates_agree_within_sampling_noise(self):
        vectorized = _rates(seed=1234, per_packet=False)
        per_packet = _rates(seed=1234, per_packet=True)
        for key in vectorized:
            # Two independent estimates of the same rate: the difference
            # is bounded by ~sqrt(2) * sigma; 4x leaves comfortable room
            # against flakiness while still catching a miscalibrated
            # path (systematic shifts are many sigma at n=6000).
            tolerance = 4.0 * math.sqrt(2.0) * _sigma(vectorized[key])
            assert abs(vectorized[key] - per_packet[key]) <= tolerance, (
                key,
                vectorized[key],
                per_packet[key],
                tolerance,
            )

    def test_error_region_is_exercised(self):
        """The comparison is only meaningful if the chosen level
        actually produces damage."""
        rates = _rates(seed=1234, per_packet=False)
        assert rates["missed"] > 0.0
        assert rates["truncated"] + rates["body_damaged"] > 0.0
