"""Foreign (outsider) traffic generation."""

import numpy as np
import pytest

from repro.framing.crc import check_fcs
from repro.framing.ethernet import EthernetFrame
from repro.framing.modem import NETWORK_ID_LEN
from repro.trace.outsiders import (
    OutsiderTraffic,
    build_arp_request,
    build_bridge_hello,
)


class TestFrameBuilders:
    def test_arp_request_layout(self):
        from repro.framing.ethernet import MacAddress

        src = MacAddress.station(5)
        payload = build_arp_request(src, 7)
        assert len(payload) == 28
        assert payload[0:2] == b"\x00\x01"  # HTYPE Ethernet
        assert payload[6:8] == b"\x00\x01"  # OPER request
        assert payload[8:14] == src.octets

    def test_bridge_hello_carries_sequence(self):
        from repro.framing.ethernet import MacAddress

        src = MacAddress.station(5)
        payload = build_bridge_hello(src, 0xDEAD)
        assert payload[0:4] == b"BRDG"
        assert int.from_bytes(payload[4:8], "big") == 0xDEAD


class TestOutsiderTraffic:
    def test_frames_are_valid_ethernet(self, rng):
        traffic = OutsiderTraffic()
        for _ in range(20):
            wire = traffic.build_frame(rng)
            eth = wire[NETWORK_ID_LEN:]
            assert check_fcs(eth)
            frame = EthernetFrame.parse(eth)
            assert len(frame.payload) >= 46  # Ethernet minimum

    def test_frames_are_broadcast(self, rng):
        wire = OutsiderTraffic().build_frame(rng)
        frame = EthernetFrame.parse(wire[NETWORK_ID_LEN:])
        assert frame.dst.octets == b"\xff" * 6

    def test_source_stations_vary(self, rng):
        traffic = OutsiderTraffic(station_count=6)
        sources = set()
        for _ in range(60):
            wire = traffic.build_frame(rng)
            sources.add(EthernetFrame.parse(wire[NETWORK_ID_LEN:]).src.octets)
        assert len(sources) >= 3

    def test_frame_count_scales_with_rate(self, rng):
        low = OutsiderTraffic(rate_per_test_packet=0.01)
        high = OutsiderTraffic(rate_per_test_packet=0.5)
        n_low = low.frame_count(10_000, np.random.default_rng(1))
        n_high = high.frame_count(10_000, np.random.default_rng(1))
        assert n_high > n_low * 10

    def test_level_distribution(self, rng):
        traffic = OutsiderTraffic(mean_level=5.0, level_sd=1.3)
        levels = [traffic.sample_level(rng) for _ in range(5_000)]
        assert np.mean(levels) == pytest.approx(5.0, abs=0.15)
        assert np.std(levels) == pytest.approx(1.3, abs=0.15)
