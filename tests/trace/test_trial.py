"""Trial runners: the fast path, the per-packet path, and outsiders."""

import pytest

from repro.environment.geometry import Point
from repro.phy.errormodel import InterferenceSample
from repro.phy.modem import ModemConfig
from repro.trace.outsiders import OutsiderTraffic
from repro.trace.trial import TrialConfig, run_fast_trial, run_mac_trial


class _AlwaysJam:
    """An interference source with fixed, scripted effects."""

    name = "scripted"

    def __init__(self, **effects):
        self.effects = effects

    def sample_packet(self, rx_position, signal_level, rng):
        return InterferenceSample(source_name=self.name, **self.effects)


class TestFastTrialVectorized:
    def test_clean_strong_trial(self):
        output = run_fast_trial(
            TrialConfig(name="t", packets=5_000, mean_level=29.5, seed=3)
        )
        assert output.trace.packets_sent == 5_000
        received = output.trace.packets_received
        assert 4_980 <= received <= 5_000
        assert output.dispositions.delivered == received

    def test_deterministic_given_seed(self):
        a = run_fast_trial(TrialConfig(name="t", packets=2_000, mean_level=9.5, seed=7))
        b = run_fast_trial(TrialConfig(name="t", packets=2_000, mean_level=9.5, seed=7))
        assert a.trace.packets_received == b.trace.packets_received
        assert [r.data for r in a.trace.records[:20]] == [
            r.data for r in b.trace.records[:20]
        ]

    def test_different_seed_differs(self):
        a = run_fast_trial(TrialConfig(name="t", packets=2_000, mean_level=6.5, seed=1))
        b = run_fast_trial(TrialConfig(name="t", packets=2_000, mean_level=6.5, seed=2))
        assert a.dispositions.missed != b.dispositions.missed

    def test_threshold_filters_everything_below(self):
        output = run_fast_trial(
            TrialConfig(
                name="t",
                packets=1_000,
                mean_level=15.0,
                seed=5,
                modem_config=ModemConfig(receive_threshold=25),
            )
        )
        assert output.trace.packets_received == 0
        assert output.dispositions.threshold_filtered > 990

    def test_geometry_resolves_mean_level(self):
        from repro.environment.propagation import PropagationModel

        config = TrialConfig(
            name="t",
            packets=10,
            propagation=PropagationModel.office(),
            tx_position=Point(0, 0),
            rx_position=Point(7, 0),
        )
        assert config.resolved_mean_level() == pytest.approx(30.5, abs=0.5)


class TestFastTrialPerPacket:
    def test_interference_path_used(self):
        jam = _AlwaysJam(miss_probability=1.0)
        output = run_fast_trial(
            TrialConfig(
                name="t", packets=200, mean_level=29.5, seed=1, interference=[jam]
            )
        )
        assert output.trace.packets_received == 0
        assert output.dispositions.missed == 200

    def test_interference_truncation_shortens_frames(self):
        jam = _AlwaysJam(truncate_probability=1.0, clock_stress=5.0)
        output = run_fast_trial(
            TrialConfig(
                name="t", packets=100, mean_level=29.5, seed=1, interference=[jam]
            )
        )
        from repro.framing.testpacket import FRAME_BYTES

        assert output.trace.packets_received > 90
        assert all(r.length < FRAME_BYTES for r in output.trace.records)


class TestOutsiders:
    def test_outsiders_interleaved_into_trace(self):
        output = run_fast_trial(
            TrialConfig(
                name="t",
                packets=1_000,
                mean_level=29.5,
                seed=9,
                outsiders=OutsiderTraffic(rate_per_test_packet=0.1, mean_level=10.0),
            )
        )
        from repro.framing.testpacket import FRAME_BYTES

        short_frames = [r for r in output.trace.records if r.length < 200]
        assert output.dispositions.outsiders_delivered == len(short_frames)
        assert output.dispositions.outsiders_delivered > 50
        # Records stay time-sorted after interleaving.
        times = [r.time for r in output.trace.records]
        assert times == sorted(times)

    def test_dense_outsiders_never_collide_with_test_packets(self):
        """With more outsiders than test packets the midpoint spacing
        lands on integers — exactly where test packets sit.  The
        perturbation must keep outsider times non-integer, distinct,
        and sorted."""
        output = run_fast_trial(
            TrialConfig(
                name="t",
                packets=50,
                mean_level=29.5,
                seed=11,
                outsiders=OutsiderTraffic(
                    rate_per_test_packet=4.0, mean_level=25.0
                ),
            )
        )
        assert output.dispositions.outsiders_delivered > 50
        outsider_times = [
            r.time for r in output.trace.records if r.length < 200
        ]
        assert all(not float(t).is_integer() for t in outsider_times)
        assert len(set(outsider_times)) == len(outsider_times)
        times = [r.time for r in output.trace.records]
        assert times == sorted(times)

    def test_dense_outsiders_deterministic(self):
        config = dict(
            name="t",
            packets=50,
            mean_level=29.5,
            seed=11,
            outsiders=OutsiderTraffic(rate_per_test_packet=4.0, mean_level=25.0),
        )
        a = run_fast_trial(TrialConfig(**config))
        b = run_fast_trial(TrialConfig(**config))
        assert [(r.time, r.data) for r in a.trace.records] == [
            (r.time, r.data) for r in b.trace.records
        ]

    def test_weak_outsiders_mostly_lost(self):
        output = run_fast_trial(
            TrialConfig(
                name="t",
                packets=1_000,
                mean_level=29.5,
                seed=9,
                outsiders=OutsiderTraffic(rate_per_test_packet=0.2, mean_level=2.0),
            )
        )
        d = output.dispositions
        assert d.outsiders_lost > d.outsiders_delivered


class TestMacTrial:
    def test_point_to_point_delivers(self):
        config = TrialConfig(name="mac", packets=40, mean_level=None, seed=4)
        output, channel = run_mac_trial(config)
        assert output.trace.packets_sent == 40
        assert output.trace.packets_received >= 38
        assert channel.stats.transmissions >= 40

    def test_jammer_reduces_delivery(self):
        from repro.analysis.classify import classify_trace
        from repro.link.station import LinkStation
        from repro.phy.modem import ModemConfig as MC

        config = TrialConfig(name="mac", packets=30, seed=4)
        jammer = LinkStation.tracing_station(
            9, Point(3.0, 3.0), MC(receive_threshold=35)
        )
        output, channel = run_mac_trial(
            config, extra_stations=[(jammer, bytes(1072))]
        )
        # The promiscuous receiver logs the jammer's frames too; count
        # only intact test packets.  A continuously transmitting
        # same-room jammer devastates the link.
        classified = classify_trace(output.trace)
        intact = [
            p
            for p in classified.test_packets
            if p.packet_class.name == "UNDAMAGED"
        ]
        assert len(intact) < 20
        assert channel.stats.misses > 0


class TestMacTrialConservation:
    """Every offered packet must land in exactly one disposition bucket
    (docs/TRACE_FORMAT.md)."""

    @staticmethod
    def _accounted(d):
        return (
            d.delivered
            + d.missed
            + d.threshold_filtered
            + d.quality_filtered
            + d.controller_rejected
            + d.mac_dropped
            + d.not_transmitted
        )

    def test_full_run_conserves(self):
        config = TrialConfig(name="mac", packets=40, seed=4)
        output, _ = run_mac_trial(config)
        assert self._accounted(output.dispositions) == 40

    def test_horizon_cut_surfaces_not_transmitted(self):
        """A horizon shorter than the burst leaves packets queued, in
        backoff, mid-flight, or ungenerated — they must show up as
        not_transmitted instead of silently vanishing."""
        config = TrialConfig(name="mac", packets=40, seed=4)
        # The burst alone needs packets * frame-airtime at 1.4 Mb/s;
        # stop a quarter of the way through.
        from repro.framing.testpacket import FRAME_BYTES

        horizon = 10 * (FRAME_BYTES * 8.0 / 1_400_000.0)
        output, _ = run_mac_trial(config, horizon_s=horizon)
        d = output.dispositions
        assert d.not_transmitted > 0
        assert d.delivered < 40
        assert self._accounted(d) == 40

    def test_weak_link_conserves(self):
        """Losses at the modem (misses/filters) stay inside the
        identity."""
        config = TrialConfig(
            name="mac", packets=30, seed=8, rx_position=Point(200.0, 0.0)
        )
        output, _ = run_mac_trial(config)
        d = output.dispositions
        assert d.missed + d.threshold_filtered + d.quality_filtered > 0
        assert self._accounted(d) == 30
