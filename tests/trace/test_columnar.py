"""The v2 columnar store: writer, lazy views, and zero-copy analysis."""

import io

import numpy as np
import pytest

from repro.analysis.classify import classify_trace
from repro.analysis.metrics import metrics_from_classified
from repro.environment.geometry import Point
from repro.framing.testpacket import FRAME_BYTES
from repro.interference.spreadspectrum import SpreadSpectrumPhonePair
from repro.trace.columnar import (
    ColumnarTrace,
    ColumnarTraceWriter,
    is_columnar_file,
    read_columnar,
    read_columnar_buffer,
    write_columnar,
)
from repro.trace.records import TrialTrace
from repro.trace.trial import TrialConfig, run_fast_trial


@pytest.fixture(scope="module")
def clean_trace():
    return run_fast_trial(
        TrialConfig(name="col-clean", packets=400, mean_level=29.5, seed=11)
    ).trace


@pytest.fixture(scope="module")
def damaged_trace():
    """A trace whose records exercise truncation, damage, and the
    scalar fallback paths of classification."""
    return run_fast_trial(
        TrialConfig(
            name="col-damaged",
            packets=600,
            seed=12,
            tx_position=Point(0.0, 0.0),
            rx_position=Point(10.0, 5.0),
            interference=(
                SpreadSpectrumPhonePair(
                    handset_position=Point(11.0, 6.0),
                    base_position=Point(0.0, 30.0),
                    variant="att",
                    handset_level_at_1ft=23.5,
                ),
            ),
        )
    ).trace


def _column_view(trace):
    return ColumnarTrace.from_trace(trace)


class TestWriter:
    def test_streaming_append_matches_whole_trace_write(self, clean_trace):
        streamed = io.BytesIO()
        writer = ColumnarTraceWriter(
            streamed,
            name=clean_trace.name,
            spec=clean_trace.spec,
            packets_sent=clean_trace.packets_sent,
        )
        for record in clean_trace.records:
            writer.append(bytes(record.data), record.status, record.time)
        writer.close()
        whole = io.BytesIO()
        write_columnar(clean_trace, whole)
        assert streamed.getvalue() == whole.getvalue()

    def test_context_manager(self, clean_trace, tmp_path):
        path = tmp_path / "ctx.wlt2"
        with ColumnarTraceWriter(
            path, name="ctx", spec=clean_trace.spec, packets_sent=3
        ) as writer:
            for record in clean_trace.records[:3]:
                writer.append(bytes(record.data), record.status, record.time)
        loaded = read_columnar(path)
        assert loaded.packets_received == 3
        assert is_columnar_file(path)

    def test_write_from_columnar_identical(self, clean_trace, tmp_path):
        """Re-serializing a ColumnarTrace streams the payload wholesale
        and must produce the same bytes as serializing the original."""
        first = io.BytesIO()
        write_columnar(clean_trace, first)
        second = io.BytesIO()
        write_columnar(read_columnar_buffer(first.getvalue()), second)
        assert first.getvalue() == second.getvalue()


class TestLazyRecords:
    def test_length_and_iteration(self, clean_trace):
        col = _column_view(clean_trace)
        assert len(col.records) == len(clean_trace.records)
        for view, record in zip(col.records, clean_trace.records):
            assert view.time == record.time
            assert bytes(view.data) == bytes(record.data)

    def test_status_fields(self, clean_trace):
        col = _column_view(clean_trace)
        view = col.records[7]
        status = clean_trace.records[7].status
        assert view.status.signal_level == status.signal_level
        assert view.status.silence_level == status.silence_level
        assert view.status.signal_quality == status.signal_quality
        assert view.status.antenna == status.antenna

    def test_negative_index_and_slice(self, clean_trace):
        col = _column_view(clean_trace)
        assert bytes(col.records[-1].data) == bytes(
            clean_trace.records[-1].data
        )
        tail = col.records[-3:]
        assert len(tail) == 3
        assert bytes(tail[0].data) == bytes(clean_trace.records[-3].data)

    def test_out_of_range(self, clean_trace):
        col = _column_view(clean_trace)
        with pytest.raises(IndexError):
            col.records[len(col.records)]


class TestFrameMatrix:
    def test_full_matrix_matches_record_bytes(self, clean_trace):
        col = _column_view(clean_trace)
        full = np.nonzero(col.lengths == FRAME_BYTES)[0]
        matrix = col.frame_matrix(full, FRAME_BYTES)
        assert matrix.shape == (full.size, FRAME_BYTES)
        for row, index in zip(matrix[:5], full[:5].tolist()):
            assert row.tobytes() == bytes(clean_trace.records[index].data)

    def test_gather_path_on_mixed_lengths(self, damaged_trace):
        col = _column_view(damaged_trace)
        full = np.nonzero(col.lengths == FRAME_BYTES)[0]
        assert full.size < col.packets_received  # truncation happened
        matrix = col.frame_matrix(full, FRAME_BYTES)
        for row, index in zip(matrix, full.tolist()):
            assert row.tobytes() == bytes(damaged_trace.records[index].data)


class TestConcat:
    def test_concat_rebases_offsets(self, clean_trace, damaged_trace):
        a = _column_view(clean_trace)
        b = ColumnarTrace.from_trace(
            TrialTrace(
                name=clean_trace.name,
                spec=clean_trace.spec,
                packets_sent=damaged_trace.packets_sent,
                records=list(damaged_trace.records),
            )
        )
        merged = ColumnarTrace.concat([a, b])
        assert merged.packets_received == (
            a.packets_received + b.packets_received
        )
        assert merged.packets_sent == a.packets_sent + b.packets_sent
        combined = list(clean_trace.records) + list(damaged_trace.records)
        for view, record in zip(merged.records, combined):
            assert bytes(view.data) == bytes(record.data)
            assert view.time == record.time

    def test_concat_rejects_spec_mismatch(self, clean_trace):
        import dataclasses

        a = _column_view(clean_trace)
        other_spec = dataclasses.replace(
            clean_trace.spec, src_port=clean_trace.spec.src_port + 1
        )
        b = ColumnarTrace.from_trace(
            TrialTrace(name="other", spec=other_spec, packets_sent=0)
        )
        with pytest.raises(ValueError, match="spec"):
            ColumnarTrace.concat([a, b])

    def test_concat_empty_rejected(self):
        with pytest.raises(ValueError):
            ColumnarTrace.concat([])


class TestClassifyEquivalence:
    @pytest.mark.parametrize("fixture", ["clean_trace", "damaged_trace"])
    def test_verdicts_identical(self, fixture, request, tmp_path):
        trace = request.getfixturevalue(fixture)
        path = tmp_path / "trace.wlt2"
        write_columnar(trace, path)
        mem = classify_trace(trace)
        col = classify_trace(read_columnar(path))

        def verdicts(classified):
            return [
                (
                    p.packet_class,
                    p.sequence,
                    p.wrapper_damaged,
                    p.body_bits_damaged,
                    p.truncated_bytes_missing,
                    None if p.syndrome is None else repr(p.syndrome),
                )
                for p in classified.packets
            ]

        assert verdicts(mem) == verdicts(col)
        assert repr(metrics_from_classified(mem)) == repr(
            metrics_from_classified(col)
        )


class TestConversions:
    def test_to_trial_trace_roundtrip(self, damaged_trace):
        col = _column_view(damaged_trace)
        back = col.to_trial_trace()
        assert back.packets_sent == damaged_trace.packets_sent
        for a, b in zip(damaged_trace.records, back.records):
            assert bytes(a.data) == bytes(b.data)
            assert a.time == b.time
            assert a.status.signal_level == b.status.signal_level
