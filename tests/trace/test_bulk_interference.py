"""Bulk vs per-packet equivalence with *active* interference sources.

``_run_bulk`` folds interference through vectorized schedules
(:func:`repro.interference.base.bulk_schedule`) while the
``force_per_packet`` reference path samples each source one packet at a
time.  Both draw from the same calibrated distributions but consume
their RNG streams differently, so the comparison is distributional:
outcome rates must agree within a few standard errors for every source
family the paper measured (spread-spectrum phones, narrowband phones,
competing WaveLAN units).
"""

import math

import pytest

from repro.analysis.classify import PacketClass, classify_trace
from repro.environment.geometry import Point
from repro.interference.narrowband import NarrowbandPhonePair
from repro.interference.spreadspectrum import SpreadSpectrumPhonePair
from repro.interference.wavelan import CompetingWaveLanTransmitter
from repro.trace.trial import TrialConfig, run_fast_trial

PACKETS = 4_000

TX = Point(0.0, 0.0)
RX = Point(10.0, 5.0)


def _spread_source():
    return SpreadSpectrumPhonePair(
        handset_position=Point(11.0, 6.0), base_position=Point(9.0, 4.0)
    )


def _narrowband_source():
    return NarrowbandPhonePair(Point(11.0, 6.0), Point(9.0, 4.0))


def _competing_source():
    return CompetingWaveLanTransmitter(position=Point(12.0, 3.0))


def _rates(source_factory, seed: int, per_packet: bool) -> dict[str, float]:
    config = TrialConfig(
        name="bulk-equiv",
        packets=PACKETS,
        seed=seed,
        tx_position=TX,
        rx_position=RX,
        interference=(source_factory(),),
        force_per_packet=per_packet,
    )
    output = run_fast_trial(config)
    classified = classify_trace(output.trace)
    truncated = len(classified.by_class(PacketClass.TRUNCATED))
    body = len(classified.by_class(PacketClass.BODY_DAMAGED))
    return {
        "delivered": output.dispositions.delivered / PACKETS,
        "missed": output.dispositions.missed / PACKETS,
        "truncated": truncated / PACKETS,
        "body_damaged": body / PACKETS,
    }


def _assert_rates_close(bulk: dict, scalar: dict) -> None:
    for key in bulk:
        p = (bulk[key] + scalar[key]) / 2.0
        # Standard error of a rate difference over two independent
        # trials of PACKETS packets; 4 sigma plus an absolute floor so
        # near-zero rates don't produce a vacuously tight bound.
        sigma = math.sqrt(max(p * (1.0 - p), 1e-12) * 2.0 / PACKETS)
        tolerance = max(4.0 * sigma, 0.004)
        assert abs(bulk[key] - scalar[key]) < tolerance, (
            f"{key}: bulk={bulk[key]:.4f} scalar={scalar[key]:.4f} "
            f"tolerance={tolerance:.4f}"
        )


@pytest.mark.parametrize(
    "source_factory",
    [_spread_source, _narrowband_source, _competing_source],
    ids=["spread-spectrum", "narrowband", "competing-wavelan"],
)
class TestBulkInterferenceEquivalence:
    def test_outcome_rates_match(self, source_factory):
        bulk = _rates(source_factory, seed=1234, per_packet=False)
        scalar = _rates(source_factory, seed=5678, per_packet=True)
        _assert_rates_close(bulk, scalar)

    def test_bulk_is_deterministic(self, source_factory):
        a = _rates(source_factory, seed=42, per_packet=False)
        b = _rates(source_factory, seed=42, per_packet=False)
        assert a == b


class TestSignalRegisterEquivalence:
    """Interference power must fold into the AGC registers identically
    (in distribution) on both paths — the silence level is the paper's
    fingerprint for several interferers."""

    def _signal_means(self, per_packet: bool) -> tuple[float, float]:
        config = TrialConfig(
            name="agc-equiv",
            packets=PACKETS,
            seed=9 if per_packet else 8,
            tx_position=TX,
            rx_position=RX,
            interference=(_narrowband_source(),),
            force_per_packet=per_packet,
        )
        output = run_fast_trial(config)
        records = output.trace.records
        assert records
        signal = sum(r.status.signal_level for r in records) / len(records)
        silence = sum(r.status.silence_level for r in records) / len(records)
        return signal, silence

    def test_agc_fold_matches(self):
        bulk_signal, bulk_silence = self._signal_means(per_packet=False)
        scalar_signal, scalar_silence = self._signal_means(per_packet=True)
        assert bulk_signal == pytest.approx(scalar_signal, abs=0.5)
        assert bulk_silence == pytest.approx(scalar_silence, abs=0.5)
