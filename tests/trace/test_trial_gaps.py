"""Trial-runner paths not covered elsewhere."""

from repro.phy.modem import ModemConfig
from repro.trace.trial import TrialConfig, run_fast_trial


class TestQualityThresholdPath:
    def test_vectorized_quality_filtering(self):
        """An absurd quality threshold filters everything (footnote 1's
        unused hardware feature, exercised)."""
        output = run_fast_trial(
            TrialConfig(
                name="qf",
                packets=500,
                mean_level=29.5,
                seed=3,
                modem_config=ModemConfig(quality_threshold=16),
            )
        )
        assert output.trace.packets_received == 0
        assert output.dispositions.quality_filtered > 490

    def test_moderate_quality_threshold_partial(self):
        """Threshold 15 drops the occasional quality-14 reading."""
        output = run_fast_trial(
            TrialConfig(
                name="qf",
                packets=2_000,
                mean_level=29.5,
                seed=3,
                modem_config=ModemConfig(quality_threshold=15),
            )
        )
        d = output.dispositions
        assert d.quality_filtered > 30  # the ~6% baseline quality dips
        assert d.delivered > 1_500


class TestAntennaBranchConfig:
    def test_single_branch_higher_variance(self):
        def level_spread(branches: int) -> float:
            output = run_fast_trial(
                TrialConfig(
                    name="ant",
                    packets=3_000,
                    mean_level=20.0,
                    seed=9,
                    antenna_branches=branches,
                )
            )
            levels = [r.status.signal_level for r in output.trace.records]
            import numpy as np

            return float(np.std(levels))

        assert level_spread(1) > level_spread(4)


class TestMinimumPacketCounts:
    def test_tiny_trial_works(self):
        output = run_fast_trial(
            TrialConfig(name="tiny", packets=1, mean_level=29.5, seed=1)
        )
        assert output.trace.packets_sent == 1
