"""Trace records and trial containers."""

import pytest

from repro.framing.testpacket import FRAME_BYTES, TestPacketSpec
from repro.phy.modem import ModemRxStatus
from repro.trace.records import PacketRecord, TrialTrace

STATUS = ModemRxStatus(29, 3, 15, 0)


class TestPacketRecord:
    def test_from_bytes(self):
        record = PacketRecord.from_bytes(b"abc", STATUS, time=2.0)
        assert record.data == b"abc"
        assert record.length == 3

    def test_pristine_materializes_exact_frame(self, factory):
        record = PacketRecord.pristine(factory, 42, STATUS)
        assert record.data == factory.build(42)
        assert record.length == FRAME_BYTES

    def test_empty_record_raises(self):
        with pytest.raises(ValueError):
            PacketRecord(status=STATUS).data


class TestTrialTrace:
    def test_extend_aggregates_bursts(self, spec):
        a = TrialTrace(name="t", spec=spec, packets_sent=100)
        b = TrialTrace(name="t", spec=spec, packets_sent=50)
        b.records.append(PacketRecord.from_bytes(b"x", STATUS))
        a.extend(b)
        assert a.packets_sent == 150
        assert a.packets_received == 1

    def test_extend_rejects_mismatched_spec(self, spec):
        a = TrialTrace(name="t", spec=spec, packets_sent=1)
        other_spec = TestPacketSpec(
            src_mac=spec.src_mac,
            dst_mac=spec.dst_mac,
            src_ip="10.0.0.1",
            dst_ip=spec.dst_ip,
            src_port=spec.src_port,
            dst_port=spec.dst_port,
        )
        b = TrialTrace(name="t", spec=other_spec, packets_sent=1)
        with pytest.raises(ValueError):
            a.extend(b)
