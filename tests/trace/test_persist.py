"""Trace save/load roundtrips."""

import pytest

from repro.analysis import analyze_trial
from repro.trace.persist import load_trace, save_trace
from repro.trace.trial import TrialConfig, run_fast_trial


@pytest.fixture
def trace():
    output = run_fast_trial(
        TrialConfig(name="persist-test", packets=300, mean_level=8.0, seed=42)
    )
    return output.trace


class TestRoundtrip:
    def test_plain_json(self, trace, tmp_path):
        path = tmp_path / "trial.jsonl"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.name == trace.name
        assert loaded.packets_sent == trace.packets_sent
        assert loaded.packets_received == trace.packets_received
        assert loaded.spec == trace.spec

    def test_gzip(self, trace, tmp_path):
        path = tmp_path / "trial.jsonl.gz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.packets_received == trace.packets_received

    def test_bytes_survive_exactly(self, trace, tmp_path):
        path = tmp_path / "trial.jsonl"
        save_trace(trace, path)
        loaded = load_trace(path)
        for original, restored in zip(trace.records, loaded.records):
            assert restored.data == original.data
            assert restored.status == original.status
            assert restored.time == original.time

    def test_analysis_identical_after_reload(self, trace, tmp_path):
        path = tmp_path / "trial.jsonl"
        save_trace(trace, path)
        before = analyze_trial(trace)
        after = analyze_trial(load_trace(path))
        assert before.packets_received == after.packets_received
        assert before.body_bits_damaged == after.body_bits_damaged
        assert before.packets_truncated == after.packets_truncated
        assert before.worst_body_bits == after.worst_body_bits


class TestErrorHandling:
    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_trace(path)

    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "other.jsonl"
        path.write_text('{"kind": "something-else", "format": 1}\n')
        with pytest.raises(ValueError, match="not a trial trace"):
            load_trace(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text('{"kind": "wavelan-trial-trace", "format": 99}\n')
        with pytest.raises(ValueError, match="format"):
            load_trace(path)
