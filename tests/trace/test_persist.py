"""Trace save/load roundtrips, across both formats."""

import json

import pytest

from repro.analysis import analyze_trial
from repro.trace.columnar import ColumnarTrace
from repro.trace.persist import load_trace, save_trace
from repro.trace.records import TrialTrace
from repro.trace.trial import TrialConfig, run_fast_trial


@pytest.fixture
def trace():
    output = run_fast_trial(
        TrialConfig(name="persist-test", packets=300, mean_level=8.0, seed=42)
    )
    return output.trace


def _assert_records_equal(original, restored):
    assert len(original.records) == len(restored.records)
    for a, b in zip(original.records, restored.records):
        assert bytes(b.data) == bytes(a.data)
        assert b.time == a.time
        assert (
            b.status.signal_level,
            b.status.silence_level,
            b.status.signal_quality,
            b.status.antenna,
        ) == (
            a.status.signal_level,
            a.status.silence_level,
            a.status.signal_quality,
            a.status.antenna,
        )


class TestRoundtrip:
    def test_plain_json(self, trace, tmp_path):
        path = tmp_path / "trial.jsonl"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.name == trace.name
        assert loaded.packets_sent == trace.packets_sent
        assert loaded.packets_received == trace.packets_received
        assert loaded.spec == trace.spec

    def test_gzip(self, trace, tmp_path):
        path = tmp_path / "trial.jsonl.gz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.packets_received == trace.packets_received

    def test_bytes_survive_exactly(self, trace, tmp_path):
        path = tmp_path / "trial.jsonl"
        save_trace(trace, path)
        loaded = load_trace(path)
        for original, restored in zip(trace.records, loaded.records):
            assert restored.data == original.data
            assert restored.status == original.status
            assert restored.time == original.time

    def test_analysis_identical_after_reload(self, trace, tmp_path):
        path = tmp_path / "trial.jsonl"
        save_trace(trace, path)
        before = analyze_trial(trace)
        after = analyze_trial(load_trace(path))
        assert before.packets_received == after.packets_received
        assert before.body_bits_damaged == after.body_bits_damaged
        assert before.packets_truncated == after.packets_truncated
        assert before.worst_body_bits == after.worst_body_bits


class TestFormatMatrix:
    """Round-trip property: save -> load restores every record exactly,
    in each format, including through cross-format conversion."""

    @pytest.mark.parametrize(
        "filename,format",
        [
            ("trial.jsonl", None),
            ("trial.jsonl.gz", None),
            ("trial.wlt2", None),
            ("oddly-named.dat", "v2"),
            ("oddly-named.bin", "v1"),
        ],
    )
    def test_roundtrip_exact(self, trace, tmp_path, filename, format):
        path = tmp_path / filename
        save_trace(trace, path, format=format)
        loaded = load_trace(path)
        assert loaded.name == trace.name
        assert loaded.packets_sent == trace.packets_sent
        assert loaded.spec == trace.spec
        _assert_records_equal(trace, loaded)

    def test_autodetect_is_content_based(self, trace, tmp_path):
        """A v2 file under a v1-looking name still loads as columnar,
        and vice versa — detection reads bytes, never filenames."""
        v2_in_disguise = tmp_path / "looks-like-v1.jsonl"
        save_trace(trace, v2_in_disguise, format="v2")
        assert isinstance(load_trace(v2_in_disguise), ColumnarTrace)
        v1_in_disguise = tmp_path / "looks-like-v2.wlt2"
        save_trace(trace, v1_in_disguise, format="v1")
        assert isinstance(load_trace(v1_in_disguise), TrialTrace)

    def test_v2_to_v1_to_v2_byte_identical(self, trace, tmp_path):
        a, b, c = (tmp_path / n for n in ("a.wlt2", "b.jsonl", "c.wlt2"))
        save_trace(trace, a)
        save_trace(load_trace(a), b)
        save_trace(load_trace(b), c)
        assert a.read_bytes() == c.read_bytes()

    def test_empty_trace_roundtrips(self, trace, tmp_path):
        empty = TrialTrace(
            name="empty", spec=trace.spec, packets_sent=0
        )
        for name in ("empty.jsonl", "empty.jsonl.gz", "empty.wlt2"):
            path = tmp_path / name
            save_trace(empty, path)
            loaded = load_trace(path)
            assert len(loaded.records) == 0
            assert loaded.name == "empty"
            assert loaded.spec == trace.spec

    def test_unknown_format_rejected(self, trace, tmp_path):
        with pytest.raises(ValueError, match="unknown trace format"):
            save_trace(trace, tmp_path / "x.jsonl", format="v3")


class TestDeterministicOutput:
    """Identical traces must persist to identical bytes in every
    format — the serial-vs-jobs=N byte-identity invariant extends to
    saved artifacts, gzipped ones included."""

    @pytest.mark.parametrize(
        "names", [("a.jsonl", "b.jsonl"), ("a.jsonl.gz", "b.jsonl.gz"),
                  ("a.wlt2", "b.wlt2")]
    )
    def test_two_saves_identical(self, trace, tmp_path, names):
        first, second = (tmp_path / n for n in names)
        save_trace(trace, first)
        save_trace(trace, second)
        assert first.read_bytes() == second.read_bytes()

    def test_gzip_header_carries_no_mtime(self, trace, tmp_path):
        path = tmp_path / "trial.jsonl.gz"
        save_trace(trace, path)
        header = path.read_bytes()[:10]
        # RFC 1952: MTIME is bytes 4-7 of the member header.
        assert header[4:8] == b"\x00\x00\x00\x00"


class TestErrorHandling:
    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_trace(path)

    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "other.jsonl"
        path.write_text('{"kind": "something-else", "format": 1}\n')
        with pytest.raises(ValueError, match="not a trial trace"):
            load_trace(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text('{"kind": "wavelan-trial-trace", "format": 99}\n')
        with pytest.raises(ValueError, match="format"):
            load_trace(path)

    def test_malformed_record_reports_line_number(self, trace, tmp_path):
        path = tmp_path / "broken.jsonl"
        save_trace(trace, path)
        lines = path.read_text().splitlines()
        lines[4] = "{not json"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match=r"broken\.jsonl:5: malformed"):
            load_trace(path)

    def test_missing_field_reports_line_number(self, trace, tmp_path):
        path = tmp_path / "broken.jsonl"
        save_trace(trace, path)
        lines = path.read_text().splitlines()
        entry = json.loads(lines[2])
        del entry["data"]
        lines[2] = json.dumps(entry)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match=r"broken\.jsonl:3: malformed"):
            load_trace(path)

    def test_bad_hex_reports_line_number(self, trace, tmp_path):
        path = tmp_path / "broken.jsonl"
        save_trace(trace, path)
        lines = path.read_text().splitlines()
        entry = json.loads(lines[1])
        entry["data"] = "zz-not-hex"
        lines[1] = json.dumps(entry)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match=r"broken\.jsonl:2: malformed"):
            load_trace(path)

    def test_truncated_final_record_v1(self, trace, tmp_path):
        path = tmp_path / "cut.jsonl"
        save_trace(trace, path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 40])  # cut mid-final-record
        with pytest.raises(ValueError, match="malformed trace record"):
            load_trace(path)

    def test_truncated_v2_rejected(self, trace, tmp_path):
        path = tmp_path / "cut.wlt2"
        save_trace(trace, path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 17])
        with pytest.raises(ValueError, match="truncated"):
            load_trace(path)
