"""Property-based tests on the trial runner's bookkeeping invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.classify import classify_trace
from repro.analysis.metrics import metrics_from_classified
from repro.phy.modem import ModemConfig
from repro.trace.trial import TrialConfig, run_fast_trial

levels = st.floats(min_value=3.0, max_value=32.0)
seeds = st.integers(0, 2**31)


class TestDispositionAccounting:
    @given(levels, seeds)
    @settings(max_examples=25, deadline=None)
    def test_every_packet_accounted_for(self, level, seed):
        output = run_fast_trial(
            TrialConfig(name="prop", packets=400, mean_level=level, seed=seed)
        )
        d = output.dispositions
        total = (
            d.delivered + d.missed + d.threshold_filtered + d.quality_filtered
        )
        assert total == 400
        assert d.delivered == output.trace.packets_received

    @given(levels, seeds)
    @settings(max_examples=25, deadline=None)
    def test_records_well_formed(self, level, seed):
        output = run_fast_trial(
            TrialConfig(name="prop", packets=300, mean_level=level, seed=seed)
        )
        times = [r.time for r in output.trace.records]
        assert times == sorted(times)
        for record in output.trace.records:
            status = record.status
            assert 0 <= status.signal_level <= 63
            assert 0 <= status.silence_level <= 63
            assert 0 <= status.signal_quality <= 15
            assert status.antenna in (0, 1)
            assert 1 <= record.length <= 1072

    @given(levels, seeds)
    @settings(max_examples=15, deadline=None)
    def test_determinism(self, level, seed):
        config = TrialConfig(name="prop", packets=300, mean_level=level, seed=seed)
        a = run_fast_trial(config)
        b = run_fast_trial(config)
        assert a.dispositions == b.dispositions
        assert [r.data for r in a.trace.records] == [
            r.data for r in b.trace.records
        ]

    @given(levels, seeds)
    @settings(max_examples=15, deadline=None)
    def test_analysis_never_crashes_and_balances(self, level, seed):
        """Whatever the channel produced, the analysis yields a
        consistent Table-1 row."""
        output = run_fast_trial(
            TrialConfig(name="prop", packets=300, mean_level=level, seed=seed)
        )
        classified = classify_trace(output.trace)
        metrics = metrics_from_classified(classified)
        assert metrics.packets_received + metrics.outsiders_received == len(
            classified.packets
        )
        assert metrics.packets_received <= 300
        assert 0.0 <= metrics.packet_loss_fraction <= 1.0
        if metrics.worst_body_bits is not None:
            assert metrics.worst_body_bits <= metrics.body_bits_damaged

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_threshold_filters_are_clean(self, seed):
        """Whatever leaks past the receive threshold is an ordinary
        reception — the paper's 'cleanly filters' observation."""
        output = run_fast_trial(
            TrialConfig(
                name="prop",
                packets=400,
                mean_level=15.0,
                seed=seed,
                modem_config=ModemConfig(receive_threshold=15),
            )
        )
        for record in output.trace.records:
            assert record.status.signal_level >= 15
