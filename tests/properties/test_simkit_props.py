"""Property-based tests on the simulation kernel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simkit.simulator import Simulator

delays = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=0, max_size=50
)


class TestKernelProperties:
    @given(delays)
    @settings(max_examples=50, deadline=None)
    def test_events_fire_in_nondecreasing_time_order(self, offsets):
        sim = Simulator()
        fired = []
        for offset in offsets:
            sim.schedule(offset, lambda t=offset: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(offsets)

    @given(delays)
    @settings(max_examples=30, deadline=None)
    def test_clock_never_goes_backwards(self, offsets):
        sim = Simulator()
        observed = []
        for offset in offsets:
            sim.schedule(offset, lambda: observed.append(sim.now))
        previous = 0.0
        while sim.step():
            assert sim.now >= previous
            previous = sim.now

    @given(delays, st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_run_until_fires_exactly_events_within_horizon(self, offsets, horizon):
        sim = Simulator()
        for offset in offsets:
            sim.schedule(offset, lambda: None)
        fired = sim.run_until(horizon)
        assert fired == sum(1 for o in offsets if o <= horizon)

    @given(st.integers(0, 2**31))
    @settings(max_examples=20, deadline=None)
    def test_same_seed_same_streams(self, seed):
        a = Simulator(seed=seed).rng.stream("x").random(5)
        b = Simulator(seed=seed).rng.stream("x").random(5)
        assert (a == b).all()
