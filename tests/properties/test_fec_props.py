"""Property-based tests on the FEC stack."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fec.convolutional import ConvolutionalCode
from repro.fec.interleave import BlockInterleaver
from repro.fec.rcpc import RATE_ORDER, RcpcCodec
from repro.fec.viterbi import viterbi_decode

bit_arrays = st.lists(st.integers(0, 1), min_size=1, max_size=200).map(
    lambda bits: np.array(bits, dtype=np.uint8)
)

_CODE = ConvolutionalCode()
_CODECS = {name: RcpcCodec(name, _CODE) for name in RATE_ORDER}


class TestViterbiProperties:
    @given(bit_arrays)
    @settings(max_examples=40, deadline=None)
    def test_clean_roundtrip_always_exact(self, bits):
        assert np.array_equal(viterbi_decode(_CODE, _CODE.encode(bits)), bits)

    @given(bit_arrays, st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_single_coded_bit_error_always_corrected(self, bits, raw_pos):
        """A K=7 rate-1/2 code corrects any single channel error."""
        coded = _CODE.encode(bits)
        damaged = coded.copy()
        damaged[raw_pos % len(coded)] ^= 1
        assert np.array_equal(viterbi_decode(_CODE, damaged), bits)

    @given(bit_arrays)
    @settings(max_examples=20, deadline=None)
    def test_decoded_length_matches_input(self, bits):
        decoded = viterbi_decode(_CODE, _CODE.encode(bits))
        assert len(decoded) == len(bits)


class TestRcpcProperties:
    @given(bit_arrays, st.sampled_from(RATE_ORDER))
    @settings(max_examples=40, deadline=None)
    def test_clean_roundtrip_every_rate(self, bits, rate):
        codec = _CODECS[rate]
        assert np.array_equal(codec.decode(codec.encode(bits)), bits)

    @given(bit_arrays, st.sampled_from(RATE_ORDER))
    @settings(max_examples=30, deadline=None)
    def test_coded_length_formula(self, bits, rate):
        codec = _CODECS[rate]
        assert len(codec.encode(bits)) == codec.coded_length(len(bits))

    @given(bit_arrays)
    @settings(max_examples=20, deadline=None)
    def test_rate_compatible_prefix_property(self, bits):
        """The punctured stream of a weaker rate is a sub-selection of
        the stronger rate's stream (same mother bits transmitted)."""
        weak = _CODECS["8/9"]
        strong = _CODECS["1/2"]
        weak_tx = weak.encode(bits)
        strong_tx = strong.encode(bits)  # unpunctured mother stream
        # Every weakly-transmitted bit appears in the mother stream at
        # the positions the weak mask selects.
        n_steps = len(bits) + _CODE.tail_bits()
        mask = weak._mask(n_steps)
        assert np.array_equal(strong_tx[mask], weak_tx)


class TestInterleaverProperties:
    @given(
        st.lists(st.integers(0, 1), min_size=0, max_size=3000).map(
            lambda b: np.array(b, dtype=np.uint8)
        ),
        st.sampled_from([(4, 8), (16, 64), (32, 64)]),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip(self, bits, shape):
        rows, cols = shape
        interleaver = BlockInterleaver(rows, cols)
        restored = interleaver.deinterleave(interleaver.interleave(bits), len(bits))
        assert np.array_equal(restored, bits)

    @given(st.sampled_from([(4, 8), (8, 16), (16, 64)]))
    @settings(max_examples=10, deadline=None)
    def test_interleave_is_permutation(self, shape):
        rows, cols = shape
        interleaver = BlockInterleaver(rows, cols)
        n = interleaver.block_size
        index = np.arange(n, dtype=np.uint8) % 2  # parity pattern
        out = interleaver.interleave(index)
        assert sorted(out.tolist()) == sorted(index.tolist())
