"""Property-based tests on the transport layer's invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transport import LinkConfig, run_transfer
from repro.transport.snoop import run_snoop_transfer

levels = st.floats(min_value=6.0, max_value=32.0)
seeds = st.integers(0, 2**31)


class TestTcpInvariants:
    @given(levels, seeds)
    @settings(max_examples=15, deadline=None)
    def test_progress_and_accounting(self, level, seed):
        sender, link, sim = run_transfer(
            LinkConfig(mean_level=level), total_segments=80, seed=seed,
            time_limit_s=60.0,
        )
        stats = sender.stats
        assert 0 <= sender.highest_acked <= 80
        assert stats.retransmissions <= stats.segments_sent
        assert stats.goodput_segments <= 80 + stats.timeouts  # spurious rtx margin
        assert sender.cwnd >= 1.0
        if sender.finished:
            assert sender.highest_acked == 80
            assert sender.finish_time <= sim.now

    @given(levels, seeds)
    @settings(max_examples=10, deadline=None)
    def test_arq_never_hurts(self, level, seed):
        plain, _, _ = run_transfer(
            LinkConfig(mean_level=level), total_segments=80, seed=seed,
            time_limit_s=60.0,
        )
        arq, _, _ = run_transfer(
            LinkConfig(mean_level=level, arq_retries=3), total_segments=80,
            seed=seed, time_limit_s=60.0,
        )
        # ARQ either finishes when plain did, or delivers at least as
        # much progress (modulo a small random wobble on clean links).
        if plain.finished and arq.finished:
            assert arq.finish_time <= plain.finish_time * 1.15
        else:
            assert arq.highest_acked >= plain.highest_acked - 5

    @given(levels, seeds)
    @settings(max_examples=8, deadline=None)
    def test_snoop_sender_state_consistent(self, level, seed):
        sender, network, link, sim = run_snoop_transfer(
            LinkConfig(mean_level=level), total_segments=60, seed=seed,
            time_limit_s=60.0,
        )
        # The agent's cache never holds acked segments.
        assert all(seq >= network._last_ack_seen for seq in network._cache)
        assert network.stats.local_retransmissions >= network.stats.timer_retransmissions
        assert sender.highest_acked <= 60
