"""Property-based tests on the framing substrate."""

import zlib

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.framing.bits import bits_to_bytes, bytes_to_bits, flip_bits, hamming_distance
from repro.framing.checksum import internet_checksum
from repro.framing.crc import (
    crc32,
    crc32_reference,
    crc32_update,
    crc32_update_reference,
)
from repro.framing.ethernet import EthernetFrame, MacAddress
from repro.framing.testpacket import FRAME_BYTES, TestPacketFactory, TestPacketSpec

payloads = st.binary(min_size=0, max_size=512)


class TestCrcProperties:
    @given(payloads)
    def test_fast_path_equals_reference(self, data):
        assert crc32(data) == crc32_reference(data)

    @given(payloads)
    def test_reference_equals_zlib(self, data):
        assert crc32_reference(data) == zlib.crc32(data) & 0xFFFFFFFF

    @given(payloads, st.integers(0, 0xFFFFFFFF))
    def test_streaming_update_equals_reference(self, data, state):
        """The zlib-backed streaming update matches the table-driven
        reference from *any* intermediate register state."""
        assert crc32_update(state, data) == crc32_update_reference(state, data)

    @given(payloads, st.lists(st.integers(0, 512), max_size=4))
    def test_streaming_chunking_invariant(self, data, cuts):
        """Feeding a payload in arbitrary chunks equals one-shot CRC."""
        bounds = sorted(min(c, len(data)) for c in cuts)
        state = 0xFFFFFFFF
        start = 0
        for bound in bounds + [len(data)]:
            state = crc32_update(state, data[start:bound])
            start = bound
        assert (state ^ 0xFFFFFFFF) == crc32(data)

    @given(payloads, st.integers(0, 511 * 8))
    def test_single_bit_flip_always_detected(self, data, bit):
        """CRC-32 detects every single-bit error."""
        if not data:
            return
        bit = bit % (len(data) * 8)
        flipped = flip_bits(data, np.array([bit]))
        assert crc32(data) != crc32(flipped)


class TestChecksumProperties:
    @given(payloads)
    def test_header_with_embedded_checksum_verifies(self, data):
        """Appending the computed checksum makes the whole sum zero-ish
        (the defining property of the one's-complement checksum)."""
        checksum = internet_checksum(data)
        full = data + checksum.to_bytes(2, "big")
        # Verification: full message checksums to 0 when data length is
        # even (checksum lands on a 16-bit boundary).
        if len(data) % 2 == 0:
            assert internet_checksum(full) == 0

    @given(payloads)
    def test_checksum_is_16_bits(self, data):
        assert 0 <= internet_checksum(data) <= 0xFFFF


class TestBitProperties:
    @given(payloads)
    def test_bits_roundtrip(self, data):
        assert bits_to_bytes(bytes_to_bits(data)) == data

    @given(payloads.filter(bool), st.sets(st.integers(0, 10_000), max_size=16))
    def test_flip_involution(self, data, raw_positions):
        positions = np.array(
            sorted(p % (len(data) * 8) for p in raw_positions), dtype=np.int64
        )
        positions = np.unique(positions)
        assert flip_bits(flip_bits(data, positions), positions) == data

    @given(payloads.filter(bool), st.sets(st.integers(0, 10_000), max_size=16))
    def test_hamming_counts_flips(self, data, raw_positions):
        positions = np.unique(
            np.array([p % (len(data) * 8) for p in raw_positions], dtype=np.int64)
        )
        assert hamming_distance(data, flip_bits(data, positions)) == len(positions)


class TestEthernetProperties:
    macs = st.binary(min_size=6, max_size=6).map(MacAddress)

    @given(macs, macs, st.integers(0, 0xFFFF), payloads)
    def test_parse_inverts_build(self, dst, src, ethertype, payload):
        frame = EthernetFrame(dst=dst, src=src, ethertype=ethertype, payload=payload)
        assert EthernetFrame.parse(frame.to_bytes()) == frame

    @given(macs, macs, payloads)
    def test_fcs_always_valid_on_build(self, dst, src, payload):
        frame = EthernetFrame(dst=dst, src=src, ethertype=0x0800, payload=payload)
        assert EthernetFrame.fcs_ok(frame.to_bytes())


class TestTestPacketProperties:
    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=50)
    def test_fast_build_equals_reference_everywhere(self, sequence):
        factory = TestPacketFactory(TestPacketSpec.default())
        assert factory.build(sequence) == factory.build_reference(sequence)

    @given(st.integers(0, 2**31), st.integers(0, 2**31))
    @settings(max_examples=50)
    def test_distinct_sequences_distinct_frames(self, a, b):
        factory = TestPacketFactory(TestPacketSpec.default())
        if a != b:
            assert factory.build(a) != factory.build(b)

    @given(st.integers(0, 2**31))
    @settings(max_examples=30)
    def test_frame_length_constant(self, sequence):
        factory = TestPacketFactory(TestPacketSpec.default())
        assert len(factory.build(sequence)) == FRAME_BYTES
