"""Property-based tests on the analysis pipeline.

The central invariant: whatever damage the channel inflicts (bit flips
outside the body's majority, truncation keeping enough words), the
matcher recovers the true sequence number, and the syndrome equals the
inflicted damage exactly.
"""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.matching import MatchOutcome, TraceMatcher
from repro.analysis.syndrome import extract_syndrome
from repro.framing.bits import flip_bits
from repro.framing.testpacket import (
    BODY_START,
    FRAME_BYTES,
    TestPacketFactory,
    TestPacketSpec,
)

_SPEC = TestPacketSpec.default()
_FACTORY = TestPacketFactory(_SPEC)
_MATCHER = TraceMatcher(_SPEC, packets_sent=1_000)

sequences = st.integers(0, 999)
flip_sets = st.sets(st.integers(0, FRAME_BYTES * 8 - 1), max_size=120)


class TestMatcherProperties:
    @given(sequences)
    @settings(max_examples=30, deadline=None)
    def test_pristine_always_exact(self, sequence):
        result = _MATCHER.match_bytes(_FACTORY.build(sequence))
        assert result.exact and result.sequence == sequence

    @given(sequences, flip_sets)
    @settings(max_examples=60, deadline=None)
    def test_sequence_recovered_under_scattered_damage(self, sequence, flips):
        """Up to 120 scattered bit flips never defeat the majority vote
        (120 flips can corrupt at most 120 of 255 non-FCS words) — as
        long as they don't wipe out most of the wrapper, which is the
        legitimate "corrupted beyond recognition" case the paper also
        has."""
        wrapper_bytes_hit = {p // 8 for p in flips if p < BODY_START * 8}
        assume(len(wrapper_bytes_hit) <= BODY_START // 2 - 2)
        positions = np.array(sorted(flips), dtype=np.int64)
        damaged = flip_bits(_FACTORY.build(sequence), positions)
        result = _MATCHER.match_bytes(damaged)
        assert result.outcome is MatchOutcome.TEST_PACKET
        assert result.sequence == sequence

    @given(sequences, st.integers(BODY_START + 40, FRAME_BYTES - 1))
    @settings(max_examples=40, deadline=None)
    def test_sequence_recovered_under_truncation(self, sequence, keep):
        damaged = _FACTORY.build(sequence)[:keep]
        result = _MATCHER.match_bytes(damaged)
        assert result.outcome is MatchOutcome.TEST_PACKET
        assert result.sequence == sequence


class TestSyndromeProperties:
    @given(sequences, flip_sets)
    @settings(max_examples=60, deadline=None)
    def test_syndrome_equals_inflicted_damage(self, sequence, flips):
        """extract_syndrome is the exact inverse of flip_bits."""
        positions = np.array(sorted(flips), dtype=np.int64)
        damaged = flip_bits(_FACTORY.build(sequence), positions)
        syndrome = extract_syndrome(damaged, sequence, _FACTORY)
        body_lo, body_hi = BODY_START * 8, (BODY_START + 1024) * 8
        expected_body = sorted(
            p - body_lo for p in flips if body_lo <= p < body_hi
        )
        expected_wrapper = sorted(p for p in flips if not body_lo <= p < body_hi)
        assert syndrome.body_bit_positions.tolist() == expected_body
        assert syndrome.wrapper_bit_positions.tolist() == expected_wrapper

    @given(sequences)
    @settings(max_examples=20, deadline=None)
    def test_clean_frame_has_empty_syndrome(self, sequence):
        syndrome = extract_syndrome(_FACTORY.build(sequence), sequence, _FACTORY)
        assert not syndrome.damaged
