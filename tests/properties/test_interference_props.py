"""Property-based tests: every interference source emits valid samples."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.environment.geometry import Point
from repro.interference.frontend import AmateurRadioTransmitter, MicrowaveOven
from repro.interference.narrowband import AmpsCellPhone, NarrowbandPhonePair
from repro.interference.spreadspectrum import SpreadSpectrumPhonePair
from repro.interference.wavelan import CompetingWaveLanTransmitter

positions = st.builds(
    Point,
    st.floats(min_value=-60.0, max_value=60.0),
    st.floats(min_value=-60.0, max_value=60.0),
)
signal_levels = st.floats(min_value=0.0, max_value=35.0)
seeds = st.integers(0, 2**31)


def _sources(position_a: Point, position_b: Point):
    return [
        NarrowbandPhonePair(position_a, position_b),
        NarrowbandPhonePair(position_a, position_b, talking=True),
        AmpsCellPhone(position_a),
        SpreadSpectrumPhonePair(
            handset_position=position_a, base_position=position_b
        ),
        AmateurRadioTransmitter(position_a),
        MicrowaveOven(position_a),
        MicrowaveOven(position_a, band_ghz=2.45),
        CompetingWaveLanTransmitter(position_a, victim_receive_threshold=3),
        CompetingWaveLanTransmitter(position_a, victim_receive_threshold=25),
    ]


class TestSampleValidity:
    @given(positions, positions, signal_levels, seeds)
    @settings(max_examples=40, deadline=None)
    def test_all_fields_in_valid_ranges(self, pos_a, pos_b, signal, seed):
        rng = np.random.default_rng(seed)
        rx = Point(0.0, 0.0)
        for source in _sources(pos_a, pos_b):
            for _ in range(3):
                sample = source.sample_packet(rx, signal, rng)
                assert 0.0 <= sample.miss_probability <= 1.0
                assert 0.0 <= sample.truncate_probability <= 1.0
                assert sample.jam_ber >= 0.0
                assert sample.clock_stress >= 0.0
                for dbm in (sample.signal_sample_dbm, sample.silence_sample_dbm):
                    if dbm is not None:
                        assert -200.0 < dbm < 60.0

    @given(positions, signal_levels, seeds)
    @settings(max_examples=25, deadline=None)
    def test_narrowband_never_damages(self, position, signal, seed):
        """The DSSS-rejection invariant holds at any geometry."""
        rng = np.random.default_rng(seed)
        pair = NarrowbandPhonePair(position, Point(0.5, 0.5))
        sample = pair.sample_packet(Point(0, 0), signal, rng)
        assert sample.jam_ber == 0.0
        assert sample.miss_probability == 0.0
        assert sample.truncate_probability == 0.0

    @given(positions, seeds)
    @settings(max_examples=25, deadline=None)
    def test_masked_wavelan_never_damages(self, position, seed):
        """A competing unit below the threshold contributes silence only
        — the Table-14 invariant — at any position where it is masked."""
        rng = np.random.default_rng(seed)
        tx = CompetingWaveLanTransmitter(
            position, level_at_1ft=20.0, victim_receive_threshold=25
        )
        if tx.masked_at(Point(0, 0)):
            sample = tx.sample_packet(Point(0, 0), 28.0, rng)
            assert sample.jam_ber == 0.0
            assert sample.miss_probability == 0.0
