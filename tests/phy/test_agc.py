"""AGC power summation and register readings."""

import pytest

from repro.phy.agc import AgcModel, power_sum_dbm
from repro.units import level_to_dbm


class TestPowerSum:
    def test_all_none_is_none(self):
        assert power_sum_dbm([None, None]) is None

    def test_single_component_identity(self):
        assert power_sum_dbm([-20.0]) == pytest.approx(-20.0)

    def test_equal_components_add_3db(self):
        assert power_sum_dbm([-20.0, -20.0]) == pytest.approx(-16.99, abs=0.01)

    def test_dominant_component_wins(self):
        # A component 20 dB down moves the sum by < 0.05 dB.
        assert power_sum_dbm([-10.0, -30.0]) == pytest.approx(-10.0, abs=0.05)

    def test_none_entries_skipped(self):
        assert power_sum_dbm([None, -15.0, None]) == pytest.approx(-15.0)


class TestAgcReadings:
    def test_clean_signal_reads_its_level(self, rng):
        agc = AgcModel(reading_jitter_sd=0.0)
        assert agc.signal_reading(29.5, (), rng) == 30 or agc.signal_reading(
            29.5, (), rng
        ) == 29

    def test_interference_inflates_signal_reading(self, rng):
        """The Table 12/14 signature: the AGC reads signal+interference."""
        agc = AgcModel(reading_jitter_sd=0.0)
        clean = agc.signal_reading(29.5)
        inflated = agc.signal_reading(29.5, [level_to_dbm(33.0)])
        assert inflated >= clean + 3

    def test_silence_reads_ambient_when_quiet(self):
        agc = AgcModel(reading_jitter_sd=0.0)
        assert agc.silence_reading(2.8) == 3

    def test_silence_reads_interferer(self):
        agc = AgcModel(reading_jitter_sd=0.0)
        reading = agc.silence_reading(2.8, [level_to_dbm(19.3)])
        assert reading == pytest.approx(19, abs=1)

    def test_reading_is_clamped_to_register(self, rng):
        agc = AgcModel()
        assert 0 <= agc.signal_reading(-50.0, (), rng) <= 63
        assert agc.signal_reading(200.0, (), rng) == 63

    def test_jitter_produces_spread(self, rng):
        agc = AgcModel(reading_jitter_sd=0.35)
        readings = {agc.signal_reading(29.5, (), rng) for _ in range(200)}
        assert len(readings) >= 2
