"""Dual-antenna selection diversity."""

import numpy as np

from repro.phy.antenna import AntennaDiversity


class TestSelection:
    def test_picks_stronger_branch(self, rng):
        diversity = AntennaDiversity(fading_sd=1.0)
        for _ in range(100):
            selection = diversity.select(20.0, rng)
            assert selection.level == max(selection.branch_levels)
            assert selection.antenna in (0, 1)

    def test_both_antennas_used(self, rng):
        diversity = AntennaDiversity()
        antennas = {diversity.select(20.0, rng).antenna for _ in range(200)}
        assert antennas == {0, 1}

    def test_selection_bias_is_positive(self, rng):
        """Max of two fades has positive mean: E[max] = sd/sqrt(pi)."""
        diversity = AntennaDiversity(fading_sd=0.55)
        levels = [diversity.select(20.0, rng).level for _ in range(20_000)]
        expected_bias = 0.55 / np.sqrt(np.pi)
        assert abs(np.mean(levels) - 20.0 - expected_bias) < 0.02

    def test_zero_fading_deterministic(self, rng):
        diversity = AntennaDiversity(fading_sd=0.0)
        selection = diversity.select(15.0, rng)
        assert selection.level == 15.0


class TestBulkSelection:
    def test_bulk_matches_distribution(self, rng):
        diversity = AntennaDiversity(fading_sd=0.55)
        levels, antennas = diversity.select_bulk(20.0, 20_000, rng)
        assert levels.shape == (20_000,)
        assert set(np.unique(antennas)) <= {0, 1}
        expected_bias = 0.55 / np.sqrt(np.pi)
        assert abs(levels.mean() - 20.0 - expected_bias) < 0.03

    def test_bulk_levels_are_branch_maxima(self, rng):
        diversity = AntennaDiversity(fading_sd=2.0)
        levels, _ = diversity.select_bulk(10.0, 5_000, rng)
        # Selection can only raise the median relative to one branch.
        assert np.median(levels) > 10.0
