"""The bulk distinct-subset sampler behind damaged-minority details.

``_distinct_uniform_bulk`` draws, for every damaged packet at once, a
uniform random ``size``-subset of ``range(span)`` — the bit positions /
byte offsets the scalar path draws one packet at a time.  Structure
(exact counts, distinctness, grouped ascending output) is pinned
exactly; uniformity is a seeded chi-square bound.  The older
round-based ``_distinct_uniform_rounds`` stays as the small-domain
helper and must satisfy the same contract.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.phy.errormodel import (
    _distinct_uniform_bulk,
    _distinct_uniform_rounds,
)


def _check_structure(spans, sizes, rows, values, grouped: bool):
    spans = np.asarray(spans, dtype=np.int64)
    sizes = np.minimum(np.asarray(sizes, dtype=np.int64), spans)
    assert rows.shape == values.shape
    assert rows.size == int(sizes.sum())
    counts = np.bincount(rows, minlength=spans.shape[0])
    np.testing.assert_array_equal(counts, sizes)
    # In-span and distinct within each row.
    assert (values >= 0).all()
    assert (values < spans[rows]).all()
    keys = rows * (int(spans.max()) if spans.size else 1) + values
    assert np.unique(keys).size == keys.size
    if grouped:
        # Grouped by ascending row, ascending within the row: ready-made
        # CSR content for the damage fold.
        assert (np.diff(keys) > 0).all() if keys.size > 1 else True


@pytest.mark.parametrize("sampler", [_distinct_uniform_bulk,
                                     _distinct_uniform_rounds],
                         ids=["bulk", "rounds"])
class TestStructure:
    def test_random_cases(self, sampler):
        rng = np.random.default_rng(31)
        for _ in range(30):
            m = int(rng.integers(1, 40))
            spans = rng.integers(1, 900, m)
            sizes = rng.integers(0, 80, m)
            rows, values = sampler(spans, np.minimum(sizes, spans),
                                   np.random.default_rng(7))
            _check_structure(spans, sizes, rows, values,
                             grouped=sampler is _distinct_uniform_bulk)

    def test_dense_rows_full_subsets(self, sampler):
        """Rows asking for (nearly) every element of their span."""
        spans = np.array([8, 12, 5, 300])
        sizes = np.array([8, 11, 5, 299])
        rows, values = sampler(spans, sizes, np.random.default_rng(3))
        _check_structure(spans, sizes, rows, values,
                         grouped=sampler is _distinct_uniform_bulk)

    def test_empty_input(self, sampler):
        rows, values = sampler(
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.random.default_rng(0),
        )
        assert rows.size == values.size == 0

    def test_all_zero_sizes(self, sampler):
        rows, values = sampler(
            np.array([10, 20]), np.array([0, 0]), np.random.default_rng(0)
        )
        assert rows.size == 0


class TestUniformity:
    def test_chi_square_over_positions(self):
        """Each position of a span must be drawn equally often across
        many packets (chi-square, seeded — deterministic, no flake)."""
        span, size, packets = 10, 3, 40_000
        rng = np.random.default_rng(97)
        spans = np.full(packets, span)
        sizes = np.full(packets, size)
        _, values = _distinct_uniform_bulk(spans, sizes, rng)
        observed = np.bincount(values, minlength=span)
        expected = packets * size / span
        chi2 = float(((observed - expected) ** 2 / expected).sum())
        # df = 9; P(chi2 > 27.9) ~ 0.001.  Seeded draw measured ~9.4.
        assert chi2 < 27.9

    def test_chi_square_narrow_rows(self):
        """Dense rows (complement sampling) must be uniform too."""
        span, size, packets = 15, 11, 20_000
        rng = np.random.default_rng(51)
        _, values = _distinct_uniform_bulk(
            np.full(packets, span), np.full(packets, size), rng
        )
        observed = np.bincount(values, minlength=span)
        expected = packets * size / span
        chi2 = float(((observed - expected) ** 2 / expected).sum())
        # df = 14; P(chi2 > 36.1) ~ 0.001.
        assert chi2 < 36.1
