"""The modem control unit: thresholds, status, fate application."""

import numpy as np
import pytest

from repro.phy.errormodel import InterferenceSample, PacketFate
from repro.phy.modem import (
    ModemConfig,
    RxDisposition,
    WaveLanModem,
)


@pytest.fixture
def modem() -> WaveLanModem:
    return WaveLanModem()


FRAME = bytes(range(256)) * 4  # 1024 arbitrary bytes


class TestReceivePipeline:
    def test_strong_clean_delivery(self, modem, rng):
        reception = modem.receive(FRAME, 29.5, 2.8, rng)
        assert reception.disposition is RxDisposition.DELIVERED
        assert reception.data == FRAME
        assert 27 <= reception.status.signal_level <= 32
        assert reception.status.signal_quality >= 13
        assert reception.status.antenna in (0, 1)

    def test_hopeless_level_missed(self, modem, rng):
        dispositions = {
            modem.receive(FRAME, -5.0, 2.8, rng).disposition for _ in range(50)
        }
        assert dispositions == {RxDisposition.MISSED}

    def test_threshold_filters_weak_packets(self, rng):
        modem = WaveLanModem(config=ModemConfig(receive_threshold=25))
        outcomes = [
            modem.receive(FRAME, 15.0, 2.8, rng).disposition for _ in range(100)
        ]
        assert all(d is RxDisposition.THRESHOLD_FILTERED for d in outcomes)

    def test_threshold_jitter_makes_imperfect_boundary(self, rng):
        """Figure 3: filtering near the signal level is partial."""
        modem = WaveLanModem(config=ModemConfig(receive_threshold=15))
        outcomes = [
            modem.receive(FRAME, 15.0, 2.8, rng).disposition for _ in range(400)
        ]
        filtered = sum(1 for d in outcomes if d is RxDisposition.THRESHOLD_FILTERED)
        delivered = sum(1 for d in outcomes if d is RxDisposition.DELIVERED)
        assert filtered > 20
        assert delivered > 20

    def test_quality_threshold_filters(self, rng):
        modem = WaveLanModem(config=ModemConfig(quality_threshold=16))
        reception = modem.receive(FRAME, 29.5, 2.8, rng)
        assert reception.disposition is RxDisposition.QUALITY_FILTERED

    def test_interference_inflates_silence(self, modem, rng):
        jam = InterferenceSample(
            source_name="phone",
            silence_sample_dbm=-40.0,  # ~level 16
        )
        reception = modem.receive(FRAME, 29.5, 2.8, rng, [jam])
        assert reception.status.silence_level >= 14


class TestApplyFate:
    def test_truncation(self):
        fate = PacketFate(
            missed=False,
            truncated_at_byte=100,
            flipped_bits=np.empty(0, dtype=np.int64),
            stress=4.0,
            quality=10,
        )
        assert WaveLanModem.apply_fate(FRAME, fate) == FRAME[:100]

    def test_bit_flips(self):
        fate = PacketFate(
            missed=False,
            truncated_at_byte=None,
            flipped_bits=np.array([0, 15]),
            stress=0.0,
            quality=15,
        )
        damaged = WaveLanModem.apply_fate(FRAME, fate)
        assert damaged[0] == FRAME[0] ^ 0x80
        assert damaged[1] == FRAME[1] ^ 0x01
        assert damaged[2:] == FRAME[2:]

    def test_flips_then_truncation(self):
        fate = PacketFate(
            missed=False,
            truncated_at_byte=1,
            flipped_bits=np.array([3]),
            stress=4.0,
            quality=9,
        )
        damaged = WaveLanModem.apply_fate(FRAME, fate)
        assert len(damaged) == 1
        assert damaged[0] == FRAME[0] ^ 0x10


class TestCarrierSense:
    def test_threshold_hides_carrier(self):
        modem = WaveLanModem(config=ModemConfig(receive_threshold=25))
        assert not modem.senses_carrier(20)
        assert modem.senses_carrier(25)
        assert modem.senses_carrier(30)
