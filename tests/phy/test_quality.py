"""The clock-stress / quality model."""

import numpy as np
import pytest

from repro.phy.quality import ClockStressModel, ClockStressParams


@pytest.fixture
def model() -> ClockStressModel:
    return ClockStressModel(ClockStressParams())


class TestMeanStress:
    def test_zero_above_onset(self, model):
        assert model.mean_stress(10.0) == 0.0
        assert model.mean_stress(29.5) == 0.0

    def test_rises_below_onset(self, model):
        assert model.mean_stress(5.0) > model.mean_stress(6.0) > 0.0


class TestSampledStress:
    def test_non_negative(self, model, rng):
        for level in (2.0, 6.0, 12.0, 30.0):
            for _ in range(50):
                assert model.sample_stress(level, 0.0, rng) >= 0.0

    def test_healthy_link_stress_mostly_zero(self, model, rng):
        """At strong levels the shifted draw clips to zero almost always,
        keeping undamaged quality pinned at 15 (paper Tables 4/6)."""
        draws = [model.sample_stress(29.5, 0.0, rng) for _ in range(2_000)]
        assert np.mean(np.array(draws) > 0.5) < 0.1

    def test_interference_stress_adds(self, model, rng):
        base = [model.sample_stress(29.5, 0.0, rng) for _ in range(500)]
        jammed = [model.sample_stress(29.5, 6.0, rng) for _ in range(500)]
        assert np.mean(jammed) > np.mean(base) + 5.0

    def test_bulk_matches_scalar_distribution(self, model, rng):
        bulk = model.sample_stress_bulk(np.full(20_000, 5.5), rng)
        scalar = [model.sample_stress(5.5, 0.0, rng) for _ in range(20_000)]
        assert abs(bulk.mean() - np.mean(scalar)) < 0.05


class TestTruncationProbability:
    def test_floor_at_strong_levels(self, model):
        p = model.truncation_probability(29.5)
        assert p == pytest.approx(model.params.truncation_floor, rel=0.2)

    def test_mid_ramp_around_level_10(self, model):
        """Tables 5/7: occasional truncations at levels 9-14."""
        assert 2e-4 < model.truncation_probability(9.5) < 3e-3

    def test_steep_in_error_region(self, model):
        assert model.truncation_probability(4.0) > 0.03

    def test_monotone_decreasing_in_level(self, model):
        levels = [2.0, 4.0, 6.0, 8.0, 10.0, 15.0, 30.0]
        probs = [model.truncation_probability(lv) for lv in levels]
        assert probs == sorted(probs, reverse=True)

    def test_bulk_matches_scalar(self, model):
        levels = np.array([2.0, 6.2, 9.5, 13.8, 29.5])
        bulk = model.truncation_probability_bulk(levels)
        scalar = [model.truncation_probability(float(lv)) for lv in levels]
        assert np.allclose(bulk, scalar)


class TestQualityReading:
    def test_slip_stress_exceeds_threshold(self, model, rng):
        for _ in range(100):
            assert model.slip_stress(rng) > model.params.truncation_threshold

    def test_truncated_packets_read_low_quality(self, model, rng):
        """Paper: truncated quality means 8.8-12."""
        qualities = [
            model.quality_reading(model.slip_stress(rng), False, rng)
            for _ in range(2_000)
        ]
        assert 8.0 < np.mean(qualities) < 12.0

    def test_clean_packets_read_near_15(self, model, rng):
        qualities = [model.quality_reading(0.0, False, rng) for _ in range(2_000)]
        assert 14.8 < np.mean(qualities) <= 15.0

    def test_bit_errors_cost_about_one_unit(self, model, rng):
        clean = np.mean(
            [model.quality_reading(0.0, False, rng) for _ in range(2_000)]
        )
        damaged = np.mean(
            [model.quality_reading(0.0, True, rng) for _ in range(2_000)]
        )
        assert 0.7 < clean - damaged < 1.7

    def test_register_clamped(self, model, rng):
        assert model.quality_reading(100.0, True, rng) == 0
        assert 0 <= model.quality_reading(0.0, False, rng) <= 15
