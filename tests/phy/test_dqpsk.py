"""DQPSK BER theory curve."""

import pytest

from repro.phy.dqpsk import dqpsk_ber, required_eb_n0_db


class TestDqpskBer:
    def test_approaches_half_at_terrible_snr(self):
        assert dqpsk_ber(-50.0) == pytest.approx(0.5, abs=1e-4)
        assert dqpsk_ber(-50.0) <= 0.5

    def test_monotone_decreasing(self):
        bers = [dqpsk_ber(snr) for snr in range(-10, 20)]
        assert bers == sorted(bers, reverse=True)

    def test_good_snr_is_effectively_error_free(self):
        assert dqpsk_ber(14.0) < 1e-6

    def test_moderate_snr_ballpark(self):
        # DQPSK needs roughly 12-13 dB Eb/N0 for 1e-5 (about 2.3 dB
        # worse than coherent QPSK).
        assert 11.0 < required_eb_n0_db(1e-5) < 14.0


class TestInverse:
    @pytest.mark.parametrize("target", [1e-2, 1e-4, 1e-6, 1e-9])
    def test_roundtrip(self, target):
        assert dqpsk_ber(required_eb_n0_db(target)) == pytest.approx(target)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            required_eb_n0_db(0.0)
        with pytest.raises(ValueError):
            required_eb_n0_db(0.6)
