"""The Gilbert-Elliott burst error process."""

import numpy as np
import pytest

from repro.phy.gilbert import GilbertElliott


class TestParameters:
    def test_invalid_probabilities_rejected(self):
        with pytest.raises(ValueError):
            GilbertElliott(p_good_to_bad=0.0)
        with pytest.raises(ValueError):
            GilbertElliott(p_bad_to_good=1.5)
        with pytest.raises(ValueError):
            GilbertElliott(bad_ber=0.9)

    def test_stationary_fraction(self):
        channel = GilbertElliott(p_good_to_bad=0.01, p_bad_to_good=0.09)
        assert channel.stationary_bad_fraction == pytest.approx(0.1)

    def test_mean_ber_formula(self):
        channel = GilbertElliott(
            p_good_to_bad=0.01, p_bad_to_good=0.09, good_ber=0.0, bad_ber=0.3
        )
        assert channel.mean_ber == pytest.approx(0.03)

    def test_mean_burst_length(self):
        channel = GilbertElliott(p_bad_to_good=0.1)
        assert channel.mean_burst_bits == pytest.approx(10.0)


class TestSampling:
    def test_positions_sorted_unique_in_range(self, rng):
        channel = GilbertElliott()
        positions = channel.error_positions(50_000, rng)
        assert (np.diff(positions) > 0).all()
        assert positions.min() >= 0 and positions.max() < 50_000

    def test_empty_stream(self, rng):
        assert len(GilbertElliott().error_positions(0, rng)) == 0

    def test_empirical_ber_matches_stationary(self, rng):
        channel = GilbertElliott(
            p_good_to_bad=1e-3, p_bad_to_good=0.05, good_ber=0.0, bad_ber=0.25
        )
        n = 2_000_000
        errors = len(channel.error_positions(n, rng))
        assert errors / n == pytest.approx(channel.mean_ber, rel=0.15)

    def test_errors_are_clustered(self, rng):
        """The burstiness property: error gaps are far more skewed than
        an i.i.d. channel at the same rate."""
        channel = GilbertElliott(
            p_good_to_bad=2e-4, p_bad_to_good=0.05, good_ber=0.0, bad_ber=0.25
        )
        positions = channel.error_positions(3_000_000, rng)
        gaps = np.diff(positions)
        # Many tiny gaps (inside bursts) AND some huge gaps (between).
        assert np.median(gaps) < 20
        assert np.percentile(gaps, 99) > 500

    def test_apply_flips_exactly_sampled_positions(self, rng):
        channel = GilbertElliott()
        bits = np.zeros(10_000, dtype=np.uint8)
        out = channel.apply(bits, rng)
        assert set(np.unique(out)) <= {0, 1}

    def test_forced_start_state(self, rng):
        hot = GilbertElliott(
            p_good_to_bad=1e-6, p_bad_to_good=1e-6, good_ber=0.0, bad_ber=0.5
        )
        # Starting BAD with a nearly absorbing chain: errors everywhere.
        errors_bad = len(hot.error_positions(10_000, rng, start_bad=True))
        errors_good = len(hot.error_positions(10_000, rng, start_bad=False))
        assert errors_bad > 4_000
        assert errors_good == 0


class TestCalibration:
    def test_calibrated_to_syndromes(self):
        channel = GilbertElliott.calibrated_to_syndromes(
            mean_burst_bits=12.0, mean_ber=1e-3
        )
        assert channel.mean_burst_bits == pytest.approx(12.0)
        assert channel.mean_ber == pytest.approx(1e-3, rel=0.01)

    def test_bad_burst_length_rejected(self):
        with pytest.raises(ValueError):
            GilbertElliott.calibrated_to_syndromes(0.5, 1e-3)


class TestScramble:
    """The length-preserving interleaver permutation (added for the
    burst ablation; lives in repro.fec.interleave)."""

    def test_roundtrip_any_length(self, rng):
        from repro.fec.interleave import BlockInterleaver

        interleaver = BlockInterleaver(16, 64)
        for n in (1, 100, 1024, 2311):
            bits = rng.integers(0, 2, n).astype(np.uint8)
            assert np.array_equal(
                interleaver.unscramble(interleaver.scramble(bits)), bits
            )

    def test_scramble_is_length_preserving(self, rng):
        from repro.fec.interleave import BlockInterleaver

        interleaver = BlockInterleaver(16, 64)
        bits = rng.integers(0, 2, 2311).astype(np.uint8)
        assert len(interleaver.scramble(bits)) == 2311

    def test_scramble_spreads_bursts(self, rng):
        from repro.fec.interleave import BlockInterleaver

        interleaver = BlockInterleaver(16, 64)
        n = 2048
        perm = interleaver.permutation(n)
        # A 20-bit wire burst maps to source positions far apart.
        burst_sources = perm[500:520]
        assert np.median(np.abs(np.diff(np.sort(burst_sources)))) >= 16
