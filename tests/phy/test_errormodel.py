"""The calibrated impairment pipeline."""

import numpy as np
import pytest

from repro.framing.testpacket import FRAME_BYTES
from repro.phy.errormodel import (
    ErrorModelParams,
    InterferenceSample,
    WaveLanErrorModel,
)


@pytest.fixture
def model() -> WaveLanErrorModel:
    return WaveLanErrorModel()


class TestProbabilityCurves:
    def test_miss_floor_is_host_loss(self, model):
        """Table 2: .01-.07% loss on a perfect channel."""
        p = model.miss_probability(29.5)
        assert p == pytest.approx(model.params.host_loss_probability, rel=0.05)

    def test_miss_negligible_at_level_10(self, model):
        assert model.miss_probability(10.0) < 1e-3

    def test_miss_severe_in_deep_error_region(self, model):
        assert model.miss_probability(3.0) > 0.8

    def test_miss_monotone(self, model):
        probs = [model.miss_probability(lv) for lv in (2, 4, 6, 8, 10, 20)]
        assert probs == sorted(probs, reverse=True)

    def test_hit_calibration_tx5(self, model):
        """Tx5 (level 9.5): ~25 of 1440 packets took a burst."""
        assert 0.008 < model.hit_probability(9.5) < 0.03

    def test_hit_calibration_body(self, model):
        """Body trial (level 6.73): ~224 of 1442."""
        assert 0.10 < model.hit_probability(6.73) < 0.22

    def test_hit_negligible_on_strong_link(self, model):
        assert model.hit_probability(29.5) < 1e-8


class TestPacketFates:
    def test_strong_link_mostly_clean(self, model, rng):
        outcomes = [
            model.sample_packet(29.5, FRAME_BYTES, rng) for _ in range(3_000)
        ]
        damaged = sum(1 for f in outcomes if not f.missed and f.damaged)
        missed = sum(1 for f in outcomes if f.missed)
        assert damaged == 0
        assert missed < 10

    def test_fate_fields_consistent(self, model, rng):
        for _ in range(500):
            fate = model.sample_packet(6.0, FRAME_BYTES, rng)
            if fate.missed:
                assert not fate.damaged
                continue
            if fate.truncated:
                assert 8 <= fate.truncated_at_byte < FRAME_BYTES
                # No flips beyond the truncation point.
                assert (
                    fate.flipped_bits < fate.truncated_at_byte * 8
                ).all()
            assert 0 <= fate.quality <= 15

    def test_flips_within_frame(self, model, rng):
        for _ in range(300):
            fate = model.sample_packet(5.5, FRAME_BYTES, rng)
            if len(fate.flipped_bits):
                assert fate.flipped_bits.min() >= 0
                assert fate.flipped_bits.max() < FRAME_BYTES * 8
                # Positions unique and sorted.
                assert (np.diff(fate.flipped_bits) > 0).all()

    def test_burst_sizes_match_paper_scale(self, model, rng):
        """Tx5: 82 bits over 25 packets, mean ~3.3, worst 7."""
        sizes = []
        for _ in range(30_000):
            fate = model.sample_packet(9.5, FRAME_BYTES, rng)
            if not fate.missed and len(fate.flipped_bits):
                sizes.append(len(fate.flipped_bits))
        assert sizes, "expected some bursts at level 9.5"
        assert 2.0 < np.mean(sizes) < 5.0


class TestInterferenceEffects:
    def test_miss_probability_composes(self, model, rng):
        jam = InterferenceSample(source_name="j", miss_probability=1.0)
        fate = model.sample_packet(29.5, FRAME_BYTES, rng, [jam])
        assert fate.missed

    def test_truncate_probability_applies(self, model, rng):
        jam = InterferenceSample(source_name="j", truncate_probability=1.0)
        truncated = 0
        for _ in range(200):
            fate = model.sample_packet(29.5, FRAME_BYTES, rng, [jam])
            if not fate.missed and fate.truncated:
                truncated += 1
        assert truncated > 190

    def test_jam_ber_injects_errors(self, model, rng):
        jam = InterferenceSample(source_name="j", jam_ber=1e-3)
        totals = 0
        for _ in range(200):
            fate = model.sample_packet(29.5, FRAME_BYTES, rng, [jam])
            totals += len(fate.flipped_bits)
        expected = 200 * 1e-3 * FRAME_BYTES * 8
        assert 0.5 * expected < totals < 1.5 * expected

    def test_clock_stress_lowers_quality(self, model, rng):
        jam = InterferenceSample(source_name="j", clock_stress=5.0)
        qualities = [
            model.sample_packet(29.5, FRAME_BYTES, rng, [jam]).quality
            for _ in range(200)
        ]
        assert np.mean(qualities) < 11.0

    def test_bursty_jam_avoids_frame_edges(self, model, rng):
        """The calibrated jam window stays inside the body ~97% of the
        time (Table 11: 1% wrapper vs 59% body damage)."""
        jam = InterferenceSample(source_name="j", jam_ber=2e-3, bursty=True)
        lead_bits = int(FRAME_BYTES * 8 * 0.045)
        edge_hits = 0
        packets_with_errors = 0
        for _ in range(400):
            fate = model.sample_packet(29.5, FRAME_BYTES, rng, [jam])
            if len(fate.flipped_bits):
                packets_with_errors += 1
                if (fate.flipped_bits < lead_bits).any():
                    edge_hits += 1
        assert packets_with_errors > 100
        assert edge_hits / packets_with_errors < 0.15


class TestBulkPath:
    def test_bulk_statistics_match_scalar(self, model):
        """The vectorized fast path and the per-packet path must agree
        on outcome rates (they share calibration constants)."""
        rng_bulk = np.random.default_rng(0)
        rng_scalar = np.random.default_rng(1)
        n = 40_000
        level = 6.5
        flags = model.sample_bulk_clean(np.full(n, level), FRAME_BYTES, rng_bulk)
        bulk_miss = flags["missed"].mean()
        bulk_trunc = flags["truncated"].mean()
        bulk_hit = flags["hit"].mean()

        miss = trunc = hit = 0
        for _ in range(n):
            fate = model.sample_packet(level, FRAME_BYTES, rng_scalar)
            if fate.missed:
                miss += 1
            elif fate.truncated:
                trunc += 1
            elif len(fate.flipped_bits):
                hit += 1
        assert bulk_miss == pytest.approx(miss / n, abs=0.01)
        assert bulk_trunc == pytest.approx(trunc / n, abs=0.005)
        assert bulk_hit == pytest.approx(hit / n, abs=0.01)

    def test_detail_clean_packet_realizes_flags(self, model, rng):
        fate = model.detail_clean_packet(
            stress=0.0,
            truncated=True,
            hit=True,
            residual_bits=0,
            frame_bytes=FRAME_BYTES,
            rng=rng,
        )
        assert fate.truncated
        assert fate.quality < 12  # slip stress applied


class TestResidualBer:
    """The residual-BER process is Binomial in the frame's bit count:
    at high BER a packet must be able to carry *several* residual bit
    errors (the old one-draw Bernoulli capped it at one per packet)."""

    BER = 1e-3  # ~8.6 expected bit errors per 1072-byte frame

    @pytest.fixture
    def hot_model(self) -> WaveLanErrorModel:
        return WaveLanErrorModel(ErrorModelParams(residual_ber=self.BER))

    def test_scalar_mean_bits_match_binomial(self, hot_model):
        rng = np.random.default_rng(7)
        frame_bits = FRAME_BYTES * 8
        n = 2_000
        total = 0
        multi_bit_packets = 0
        for _ in range(n):
            fate = hot_model.sample_packet(29.5, FRAME_BYTES, rng)
            if fate.missed:
                continue
            total += len(fate.flipped_bits)
            if len(fate.flipped_bits) > 1:
                multi_bit_packets += 1
        expected = self.BER * frame_bits
        assert total / n == pytest.approx(expected, rel=0.1)
        # The defining regression: multi-bit residual damage exists.
        assert multi_bit_packets > n / 2

    def test_bulk_mean_bits_match_binomial(self, hot_model):
        rng = np.random.default_rng(8)
        frame_bits = FRAME_BYTES * 8
        n = 20_000
        flags = hot_model.sample_bulk_clean(
            np.full(n, 29.5), FRAME_BYTES, rng
        )
        residual = flags["residual_bits"]
        expected = self.BER * frame_bits
        assert residual.mean() == pytest.approx(expected, rel=0.05)
        assert (residual > 1).mean() > 0.5

    def test_low_ber_still_rare(self, model):
        """At the calibrated 2e-10 the process stays a near-never event
        (Table 2: ~1 corrupted bit in 10^10)."""
        rng = np.random.default_rng(9)
        flags = model.sample_bulk_clean(
            np.full(50_000, 29.5), FRAME_BYTES, rng
        )
        assert int(flags["residual_bits"].sum()) <= 1
