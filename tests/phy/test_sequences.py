"""Spreading-sequence family search."""

import numpy as np
import pytest

from repro.phy.dsss import BARKER_11
from repro.phy.sequences import (
    build_family,
    candidate_sequences,
    int_to_sequence,
    peak_autocorrelation_sidelobe,
    peak_cross_correlation,
)


class TestPrimitives:
    def test_int_to_sequence_bits(self):
        seq = int_to_sequence(0b10000000001)
        assert seq[0] == 1 and seq[-1] == 1
        assert (seq[1:-1] == -1).all()

    def test_barker_has_unit_sidelobes(self):
        assert peak_autocorrelation_sidelobe(BARKER_11) == 1

    def test_cross_correlation_symmetric(self):
        a = int_to_sequence(0b10110111000)
        b = int_to_sequence(0b11100010010)
        assert peak_cross_correlation(a, b) == peak_cross_correlation(b, a)

    def test_cross_correlation_self_is_peak(self):
        assert peak_cross_correlation(BARKER_11, BARKER_11) == 11


class TestCandidates:
    def test_sidelobe_1_candidates_are_barker_class(self):
        """Only Barker-11 and its trivial transforms have sidelobes <= 1."""
        candidates = candidate_sequences(max_self_sidelobe=1)
        assert 1 <= len(candidates) <= 8  # negation/reversal symmetries
        for seq in candidates:
            assert peak_autocorrelation_sidelobe(seq) <= 1

    def test_looser_bound_more_candidates(self):
        tight = candidate_sequences(max_self_sidelobe=1)
        loose = candidate_sequences(max_self_sidelobe=3)
        assert len(loose) > len(tight)


class TestFamilies:
    def test_family_honours_bounds(self):
        family = build_family(max_self_sidelobe=2, max_cross_peak=7)
        assert family.max_self_sidelobe <= 2
        assert family.max_cross_peak <= 7
        for seq in family.sequences:
            assert peak_autocorrelation_sidelobe(seq) <= 2

    def test_family_starts_from_barker(self):
        family = build_family(max_self_sidelobe=1, max_cross_peak=9)
        assert any(np.array_equal(s, BARKER_11) for s in family.sequences)

    def test_barker_quality_family_is_tiny(self):
        """The paper's 'difficult' claim: sidelobe <= 1 caps the family
        at ~2 sequences no matter the cross bound."""
        family = build_family(max_self_sidelobe=1, max_cross_peak=9)
        assert family.size <= 2

    def test_rejection_db_decreases_with_cross_peak(self):
        tight = build_family(max_self_sidelobe=3, max_cross_peak=5)
        loose = build_family(max_self_sidelobe=3, max_cross_peak=9)
        if tight.size >= 2 and loose.size >= 2:
            assert tight.rejection_db() >= loose.rejection_db()

    def test_limit_respected(self):
        family = build_family(max_self_sidelobe=4, max_cross_peak=9, limit=5)
        assert family.size <= 5
