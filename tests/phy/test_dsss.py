"""Chip-level DSSS: the mechanism behind narrowband jam resistance."""

import numpy as np
import pytest

from repro.phy.dsss import BARKER_11, CHIPS_PER_BIT, DsssCodec, processing_gain_db


class TestBarkerSequence:
    def test_length_11(self):
        assert len(BARKER_11) == CHIPS_PER_BIT == 11

    def test_chips_are_plus_minus_one(self):
        assert set(np.abs(BARKER_11).tolist()) == {1}

    def test_barker_autocorrelation_sidelobes(self):
        """Barker property: all off-peak autocorrelation magnitudes <= 1 —
        the 'very low self-correlation' of Section 8."""
        auto = DsssCodec().autocorrelation()
        assert auto[0] == 11
        assert (np.abs(auto[1:]) <= 1).all()

    def test_processing_gain(self):
        assert processing_gain_db() == pytest.approx(10.41, abs=0.01)


class TestCodecValidation:
    def test_empty_sequence_rejected(self):
        with pytest.raises(ValueError):
            DsssCodec(np.array([], dtype=np.int8))

    def test_non_unit_chips_rejected(self):
        with pytest.raises(ValueError):
            DsssCodec(np.array([1, 2, -1], dtype=np.int8))


class TestSpreadDespread:
    def test_roundtrip(self, rng):
        codec = DsssCodec()
        bits = rng.integers(0, 2, 200).astype(np.uint8)
        assert np.array_equal(codec.despread(codec.spread(bits)), bits)

    def test_spread_length(self):
        codec = DsssCodec()
        chips = codec.spread(np.array([0, 1, 1], dtype=np.uint8))
        assert len(chips) == 3 * 11

    def test_tolerates_5_chip_flips_per_bit(self, rng):
        """Flipping up to 5 of 11 chips never corrupts a bit — the
        arithmetic core of DSSS noise tolerance."""
        codec = DsssCodec()
        bits = rng.integers(0, 2, 50).astype(np.uint8)
        chips = codec.spread(bits).astype(np.int32)
        for bit_index in range(50):
            flip_at = rng.choice(11, size=5, replace=False) + bit_index * 11
            chips[flip_at] *= -1
        assert np.array_equal(codec.despread(chips), bits)

    def test_six_flips_corrupts(self):
        codec = DsssCodec()
        chips = codec.spread(np.array([1], dtype=np.uint8)).astype(np.int32)
        chips[:6] *= -1
        assert codec.despread(chips)[0] == 0

    def test_chip_error_tolerance_value(self):
        assert DsssCodec().chip_error_tolerance() == 5

    def test_misaligned_chip_count_rejected(self):
        with pytest.raises(ValueError):
            DsssCodec().despread(np.ones(12, dtype=np.int32))


class TestCrossCorrelation:
    def test_self_peak(self):
        codec = DsssCodec()
        assert codec.cross_correlation(codec) == 11

    def test_length_mismatch_rejected(self):
        a = DsssCodec()
        b = DsssCodec(np.array([1, -1, 1], dtype=np.int8))
        with pytest.raises(ValueError):
            a.cross_correlation(b)
