"""Calibration regression pins.

Every constant in docs/CALIBRATION.md is pinned here against the paper
quantity it encodes.  If a refactor moves one of these numbers, this
file fails with the paper's context attached — update the ledger and
the affected benchmark bands deliberately, not by accident.
"""

import pytest

from repro import units
from repro.environment.geometry import Point
from repro.environment.materials import (
    CONCRETE_BLOCK_WALL,
    HUMAN_BODY,
    PLASTER_MESH_WALL,
)
from repro.environment.propagation import (
    SIGNAL_SATURATION_LEVEL,
    AmbientNoise,
    PropagationModel,
)
from repro.interference.spreadspectrum import CAPTURE_CUTOFF_LEVELS
from repro.phy.dsss import processing_gain_db
from repro.phy.errormodel import WaveLanErrorModel
from repro.phy.quality import ClockStressModel, ClockStressParams


class TestUnitMapping:
    def test_tx_power_is_the_papers_500mw(self):
        assert units.WAVELAN_TX_POWER_MW == 500.0

    def test_quality_register_is_4_bits(self):
        assert units.QUALITY_MAX == 15

    def test_agc_mapping(self):
        assert units.DB_PER_LEVEL == 2.0
        assert units.AGC_FLOOR_DBM == -72.0


class TestMaterialLedger:
    def test_section_6_1_wall_costs(self):
        assert PLASTER_MESH_WALL.attenuation_levels == 5.0  # "about 5 points"
        assert CONCRETE_BLOCK_WALL.attenuation_levels == 2.0  # "only 2 points"

    def test_section_6_3_body_cost(self):
        assert HUMAN_BODY.attenuation_levels == 6.0  # 12.55 -> 6.73


class TestPropagationLedger:
    def test_office_anchor(self):
        # Sec 5.1: office trials at level ~29.5; Table 4 Air 1: 30.58@7ft.
        model = PropagationModel.office()
        level = model.mean_level(Point(0, 0), Point(7, 0))
        assert level == pytest.approx(30.5, abs=0.3)

    def test_saturation_reading(self):
        assert SIGNAL_SATURATION_LEVEL == 34.0

    def test_ambient_band(self):
        ambient = AmbientNoise()
        assert 2.0 < ambient.mean_level < 4.0  # quiet-trial silence means


class TestErrorModelLedger:
    @pytest.fixture
    def model(self):
        return WaveLanErrorModel()

    def test_host_loss_floor(self, model):
        # Table 2: .01-.07% loss on a perfect channel.
        assert 1e-4 < model.params.host_loss_probability < 7e-4

    def test_tx5_hit_rate(self, model):
        # Table 5: 25 of 1440 packets damaged at level 9.5 (1.7%).
        assert model.hit_probability(9.5) == pytest.approx(0.017, abs=0.008)

    def test_body_hit_rate(self, model):
        # Table 8: 224 of 1442 at level 6.73 (15.5%).
        assert model.hit_probability(6.73) == pytest.approx(0.155, abs=0.05)

    def test_burst_mean_matches_tx5(self, model):
        # 82 bits over 25 packets: mean burst ~3.3 bits.
        p = model.params.burst_continue_probability
        mean_burst = 1.0 + p / (1.0 - p)
        assert mean_burst == pytest.approx(3.3, abs=0.7)

    def test_residual_ber_matches_table2(self, model):
        # ~1 corrupted bit over >1e10 office bits.
        assert 5e-11 < model.params.residual_ber < 1e-9

    def test_office_truncation_floor(self):
        # Table 2: 1 truncation in 102,720 packets.
        model = ClockStressModel(ClockStressParams())
        assert model.truncation_probability(29.5) == pytest.approx(1e-5, rel=0.5)

    def test_error_region_boundary(self, model):
        # Figure 2: reliable at >= 10, "very high" below 8.
        assert model.miss_probability(10.0) < 1e-3
        assert model.miss_probability(5.0) > 0.3


class TestPhyLedger:
    def test_processing_gain_is_11_chips(self):
        assert processing_gain_db() == pytest.approx(10.41, abs=0.01)

    def test_ss_capture_cutoff(self):
        # RS remote cluster harmless at margin ~-9; AT&T handset
        # damaging at ~-3.5.
        assert -9.0 < CAPTURE_CUTOFF_LEVELS < -3.5

    def test_jam_density_matches_worst_body(self):
        # Table 11 worst packet: 4.9% of body bits over partial overlap.
        assert WaveLanErrorModel.JAM_DENSITY == pytest.approx(0.03, abs=0.02)
