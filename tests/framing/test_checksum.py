"""RFC 1071 Internet checksum."""

import pytest

from repro.framing.checksum import internet_checksum, verify_internet_checksum


class TestInternetChecksum:
    def test_rfc1071_example(self):
        # Example from RFC 1071 section 3: bytes 00 01 f2 03 f4 f5 f6 f7.
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        # The one's-complement sum is ddf2; the checksum is its complement.
        assert internet_checksum(data) == (~0xDDF2) & 0xFFFF

    def test_valid_ip_header_sums_to_zero(self):
        header = bytes.fromhex("45000073000040004011b861c0a80001c0a800c7")
        assert internet_checksum(header) == 0
        assert verify_internet_checksum(header)

    def test_odd_length_padding(self):
        # Odd length pads with a zero byte.
        assert internet_checksum(b"\x12\x34\x56") == internet_checksum(
            b"\x12\x34\x56\x00"
        )

    def test_corruption_detected(self):
        header = bytearray.fromhex("45000073000040004011b861c0a80001c0a800c7")
        header[8] ^= 0x01
        assert not verify_internet_checksum(bytes(header))

    def test_empty_input(self):
        assert internet_checksum(b"") == 0xFFFF

    @pytest.mark.parametrize("size", [2, 63, 64, 65, 1024])
    def test_vector_path_matches_loop_path(self, size):
        """The numpy fast path and the byte loop must agree bit-for-bit."""
        import numpy as np

        rng = np.random.default_rng(size)
        data = rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()
        # Force the loop path by computing on small chunks folded by hand.
        total = 0
        padded = data if len(data) % 2 == 0 else data + b"\x00"
        for i in range(0, len(padded), 2):
            total += (padded[i] << 8) | padded[i + 1]
        while total >> 16:
            total = (total & 0xFFFF) + (total >> 16)
        assert internet_checksum(data) == (~total) & 0xFFFF
