"""IPv4 and UDP header construction and tolerant parsing."""

import pytest

from repro.framing.ip import Ipv4Header, bytes_to_ip, ip_to_bytes
from repro.framing.udp import UdpHeader


class TestIpAddressCodec:
    def test_roundtrip(self):
        assert bytes_to_ip(ip_to_bytes("128.2.222.101")) == "128.2.222.101"

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            ip_to_bytes("1.2.3")
        with pytest.raises(ValueError):
            bytes_to_ip(b"\x01\x02")


class TestIpv4Header:
    def _header(self) -> Ipv4Header:
        return Ipv4Header(
            src="128.2.222.101",
            dst="128.2.222.102",
            total_length=1052,
            identification=77,
        )

    def test_roundtrip(self):
        parsed = Ipv4Header.parse(self._header().to_bytes())
        assert parsed.src == "128.2.222.101"
        assert parsed.dst == "128.2.222.102"
        assert parsed.total_length == 1052
        assert parsed.identification == 77
        assert parsed.checksum_valid

    def test_checksum_invalid_after_corruption(self):
        wire = bytearray(self._header().to_bytes())
        wire[15] ^= 0x10
        assert not Ipv4Header.parse(bytes(wire)).checksum_valid

    def test_parse_short_raises(self):
        with pytest.raises(ValueError):
            Ipv4Header.parse(b"\x45\x00")

    def test_extra_bytes_ignored(self):
        wire = self._header().to_bytes() + b"junk"
        assert Ipv4Header.parse(wire).checksum_valid


class TestUdpHeader:
    SRC, DST = "10.0.0.1", "10.0.0.2"

    def _wire(self, payload: bytes = b"data!") -> bytes:
        header = UdpHeader(src_port=5001, dst_port=5002, length=8 + len(payload))
        return header.to_bytes(payload, self.SRC, self.DST)

    def test_roundtrip(self):
        parsed = UdpHeader.parse(self._wire(), self.SRC, self.DST)
        assert parsed.src_port == 5001
        assert parsed.dst_port == 5002
        assert parsed.length == 13
        assert parsed.checksum_valid

    def test_checksum_covers_payload(self):
        wire = bytearray(self._wire())
        wire[-1] ^= 0x01  # corrupt payload
        assert not UdpHeader.parse(bytes(wire), self.SRC, self.DST).checksum_valid

    def test_checksum_covers_pseudo_header(self):
        wire = self._wire()
        assert not UdpHeader.parse(wire, "10.0.0.9", self.DST).checksum_valid

    def test_parse_without_ips_skips_verification(self):
        parsed = UdpHeader.parse(self._wire())
        assert parsed.checksum_valid  # unknown, defaults valid

    def test_parse_short_raises(self):
        with pytest.raises(ValueError):
            UdpHeader.parse(b"\x00\x01")

    def test_zero_checksum_becomes_ffff(self):
        # RFC 768: a computed zero checksum is transmitted as 0xFFFF.
        # Find a payload whose checksum would be zero: complement of the
        # pseudo-header+header sum.  Easier: verify no frame ever carries
        # a zero checksum field.
        for payload in (b"", b"\x00", b"\xff\xff", b"test"):
            wire = self._wire(payload)
            assert wire[6:8] != b"\x00\x00"
