"""Ethernet II framing and the MAC address type."""

import pytest

from repro.framing.ethernet import (
    BROADCAST,
    ETHERTYPE_IPV4,
    EthernetFrame,
    MacAddress,
)


class TestMacAddress:
    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            MacAddress(b"\x01\x02")

    def test_from_string_roundtrip(self):
        mac = MacAddress.from_string("02:60:8c:00:00:01")
        assert str(mac) == "02:60:8c:00:00:01"

    def test_malformed_string_rejected(self):
        with pytest.raises(ValueError):
            MacAddress.from_string("02:60:8c:00:00")

    def test_station_addresses_distinct_and_unicast(self):
        a = MacAddress.station(1)
        b = MacAddress.station(2)
        assert a.octets != b.octets
        assert not a.is_multicast

    def test_broadcast_is_multicast(self):
        assert BROADCAST.is_multicast


class TestEthernetFrame:
    def _frame(self) -> EthernetFrame:
        return EthernetFrame(
            dst=MacAddress.station(2),
            src=MacAddress.station(1),
            ethertype=ETHERTYPE_IPV4,
            payload=b"x" * 50,
        )

    def test_roundtrip_with_fcs(self):
        wire = self._frame().to_bytes(with_fcs=True)
        parsed = EthernetFrame.parse(wire, with_fcs=True)
        assert parsed == self._frame()

    def test_roundtrip_without_fcs(self):
        wire = self._frame().to_bytes(with_fcs=False)
        parsed = EthernetFrame.parse(wire, with_fcs=False)
        assert parsed.payload == b"x" * 50

    def test_fcs_valid_on_fresh_frame(self):
        assert EthernetFrame.fcs_ok(self._frame().to_bytes())

    def test_fcs_invalid_after_corruption(self):
        wire = bytearray(self._frame().to_bytes())
        wire[20] ^= 0x40
        assert not EthernetFrame.fcs_ok(bytes(wire))

    def test_parse_tolerates_garbage_fields(self):
        # Corrupt every header byte: parse must not raise.
        wire = bytearray(self._frame().to_bytes())
        for i in range(14):
            wire[i] ^= 0xFF
        parsed = EthernetFrame.parse(bytes(wire))
        assert len(parsed.payload) == 50

    def test_parse_too_short_raises(self):
        with pytest.raises(ValueError):
            EthernetFrame.parse(b"short")
