"""Bit/byte manipulation helpers."""

import numpy as np
import pytest

from repro.framing.bits import (
    bits_to_bytes,
    bytes_to_bits,
    flip_bits,
    hamming_distance,
    popcount_bytes,
)


class TestBitConversion:
    def test_msb_first_order(self):
        bits = bytes_to_bits(b"\x80")
        assert bits.tolist() == [1, 0, 0, 0, 0, 0, 0, 0]

    def test_roundtrip(self):
        data = bytes(range(256))
        assert bits_to_bytes(bytes_to_bits(data)) == data

    def test_non_octet_length_rejected(self):
        with pytest.raises(ValueError):
            bits_to_bytes(np.array([1, 0, 1]))


class TestHammingDistance:
    def test_identical_is_zero(self):
        assert hamming_distance(b"abc", b"abc") == 0

    def test_single_bit(self):
        assert hamming_distance(b"\x00", b"\x01") == 1

    def test_all_bits(self):
        assert hamming_distance(b"\x00\x00", b"\xff\xff") == 16

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            hamming_distance(b"ab", b"abc")


class TestFlipBits:
    def test_flip_msb_of_first_byte(self):
        assert flip_bits(b"\x00\x00", np.array([0])) == b"\x80\x00"

    def test_flip_lsb_of_second_byte(self):
        assert flip_bits(b"\x00\x00", np.array([15])) == b"\x00\x01"

    def test_flip_is_involution(self):
        data = bytes(range(16))
        positions = np.array([0, 7, 33, 100])
        assert flip_bits(flip_bits(data, positions), positions) == data

    def test_flip_count_matches_hamming(self):
        data = bytes(32)
        positions = np.array([1, 17, 99, 200])
        flipped = flip_bits(data, positions)
        assert hamming_distance(data, flipped) == len(positions)

    def test_empty_positions_identity(self):
        data = b"hello"
        assert flip_bits(data, np.array([], dtype=np.int64)) == data


class TestPopcount:
    def test_empty(self):
        assert popcount_bytes(b"") == 0

    def test_known(self):
        assert popcount_bytes(b"\xff\x0f") == 12
