"""The WaveLAN modem's network-ID framing."""

import pytest

from repro.framing.modem import DEFAULT_NETWORK_ID, ModemFrame


class TestModemFrame:
    def test_roundtrip(self):
        frame = ModemFrame(network_id=0x1234, ethernet=b"inner frame")
        parsed = ModemFrame.parse(frame.to_bytes())
        assert parsed.network_id == 0x1234
        assert parsed.ethernet == b"inner frame"

    def test_network_id_is_16_bits(self):
        frame = ModemFrame(network_id=0x1_FFFF, ethernet=b"")
        assert ModemFrame.parse(frame.to_bytes()).network_id == 0xFFFF

    def test_matches_configured_id(self):
        frame = ModemFrame(network_id=DEFAULT_NETWORK_ID, ethernet=b"")
        assert frame.matches(DEFAULT_NETWORK_ID)
        assert not frame.matches(DEFAULT_NETWORK_ID ^ 1)

    def test_parse_too_short_raises(self):
        with pytest.raises(ValueError):
            ModemFrame.parse(b"\x01")
