"""CRC-32: the from-scratch implementation is the specification."""

import zlib

import pytest

from repro.framing.crc import (
    append_fcs,
    check_fcs,
    crc32,
    crc32_reference,
    crc32_update,
    crc32_update_reference,
)


class TestCrc32KnownVectors:
    def test_check_value(self):
        # The standard CRC-32 check vector.
        assert crc32_reference(b"123456789") == 0xCBF43926

    def test_empty_input(self):
        assert crc32_reference(b"") == 0x00000000

    def test_single_zero_byte(self):
        assert crc32_reference(b"\x00") == 0xD202EF8D

    @pytest.mark.parametrize(
        "data",
        [b"", b"a", b"hello world", bytes(range(256)), b"\xff" * 64],
    )
    def test_fast_path_matches_reference(self, data):
        assert crc32(data) == crc32_reference(data)

    @pytest.mark.parametrize(
        "data", [b"", b"x", b"The quick brown fox", bytes(1000)]
    )
    def test_matches_zlib(self, data):
        assert crc32_reference(data) == zlib.crc32(data) & 0xFFFFFFFF


class TestCrc32Update:
    def test_incremental_equals_oneshot(self):
        data = b"abcdefghij"
        state = 0xFFFFFFFF
        state = crc32_update(state, data[:4])
        state = crc32_update(state, data[4:])
        assert (state ^ 0xFFFFFFFF) == crc32_reference(data)

    @pytest.mark.parametrize("state", [0x00000000, 0xFFFFFFFF, 0xDEADBEEF])
    @pytest.mark.parametrize(
        "data", [b"", b"z", b"streaming chunk", bytes(range(256))]
    )
    def test_fast_update_matches_reference(self, state, data):
        assert crc32_update(state, data) == crc32_update_reference(state, data)

    def test_empty_chunk_is_identity(self):
        assert crc32_update(0x12345678, b"") == 0x12345678


class TestFcs:
    def test_append_then_check(self):
        frame = append_fcs(b"payload bytes here")
        assert check_fcs(frame)

    def test_detects_single_bit_flip(self):
        frame = bytearray(append_fcs(b"payload bytes here"))
        frame[3] ^= 0x01
        assert not check_fcs(bytes(frame))

    def test_detects_fcs_corruption(self):
        frame = bytearray(append_fcs(b"payload"))
        frame[-1] ^= 0x80
        assert not check_fcs(bytes(frame))

    def test_too_short_fails(self):
        assert not check_fcs(b"abc")
