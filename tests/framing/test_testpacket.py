"""The paper's test packet format."""

import pytest

from repro.framing import ethernet
from repro.framing.crc import check_fcs
from repro.framing.ip import Ipv4Header
from repro.framing.testpacket import (
    BODY_BITS,
    BODY_BYTES,
    BODY_END,
    BODY_START,
    FRAME_BYTES,
    TestPacketFactory,
    TestPacketSpec,
    WORDS_PER_PACKET,
)
from repro.framing.udp import UdpHeader


class TestFormatConstants:
    def test_body_is_256_words(self):
        assert WORDS_PER_PACKET == 256
        assert BODY_BYTES == 1024
        assert BODY_BITS == 8192

    def test_frame_length(self):
        # modem(2) + eth hdr(14) + ip(20) + udp(8) + body(1024) + fcs(4)
        assert FRAME_BYTES == 2 + 14 + 20 + 8 + 1024 + 4

    def test_region_slices_cover_frame(self):
        wrapper = TestPacketFactory.wrapper_slices()
        body = TestPacketFactory.body_slice()
        covered = set()
        for s in wrapper + [body]:
            covered.update(range(s.start, s.stop))
        assert covered == set(range(FRAME_BYTES))


class TestFrameConstruction:
    def test_body_word_increments_per_packet(self, factory):
        assert factory.body_word(0) == b"\x00\x00\x00\x00"
        assert factory.body_word(1) == b"\x00\x00\x00\x01"
        assert factory.body_word(256) == b"\x00\x00\x01\x00"

    def test_body_word_wraps_modulo_2_32(self, factory):
        assert factory.body_word(2**32) == factory.body_word(0)

    def test_body_is_repeated_word(self, factory):
        body = factory.body(17)
        word = factory.body_word(17)
        assert body == word * 256

    def test_first_sequence_offset(self):
        spec = TestPacketSpec.default()
        shifted = TestPacketSpec(
            src_mac=spec.src_mac,
            dst_mac=spec.dst_mac,
            src_ip=spec.src_ip,
            dst_ip=spec.dst_ip,
            src_port=spec.src_port,
            dst_port=spec.dst_port,
            first_sequence=1000,
        )
        factory = TestPacketFactory(shifted)
        assert factory.body_word(5) == (1005).to_bytes(4, "big")

    @pytest.mark.parametrize("sequence", [0, 1, 255, 256, 65535, 65536, 2**31])
    def test_fast_build_matches_reference(self, factory, sequence):
        assert factory.build(sequence) == factory.build_reference(sequence)

    def test_frame_passes_all_checksums(self, factory):
        wire = factory.build(42)
        assert len(wire) == FRAME_BYTES
        assert check_fcs(wire[2:])
        ip_header = Ipv4Header.parse(wire[16:36])
        assert ip_header.checksum_valid
        udp = UdpHeader.parse(wire[36:], ip_header.src, ip_header.dst)
        assert udp.checksum_valid

    def test_network_id_prefix(self, factory, spec):
        wire = factory.build(0)
        assert int.from_bytes(wire[:2], "big") == spec.network_id

    def test_ethertype_is_ipv4(self, factory):
        wire = factory.build(0)
        assert int.from_bytes(wire[14:16], "big") == ethernet.ETHERTYPE_IPV4

    def test_frames_differ_only_in_expected_fields(self, factory):
        a, b = factory.build(1), factory.build(2)
        differing = {i for i in range(FRAME_BYTES) if a[i] != b[i]}
        # IP id+checksum (4 bytes), UDP checksum (2), body (1024), FCS (4).
        allowed = set(range(20, 22)) | set(range(26, 28))  # ip id, ip csum
        allowed |= set(range(42, 44))  # udp checksum
        allowed |= set(range(BODY_START, BODY_END))  # body
        allowed |= set(range(BODY_END, FRAME_BYTES))  # fcs
        assert differing <= allowed
        assert differing & set(range(BODY_START, BODY_END))
