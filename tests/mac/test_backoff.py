"""Truncated binary exponential backoff."""

import numpy as np
import pytest

from repro.mac.backoff import BackoffPolicy


class TestWindow:
    def test_window_doubles(self):
        policy = BackoffPolicy()
        assert policy.window_slots(1) == 2
        assert policy.window_slots(2) == 4
        assert policy.window_slots(5) == 32

    def test_window_truncated_at_ceiling(self):
        policy = BackoffPolicy(ceiling=10)
        assert policy.window_slots(10) == 1024
        assert policy.window_slots(15) == 1024

    def test_attempt_zero_rejected(self):
        with pytest.raises(ValueError):
            BackoffPolicy().window_slots(0)


class TestDelay:
    def test_delay_within_window(self, rng):
        policy = BackoffPolicy(slot_time_s=50e-6)
        for attempt in (1, 3, 12):
            for _ in range(50):
                delay = policy.delay(attempt, rng)
                max_delay = policy.window_slots(attempt) * policy.slot_time_s
                assert 0.0 <= delay < max_delay

    def test_delay_is_slot_quantized(self, rng):
        policy = BackoffPolicy(slot_time_s=50e-6)
        delay = policy.delay(4, rng)
        slots = delay / policy.slot_time_s
        assert slots == pytest.approx(round(slots))

    def test_mean_delay_grows_with_attempts(self, rng):
        policy = BackoffPolicy()
        early = np.mean([policy.delay(1, rng) for _ in range(500)])
        late = np.mean([policy.delay(6, rng) for _ in range(500)])
        assert late > early * 4


class TestExhaustion:
    def test_exhausted_at_max_attempts(self):
        policy = BackoffPolicy(max_attempts=16)
        assert not policy.exhausted(15)
        assert policy.exhausted(16)
        assert policy.exhausted(20)
