"""CSMA/CA and CSMA/CD behaviour against a scripted medium."""

from dataclasses import dataclass, field

import numpy as np
import pytest

from repro.mac.backoff import BackoffPolicy
from repro.mac.csma import CsmaCaMac, CsmaCdMac


@dataclass
class ScriptedMedium:
    """A test double: carrier busy-ness follows a script."""

    busy_script: list[bool] = field(default_factory=list)
    airtime: float = 0.001
    collide_script: list[bool] = field(default_factory=list)
    transmissions: list[bytes] = field(default_factory=list)
    aborted: list[int] = field(default_factory=list)

    def carrier_busy(self, station_id: int) -> bool:
        if self.busy_script:
            return self.busy_script.pop(0)
        return False

    def begin_transmission(self, station_id: int, frame: bytes) -> float:
        self.transmissions.append(frame)
        return self.airtime

    def collision_detected(self, station_id: int) -> bool:
        if self.collide_script:
            return self.collide_script.pop(0)
        return False

    def abort_transmission(self, station_id: int) -> None:
        self.aborted.append(station_id)


@pytest.fixture
def mac_rng():
    return np.random.default_rng(5)


class TestCsmaCa:
    def test_free_medium_transmits_immediately(self, sim, mac_rng):
        medium = ScriptedMedium()
        mac = CsmaCaMac(sim, medium, 1, mac_rng)
        mac.enqueue(b"frame-1")
        sim.run()
        assert medium.transmissions == [b"frame-1"]
        assert mac.stats.collisions == 0
        assert mac.stats.attempts == 1

    def test_busy_medium_counts_collision_then_retries(self, sim, mac_rng):
        medium = ScriptedMedium(busy_script=[True, True, False])
        mac = CsmaCaMac(sim, medium, 1, mac_rng)
        mac.enqueue(b"frame")
        sim.run()
        assert medium.transmissions == [b"frame"]
        assert mac.stats.collisions == 2
        assert mac.stats.attempts == 3

    def test_backoff_delay_precedes_retry(self, sim, mac_rng):
        medium = ScriptedMedium(busy_script=[True, False])
        mac = CsmaCaMac(sim, medium, 1, mac_rng)
        mac.enqueue(b"frame")
        sim.run()
        # The retry must be after the interframe gap at minimum.
        assert sim.now >= mac.interframe_gap_s

    def test_frames_sent_in_fifo_order(self, sim, mac_rng):
        medium = ScriptedMedium()
        mac = CsmaCaMac(sim, medium, 1, mac_rng)
        for i in range(5):
            mac.enqueue(f"frame-{i}".encode())
        sim.run()
        assert medium.transmissions == [f"frame-{i}".encode() for i in range(5)]

    def test_exhaustion_drops_frame(self, sim, mac_rng):
        # Exactly enough busy samples to exhaust the first frame.
        medium = ScriptedMedium(busy_script=[True] * 3)
        dropped = []
        mac = CsmaCaMac(
            sim,
            medium,
            1,
            mac_rng,
            backoff=BackoffPolicy(max_attempts=3),
            on_dropped=dropped.append,
        )
        mac.enqueue(b"doomed")
        mac.enqueue(b"next")
        sim.run()
        assert dropped == [b"doomed"]
        assert mac.stats.drops == 1
        # The next frame went out once the script ran dry.
        assert b"next" in medium.transmissions

    def test_on_sent_callback(self, sim, mac_rng):
        sent = []
        medium = ScriptedMedium()
        mac = CsmaCaMac(sim, medium, 1, mac_rng, on_sent=sent.append)
        mac.enqueue(b"hello")
        sim.run()
        assert sent == [b"hello"]

    def test_collision_free_fraction(self, sim, mac_rng):
        medium = ScriptedMedium(busy_script=[True, False])
        mac = CsmaCaMac(sim, medium, 1, mac_rng)
        mac.enqueue(b"f")
        sim.run()
        assert mac.stats.collision_free_fraction == pytest.approx(0.5)


class TestCsmaCd:
    def test_clean_transmission(self, sim, mac_rng):
        medium = ScriptedMedium()
        mac = CsmaCdMac(sim, medium, 1, mac_rng)
        mac.enqueue(b"frame")
        sim.run()
        assert medium.transmissions == [b"frame"]
        assert mac.stats.collisions == 0

    def test_busy_medium_polls_without_collision_count(self, sim, mac_rng):
        """CSMA/CD optimism: waiting on busy is not a collision."""
        medium = ScriptedMedium(busy_script=[True, True, False])
        mac = CsmaCdMac(sim, medium, 1, mac_rng)
        mac.enqueue(b"frame")
        sim.run()
        assert mac.stats.collisions == 0
        assert medium.transmissions == [b"frame"]

    def test_detected_collision_aborts_and_retries(self, sim, mac_rng):
        medium = ScriptedMedium(collide_script=[True, False])
        mac = CsmaCdMac(sim, medium, 1, mac_rng)
        mac.enqueue(b"frame")
        sim.run()
        assert mac.stats.collisions == 1
        assert medium.aborted == [1]
        # Transmitted twice: the aborted one plus the retry.
        assert medium.transmissions == [b"frame", b"frame"]
        assert mac.stats.transmissions == 1  # only the successful one counts

    def test_exhaustion_drops(self, sim, mac_rng):
        medium = ScriptedMedium(collide_script=[True] * 10)
        dropped = []
        mac = CsmaCdMac(
            sim,
            medium,
            1,
            mac_rng,
            backoff=BackoffPolicy(max_attempts=2),
            on_dropped=dropped.append,
        )
        mac.enqueue(b"doomed")
        sim.run()
        assert dropped == [b"doomed"]
