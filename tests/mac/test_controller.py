"""The 82593 controller's receive filters."""

import pytest

from repro.framing.crc import append_fcs
from repro.framing.ethernet import BROADCAST, MacAddress
from repro.framing.modem import DEFAULT_NETWORK_ID
from repro.mac.controller import ControllerConfig, LanController, RxFrameStatus

MY_MAC = MacAddress.station(2)
OTHER_MAC = MacAddress.station(9)


def _modem_frame(
    dst: MacAddress,
    network_id: int = DEFAULT_NETWORK_ID,
    corrupt_crc: bool = False,
) -> bytes:
    eth = dst.octets + MacAddress.station(1).octets + b"\x08\x00" + b"payload" * 8
    wire = append_fcs(eth)
    if corrupt_crc:
        wire = wire[:-1] + bytes([wire[-1] ^ 0xFF])
    return network_id.to_bytes(2, "big") + wire


@pytest.fixture
def controller() -> LanController:
    return LanController(ControllerConfig(station_address=MY_MAC))


@pytest.fixture
def promiscuous() -> LanController:
    return LanController(
        ControllerConfig(station_address=MY_MAC, promiscuous=True, check_crc=False)
    )


class TestNormalFiltering:
    def test_accepts_own_address(self, controller):
        result = controller.receive(_modem_frame(MY_MAC))
        assert result.status is RxFrameStatus.ACCEPTED
        assert result.crc_ok

    def test_accepts_broadcast(self, controller):
        assert controller.receive(_modem_frame(BROADCAST)).delivered

    def test_rejects_foreign_address(self, controller):
        result = controller.receive(_modem_frame(OTHER_MAC))
        assert result.status is RxFrameStatus.ADDRESS_MISMATCH

    def test_rejects_wrong_network_id(self, controller):
        result = controller.receive(_modem_frame(MY_MAC, network_id=0xBEEF))
        assert result.status is RxFrameStatus.WRONG_NETWORK_ID

    def test_rejects_bad_crc(self, controller):
        result = controller.receive(_modem_frame(MY_MAC, corrupt_crc=True))
        assert result.status is RxFrameStatus.CRC_ERROR

    def test_runt_frame(self, controller):
        assert controller.receive(b"\x01").status is RxFrameStatus.RUNT
        # Correct network ID but an ethernet header too short to parse.
        short = DEFAULT_NETWORK_ID.to_bytes(2, "big") + b"\x03\x04"
        assert controller.receive(short).status is RxFrameStatus.RUNT

    def test_stats_counted(self, controller):
        controller.receive(_modem_frame(MY_MAC))
        controller.receive(_modem_frame(OTHER_MAC))
        assert controller.stats[RxFrameStatus.ACCEPTED] == 1
        assert controller.stats[RxFrameStatus.ADDRESS_MISMATCH] == 1


class TestPromiscuousTracing:
    """The paper's configuration: everything is logged, CRC verdicts
    computed but not enforced."""

    def test_accepts_foreign_address(self, promiscuous):
        assert promiscuous.receive(_modem_frame(OTHER_MAC)).delivered

    def test_accepts_wrong_network_id(self, promiscuous):
        assert promiscuous.receive(_modem_frame(MY_MAC, network_id=0xBEEF)).delivered

    def test_accepts_bad_crc_but_reports_it(self, promiscuous):
        result = promiscuous.receive(_modem_frame(MY_MAC, corrupt_crc=True))
        assert result.delivered
        assert result.crc_ok is False

    def test_good_crc_reported(self, promiscuous):
        assert promiscuous.receive(_modem_frame(MY_MAC)).crc_ok is True
