"""The calibrated propagation model."""

import pytest

from repro.environment.floorplan import FloorPlan, Wall
from repro.environment.geometry import Point
from repro.environment.materials import CONCRETE_BLOCK_WALL
from repro.environment.propagation import (
    AmbientNoise,
    MultipathDip,
    PropagationModel,
)


class TestLogDistanceLaw:
    def test_monotone_decreasing_beyond_saturation(self):
        model = PropagationModel()
        levels = [model.path_level(d) for d in (5, 10, 20, 40, 80)]
        assert levels == sorted(levels, reverse=True)
        assert len(set(levels)) == len(levels)

    def test_slope_per_decade(self):
        model = PropagationModel(levels_per_decade=17.5, saturation_level=99.0)
        drop = model.path_level(5.0) - model.path_level(50.0)
        assert drop == pytest.approx(17.5)

    def test_saturation_near_contact(self):
        model = PropagationModel()
        assert model.path_level(0.0) == model.saturation_level
        assert model.path_level(0.5) == model.saturation_level

    def test_office_anchor(self):
        # The office model reads ~30.5 at 7 ft (Table 4 "Air 1").
        model = PropagationModel.office()
        assert model.path_level(7.0) == pytest.approx(30.5, abs=0.5)

    def test_calibrated_hits_anchor(self):
        model = PropagationModel.calibrated(level=26.71, at_distance_ft=20.0)
        assert model.mean_level(Point(0, 0), Point(20, 0)) == pytest.approx(26.71)


class TestObstaclesAndDips:
    def test_wall_subtracts_material_levels(self):
        plan = FloorPlan(
            walls=[Wall.between(5, -5, 5, 5, CONCRETE_BLOCK_WALL)]
        )
        with_wall = PropagationModel(floorplan=plan)
        without = PropagationModel()
        a, b = Point(0, 0), Point(10, 0)
        assert without.mean_level(a, b) - with_wall.mean_level(a, b) == pytest.approx(
            CONCRETE_BLOCK_WALL.attenuation_levels
        )

    def test_dip_attenuates_at_its_distance(self):
        dip = MultipathDip(distance_ft=30.0, depth_levels=7.0, width_ft=2.5)
        assert dip.attenuation_at(30.0) == pytest.approx(7.0)
        assert dip.attenuation_at(40.0) < 0.01

    def test_lecture_hall_has_both_paper_dips(self):
        model = PropagationModel.lecture_hall()
        rx = Point(0, 0)

        def level(d):
            return model.mean_level(Point(d, 0), rx)

        # Level at the dip sits below both neighbours (non-monotonic).
        assert level(6.0) < level(4.0)
        assert level(6.0) < level(9.0)
        assert level(30.0) < level(25.0)
        assert level(30.0) < level(35.0)

    def test_error_region_reachable_in_hall(self):
        # The far side of a ~90 ft hall lands below level 8 (Figure 2).
        model = PropagationModel.lecture_hall()
        assert model.mean_level(Point(90, 0), Point(0, 0)) < 8.0


class TestAmbientNoise:
    def test_samples_non_negative(self, rng):
        ambient = AmbientNoise()
        draws = ambient.sample(rng, 10_000)
        assert (draws >= 0).all()

    def test_mean_matches_paper_quiet_trials(self, rng):
        ambient = AmbientNoise()
        draws = ambient.sample(rng, 50_000)
        assert draws.mean() == pytest.approx(ambient.mean_level, abs=0.15)
