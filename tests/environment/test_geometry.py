"""2-D geometry: distances and segment intersection."""

import pytest

from repro.environment.geometry import Point, Segment, segments_intersect


class TestPoint:
    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_distance_symmetric(self):
        a, b = Point(1.5, -2.0), Point(-3.0, 7.5)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    def test_midpoint(self):
        mid = Point(0, 0).midpoint(Point(4, 6))
        assert (mid.x, mid.y) == (2.0, 3.0)

    def test_translated(self):
        p = Point(1, 1).translated(2, -3)
        assert (p.x, p.y) == (3.0, -2.0)


class TestSegment:
    def test_length(self):
        assert Segment(Point(0, 0), Point(0, 5)).length == pytest.approx(5.0)

    def test_midpoint(self):
        mid = Segment(Point(0, 0), Point(2, 2)).midpoint()
        assert (mid.x, mid.y) == (1.0, 1.0)


class TestSegmentsIntersect:
    def test_crossing(self):
        s1 = Segment(Point(0, 0), Point(10, 10))
        s2 = Segment(Point(0, 10), Point(10, 0))
        assert segments_intersect(s1, s2)

    def test_parallel_disjoint(self):
        s1 = Segment(Point(0, 0), Point(10, 0))
        s2 = Segment(Point(0, 1), Point(10, 1))
        assert not segments_intersect(s1, s2)

    def test_collinear_overlapping(self):
        s1 = Segment(Point(0, 0), Point(5, 0))
        s2 = Segment(Point(3, 0), Point(8, 0))
        assert segments_intersect(s1, s2)

    def test_collinear_disjoint(self):
        s1 = Segment(Point(0, 0), Point(2, 0))
        s2 = Segment(Point(3, 0), Point(8, 0))
        assert not segments_intersect(s1, s2)

    def test_touching_at_endpoint(self):
        s1 = Segment(Point(0, 0), Point(5, 5))
        s2 = Segment(Point(5, 5), Point(9, 0))
        assert segments_intersect(s1, s2)

    def test_t_junction(self):
        s1 = Segment(Point(0, 0), Point(10, 0))
        s2 = Segment(Point(5, -3), Point(5, 0))
        assert segments_intersect(s1, s2)

    def test_near_miss(self):
        s1 = Segment(Point(0, 0), Point(10, 0))
        s2 = Segment(Point(5, 0.001), Point(5, 3))
        assert not segments_intersect(s1, s2)
