"""Floor plans: wall crossing and obstacle accounting."""

import pytest

from repro.environment.floorplan import FloorPlan, Wall
from repro.environment.geometry import Point
from repro.environment.materials import (
    CONCRETE_BLOCK_WALL,
    HUMAN_BODY,
    PLASTER_MESH_WALL,
)


class TestMaterials:
    def test_paper_calibrated_attenuations(self):
        # Section 6.1: plaster+mesh ~5 levels, concrete ~2 levels;
        # Section 6.3: human body ~6 levels.
        assert PLASTER_MESH_WALL.attenuation_levels == pytest.approx(5.0)
        assert CONCRETE_BLOCK_WALL.attenuation_levels == pytest.approx(2.0)
        assert HUMAN_BODY.attenuation_levels == pytest.approx(6.0)

    def test_db_conversion(self):
        assert PLASTER_MESH_WALL.attenuation_db == pytest.approx(10.0)


class TestFloorPlan:
    def _plan(self) -> FloorPlan:
        plan = FloorPlan(name="test")
        plan.add_wall(Wall.between(5.0, -10.0, 5.0, 10.0, CONCRETE_BLOCK_WALL))
        plan.add_wall(Wall.between(8.0, -10.0, 8.0, 10.0, PLASTER_MESH_WALL))
        return plan

    def test_path_crossing_both_walls(self):
        materials = self._plan().obstacles_between(Point(0, 0), Point(10, 0))
        names = sorted(m.name for m in materials)
        assert names == sorted(
            [CONCRETE_BLOCK_WALL.name, PLASTER_MESH_WALL.name]
        )

    def test_path_crossing_one_wall(self):
        materials = self._plan().obstacles_between(Point(0, 0), Point(6, 0))
        assert [m.name for m in materials] == [CONCRETE_BLOCK_WALL.name]

    def test_path_crossing_nothing(self):
        assert self._plan().obstacles_between(Point(0, 0), Point(4, 0)) == []

    def test_path_parallel_to_walls(self):
        assert self._plan().obstacles_between(Point(0, -5), Point(0, 5)) == []

    def test_total_levels(self):
        total = self._plan().total_obstacle_levels(Point(0, 0), Point(10, 0))
        assert total == pytest.approx(7.0)

    def test_extra_obstacles_apply_to_every_path(self):
        plan = FloorPlan.open_room()
        plan.add_obstacle(HUMAN_BODY)
        assert plan.total_obstacle_levels(Point(0, 0), Point(1, 1)) == pytest.approx(6.0)
        assert plan.total_obstacle_levels(Point(9, 9), Point(5, 5)) == pytest.approx(6.0)

    def test_open_room_is_empty(self):
        plan = FloorPlan.open_room("hall")
        assert plan.obstacles_between(Point(0, 0), Point(100, 100)) == []
