"""The optional numba tier: flag plumbing and numpy/compiled identity.

The numpy implementations are the executable reference; every compiled
kernel must return byte-identical results.  The identity tests run only
where numba is installed (the default container does not ship it) —
everywhere else they skip and the flag-plumbing tests prove the
graceful-fallback contract instead.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys
from collections import Counter

import numpy as np
import pytest

from repro import compiled


@pytest.fixture(autouse=True)
def _restore_flag():
    """Every test leaves the process-wide flag the way it found it."""
    requested = compiled._requested
    warned = compiled._warned_missing
    yield
    compiled._requested = requested
    compiled._warned_missing = warned


class TestFlagPlumbing:
    def test_disabled_by_default(self):
        assert compiled.compiled_enabled() is False

    def test_enabled_requires_numba(self):
        compiled._warned_missing = True  # silence for this check
        state = compiled.set_compiled(True)
        assert state == compiled.HAVE_NUMBA
        assert compiled.compiled_enabled() == compiled.HAVE_NUMBA
        assert compiled.set_compiled(False) is False

    @pytest.mark.skipif(compiled.HAVE_NUMBA, reason="numba installed")
    def test_requesting_without_numba_warns_once(self):
        compiled._warned_missing = False
        with pytest.warns(RuntimeWarning, match="numba is not installed"):
            assert compiled.set_compiled(True) is False
        # Second request stays silent (warn once per process).
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert compiled.set_compiled(True) is False

    def test_env_flag_opts_in(self):
        """REPRO_COMPILED=1 requests the tier at import (and degrades
        gracefully without numba — the subprocess must not crash)."""
        code = (
            "import warnings; warnings.simplefilter('ignore');"
            "from repro import compiled;"
            "print(compiled._requested, compiled.compiled_enabled())"
        )
        repo_root = pathlib.Path(__file__).resolve().parent.parent
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env={
                **os.environ,
                "PYTHONPATH": str(repo_root / "src"),
                "REPRO_COMPILED": "1",
            },
            cwd=repo_root,
        )
        assert out.returncode == 0, out.stderr
        requested, enabled = out.stdout.split()
        assert requested == "True"
        assert enabled == str(compiled.HAVE_NUMBA)

    def test_cli_flag_raises_tier(self):
        from repro import __main__ as cli

        parser = cli._build_parser()
        args = parser.parse_args(["all", "--compiled"])
        assert args.compiled is True


class TestNumpyReferenceSemantics:
    """Pin the numpy twins the compiled kernels must reproduce."""

    def test_plurality_matches_counter(self):
        from repro.analysis.matching import _plurality

        rng = np.random.default_rng(7)
        for _ in range(50):
            words = rng.integers(0, 12, size=int(rng.integers(1, 60)))
            winner, count = _plurality(words.astype(np.int64))
            expected = Counter(words.tolist()).most_common(1)[0]
            assert (winner, count) == expected

    def test_plurality_tie_breaks_to_first_occurrence(self):
        from repro.analysis.matching import _plurality

        assert _plurality(np.array([9, 4, 4, 9, 1])) == (9, 2)
        assert _plurality(np.array([4, 9, 9, 4, 1])) == (4, 2)


needs_numba = pytest.mark.skipif(
    not compiled.HAVE_NUMBA, reason="numba not installed"
)


@needs_numba
class TestCompiledIdentity:
    """Byte-identity of every compiled kernel against its numpy twin."""

    def test_fold_probabilities_identical(self):
        from repro.phy import errormodel

        rng = np.random.default_rng(11)
        base = rng.random(500)
        columns = [rng.random(500) for _ in range(4)]
        columns[1][13] = 1.0  # exact-1 entry must fold to exactly 1
        compiled.set_compiled(False)
        reference = errormodel._fold_probabilities(base, columns)
        compiled.set_compiled(True)
        fast = errormodel._fold_probabilities(base, columns)
        compiled.set_compiled(False)
        np.testing.assert_array_equal(reference, fast)

    def test_plurality_identical(self):
        from repro.analysis.matching import _plurality

        rng = np.random.default_rng(12)
        for _ in range(50):
            words = rng.integers(0, 9, size=int(rng.integers(1, 80))).astype(
                np.int64
            )
            compiled.set_compiled(False)
            reference = _plurality(words)
            compiled.set_compiled(True)
            fast = _plurality(words)
            compiled.set_compiled(False)
            assert reference == fast

    @pytest.mark.parametrize("terminated", [True, False])
    def test_viterbi_batch_identical(self, terminated):
        from repro.fec.convolutional import ConvolutionalCode
        from repro.fec.viterbi import ERASED, viterbi_decode_batch

        code = ConvolutionalCode()
        rng = np.random.default_rng(13)
        batch, info_bits = 6, 96
        blocks = []
        for _ in range(batch):
            bits = rng.integers(0, 2, info_bits).astype(np.uint8)
            coded = code.encode(bits)
            coded[rng.random(coded.size) < 0.04] ^= 1
            coded[rng.random(coded.size) < 0.05] = ERASED
            blocks.append(coded)
        received = np.stack(blocks)
        weights = rng.random(received.shape)
        for w in (None, weights):
            compiled.set_compiled(False)
            reference = viterbi_decode_batch(
                code, received, terminated=terminated, weights=w
            )
            compiled.set_compiled(True)
            fast = viterbi_decode_batch(
                code, received, terminated=terminated, weights=w
            )
            compiled.set_compiled(False)
            np.testing.assert_array_equal(reference, fast)
