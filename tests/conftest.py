"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.framing.testpacket import TestPacketFactory, TestPacketSpec
from repro.simkit.simulator import Simulator


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for tests that need randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulation kernel."""
    return Simulator(seed=42)


@pytest.fixture
def spec() -> TestPacketSpec:
    """The default test-packet series configuration."""
    return TestPacketSpec.default()


@pytest.fixture
def factory(spec: TestPacketSpec) -> TestPacketFactory:
    """A frame factory for the default spec."""
    return TestPacketFactory(spec)
