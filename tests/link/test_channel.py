"""The shared radio channel: carrier sense, delivery, capture."""

import pytest

from repro.environment.geometry import Point
from repro.environment.propagation import PropagationModel
from repro.link.channel import RadioChannel
from repro.link.station import LinkStation
from repro.phy.modem import ModemConfig
from repro.simkit.simulator import Simulator


def _setup(
    seed: int = 1,
    rx_threshold: int = 3,
    distance: float = 8.0,
) -> tuple[Simulator, RadioChannel, LinkStation, LinkStation]:
    sim = Simulator(seed=seed)
    channel = RadioChannel(sim, PropagationModel.office())
    sender = LinkStation.tracing_station(1, Point(0.0, 0.0))
    receiver = LinkStation.tracing_station(
        2, Point(distance, 0.0), ModemConfig(receive_threshold=rx_threshold)
    )
    channel.add_station(sender)
    channel.add_station(receiver)
    return sim, channel, sender, receiver


class TestBasics:
    def test_airtime_at_2mbps(self):
        sim = Simulator()
        channel = RadioChannel(sim, PropagationModel.office())
        assert channel.airtime(bytes(1072)) == pytest.approx(1072 * 8 / 2e6)

    def test_duplicate_station_rejected(self):
        sim, channel, sender, receiver = _setup()
        with pytest.raises(ValueError):
            channel.add_station(sender)

    def test_double_transmit_rejected(self):
        sim, channel, sender, receiver = _setup()
        channel.begin_transmission(1, bytes(100))
        with pytest.raises(RuntimeError):
            channel.begin_transmission(1, bytes(100))


class TestDelivery:
    def test_clean_delivery_logs_frame(self):
        sim, channel, sender, receiver = _setup()
        frame = bytes(range(200)) * 2
        channel.begin_transmission(1, frame)
        sim.run()
        assert len(receiver.log) == 1
        assert receiver.log[0].data == frame
        assert receiver.log[0].status.signal_level > 25

    def test_sender_does_not_receive_own_frame(self):
        sim, channel, sender, receiver = _setup()
        channel.begin_transmission(1, bytes(100))
        sim.run()
        assert sender.log == []

    def test_threshold_masks_delivery(self):
        sim, channel, sender, receiver = _setup(rx_threshold=35)
        channel.begin_transmission(1, bytes(100))
        sim.run()
        assert receiver.log == []
        assert channel.stats.threshold_filtered == 1

    def test_abort_prevents_delivery(self):
        sim, channel, sender, receiver = _setup()
        channel.begin_transmission(1, bytes(1000))
        channel.abort_transmission(1)
        sim.run()
        assert receiver.log == []
        assert channel.stats.aborted == 1


class TestCarrierSense:
    def test_carrier_sensed_during_transmission(self):
        sim, channel, sender, receiver = _setup()
        assert not channel.carrier_busy(2)
        channel.begin_transmission(1, bytes(1000))
        # Not sensed until the front end acquires the new carrier.
        assert not channel.carrier_busy(2)
        sim.run_until(sim.now + 2 * channel.carrier_detect_delay_s)
        assert channel.carrier_busy(2)

    def test_raised_threshold_hides_carrier(self):
        sim, channel, sender, receiver = _setup(rx_threshold=35)
        channel.begin_transmission(1, bytes(1000))
        assert not channel.carrier_busy(2)

    def test_carrier_clear_after_completion(self):
        sim, channel, sender, receiver = _setup()
        channel.begin_transmission(1, bytes(1000))
        sim.run()
        assert not channel.carrier_busy(2)


class TestOverlapAndCapture:
    def _three_station_setup(self, jammer_distance: float):
        sim = Simulator(seed=3)
        channel = RadioChannel(sim, PropagationModel.office())
        sender = LinkStation.tracing_station(1, Point(0.0, 0.0))
        receiver = LinkStation.tracing_station(2, Point(6.0, 0.0))
        jammer = LinkStation.tracing_station(3, Point(6.0 + jammer_distance, 0.0))
        for station in (sender, receiver, jammer):
            channel.add_station(station)
        return sim, channel, receiver

    def test_collision_detected_flag(self):
        sim, channel, receiver = self._three_station_setup(50.0)
        channel.begin_transmission(1, bytes(1000))
        assert not channel.collision_detected(1)
        channel.begin_transmission(3, bytes(1000))
        assert channel.collision_detected(1)
        assert channel.collision_detected(3)

    def test_capture_survives_weak_overlap(self):
        """A strong desired signal survives a distant overlapping
        transmitter (Section 7.4's capture effect)."""
        deliveries = 0
        for seed in range(10):
            sim, channel, receiver = self._three_station_setup(70.0)
            channel.sim.rng.seed = seed
            channel.begin_transmission(1, bytes(1072))
            channel.begin_transmission(3, bytes(1072))
            sim.run()
            deliveries += sum(
                1 for f in receiver.log if len(f.data) == 1072
            )
        assert deliveries >= 7

    def test_comparable_overlap_stomps(self):
        """Equal-power overlap at the receiver garbles reception."""
        clean = 0
        for seed in range(10):
            sim = Simulator(seed=seed)
            channel = RadioChannel(sim, PropagationModel.office())
            sender = LinkStation.tracing_station(1, Point(0.0, 0.0))
            receiver = LinkStation.tracing_station(2, Point(6.0, 0.0))
            jammer = LinkStation.tracing_station(3, Point(12.0, 0.0))
            for station in (sender, receiver, jammer):
                channel.add_station(station)
            frame = bytes(1072)
            channel.begin_transmission(1, frame)
            channel.begin_transmission(3, frame)
            sim.run()
            clean += sum(1 for f in receiver.log if f.data == frame)
        assert clean <= 4

    def test_half_duplex(self):
        """A station cannot receive while transmitting."""
        sim, channel, receiver = self._three_station_setup(50.0)
        long_frame = bytes(2000)
        channel.begin_transmission(2, long_frame)  # receiver is busy TXing
        channel.begin_transmission(1, bytes(500))
        sim.run()
        # Receiver logged nothing: it was on the air when frame 1 ended.
        assert all(f.data != bytes(500) for f in receiver.log)
