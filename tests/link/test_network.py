"""The WaveLanNetwork wiring helper."""

from repro.environment.geometry import Point
from repro.environment.propagation import PropagationModel
from repro.link.network import WaveLanNetwork
from repro.phy.modem import ModemConfig


class TestWaveLanNetwork:
    def _network(self) -> WaveLanNetwork:
        return WaveLanNetwork.create(PropagationModel.office(), seed=7)

    def test_add_station_registers_everywhere(self):
        network = self._network()
        station = network.add_station(1, Point(0, 0))
        assert network.stations[1] is station
        assert 1 in network.macs
        assert 1 in network.channel.stations

    def test_station_without_mac(self):
        network = self._network()
        network.add_station(2, Point(5, 0), with_mac=False)
        assert 2 not in network.macs

    def test_send_delivers(self):
        network = self._network()
        network.add_station(1, Point(0, 0))
        receiver = network.add_station(2, Point(8, 0), with_mac=False)
        frame = bytes(range(100))
        network.send(1, frame)
        network.run_for(0.05)
        assert [f.data for f in receiver.log] == [frame]

    def test_modem_config_honoured(self):
        network = self._network()
        network.add_station(1, Point(0, 0))
        masked = network.add_station(
            2, Point(8, 0), ModemConfig(receive_threshold=35), with_mac=False
        )
        network.send(1, bytes(100))
        network.run_for(0.05)
        assert masked.log == []

    def test_saturate_keeps_transmitting(self):
        network = self._network()
        network.add_station(1, Point(0, 0), ModemConfig(receive_threshold=35))
        receiver = network.add_station(2, Point(8, 0), with_mac=False)
        network.saturate(1, bytes(1072))
        network.run_for(0.1)
        # ~0.1s / 4.3ms per frame => ~20 frames.
        assert len(receiver.log) >= 15

    def test_run_for_advances_clock(self):
        network = self._network()
        network.run_for(1.5)
        assert network.sim.now == 1.5
