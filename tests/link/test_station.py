"""LinkStation wiring."""

from repro.environment.geometry import Point
from repro.link.station import LinkStation, ReceivedFrame
from repro.phy.modem import ModemConfig, ModemRxStatus


class TestTracingStation:
    def test_promiscuous_no_crc(self):
        station = LinkStation.tracing_station(1, Point(0, 0))
        assert station.controller.config.promiscuous
        assert not station.controller.config.check_crc

    def test_modem_config_applied(self):
        station = LinkStation.tracing_station(
            1, Point(0, 0), ModemConfig(receive_threshold=25)
        )
        assert station.receive_threshold == 25

    def test_default_controller_uses_station_address(self):
        station = LinkStation.tracing_station(7, Point(0, 0))
        assert (
            station.controller.config.station_address.octets
            == station.mac_address.octets
        )


class TestDelivery:
    def test_deliver_appends_and_notifies(self):
        received = []
        station = LinkStation.tracing_station(1, Point(0, 0))
        station.on_receive = received.append
        frame = ReceivedFrame(
            data=b"abc",
            status=ModemRxStatus(30, 3, 15, 0),
            time=1.5,
        )
        station.deliver(frame)
        assert station.log == [frame]
        assert received == [frame]
