"""Unit conversions and the AGC level mapping."""

import math

import pytest

from repro import units


class TestPowerConversions:
    def test_one_milliwatt_is_zero_dbm(self):
        assert units.mw_to_dbm(1.0) == 0.0

    def test_wavelan_tx_power_is_27_dbm(self):
        assert units.mw_to_dbm(units.WAVELAN_TX_POWER_MW) == pytest.approx(
            26.99, abs=0.01
        )

    def test_dbm_roundtrip(self):
        for mw in (0.001, 1.0, 500.0, 12345.0):
            assert units.dbm_to_mw(units.mw_to_dbm(mw)) == pytest.approx(mw)

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            units.mw_to_dbm(0.0)
        with pytest.raises(ValueError):
            units.mw_to_dbm(-3.0)

    def test_db_ratio_of_equal_powers_is_zero(self):
        assert units.db_ratio(5.0, 5.0) == pytest.approx(0.0)

    def test_db_ratio_of_100x_is_20db(self):
        assert units.db_ratio(100.0, 1.0) == pytest.approx(20.0)

    def test_db_ratio_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.db_ratio(0.0, 1.0)


class TestDistanceConversions:
    def test_feet_metres_roundtrip(self):
        assert units.metres_to_feet(units.feet_to_metres(56.0)) == pytest.approx(56.0)

    def test_one_metre_is_about_3_28_feet(self):
        assert units.metres_to_feet(1.0) == pytest.approx(3.2808, abs=1e-3)


class TestFreeSpacePathLoss:
    def test_doubles_distance_adds_6db(self):
        loss_1 = units.free_space_path_loss_db(10.0)
        loss_2 = units.free_space_path_loss_db(20.0)
        assert loss_2 - loss_1 == pytest.approx(20.0 * math.log10(2.0), abs=1e-9)

    def test_finite_at_zero_distance(self):
        assert math.isfinite(units.free_space_path_loss_db(0.0))

    def test_higher_frequency_more_loss(self):
        assert units.free_space_path_loss_db(
            10.0, freq_hz=2.4e9
        ) > units.free_space_path_loss_db(10.0, freq_hz=915e6)


class TestAgcMapping:
    def test_level_dbm_roundtrip(self):
        for level in (0.0, 8.0, 29.5, 41.0):
            assert units.dbm_to_level(units.level_to_dbm(level)) == pytest.approx(level)

    def test_one_level_unit_is_two_db(self):
        delta = units.level_to_dbm(11.0) - units.level_to_dbm(10.0)
        assert delta == pytest.approx(units.DB_PER_LEVEL)

    def test_clamp_agc_bounds(self):
        assert units.clamp_agc(-5.0) == 0
        assert units.clamp_agc(12.4) == 12
        assert units.clamp_agc(12.6) == 13
        assert units.clamp_agc(1000.0) == units.AGC_MAX_READING

    def test_clamp_quality_bounds(self):
        assert units.clamp_quality(-1.0) == 0
        assert units.clamp_quality(15.2) == 15
        assert units.clamp_quality(9.5) in (9, 10)  # banker's rounding boundary


class TestDopplerArgument:
    """Section 3: why the paper ignores motion-induced errors."""

    def test_speed_of_sound_doppler_is_tiny(self):
        # ~1 kHz shift at Mach 1...
        shift = units.doppler_shift_hz(units.SPEED_OF_SOUND_M_S)
        assert 500.0 < shift < 2_000.0

    def test_crystal_tolerance_dwarfs_doppler(self):
        """The paper's exact argument, as arithmetic: Mach-1 Doppler is
        'substantially less than the inaccuracy of the clock crystals'."""
        doppler = units.doppler_shift_hz(units.SPEED_OF_SOUND_M_S)
        crystal = units.crystal_offset_hz()
        assert crystal > 10 * doppler

    def test_walking_speed_is_negligible(self):
        assert units.doppler_shift_hz(1.5) < 10.0  # a few Hz

    def test_scales_with_frequency(self):
        at_900 = units.doppler_shift_hz(10.0, freq_hz=915e6)
        at_2400 = units.doppler_shift_hz(10.0, freq_hz=2.4e9)
        assert at_2400 > 2 * at_900
