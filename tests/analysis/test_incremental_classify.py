"""Incremental classification == batch, for every chunking.

The streaming service's correctness rests on one property: verdicts
depend only on their own record's bytes, so feeding a trace through
:class:`IncrementalClassifier` in chunks of 1, 7, or all-at-once is
byte-identical to :func:`classify_trace`.  These tests pin that for
v1 record traces and v2 columnar traces, for the per-packet and the
columns-only (server) modes, and for the degenerate shapes an ingest
server sees routinely: zero-record traces and zero-length final
chunks.
"""

import io

import numpy as np
import pytest

from repro.analysis.classify import (
    CLASS_ORDER,
    IncrementalClassifier,
    classify_trace,
    verdict_row_bytes,
)
from repro.framing.bits import flip_bits
from repro.framing.testpacket import BODY_START, FRAME_BYTES
from repro.phy.modem import ModemRxStatus
from repro.trace.columnar import (
    ColumnarTrace,
    read_columnar,
    read_columnar_buffer,
    write_columnar,
)
from repro.trace.records import PacketRecord, TrialTrace

STATUS = ModemRxStatus(29, 3, 15, 0)
WEAK_STATUS = ModemRxStatus(6, 3, 8, 1)


@pytest.fixture
def mixed_trace(spec, factory) -> TrialTrace:
    """A small trace with every damage shape the classifier knows."""
    records = [
        PacketRecord.from_bytes(factory.build(0), STATUS),
        PacketRecord.from_bytes(factory.build(1)[:700], WEAK_STATUS),
        PacketRecord.from_bytes(
            flip_bits(
                factory.build(2),
                np.array([BODY_START * 8 + 3, BODY_START * 8 + 11]),
            ),
            WEAK_STATUS,
        ),
        PacketRecord.from_bytes(
            flip_bits(factory.build(3), np.array([30])), WEAK_STATUS
        ),
        PacketRecord.from_bytes(factory.build(4), STATUS),
        PacketRecord.from_bytes(b"\x55" * 64, WEAK_STATUS),  # outsider
        PacketRecord.from_bytes(factory.build(5), STATUS),
    ]
    trace = TrialTrace(name="mixed", spec=spec, packets_sent=10)
    trace.records.extend(records)
    return trace


def _assert_packets_equal(left, right):
    assert len(left) == len(right)
    for a, b in zip(left, right):
        assert a.packet_class is b.packet_class
        assert a.sequence == b.sequence
        assert a.wrapper_damaged == b.wrapper_damaged
        assert a.body_bits_damaged == b.body_bits_damaged
        assert a.truncated_bytes_missing == b.truncated_bytes_missing


def _columns_equal(left: dict, right: dict):
    assert left.keys() == right.keys()
    for key in left:
        np.testing.assert_array_equal(left[key], right[key])


class TestChunkedEqualsBatch:
    @pytest.mark.parametrize("chunk", [1, 7, None])
    def test_v1_records(self, mixed_trace, chunk):
        batch = classify_trace(mixed_trace)
        clf = IncrementalClassifier(
            mixed_trace.spec, mixed_trace.packets_sent
        )
        records = mixed_trace.records
        size = chunk or len(records)
        for start in range(0, len(records), size):
            clf.feed_records(records[start : start + size])
        _assert_packets_equal(clf.packets, batch.packets)
        assert dict(clf.class_counts) == {
            k: v for k, v in batch.class_counts().items() if v
        }

    @pytest.mark.parametrize("chunk", [1, 7, None])
    def test_columnar(self, mixed_trace, chunk):
        columnar = ColumnarTrace.from_trace(mixed_trace)
        batch = classify_trace(columnar)
        clf = IncrementalClassifier(columnar.spec, columnar.packets_sent)
        n = columnar.packets_received
        size = chunk or n
        for start in range(0, n, size):
            clf.feed_columnar(columnar, start, min(start + size, n))
        _assert_packets_equal(clf.packets, batch.packets)

    def test_v1_equals_columnar(self, mixed_trace):
        columnar = ColumnarTrace.from_trace(mixed_trace)
        a = IncrementalClassifier(mixed_trace.spec, 10)
        a.feed(mixed_trace)
        b = IncrementalClassifier(columnar.spec, 10)
        b.feed(columnar)
        _columns_equal(a.verdict_columns(), b.verdict_columns())

    @pytest.mark.parametrize("chunk", [1, 3, None])
    def test_columns_mode_equals_object_mode(self, mixed_trace, chunk):
        """collect_packets=False (the server path) yields the same
        verdict columns as the per-packet path, for any chunking."""
        columnar = ColumnarTrace.from_trace(mixed_trace)
        reference = IncrementalClassifier(columnar.spec, 10)
        reference.feed(columnar)
        clf = IncrementalClassifier(
            columnar.spec, 10, collect_packets=False
        )
        n = columnar.packets_received
        size = chunk or n
        for start in range(0, n, size):
            clf.feed_columnar(columnar, start, min(start + size, n))
        _columns_equal(clf.verdict_columns(), reference.verdict_columns())
        assert clf.packets == []
        assert clf.count_summary() == reference.count_summary()
        with pytest.raises(RuntimeError):
            clf.finish(columnar)

    def test_columns_mode_v1_records(self, mixed_trace):
        reference = IncrementalClassifier(mixed_trace.spec, 10)
        reference.feed(mixed_trace)
        clf = IncrementalClassifier(
            mixed_trace.spec, 10, collect_packets=False
        )
        clf.feed_records(mixed_trace.records)
        _columns_equal(clf.verdict_columns(), reference.verdict_columns())

    def test_wlt2_round_trip_stream(self, mixed_trace, tmp_path):
        """A trace streamed back from its .wlt2 encoding classifies
        identically to the in-memory original."""
        path = tmp_path / "mixed.wlt2"
        with open(path, "wb") as stream:
            write_columnar(ColumnarTrace.from_trace(mixed_trace), stream)
        loaded = read_columnar(path)
        batch = classify_trace(mixed_trace)
        clf = IncrementalClassifier(loaded.spec, loaded.packets_sent)
        for start in range(0, loaded.packets_received, 2):
            clf.feed_columnar(loaded, start, start + 2)
        _assert_packets_equal(clf.packets, batch.packets)


class TestDigestStability:
    def test_row_bytes_concatenation_stable(self, mixed_trace):
        """rows(chunk A) + rows(chunk B) == rows(whole) — the property
        that makes the server's running digest chunking-independent."""
        columnar = ColumnarTrace.from_trace(mixed_trace)
        whole = IncrementalClassifier(columnar.spec, 10)
        whole.feed(columnar)
        whole_bytes = verdict_row_bytes(whole.verdict_columns())
        streamed = b""
        for start in range(0, columnar.packets_received, 3):
            clf = IncrementalClassifier(columnar.spec, 10)
            clf.feed_columnar(columnar, start, start + 3)
            streamed += verdict_row_bytes(clf.verdict_columns())
        assert streamed == whole_bytes


class TestDegenerateShapes:
    def test_zero_record_v1(self, spec):
        trace = TrialTrace(name="empty", spec=spec, packets_sent=0)
        classified = classify_trace(trace)
        assert classified.packets == []
        counts = classified.class_counts()
        assert set(counts) == set(CLASS_ORDER)
        assert sum(counts.values()) == 0

    def test_zero_record_columnar(self, spec):
        trace = ColumnarTrace.from_trace(
            TrialTrace(name="empty", spec=spec, packets_sent=0)
        )
        assert trace.packets_received == 0
        classified = classify_trace(trace)
        assert classified.packets == []

    def test_zero_record_wlt2_round_trip(self, spec, tmp_path):
        trace = ColumnarTrace.from_trace(
            TrialTrace(name="empty", spec=spec, packets_sent=0)
        )
        path = tmp_path / "empty.wlt2"
        with open(path, "wb") as stream:
            write_columnar(trace, stream)
        loaded = read_columnar(path)
        assert classify_trace(loaded).packets == []

    @pytest.mark.parametrize("collect", [True, False])
    def test_zero_length_final_chunk(self, mixed_trace, collect):
        """Feeding an empty tail chunk (a client flushing at EOF)
        neither raises nor perturbs the verdicts."""
        columnar = ColumnarTrace.from_trace(mixed_trace)
        n = columnar.packets_received
        clf = IncrementalClassifier(
            columnar.spec, 10, collect_packets=collect
        )
        clf.feed_columnar(columnar, 0, n)
        clf.feed_columnar(columnar, n, n)  # empty tail
        clf.feed_records([])  # and an empty record list
        assert clf.records_seen == n
        reference = IncrementalClassifier(columnar.spec, 10)
        reference.feed(columnar)
        _columns_equal(clf.verdict_columns(), reference.verdict_columns())

    def test_empty_classifier_columns(self, spec):
        clf = IncrementalClassifier(spec, 0, collect_packets=False)
        columns = clf.verdict_columns()
        assert all(len(column) == 0 for column in columns.values())
        assert verdict_row_bytes(columns) == b""

    def test_empty_slice_encodes(self, mixed_trace):
        """An empty columnar slice survives an encode/decode round
        trip (the wire shape of an idle session's only chunk)."""
        columnar = ColumnarTrace.from_trace(mixed_trace)
        empty = columnar.slice(2, 2)
        assert empty.packets_received == 0
        buffer = io.BytesIO()
        write_columnar(empty, buffer)
        decoded = read_columnar_buffer(buffer.getvalue(), origin="<test>")
        assert classify_trace(decoded).packets == []
