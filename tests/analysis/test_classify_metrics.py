"""Classification + Table-1 metrics, against hand-built traces."""

import numpy as np
import pytest

from repro.analysis.classify import PacketClass, classify_trace
from repro.analysis.metrics import analyze_trial
from repro.framing.bits import flip_bits
from repro.framing.testpacket import BODY_BITS, BODY_START, FRAME_BYTES
from repro.phy.modem import ModemRxStatus
from repro.trace.records import PacketRecord, TrialTrace

STATUS = ModemRxStatus(29, 3, 15, 0)
WEAK_STATUS = ModemRxStatus(6, 3, 8, 1)


def _trace(spec, records, sent=10) -> TrialTrace:
    trace = TrialTrace(name="hand", spec=spec, packets_sent=sent)
    trace.records.extend(records)
    return trace


class TestClassification:
    def test_undamaged(self, spec, factory):
        trace = _trace(spec, [PacketRecord.from_bytes(factory.build(0), STATUS)])
        classified = classify_trace(trace)
        assert classified.packets[0].packet_class is PacketClass.UNDAMAGED
        assert classified.packets[0].sequence == 0

    def test_truncated(self, spec, factory):
        trace = _trace(
            spec, [PacketRecord.from_bytes(factory.build(3)[:800], WEAK_STATUS)]
        )
        packet = classify_trace(trace).packets[0]
        assert packet.packet_class is PacketClass.TRUNCATED
        assert packet.truncated_bytes_missing == FRAME_BYTES - 800

    def test_body_damaged(self, spec, factory):
        damaged = flip_bits(
            factory.build(4), np.array([BODY_START * 8 + 7, BODY_START * 8 + 9])
        )
        packet = classify_trace(
            _trace(spec, [PacketRecord.from_bytes(damaged, WEAK_STATUS)])
        ).packets[0]
        assert packet.packet_class is PacketClass.BODY_DAMAGED
        assert packet.body_bits_damaged == 2

    def test_wrapper_damaged(self, spec, factory):
        damaged = flip_bits(factory.build(4), np.array([30]))
        packet = classify_trace(
            _trace(spec, [PacketRecord.from_bytes(damaged, WEAK_STATUS)])
        ).packets[0]
        assert packet.packet_class is PacketClass.WRAPPER_DAMAGED

    def test_body_damage_takes_precedence(self, spec, factory):
        damaged = flip_bits(
            factory.build(4), np.array([30, BODY_START * 8 + 7])
        )
        packet = classify_trace(
            _trace(spec, [PacketRecord.from_bytes(damaged, WEAK_STATUS)])
        ).packets[0]
        assert packet.packet_class is PacketClass.BODY_DAMAGED
        assert packet.wrapper_damaged

    def test_outsider_with_good_crc_undamaged(self, spec, rng):
        from repro.trace.outsiders import OutsiderTraffic

        frame = OutsiderTraffic().build_frame(rng)
        packet = classify_trace(
            _trace(spec, [PacketRecord.from_bytes(frame, WEAK_STATUS)])
        ).packets[0]
        assert packet.packet_class is PacketClass.OUTSIDER_UNDAMAGED

    def test_outsider_with_bad_crc_damaged(self, spec, rng):
        from repro.trace.outsiders import OutsiderTraffic

        frame = bytearray(OutsiderTraffic().build_frame(rng))
        frame[10] ^= 0xFF
        packet = classify_trace(
            _trace(spec, [PacketRecord.from_bytes(bytes(frame), WEAK_STATUS)])
        ).packets[0]
        assert packet.packet_class is PacketClass.OUTSIDER_DAMAGED


class TestMetrics:
    def test_full_table_row(self, spec, factory):
        records = [
            PacketRecord.from_bytes(factory.build(0), STATUS),
            PacketRecord.from_bytes(factory.build(1), STATUS),
            PacketRecord.from_bytes(factory.build(2)[:844], WEAK_STATUS),
            PacketRecord.from_bytes(
                flip_bits(
                    factory.build(3),
                    np.array([BODY_START * 8 + 1, BODY_START * 8 + 2, BODY_START * 8 + 64]),
                ),
                WEAK_STATUS,
            ),
            PacketRecord.from_bytes(
                flip_bits(factory.build(4), np.array([25])), WEAK_STATUS
            ),
        ]
        metrics = analyze_trial(_trace(spec, records, sent=10))
        assert metrics.packets_received == 5
        assert metrics.packets_lost == 5
        assert metrics.packet_loss_percent == pytest.approx(50.0)
        assert metrics.packets_truncated == 1
        assert metrics.body_damaged_packets == 1
        assert metrics.body_bits_damaged == 3
        assert metrics.worst_body_bits == 3
        assert metrics.wrapper_damaged == 1
        # 4 full bodies + 800 truncated body bytes.
        assert metrics.body_bits_received == 4 * BODY_BITS + 800 * 8

    def test_ber_estimate(self, spec, factory):
        records = [
            PacketRecord.from_bytes(
                flip_bits(factory.build(0), np.array([BODY_START * 8 + 5])),
                WEAK_STATUS,
            )
        ]
        metrics = analyze_trial(_trace(spec, records, sent=1))
        assert metrics.bit_error_rate == pytest.approx(1.0 / BODY_BITS)

    def test_bits_received_magnitude_format(self, spec, factory):
        records = [
            PacketRecord.pristine(factory, i, STATUS) for i in range(13)
        ]
        metrics = analyze_trial(_trace(spec, records, sent=13))
        assert metrics.bits_received_magnitude == "10^5"

    def test_empty_trial(self, spec):
        metrics = analyze_trial(_trace(spec, [], sent=0))
        assert metrics.packet_loss_percent == 0.0
        assert metrics.bit_error_rate == 0.0
        assert metrics.worst_body_bits is None
