"""Heuristic test-packet matching and sequence recovery."""

import numpy as np
import pytest

from repro.analysis.matching import MatchOutcome, TraceMatcher
from repro.framing.bits import flip_bits
from repro.framing.testpacket import BODY_START, FRAME_BYTES
from repro.trace.outsiders import OutsiderTraffic
from repro.trace.records import PacketRecord
from repro.phy.modem import ModemRxStatus

STATUS = ModemRxStatus(29, 3, 15, 0)


@pytest.fixture
def matcher(spec):
    return TraceMatcher(spec, packets_sent=10_000)


def _record(data: bytes) -> PacketRecord:
    return PacketRecord.from_bytes(data, STATUS)


class TestExactMatch:
    def test_pristine_frame_matches_fast_path(self, matcher, factory):
        result = matcher.match(_record(factory.build(123)))
        assert result.outcome is MatchOutcome.TEST_PACKET
        assert result.sequence == 123
        assert result.exact

    def test_every_sequence_recoverable(self, matcher, factory):
        for sequence in (0, 1, 999, 9_999):
            assert matcher.match(_record(factory.build(sequence))).sequence == sequence


class TestVotingMatch:
    def test_survives_scattered_corruption(self, matcher, factory):
        frame = factory.build(77)
        # Flip 200 scattered bits: vote still recovers the sequence.
        rng = np.random.default_rng(0)
        positions = rng.choice(FRAME_BYTES * 8, size=200, replace=False)
        damaged = flip_bits(frame, positions)
        result = matcher.match(_record(damaged))
        assert result.outcome is MatchOutcome.TEST_PACKET
        assert result.sequence == 77
        assert not result.exact

    def test_survives_truncation(self, matcher, factory):
        frame = factory.build(55)[:500]
        result = matcher.match(_record(frame))
        assert result.outcome is MatchOutcome.TEST_PACKET
        assert result.sequence == 55

    def test_survives_truncation_plus_corruption(self, matcher, factory):
        rng = np.random.default_rng(1)
        frame = factory.build(55)[:700]
        positions = rng.choice(len(frame) * 8, size=80, replace=False)
        damaged = flip_bits(frame, positions)
        result = matcher.match(_record(damaged))
        assert result.sequence == 55

    def test_deep_truncation_recovered_by_header(self, matcher, factory):
        """Fewer than MIN_WORDS_FOR_VOTE body words survive, but the
        intact headers (and the IP id field, which carries the sequence)
        still identify the packet."""
        frame = factory.build(55)[: BODY_START + 10]
        result = matcher.match(_record(frame))
        assert result.outcome is MatchOutcome.TEST_PACKET
        assert result.sequence == 55
        assert result.header_led


class TestOutsiderRejection:
    def test_arp_frame_is_outsider(self, matcher, rng):
        frame = OutsiderTraffic().build_frame(rng)
        assert matcher.match(_record(frame)).outcome is MatchOutcome.OUTSIDER

    def test_implausible_sequence_rejected(self, matcher, factory):
        """A frame whose body word implies a sequence far beyond the
        number of packets sent fails the vote — though with genuine
        test-packet headers it is still (correctly) identified as a
        catastrophically corrupted test packet via the header path."""
        bogus_spec_frame = bytearray(factory.build(0))
        body = (500_000).to_bytes(4, "big") * 256
        bogus_spec_frame[BODY_START : BODY_START + 1024] = body
        result = matcher.match(_record(bytes(bogus_spec_frame)))
        assert result.outcome is MatchOutcome.TEST_PACKET
        assert result.header_led
        assert result.sequence == 0
        # With foreign headers as well, it is an outsider.
        foreign = bytes(44) + body + bytes(4)
        assert matcher.match(_record(foreign)).outcome is MatchOutcome.OUTSIDER

    def test_repeating_word_with_foreign_wrapper_rejected(self, matcher):
        """A foreign frame that happens to repeat a plausible word must
        fail the wrapper score."""
        body = (42).to_bytes(4, "big") * 256
        frame = bytes(FRAME_BYTES - 1024 - 4) + body + bytes(4)
        result = matcher.match(_record(frame))
        assert result.outcome is MatchOutcome.OUTSIDER
        assert result.wrapper_score < 0.5

    def test_tiny_frame_is_outsider(self, matcher):
        assert matcher.match(_record(b"\x01\x02\x03")).outcome is MatchOutcome.OUTSIDER


class TestHeaderLedMatching:
    def test_corrupt_header_rejected(self, matcher, factory):
        """A deep-truncated frame with a battered header stays an
        outsider: the header path demands a near-perfect prefix."""
        import numpy as np

        from repro.framing.bits import flip_bits

        frame = factory.build(55)[: BODY_START + 4]
        rng = np.random.default_rng(0)
        positions = rng.choice(len(frame) * 8, size=60, replace=False)
        damaged = flip_bits(frame, positions)
        assert matcher.match(_record(damaged)).outcome is MatchOutcome.OUTSIDER

    def test_implausible_ip_id_rejected(self, spec, factory):
        """A header whose id field exceeds the packets-sent bound is not
        claimed."""
        matcher = TraceMatcher(spec, packets_sent=100)
        frame = factory.build(5000)[: BODY_START + 4]  # id = 5000 > 100
        assert matcher.match(_record(frame)).outcome is MatchOutcome.OUTSIDER

    def test_too_short_for_header(self, matcher):
        assert (
            matcher.match(_record(b"\x01" * 10)).outcome
            is MatchOutcome.OUTSIDER
        )

    def test_voting_still_preferred_when_possible(self, matcher, factory):
        """When the body vote works, the result is vote-led (richer
        evidence) rather than header-led."""
        frame = factory.build(77)[:700]
        result = matcher.match(_record(frame))
        assert result.sequence == 77
        assert not result.header_led


class TestSequenceAliasing:
    """Header-led recovery in trials longer than 2^16 packets.

    The IP id only carries seq mod 2^16; the matcher must unalias
    against the trial length instead of returning the low 16 bits
    verbatim (which silently mislabeled every deep-truncated packet
    beyond sequence 65535 — e.g. 66000 came back as 464)."""

    @pytest.fixture
    def long_matcher(self, spec):
        return TraceMatcher(spec, packets_sent=70_000)

    def test_deep_truncation_beyond_two_16(self, long_matcher, factory):
        frame = factory.build(66_000)[:BODY_START]
        result = long_matcher.match(_record(frame))
        assert result.outcome is MatchOutcome.TEST_PACKET
        assert result.header_led
        # Never the aliased low-16-bit value.
        assert result.sequence != 66_000 - (1 << 16)
        assert result.sequence == 66_000
        assert not result.ambiguous

    def test_first_epoch_still_exact(self, long_matcher, factory):
        result = long_matcher.match(_record(factory.build(464)[:BODY_START]))
        assert result.sequence == 464
        assert not result.ambiguous

    def test_body_fragment_discriminates(self, long_matcher, factory):
        """A few surviving body bytes (too few to vote) still pick the
        right epoch."""
        frame = factory.build(66_000)[: BODY_START + 8]
        result = long_matcher.match(_record(frame))
        assert result.sequence == 66_000
        assert result.header_led

    def test_damaged_discriminators_give_ambiguous(self, long_matcher, factory):
        """With the UDP checksum corrupted and no body left, the tie
        between epochs cannot be broken: the packet is still a test
        packet, but the sequence is reported as unknown, not guessed."""
        frame = bytearray(factory.build(66_000)[:BODY_START])
        frame[42] ^= 0xFF
        frame[43] ^= 0xFF
        result = long_matcher.match(_record(bytes(frame)))
        assert result.outcome is MatchOutcome.TEST_PACKET
        assert result.ambiguous
        assert result.sequence is None

    def test_short_trial_never_ambiguous(self, matcher, factory):
        """Trials under 2^16 packets have a single candidate; behaviour
        is unchanged even with the discriminating bytes damaged."""
        frame = bytearray(factory.build(464)[:BODY_START])
        frame[42] ^= 0xFF
        frame[43] ^= 0xFF
        result = matcher.match(_record(bytes(frame)))
        assert result.sequence == 464
        assert not result.ambiguous

    def test_ambiguous_packet_classifies_as_truncated(self, spec, factory):
        """classify_trace folds an ambiguous match into the truncated
        class without claiming a sequence."""
        from repro.analysis.classify import PacketClass, classify_trace
        from repro.trace.records import TrialTrace

        damaged = bytearray(factory.build(66_000)[:BODY_START])
        damaged[42] ^= 0xFF
        damaged[43] ^= 0xFF
        trace = TrialTrace(name="t", spec=spec, packets_sent=70_000)
        trace.records.append(_record(bytes(damaged)))
        classified = classify_trace(trace)
        packet = classified.packets[0]
        assert packet.packet_class is PacketClass.TRUNCATED
        assert packet.sequence is None


class TestSequencePlausibility:
    def test_slack_window(self, spec, factory):
        matcher = TraceMatcher(spec, packets_sent=100)
        # Just beyond sent count but within slack: plausible.
        assert matcher.match(_record(factory.build(105))).sequence == 105
        # Far beyond: outsider.
        assert (
            matcher.match(_record(factory.build(500))).outcome
            is MatchOutcome.OUTSIDER
        )


class TestBulkMatching:
    """``match_bulk`` + scalar fallback must equal the scalar matcher."""

    def _mixed_batch(self, factory, rng) -> list[bytes]:
        datas: list[bytes] = []
        for sequence in (0, 1, 77, 9_999):
            datas.append(factory.build(sequence))  # pristine → bulk exact
        damaged = factory.build(55)
        positions = rng.choice(FRAME_BYTES * 8, size=200, replace=False)
        datas.append(flip_bits(damaged, positions))  # scattered corruption
        datas.append(factory.build(56)[:500])  # truncated
        datas.append(factory.build(57)[: BODY_START + 10])  # deep truncation
        datas.append(OutsiderTraffic().build_frame(rng))  # foreign frame
        datas.append(b"\x00" * FRAME_BYTES)  # full-length garbage
        return datas

    def test_bulk_exactly_equals_scalar(self, matcher, factory, rng):
        datas = self._mixed_batch(factory, rng)
        bulk = matcher.match_bulk(datas)
        for data, bulk_result in zip(datas, bulk):
            scalar = matcher.match_bytes(data)
            resolved = (
                bulk_result
                if bulk_result is not None
                else matcher.match_bytes(data, skip_fast=True)
            )
            assert resolved.outcome is scalar.outcome
            assert resolved.sequence == scalar.sequence
            assert resolved.exact == scalar.exact

    def test_bulk_hits_only_pristine_frames(self, matcher, factory, rng):
        datas = self._mixed_batch(factory, rng)
        bulk = matcher.match_bulk(datas)
        # The first four are byte-identical pristine frames: the bulk
        # fast path must resolve them without scalar fallback.
        assert all(r is not None and r.exact for r in bulk[:4])
        # Everything else is damaged/foreign and must defer to scalar.
        assert all(r is None for r in bulk[4:])

    def test_empty_batch(self, matcher):
        assert matcher.match_bulk([]) == []

    def test_wrapped_sequences_and_slack(self, spec, factory):
        short = TraceMatcher(spec, packets_sent=100)
        inside = factory.build(105)  # within SEQUENCE_SLACK
        outside = factory.build(500)  # implausible → not a bulk hit
        results = short.match_bulk([inside, outside])
        assert results[0] is not None and results[0].sequence == 105
        assert results[1] is None
