"""Error syndrome extraction."""

import numpy as np
import pytest

from repro.analysis.syndrome import extract_syndrome
from repro.framing.bits import flip_bits
from repro.framing.testpacket import BODY_START, FRAME_BYTES


class TestExtraction:
    def test_clean_frame_empty_syndrome(self, factory):
        syndrome = extract_syndrome(factory.build(5), 5, factory)
        assert syndrome.body_bits_damaged == 0
        assert not syndrome.wrapper_damaged
        assert not syndrome.damaged

    def test_body_flip_recovered_exactly(self, factory):
        frame = factory.build(5)
        body_bit = BODY_START * 8 + 100
        damaged = flip_bits(frame, np.array([body_bit]))
        syndrome = extract_syndrome(damaged, 5, factory)
        assert syndrome.body_bits_damaged == 1
        assert syndrome.body_bit_positions.tolist() == [100]
        assert not syndrome.wrapper_damaged

    def test_wrapper_flip_classified(self, factory):
        frame = factory.build(5)
        damaged = flip_bits(frame, np.array([17]))  # in the eth header
        syndrome = extract_syndrome(damaged, 5, factory)
        assert syndrome.wrapper_damaged
        assert syndrome.body_bits_damaged == 0

    def test_fcs_flip_is_wrapper_damage(self, factory):
        frame = factory.build(5)
        fcs_bit = (FRAME_BYTES - 2) * 8
        damaged = flip_bits(frame, np.array([fcs_bit]))
        syndrome = extract_syndrome(damaged, 5, factory)
        assert syndrome.wrapper_damaged

    def test_mixed_damage(self, factory):
        frame = factory.build(9)
        positions = np.array([8, BODY_START * 8 + 5, BODY_START * 8 + 6])
        damaged = flip_bits(frame, positions)
        syndrome = extract_syndrome(damaged, 9, factory)
        assert syndrome.wrapper_damaged
        assert syndrome.body_bits_damaged == 2

    def test_truncated_frame_rejected(self, factory):
        with pytest.raises(ValueError):
            extract_syndrome(factory.build(5)[:500], 5, factory)


class TestBurstSpans:
    def _syndrome(self, factory, positions):
        frame = factory.build(1)
        body_bits = BODY_START * 8 + np.asarray(positions)
        return extract_syndrome(flip_bits(frame, body_bits), 1, factory)

    def test_single_burst(self, factory):
        syndrome = self._syndrome(factory, [100, 105, 110])
        assert syndrome.burst_spans() == [(100, 110)]

    def test_two_bursts(self, factory):
        syndrome = self._syndrome(factory, [100, 101, 500, 503])
        assert syndrome.burst_spans() == [(100, 101), (500, 503)]

    def test_gap_parameter(self, factory):
        syndrome = self._syndrome(factory, [100, 140])
        assert len(syndrome.burst_spans(max_gap_bits=32)) == 2
        assert len(syndrome.burst_spans(max_gap_bits=64)) == 1

    def test_empty(self, factory):
        syndrome = extract_syndrome(factory.build(1), 1, factory)
        assert syndrome.burst_spans() == []
