"""Burst characterization of extracted syndromes."""

import numpy as np
import pytest

from repro.analysis.burststats import burst_statistics
from repro.analysis.classify import classify_trace
from repro.framing.bits import flip_bits
from repro.framing.testpacket import BODY_START
from repro.phy.modem import ModemRxStatus
from repro.trace.records import PacketRecord, TrialTrace
from repro.trace.trial import TrialConfig, run_fast_trial

STATUS = ModemRxStatus(9, 3, 14, 0)


def _trace_with_bursts(spec, factory, burst_specs):
    """Hand-build a trace: burst_specs is a list of per-packet position
    lists (body-bit offsets)."""
    trace = TrialTrace(name="bursts", spec=spec, packets_sent=len(burst_specs))
    for sequence, positions in enumerate(burst_specs):
        frame = factory.build(sequence)
        if positions:
            bits = BODY_START * 8 + np.asarray(positions)
            frame = flip_bits(frame, bits)
        trace.records.append(PacketRecord.from_bytes(frame, STATUS))
    return trace


class TestHandBuilt:
    def test_single_burst_measured_exactly(self, spec, factory):
        trace = _trace_with_bursts(spec, factory, [[100, 103, 106], []])
        stats = burst_statistics(classify_trace(trace))
        assert stats.packets_analyzed == 2
        assert stats.packets_with_errors == 1
        assert stats.total_error_bits == 3
        assert stats.burst_count == 1
        assert stats.burst_lengths == [7]  # 106 - 100 + 1
        assert stats.burst_sizes == [3]

    def test_two_bursts_split_by_gap(self, spec, factory):
        trace = _trace_with_bursts(spec, factory, [[10, 12, 500, 505]])
        stats = burst_statistics(classify_trace(trace))
        assert stats.burst_count == 2
        assert sorted(stats.burst_sizes) == [2, 2]

    def test_mean_ber(self, spec, factory):
        from repro.framing.testpacket import BODY_BITS

        trace = _trace_with_bursts(spec, factory, [[1], [], [], []])
        stats = burst_statistics(classify_trace(trace))
        assert stats.mean_ber == pytest.approx(1 / (4 * BODY_BITS))

    def test_clean_trace(self, spec, factory):
        trace = _trace_with_bursts(spec, factory, [[], []])
        stats = burst_statistics(classify_trace(trace))
        assert stats.packets_with_errors == 0
        assert stats.burst_count == 0
        assert stats.mean_ber == 0.0
        assert stats.burstiness_ratio == 1.0


class TestOnSimulatedChannel:
    def test_tx5_channel_is_bursty(self):
        """The simulated attenuation channel produces multi-bit bursts
        (the paper's Tx5: 82 bits over 25 packets)."""
        output = run_fast_trial(
            TrialConfig(name="t", packets=6_000, mean_level=9.0, seed=7)
        )
        stats = burst_statistics(classify_trace(output.trace))
        assert stats.packets_with_errors > 50
        assert stats.burstiness_ratio > 1.5  # decidedly not i.i.d.

    def test_fitted_gilbert_elliott_matches(self):
        output = run_fast_trial(
            TrialConfig(name="t", packets=6_000, mean_level=9.0, seed=8)
        )
        stats = burst_statistics(classify_trace(output.trace))
        channel = stats.fitted_gilbert_elliott()
        assert channel.mean_ber == pytest.approx(stats.mean_ber, rel=0.05)
        assert channel.mean_burst_bits == pytest.approx(
            stats.mean_burst_span_bits, rel=0.05
        )
