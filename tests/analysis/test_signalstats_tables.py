"""Signal statistics summaries and table rendering."""

import pytest

from repro.analysis.classify import ClassifiedPacket, ClassifiedTrace, PacketClass
from repro.analysis.metrics import TrialMetrics
from repro.analysis.signalstats import (
    signal_stats_by_class,
    stats_for_packets,
    summarize,
)
from repro.analysis.tables import (
    format_loss_percent,
    render_comparison,
    render_metrics_table,
    render_signal_table,
)
from repro.phy.modem import ModemRxStatus
from repro.trace.records import PacketRecord, TrialTrace


def _packet(level, silence, quality, cls=PacketClass.UNDAMAGED) -> ClassifiedPacket:
    record = PacketRecord.from_bytes(
        b"x", ModemRxStatus(level, silence, quality, 0)
    )
    return ClassifiedPacket(record=record, packet_class=cls)


class TestSummarize:
    def test_empty_is_none(self):
        assert summarize([]) is None

    def test_single_value(self):
        s = summarize([7])
        assert (s.minimum, s.maximum, s.mean, s.sd) == (7, 7, 7.0, 0.0)

    def test_known_statistics(self):
        s = summarize([2, 4, 6])
        assert s.mean == pytest.approx(4.0)
        assert s.sd == pytest.approx((8 / 3) ** 0.5)
        assert s.minimum == 2 and s.maximum == 6

    def test_formatted(self):
        assert summarize([2, 4, 6]).formatted().startswith("2 4.00")


class TestGrouping:
    def test_stats_for_packets(self):
        stats = stats_for_packets(
            "g", [_packet(10, 2, 15), _packet(12, 4, 14)]
        )
        assert stats.packets == 2
        assert stats.level.mean == pytest.approx(11.0)
        assert stats.silence.mean == pytest.approx(3.0)
        assert stats.quality.mean == pytest.approx(14.5)

    def test_standard_groups_drop_empty(self, spec):
        classified = ClassifiedTrace(
            trace=TrialTrace(name="t", spec=spec, packets_sent=1)
        )
        classified.packets.append(_packet(29, 3, 15))
        rows = signal_stats_by_class(classified)
        names = [r.group for r in rows]
        assert "All test packets" in names
        assert "Undamaged" in names
        assert "Truncated" not in names  # empty group omitted

    def test_all_test_packets_excludes_outsiders(self, spec):
        classified = ClassifiedTrace(
            trace=TrialTrace(name="t", spec=spec, packets_sent=2)
        )
        classified.packets.append(_packet(29, 3, 15))
        classified.packets.append(
            _packet(5, 3, 7, cls=PacketClass.OUTSIDER_DAMAGED)
        )
        rows = {r.group: r for r in signal_stats_by_class(classified)}
        assert rows["All test packets"].packets == 1
        assert rows["Damaged outsiders"].packets == 1


class TestRendering:
    def _metrics(self) -> TrialMetrics:
        return TrialMetrics(
            name="office1",
            packets_sent=102_720,
            packets_received=102_689,
            packets_truncated=1,
            body_bits_received=8 * 10**8,
            wrapper_damaged=0,
            body_damaged_packets=0,
            body_bits_damaged=0,
            worst_body_bits=None,
            outsiders_received=0,
        )

    def test_loss_format_matches_paper_style(self):
        metrics = self._metrics()
        assert format_loss_percent(metrics) == ".03%"
        metrics.packets_received = metrics.packets_sent
        assert format_loss_percent(metrics) == "0%"
        metrics.packets_received = metrics.packets_sent // 2
        assert format_loss_percent(metrics) == "50%"

    def test_metrics_table_contains_row(self):
        table = render_metrics_table([self._metrics()])
        assert "office1" in table
        assert "102689" in table
        assert "8x10^8" in table

    def test_signal_table_renders(self):
        stats = stats_for_packets("All", [_packet(10, 2, 15)])
        table = render_signal_table([stats])
        assert "All" in table
        assert "10.00" in table

    def test_comparison_renderer(self):
        text = render_comparison(
            "Table 2", {"loss": ".03%"}, {"loss": ".04%"}
        )
        assert "paper" in text and ".03%" in text and ".04%" in text
        text = render_comparison("T", {"loss": ".03%"}, {})
        assert "n/a" in text
