"""Span trees: deterministic ids, nesting, status, and the helpers."""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs.events import read_telemetry
from repro.obs.spans import (
    NULL_TRACE_SPAN,
    SpanContext,
    SpanRecorder,
    VOLATILE_SPAN_FIELDS,
    derive_span_id,
    derive_trace_id,
    span_structure,
    span_tree,
)


class TestDeterministicIds:
    def test_trace_id_pure_function_of_labels(self):
        assert derive_trace_id("report", "1996") == derive_trace_id(
            "report", "1996"
        )
        assert derive_trace_id("report") != derive_trace_id("table2")

    def test_span_id_pure_function_of_path(self):
        trace = derive_trace_id("t")
        first = derive_span_id(trace, None, "work", 0)
        assert first == derive_span_id(trace, None, "work", 0)
        assert first != derive_span_id(trace, None, "work", 1)
        assert first != derive_span_id(trace, first, "work", 0)

    def test_ids_are_16_hex_chars(self):
        assert len(derive_trace_id("x")) == 16
        int(derive_trace_id("x"), 16)  # parses as hex


class TestRecorder:
    def test_nesting_links_parent_ids(self):
        recorder = SpanRecorder(trace_id=derive_trace_id("t"))
        with recorder.span("outer") as outer:
            with recorder.span("inner"):
                pass
        outer_rec, = [r for r in recorder.finished if r["name"] == "outer"]
        inner_rec, = [r for r in recorder.finished if r["name"] == "inner"]
        assert inner_rec["parent"] == outer_rec["span"]
        assert outer_rec["parent"] is None
        assert outer is not None

    def test_same_named_siblings_get_distinct_ordinals(self):
        recorder = SpanRecorder(trace_id=derive_trace_id("t"))
        with recorder.span("parent"):
            with recorder.span("child"):
                pass
            with recorder.span("child"):
                pass
        children = [r for r in recorder.finished if r["name"] == "child"]
        assert len({r["span"] for r in children}) == 2

    def test_rerun_produces_identical_ids(self):
        def run() -> list[dict]:
            recorder = SpanRecorder(trace_id=derive_trace_id("t"))
            with recorder.span("a"):
                with recorder.span("b"):
                    pass
                with recorder.span("b"):
                    pass
            return recorder.finished

        assert span_structure(run()) == span_structure(run())

    def test_error_status_and_exception_name(self):
        recorder = SpanRecorder(trace_id=derive_trace_id("t"))
        with pytest.raises(ValueError):
            with recorder.span("doomed"):
                raise ValueError("boom")
        record, = recorder.finished
        assert record["status"] == "error"
        assert record["attrs"]["error"] == "ValueError"

    def test_records_carry_cost_fields(self):
        recorder = SpanRecorder(trace_id=derive_trace_id("t"))
        with recorder.span("work", size=3):
            pass
        record, = recorder.finished
        assert record["wall_s"] >= 0.0
        assert record["cpu_s"] >= 0.0
        assert "rss_delta_kb" in record
        assert record["attrs"]["size"] == 3
        assert record["pid"] > 0

    def test_set_attr_while_live(self):
        recorder = SpanRecorder(trace_id=derive_trace_id("t"))
        with recorder.span("work") as span:
            span.set_attr("rows", 42)
        assert recorder.finished[0]["attrs"]["rows"] == 42

    def test_adopt_parents_under_remote_span(self):
        remote_trace = derive_trace_id("remote")
        remote_span = derive_span_id(remote_trace, None, "run_tasks", 0)
        recorder = SpanRecorder(trace_id=derive_trace_id("local"))
        with recorder.adopt(SpanContext(remote_trace, remote_span)):
            with recorder.span("task"):
                pass
        record, = recorder.finished
        assert record["trace"] == remote_trace
        assert record["parent"] == remote_span
        # outside the adoption the local trace id is restored
        assert recorder.trace_id == derive_trace_id("local")

    def test_spans_emit_to_sink(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with obs.session(telemetry_path=str(path), trace_label="t") as state:
            with state.spans.span("work"):
                pass
        _, records = read_telemetry(path)
        spans = [r for r in records if r["type"] == "span"]
        assert [r["name"] for r in spans] == ["work"]


class TestRuntimeHook:
    def test_trace_span_noop_when_disabled(self):
        assert obs.STATE.spans is None
        span = obs.trace_span("anything")
        assert span is NULL_TRACE_SPAN
        with span:  # does nothing, raises nothing
            span.set_attr("k", "v")

    def test_trace_span_records_when_enabled(self):
        with obs.session(trace_label="t") as state:
            with obs.trace_span("work"):
                pass
            assert state.spans.finished[0]["name"] == "work"

    def test_configure_trace_id_verbatim(self):
        with obs.session(trace_id="feedfacedeadbeef") as state:
            assert state.spans.trace_id == "feedfacedeadbeef"

    def test_reset_clears_recorder(self):
        obs.configure()
        assert obs.STATE.spans is not None
        obs.reset()
        assert obs.STATE.spans is None


class TestHelpers:
    def _records(self) -> list[dict]:
        recorder = SpanRecorder(trace_id=derive_trace_id("t"))
        with recorder.span("root"):
            with recorder.span("child"):
                pass
        return recorder.finished

    def test_span_structure_strips_volatiles(self):
        structure = span_structure(self._records())
        assert len(structure) == 2
        flat = " ".join(str(t) for t in structure)
        for field in VOLATILE_SPAN_FIELDS:
            assert field not in flat

    def test_span_tree_roots_and_children(self):
        records = self._records()
        roots, children = span_tree(records)
        assert [r["name"] for r in roots] == ["root"]
        kids = children[roots[0]["span"]]
        assert [r["name"] for r in kids] == ["child"]

    def test_span_tree_orphans_become_roots(self):
        records = self._records()
        child = next(r for r in records if r["name"] == "child")
        roots, _ = span_tree([child])  # parent record absent (other shard)
        assert roots == [child]
