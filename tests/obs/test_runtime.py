"""Lifecycle of the process-wide observability state."""

from __future__ import annotations

from repro import obs
from repro.obs import runtime
from repro.obs.metrics import NULL_COUNTER, NULL_SPAN


class TestDefaults:
    def test_disabled_by_default(self):
        assert runtime.STATE.enabled is False
        assert runtime.STATE.profiling is False
        assert runtime.STATE.rng_accounting is False
        assert runtime.STATE.tracer is None
        assert runtime.STATE.sink is None
        assert runtime.STATE.metrics.enabled is False

    def test_disabled_helpers_are_noops(self):
        assert obs.metrics().counter("x") is NULL_COUNTER
        assert obs.span("profile.x") is NULL_SPAN


class TestConfigure:
    def test_mutates_state_in_place(self):
        before = runtime.STATE
        state = obs.configure()
        assert state is before  # modules may cache the STATE reference
        assert state.enabled is True
        assert state.profiling is True
        assert state.rng_accounting is True
        assert state.metrics.enabled is True

    def test_flags_respected(self):
        state = obs.configure(profiling=False, rng_accounting=False)
        assert state.enabled is True
        assert state.profiling is False
        assert state.rng_accounting is False

    def test_telemetry_path_opens_sink_and_tracer(self, tmp_path):
        path = tmp_path / "run.jsonl"
        state = obs.configure(telemetry_path=str(path))
        assert state.sink is not None
        assert state.tracer is not None
        assert state.tracer.sink is state.sink
        assert path.exists()  # header written eagerly

    def test_reconfigure_closes_previous_sink(self, tmp_path):
        first = obs.configure(telemetry_path=str(tmp_path / "a.jsonl"))
        first_sink = first.sink
        obs.configure(telemetry_path=str(tmp_path / "b.jsonl"))
        assert first_sink._stream is None  # closed

    def test_reset_restores_defaults(self):
        obs.configure()
        obs.reset()
        assert runtime.STATE.enabled is False
        assert runtime.STATE.metrics.enabled is False


class TestSession:
    def test_session_scopes_enablement(self):
        with obs.session() as state:
            assert state.enabled
            state.metrics.counter("x").inc()
        assert runtime.STATE.enabled is False

    def test_session_closes_sink_on_exit(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with obs.session(telemetry_path=str(path)) as state:
            sink = state.sink
            sink.emit({"type": "event", "name": "a"})
        assert sink._stream is None
        header, records = obs.read_telemetry(path)
        assert len(records) == 1


class TestEnsureMetrics:
    def test_creates_temporary_session_when_idle(self):
        with obs.ensure_metrics() as state:
            assert state.enabled
        assert runtime.STATE.enabled is False

    def test_reuses_active_session(self, tmp_path):
        with obs.session(telemetry_path=str(tmp_path / "run.jsonl")) as outer:
            with obs.ensure_metrics() as inner:
                assert inner is outer
                assert inner.sink is outer.sink
            # The outer session survives the nested ensure_metrics.
            assert runtime.STATE.enabled is True
            assert runtime.STATE.sink is outer.sink


class TestSpanHelper:
    def test_span_times_when_enabled(self):
        with obs.session() as state:
            with obs.span("profile.x"):
                pass
            assert state.metrics.timer("profile.x").count == 1
