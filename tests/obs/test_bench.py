"""Benchmark history and the regression gate."""

from __future__ import annotations

import json

import pytest

from repro.obs.bench import (
    DEFAULT_TOLERANCE,
    TimingDelta,
    append_history,
    diff_stages,
    load_history,
    load_snapshot,
    main_diff,
    render_diff,
)


def _snapshot(tmp_path, name: str, stages: dict) -> str:
    path = tmp_path / name
    path.write_text(json.dumps({"schema": 1, "stages": stages}))
    return str(path)


class TestSnapshots:
    def test_load_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 99, "stages": {}}))
        with pytest.raises(ValueError, match="schema"):
            load_snapshot(path)

    def test_append_history_stamps_revision(self, tmp_path):
        bench = _snapshot(tmp_path, "b.json",
                          {"clean_trial": {"bulk_wall_s": 0.1}})
        history = tmp_path / "hist" / "history.jsonl"
        record = append_history(bench, history, git_rev="abc1234")
        assert record["git_rev"] == "abc1234"
        assert record["stages"]["clean_trial"]["bulk_wall_s"] == 0.1
        loaded = load_history(history)
        assert loaded == [record]

    def test_history_appends_in_order(self, tmp_path):
        bench = _snapshot(tmp_path, "b.json", {"s": {"bulk_wall_s": 0.1}})
        history = tmp_path / "history.jsonl"
        append_history(bench, history, git_rev="one")
        append_history(bench, history, git_rev="two")
        assert [r["git_rev"] for r in load_history(history)] == ["one", "two"]


class TestDiff:
    def test_compares_only_wall_s_keys(self):
        deltas, uncompared = diff_stages(
            {"stages": {"s": {"bulk_wall_s": 0.1, "packets": 100,
                              "speedup_vs_scalar": 3.0}}},
            {"stages": {"s": {"bulk_wall_s": 0.2, "packets": 200,
                              "speedup_vs_scalar": 1.0}}},
        )
        assert [(d.stage, d.key) for d in deltas] == [("s", "bulk_wall_s")]
        assert uncompared == []

    def test_compares_throughput_keys_too(self):
        deltas, uncompared = diff_stages(
            {"stages": {"s": {"bulk_wall_s": 0.1,
                              "bulk_packets_per_s": 100_000,
                              "scalar_records_per_s": 5_000,
                              "speedup_vs_scalar": 3.0}}},
            {"stages": {"s": {"bulk_wall_s": 0.1,
                              "bulk_packets_per_s": 90_000,
                              "scalar_records_per_s": 5_000,
                              "speedup_vs_scalar": 3.0}}},
        )
        assert [(d.stage, d.key) for d in deltas] == [
            ("s", "bulk_packets_per_s"),
            ("s", "bulk_wall_s"),
            ("s", "scalar_records_per_s"),
        ]
        assert uncompared == []

    def test_regression_detection_respects_tolerance(self):
        delta = TimingDelta("s", "bulk_wall_s", 0.1, 0.12)
        assert not delta.regressed(0.25)  # 1.2x within 25%
        assert delta.regressed(0.1)

    def test_throughput_regresses_downward(self):
        delta = TimingDelta("s", "bulk_packets_per_s", 100_000, 80_000)
        assert delta.kind == "throughput"
        assert not delta.regressed(0.25)  # -20% within 25%
        assert delta.regressed(0.1)
        # A throughput *increase* is never a regression ...
        faster = TimingDelta("s", "bulk_packets_per_s", 100_000, 200_000)
        assert not faster.regressed(0.1)
        assert faster.improved(0.1)
        # ... while the same ratio on a wall key is one.
        slower = TimingDelta("s", "bulk_wall_s", 0.1, 0.2)
        assert slower.kind == "wall"
        assert slower.regressed(0.25)

    def test_one_sided_stages_reported_not_gating(self):
        deltas, uncompared = diff_stages(
            {"stages": {"old": {"bulk_wall_s": 0.1}}},
            {"stages": {"new": {"bulk_wall_s": 0.1}}},
        )
        assert deltas == []
        assert len(uncompared) == 2
        assert any("baseline only" in note for note in uncompared)
        assert any("no baseline" in note for note in uncompared)

    def test_zero_baseline_never_divides(self):
        delta = TimingDelta("s", "bulk_wall_s", 0.0, 1.0)
        assert delta.ratio == 1.0
        assert not delta.regressed(DEFAULT_TOLERANCE)

    def test_render_flags_regressions(self):
        deltas = [
            TimingDelta("s", "bulk_wall_s", 0.1, 0.5),
            TimingDelta("s", "scalar_wall_s", 0.1, 0.05),
        ]
        text = render_diff(deltas, [], tolerance=0.25)
        assert "REGRESSION" in text
        assert "improved" in text
        assert "1 regression" in text

    def test_render_throughput_rows_use_rate_units(self):
        deltas = [
            TimingDelta("s", "bulk_packets_per_s", 100_000, 50_000),
            TimingDelta("s", "bulk_wall_s", 0.1, 0.1),
        ]
        text = render_diff(deltas, [], tolerance=0.25)
        assert "/s" in text
        assert "REGRESSION" in text  # the halved throughput
        assert "1 regression" in text

    def test_gate_fails_on_throughput_drop(self, tmp_path):
        baseline = _snapshot(
            tmp_path, "base.json", {"s": {"bulk_packets_per_s": 100_000}}
        )
        current = _snapshot(
            tmp_path, "cur.json", {"s": {"bulk_packets_per_s": 50_000}}
        )
        assert main_diff(baseline, current, tolerance=0.25) == 1
        assert main_diff(baseline, current, tolerance=0.6) == 0


class TestGate:
    def test_exit_zero_within_tolerance(self, tmp_path, capsys):
        baseline = _snapshot(tmp_path, "base.json",
                             {"s": {"bulk_wall_s": 0.1}})
        current = _snapshot(tmp_path, "cur.json",
                            {"s": {"bulk_wall_s": 0.11}})
        assert main_diff(baseline, current, tolerance=0.25) == 0
        assert "0 regressions" in capsys.readouterr().out

    def test_exit_one_on_regression(self, tmp_path, capsys):
        baseline = _snapshot(tmp_path, "base.json",
                             {"s": {"bulk_wall_s": 0.1}})
        current = _snapshot(tmp_path, "cur.json",
                            {"s": {"bulk_wall_s": 0.2}})
        assert main_diff(baseline, current, tolerance=0.25) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_cli_end_to_end(self, tmp_path, capsys):
        from repro.__main__ import main

        baseline = _snapshot(tmp_path, "base.json",
                             {"s": {"bulk_wall_s": 0.1}})
        current = _snapshot(tmp_path, "cur.json",
                            {"s": {"bulk_wall_s": 0.4}})
        assert main(["bench", "diff", baseline, current]) == 1
        assert main(
            ["bench", "diff", baseline, current, "--tolerance", "5.0"]
        ) == 0

    def test_cli_append(self, tmp_path, capsys):
        from repro.__main__ import main

        bench = _snapshot(tmp_path, "b.json", {"s": {"bulk_wall_s": 0.1}})
        history = str(tmp_path / "history.jsonl")
        assert main(
            ["bench", "append", "--bench", bench, "--history", history]
        ) == 0
        assert len(load_history(history)) == 1


class TestUnknownAndMalformedStages:
    """A current snapshot may carry stages the committed baseline has
    never seen (a freshly added benchmark), and hand-edited snapshots
    may carry junk payloads.  Neither must hard-fail the gate."""

    def test_new_stage_in_current_exits_zero(self, tmp_path, capsys):
        baseline = _snapshot(tmp_path, "base.json",
                             {"old": {"bulk_wall_s": 0.1}})
        current = _snapshot(tmp_path, "cur.json",
                            {"old": {"bulk_wall_s": 0.1},
                             "serve_ingest": {"ingest_wall_s": 0.5}})
        assert main_diff(baseline, current) == 0
        out = capsys.readouterr().out
        assert "serve_ingest" in out
        assert "new (no baseline)" in out

    def test_new_stage_never_compares(self):
        deltas, uncompared = diff_stages(
            {"stages": {}},
            {"stages": {"serve_ingest": {"ingest_wall_s": 0.5}}},
        )
        assert deltas == []
        assert any("serve_ingest" in note for note in uncompared)

    def test_malformed_stage_payload_warns_not_crashes(self, tmp_path,
                                                       capsys):
        baseline = _snapshot(tmp_path, "base.json",
                             {"s": {"bulk_wall_s": 0.1},
                              "junk": "not-an-object"})
        current = _snapshot(tmp_path, "cur.json",
                            {"s": {"bulk_wall_s": 0.1},
                             "junk": [1, 2, 3]})
        assert main_diff(baseline, current) == 0
        out = capsys.readouterr().out
        assert "malformed payload" in out

    def test_malformed_one_side_only(self):
        deltas, uncompared = diff_stages(
            {"stages": {"s": {"bulk_wall_s": 0.1}}},
            {"stages": {"s": None}},
        )
        assert deltas == []
        assert any("malformed" in note and "current" in note
                   for note in uncompared)

    def test_non_object_stages_table(self):
        deltas, uncompared = diff_stages(
            {"stages": ["oops"]}, {"stages": {"s": {"bulk_wall_s": 0.1}}}
        )
        assert any("not an object" in note for note in uncompared)
        assert deltas == []

    def test_non_object_snapshot_rejected(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError, match="JSON object"):
            load_snapshot(path)
