"""Registry semantics: instruments, labels, snapshots, disabled no-ops."""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import (
    Metrics,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_TIMER,
    render_snapshot,
    scoped_name,
)


class TestScopedName:
    def test_plain_name_unchanged(self):
        assert scoped_name("phy.bits_flipped") == "phy.bits_flipped"

    def test_labels_folded_sorted(self):
        key = scoped_name("link.drops", {"reason": "mac_collision"})
        assert key == "link.drops{reason=mac_collision}"
        multi = scoped_name("m", {"b": "2", "a": "1"})
        assert multi == "m{a=1,b=2}"


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        metrics = Metrics()
        counter = metrics.counter("phy.missed")
        assert counter.value == 0
        counter.inc()
        counter.inc(3)
        assert counter.value == 4

    def test_same_key_same_instrument(self):
        metrics = Metrics()
        a = metrics.counter("mac.attempts", protocol="csma_ca")
        b = metrics.counter("mac.attempts", protocol="csma_ca")
        assert a is b
        c = metrics.counter("mac.attempts", protocol="csma_cd")
        assert c is not a


class TestGauge:
    def test_last_write_wins(self):
        gauge = Metrics().gauge("sim.queue_depth")
        gauge.set(7)
        gauge.set(3)
        assert gauge.value == 3


class TestHistogram:
    def test_running_moments(self):
        histogram = Metrics().histogram("mac.backoff_slots")
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.record(value)
        assert histogram.count == 4
        assert histogram.total == 10.0
        assert histogram.minimum == 1.0
        assert histogram.maximum == 4.0
        assert histogram.mean == pytest.approx(2.5)
        assert histogram.stddev == pytest.approx(1.118, abs=1e-3)

    def test_empty_summary(self):
        summary = Metrics().histogram("h").summary()
        assert summary["count"] == 0
        assert summary["min"] is None


class TestMergeableState:
    """export_state/merge_state: how worker registries fold into the
    parent's after a parallel run."""

    def test_counters_add(self):
        parent, worker = Metrics(), Metrics()
        parent.counter("trace.packets_offered").inc(10)
        worker.counter("trace.packets_offered").inc(5)
        worker.counter("link.drops", reason="missed").inc(2)
        parent.merge_state(worker.export_state())
        assert parent.counter("trace.packets_offered").value == 15
        assert parent.counter("link.drops", reason="missed").value == 2

    def test_histogram_merge_is_exact(self):
        parent, worker = Metrics(), Metrics()
        for value in (1.0, 5.0):
            parent.histogram("h").record(value)
        for value in (2.0, 3.0, 10.0):
            worker.histogram("h").record(value)
        parent.merge_state(worker.export_state())
        merged = parent.histogram("h")
        reference = Metrics().histogram("h")
        for value in (1.0, 5.0, 2.0, 3.0, 10.0):
            reference.record(value)
        assert merged.count == reference.count
        assert merged.total == reference.total
        assert merged.minimum == reference.minimum
        assert merged.maximum == reference.maximum
        assert merged.stddev == pytest.approx(reference.stddev)

    def test_empty_worker_state_is_noop(self):
        parent = Metrics()
        parent.counter("c").inc(3)
        parent.merge_state(Metrics().export_state())
        assert parent.counter("c").value == 3
        assert parent.histogram("h").count == 0

    def test_gauges_last_write_wins(self):
        parent, worker = Metrics(), Metrics()
        parent.gauge("g").set(1)
        worker.gauge("g").set(9)
        parent.merge_state(worker.export_state())
        assert parent.gauge("g").value == 9

    def test_timer_state_round_trips(self):
        worker = Metrics()
        with worker.timer("profile.t").time():
            pass
        parent = Metrics()
        parent.merge_state(worker.export_state())
        assert parent.timer("profile.t").count == 1

    def test_state_is_pickle_friendly(self):
        import pickle

        worker = Metrics()
        worker.counter("c").inc()
        worker.histogram("h").record(2.0)
        state = pickle.loads(pickle.dumps(worker.export_state()))
        parent = Metrics()
        parent.merge_state(state)
        assert parent.counter("c").value == 1

    def test_disabled_registry_merge_is_noop(self):
        disabled = Metrics(enabled=False)
        worker = Metrics()
        worker.counter("c").inc(5)
        disabled.merge_state(worker.export_state())
        assert all(not section for section in disabled.snapshot().values())


class TestTimer:
    def test_span_records_elapsed(self):
        timer = Metrics().timer("profile.match")
        with timer.time():
            pass
        assert timer.count == 1
        assert timer.total_s >= 0.0

    def test_exception_still_recorded(self):
        timer = Metrics().timer("profile.match")
        with pytest.raises(ValueError):
            with timer.time():
                raise ValueError("boom")
        assert timer.count == 1


class TestDisabledRegistry:
    def test_hands_out_shared_null_instruments(self):
        metrics = Metrics(enabled=False)
        assert metrics.counter("x") is NULL_COUNTER
        assert metrics.gauge("x") is NULL_GAUGE
        assert metrics.histogram("x") is NULL_HISTOGRAM
        assert metrics.timer("x") is NULL_TIMER

    def test_null_mutators_are_noops(self):
        metrics = Metrics(enabled=False)
        metrics.counter("x").inc(5)
        metrics.gauge("x").set(5)
        metrics.histogram("x").record(5)
        with metrics.timer("x").time():
            pass
        assert NULL_COUNTER.value == 0
        assert NULL_GAUGE.value == 0.0
        assert NULL_HISTOGRAM.count == 0
        assert NULL_TIMER.count == 0

    def test_disabled_snapshot_empty(self):
        metrics = Metrics(enabled=False)
        metrics.counter("x").inc()
        snapshot = metrics.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["timers"] == {}


class TestSnapshot:
    def test_json_serializable_and_sorted(self):
        metrics = Metrics()
        metrics.counter("b").inc(2)
        metrics.counter("a").inc(1)
        metrics.gauge("g").set(1.5)
        metrics.histogram("h").record(2.0)
        with metrics.timer("t").time():
            pass
        snapshot = metrics.snapshot()
        json.dumps(snapshot)  # must not raise
        assert list(snapshot["counters"]) == ["a", "b"]
        assert snapshot["histograms"]["h"]["count"] == 1

    def test_counters_snapshot_is_plain_dict(self):
        metrics = Metrics()
        metrics.counter("phy.missed").inc(4)
        assert metrics.counters_snapshot() == {"phy.missed": 4}

    def test_reset_forgets_everything(self):
        metrics = Metrics()
        metrics.counter("x").inc()
        metrics.reset()
        assert metrics.counters_snapshot() == {}


class TestRenderSnapshot:
    def test_mentions_each_section(self):
        metrics = Metrics()
        metrics.counter("phy.missed").inc(2)
        metrics.gauge("sim.queue_depth").set(3)
        metrics.histogram("mac.backoff_slots").record(1.0)
        text = render_snapshot(metrics.snapshot())
        assert "phy.missed" in text
        assert "sim.queue_depth" in text
        assert "mac.backoff_slots" in text

    def test_empty_snapshot(self):
        assert "no metrics" in render_snapshot(Metrics().snapshot())
