"""Observability test fixtures: never leak an enabled session."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _reset_obs_state():
    """Restore the disabled-by-default state around every test."""
    obs.reset()
    yield
    obs.reset()
