"""The ``stats`` subcommand: telemetry summarization and rendering."""

from __future__ import annotations

import pytest

from repro.obs.events import JsonlTelemetrySink
from repro.obs.stats import main, render_summary, summarize_telemetry


@pytest.fixture
def telemetry_file(tmp_path):
    path = tmp_path / "run.jsonl"
    with JsonlTelemetrySink(path) as sink:
        sink.emit({"type": "event", "name": "mac.poll", "sim_t": 0.1,
                   "queued_s": 0.1, "dur_us": 50.0, "queue_depth": 4})
        sink.emit({"type": "event", "name": "mac.poll", "sim_t": 0.2,
                   "queued_s": 0.1, "dur_us": 30.0, "queue_depth": 2})
        sink.emit({"type": "event", "name": "tx.end", "sim_t": 0.3,
                   "queued_s": 0.2, "dur_us": 20.0, "queue_depth": 1})
        sink.emit({"type": "manifest", "experiment": "table2",
                   "seed": 1996, "scale": 0.05, "wall_clock_s": 1.25,
                   "events_fired": 3, "packets_offered": 500})
        sink.emit({"type": "metrics",
                   "metrics": {"counters": {"phy.missed": 2, "zeroed": 0}}})
    return path


class TestSummarize:
    def test_aggregates_events(self, telemetry_file):
        summary = summarize_telemetry(telemetry_file)
        assert summary.record_count == 5
        assert summary.event_count == 3
        assert summary.event_names["mac.poll"] == 2
        assert summary.event_handler_s == pytest.approx(100e-6)
        assert summary.max_queue_depth == 4

    def test_collects_manifests_and_metrics(self, telemetry_file):
        summary = summarize_telemetry(telemetry_file)
        assert len(summary.manifests) == 1
        assert summary.total_wall_clock_s == pytest.approx(1.25)
        assert summary.total_events_fired == 3
        assert summary.total_packets_offered == 500
        assert summary.final_metrics["counters"]["phy.missed"] == 2


class TestRender:
    def test_mentions_headline_numbers(self, telemetry_file):
        text = render_summary(summarize_telemetry(telemetry_file))
        assert "table2" in text
        assert "500 packets offered" in text
        assert "mac.poll" in text
        assert "phy.missed" in text
        # zero-valued counters are suppressed in the final section
        assert "zeroed" not in text


class TestMain:
    def test_prints_summary_and_returns_zero(self, telemetry_file, capsys):
        assert main(str(telemetry_file)) == 0
        captured = capsys.readouterr()
        assert "table2" in captured.out

    def test_refuses_non_telemetry_file(self, tmp_path):
        path = tmp_path / "not-telemetry.jsonl"
        path.write_text('{"kind": "something-else", "format": 1}\n')
        with pytest.raises(ValueError):
            main(str(path))
