"""Telemetry sink round-trips and simulator event tracing."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs.events import (
    EventTracer,
    JsonlTelemetrySink,
    TELEMETRY_FORMAT,
    TELEMETRY_KIND,
    iter_telemetry,
    read_telemetry,
)
from repro.simkit.simulator import Simulator


class TestSinkRoundTrip:
    def test_header_then_records(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with JsonlTelemetrySink(path) as sink:
            sink.emit({"type": "event", "name": "a"})
            sink.emit({"type": "manifest", "experiment": "t"})
            assert sink.records_written == 2
        header, records = read_telemetry(path)
        assert header["kind"] == TELEMETRY_KIND
        assert header["format"] == TELEMETRY_FORMAT
        assert [r["type"] for r in records] == ["event", "manifest"]

    def test_gzip_by_suffix(self, tmp_path):
        path = tmp_path / "run.jsonl.gz"
        with JsonlTelemetrySink(path) as sink:
            sink.emit({"type": "event", "name": "a"})
        with open(path, "rb") as raw:
            assert raw.read(2) == b"\x1f\x8b"  # gzip magic
        _, records = read_telemetry(path)
        assert records[0]["name"] == "a"

    def test_aborted_run_leaves_valid_file(self, tmp_path):
        path = tmp_path / "run.jsonl"
        sink = JsonlTelemetrySink(path)
        sink.close()  # no records ever emitted
        header, records = read_telemetry(path)
        assert header["kind"] == TELEMETRY_KIND
        assert records == []

    def test_emit_after_close_raises(self, tmp_path):
        sink = JsonlTelemetrySink(tmp_path / "run.jsonl")
        sink.close()
        with pytest.raises(ValueError, match="closed"):
            sink.emit({"type": "event"})

    def test_iter_telemetry(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with JsonlTelemetrySink(path) as sink:
            sink.emit({"type": "event", "name": "x"})
        assert [r["name"] for r in iter_telemetry(path)] == ["x"]


class TestReaderValidation:
    def test_rejects_foreign_kind(self, tmp_path):
        path = tmp_path / "other.jsonl"
        path.write_text(json.dumps({"format": 1, "kind": "something-else"}) + "\n")
        with pytest.raises(ValueError, match="not a telemetry file"):
            read_telemetry(path)

    def test_rejects_future_format(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(
            json.dumps({"format": TELEMETRY_FORMAT + 1,
                        "kind": TELEMETRY_KIND}) + "\n"
        )
        with pytest.raises(ValueError, match="format"):
            read_telemetry(path)

    def test_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_telemetry(path)


class TestEventTracer:
    def test_records_queueing_and_duration(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with JsonlTelemetrySink(path) as sink:
            tracer = EventTracer(sink)
            tracer.event_fired("tick", sim_time=2.5, created_time=1.0,
                               duration_s=0.25, queue_depth=3)
        _, records = read_telemetry(path)
        (record,) = records
        assert record["type"] == "event"
        assert record["name"] == "tick"
        assert record["sim_t"] == 2.5
        assert record["queued_s"] == 1.5
        assert record["dur_us"] == pytest.approx(250_000)
        assert record["queue_depth"] == 3

    def test_sampling_thins_records(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with JsonlTelemetrySink(path) as sink:
            tracer = EventTracer(sink, sample_every=3)
            for _ in range(9):
                tracer.event_fired("tick", 0.0, 0.0, 0.0, 0)
        _, records = read_telemetry(path)
        assert len(records) == 3

    def test_rejects_bad_sample_every(self, tmp_path):
        with JsonlTelemetrySink(tmp_path / "run.jsonl") as sink:
            with pytest.raises(ValueError):
                EventTracer(sink, sample_every=0)


class TestSimulatorTracing:
    def test_simulator_emits_event_records(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with obs.session(telemetry_path=str(path)):
            sim = Simulator(seed=1)
            sim.schedule(1.0, lambda: None, name="tick")
            sim.schedule(2.0, lambda: None, name="tock")
            sim.run()
        _, records = read_telemetry(path)
        events = [r for r in records if r["type"] == "event"]
        assert [e["name"] for e in events] == ["tick", "tock"]
        assert events[0]["sim_t"] == 1.0
        # Scheduled at t=0 and fired at t=1: one simulated second queued.
        assert events[0]["queued_s"] == pytest.approx(1.0)

    def test_simulator_metrics_when_enabled(self):
        with obs.session() as state:
            sim = Simulator(seed=1)
            sim.schedule(1.0, lambda: None, name="tick")
            sim.run()
            counters = state.metrics.counters_snapshot()
        assert counters["sim.events_fired"] == 1
