"""Run-manifest construction from counter snapshots."""

from __future__ import annotations

import json

from repro import obs
from repro.obs.manifest import build_manifest, counter_deltas, git_revision
from repro.obs.metrics import Metrics


class TestCounterDeltas:
    def test_reports_only_increases(self):
        before = {"a": 1, "b": 5}
        after = {"a": 4, "b": 5, "c": 2}
        assert counter_deltas(before, after) == {"a": 3, "c": 2}

    def test_empty_when_nothing_changed(self):
        assert counter_deltas({"a": 1}, {"a": 1}) == {}


class TestBuildManifest:
    def _metrics(self) -> Metrics:
        metrics = Metrics()
        metrics.counter("sim.events_fired").inc(100)
        metrics.counter("trace.packets_offered").inc(2000)
        metrics.counter("phy.bits_flipped").inc(17)
        metrics.counter("rng.calls", stream="channel").inc(42)
        metrics.counter("rng.calls", stream="mac.0").inc(7)
        return metrics

    def test_splits_rng_streams_from_layer_counters(self):
        manifest = build_manifest(
            "table2",
            metrics=self._metrics(),
            counters_before={},
            wall_clock_s=1.5,
            seed=1996,
            scale=0.05,
            git_rev="abc1234",
        )
        assert manifest.experiment == "table2"
        assert manifest.events_fired == 100
        assert manifest.packets_offered == 2000
        assert manifest.rng_streams == {"channel": 42, "mac.0": 7}
        assert manifest.layer_counters["phy.bits_flipped"] == 17
        assert all(not k.startswith("rng.calls")
                   for k in manifest.layer_counters)

    def test_deltas_relative_to_before_snapshot(self):
        metrics = self._metrics()
        before = metrics.counters_snapshot()
        metrics.counter("phy.bits_flipped").inc(3)
        manifest = build_manifest(
            "table2", metrics=metrics, counters_before=before,
            wall_clock_s=0.1,
        )
        assert manifest.layer_counters == {"phy.bits_flipped": 3}
        assert manifest.events_fired == 0

    def test_record_is_json_serializable(self):
        manifest = build_manifest(
            "mac", metrics=self._metrics(), counters_before={},
            wall_clock_s=2.0, seed=1, scale=1.0, git_rev=None,
        )
        record = manifest.to_record()
        assert record["type"] == "manifest"
        json.dumps(record)  # must not raise
        assert record["rng_streams"]["channel"] == 42


class TestGitRevision:
    def test_returns_short_hash_in_this_repo(self):
        rev = git_revision()
        # This test runs inside the repository, so a hash is expected;
        # tolerate None for source exports without .git.
        if rev is not None:
            assert 6 <= len(rev) <= 16
            int(rev, 16)  # hex


class TestManifestThroughSession:
    def test_manifest_record_round_trips_through_sink(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with obs.session(telemetry_path=str(path)) as state:
            state.metrics.counter("phy.missed").inc(2)
            manifest = build_manifest(
                "table2", metrics=state.metrics, counters_before={},
                wall_clock_s=0.5,
            )
            state.sink.emit(manifest.to_record())
        _, records = obs.read_telemetry(path)
        (record,) = records
        assert record["experiment"] == "table2"
        assert record["layer_counters"] == {"phy.missed": 2}
