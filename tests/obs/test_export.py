"""Trace exporters: Perfetto JSON validity, waterfall, heartbeat tail."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs.events import JsonlTelemetrySink
from repro.obs.export import (
    follow_heartbeats,
    load_run_records,
    render_waterfall,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.obs.spans import SpanRecorder, derive_trace_id
from repro.parallel import Task, run_tasks


def _spin(seed: int) -> int:
    return seed * 2


def _traced_records() -> list[dict]:
    recorder = SpanRecorder(trace_id=derive_trace_id("t"))
    with recorder.span("root", scale=0.5):
        with recorder.span("child"):
            pass
    return recorder.finished


class TestChromeTrace:
    def test_spans_become_complete_events(self):
        doc = to_chrome_trace(_traced_records())
        spans = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert {e["name"] for e in spans} == {"root", "child"}
        for event in spans:
            assert event["ts"] >= 0.0  # normalized to trace start
            assert event["dur"] >= 0.0
            assert event["pid"] == event["tid"] > 0
        child = next(e for e in spans if e["name"] == "child")
        root = next(e for e in spans if e["name"] == "root")
        assert child["args"]["parent"] == root["args"]["span"]

    def test_metadata_names_each_process(self):
        doc = to_chrome_trace(_traced_records())
        metas = [e for e in doc["traceEvents"] if e.get("ph") == "M"]
        assert len(metas) == 1
        assert metas[0]["name"] == "process_name"

    def test_heartbeats_become_counters(self):
        records = _traced_records() + [
            {"type": "heartbeat", "unix": 0.0, "done": 1, "total": 4,
             "packets_per_s": 123.0},
        ]
        doc = to_chrome_trace(records)
        counters = [e for e in doc["traceEvents"] if e.get("ph") == "C"]
        assert counters[0]["args"]["packets_per_s"] == 123.0

    def test_written_file_is_valid_json(self, tmp_path):
        out = tmp_path / "trace.json"
        write_chrome_trace(_traced_records(), out)
        doc = json.loads(out.read_text())
        assert "traceEvents" in doc

    def test_empty_records_export_cleanly(self, tmp_path):
        out = tmp_path / "trace.json"
        write_chrome_trace([], out)
        assert json.loads(out.read_text())["traceEvents"] == []


class TestWaterfall:
    def test_tree_is_indented_with_timings(self):
        text = render_waterfall(_traced_records())
        lines = text.splitlines()
        assert "2 spans" in lines[0]
        root_line = next(line for line in lines if "root" in line)
        child_line = next(line for line in lines if "child" in line)
        assert child_line.startswith("  ")
        assert not root_line.startswith(" ")
        assert "s" in root_line and "|" in root_line

    def test_no_spans_message(self):
        assert "no spans" in render_waterfall([])

    def test_error_span_flagged(self):
        recorder = SpanRecorder(trace_id=derive_trace_id("t"))
        with pytest.raises(RuntimeError):
            with recorder.span("doomed"):
                raise RuntimeError
        assert "[ERROR]" in render_waterfall(recorder.finished)


class TestRunRecords:
    def test_load_folds_parent_and_shards(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with obs.session(telemetry_path=str(path), trace_label="t"):
            run_tasks(
                [Task(f"t{i}", _spin, {"seed": i}) for i in range(3)],
                jobs=2, label="fan",
            )
        records = load_run_records(path)
        spans = [r for r in records if r.get("type") == "span"]
        # run_tasks span in the parent + one task span per shard record
        assert {r["name"] for r in spans} == {
            "parallel.run_tasks", "t0", "t1", "t2"
        }


class TestFollow:
    def test_rejects_gzip(self, tmp_path):
        with pytest.raises(ValueError, match="gzip"):
            follow_heartbeats(tmp_path / "run.jsonl.gz")

    def test_prints_heartbeats_until_final_metrics(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with JsonlTelemetrySink(path) as sink:
            sink.emit({"type": "heartbeat", "label": "fan", "done": 1,
                       "total": 2, "packets_per_s": 10.0, "rss_kb": 1024})
            sink.emit({"type": "heartbeat", "label": "fan", "done": 2,
                       "total": 2, "packets_per_s": 11.0, "rss_kb": 1024})
            sink.emit({"type": "metrics", "metrics": {}})
        printed: list[str] = []
        code = follow_heartbeats(path, poll_s=0.01, _print=printed.append)
        assert code == 0
        assert len(printed) == 2
        assert "1/2" in printed[0] and "2/2" in printed[1]

    def test_idle_timeout_returns(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with JsonlTelemetrySink(path) as sink:
            sink.emit({"type": "event", "name": "a"})
        code = follow_heartbeats(path, poll_s=0.01, idle_timeout_s=0.05)
        assert code == 0
