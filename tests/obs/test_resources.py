"""Resource sampling: /proc parsing, fallbacks, and the monitor."""

from __future__ import annotations

from repro.obs import resources
from repro.obs.events import JsonlTelemetrySink, read_telemetry
from repro.obs.resources import ResourceMonitor, peak_rss_kb, rss_kb, sample


class TestSampling:
    def test_sample_fields_are_plausible(self):
        reading = sample()
        assert reading.unix_time > 0
        assert reading.cpu_s >= 0.0
        # On Linux both RSS figures come from /proc and are positive; on
        # platforms without /proc the contract is "degrade to zero".
        assert reading.rss_kb >= 0
        assert reading.peak_rss_kb >= reading.rss_kb or reading.rss_kb == 0

    def test_to_record_schema(self):
        record = sample().to_record()
        assert record["type"] == "resource"
        assert set(record) == {
            "type", "unix", "cpu_s", "rss_kb", "peak_rss_kb"
        }

    def test_unreadable_proc_degrades_to_zero(self, monkeypatch):
        monkeypatch.setattr(resources, "_PROC_STATUS", "/nonexistent/status")
        assert resources._proc_status_kb() == (0, 0)
        assert rss_kb() == 0
        # peak falls back to getrusage, which still works
        assert peak_rss_kb() >= 0

    def test_peak_rss_positive_on_linux(self):
        import sys

        if sys.platform != "linux":  # pragma: no cover - linux CI
            return
        assert peak_rss_kb() > 0


class TestMonitor:
    def test_finish_reports_cpu_delta_and_peak(self):
        monitor = ResourceMonitor()
        monitor.start()
        sum(i * i for i in range(10_000))  # burn a little CPU
        cpu_delta, peak = monitor.finish()
        assert cpu_delta >= 0.0
        assert peak >= 0

    def test_emit_rate_limited(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with JsonlTelemetrySink(path) as sink:
            monitor = ResourceMonitor(min_interval_s=3600.0)
            assert monitor.emit(sink) is True
            assert monitor.emit(sink) is False  # inside the interval
        _, records = read_telemetry(path)
        assert [r["type"] for r in records] == ["resource"]

    def test_emit_unlimited_when_interval_zero(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with JsonlTelemetrySink(path) as sink:
            monitor = ResourceMonitor(min_interval_s=0.0)
            assert monitor.emit(sink) is True
            assert monitor.emit(sink) is True
