"""Spread-spectrum phone: the knife-edge near/far signature."""

from repro.environment.geometry import Point
from repro.interference.spreadspectrum import SpreadSpectrumPhonePair

RX = Point(0.0, 0.0)
NEAR = Point(0.4, 0.3)
FAR = Point(11.0, 8.7)
ACROSS = Point(0.0, 30.0)
SIGNAL = 29.6


def _mean_effects(pair, rng, n=400):
    miss = trunc = jam = 0.0
    for _ in range(n):
        sample = pair.sample_packet(RX, SIGNAL, rng)
        miss += sample.miss_probability
        trunc += sample.truncate_probability
        jam += sample.jam_ber
    return miss / n, trunc / n, jam / n


class TestBaseNearStomps:
    def test_half_loss_full_truncation(self, rng):
        pair = SpreadSpectrumPhonePair(
            handset_position=FAR, base_position=NEAR, base_level_at_1ft=31.5
        )
        miss, trunc, _ = _mean_effects(pair, rng)
        assert 0.35 < miss < 0.65  # ~50% loss (Table 11)
        assert trunc > 0.85  # ~100% truncation of survivors


class TestRemoteIsHarmless:
    def test_below_capture_cutoff_no_effects(self, rng):
        pair = SpreadSpectrumPhonePair(
            handset_position=FAR,
            base_position=Point(12.5, 8.7),
            base_level_at_1ft=31.5,
        )
        miss, trunc, jam = _mean_effects(pair, rng, n=200)
        assert miss == 0.0
        assert trunc == 0.0
        assert jam == 0.0

    def test_still_raises_silence(self, rng):
        pair = SpreadSpectrumPhonePair(
            handset_position=FAR,
            base_position=Point(12.5, 8.7),
            base_level_at_1ft=31.5,
        )
        silences = [
            pair.sample_packet(RX, SIGNAL, rng).silence_sample_dbm
            for _ in range(200)
        ]
        active = [s for s in silences if s is not None]
        assert len(active) > 100  # high AGC duty


class TestHandsetIntermediate:
    def _pair(self):
        return SpreadSpectrumPhonePair(
            handset_position=NEAR,
            base_position=ACROSS,
            handset_level_at_1ft=23.5,
        )

    def test_small_loss_small_truncation(self, rng):
        miss, trunc, _ = _mean_effects(self._pair(), rng)
        assert miss < 0.05
        assert trunc < 0.10

    def test_substantial_jam_ber(self, rng):
        _, _, jam = _mean_effects(self._pair(), rng)
        # Mean effective BER in the 1e-3 .. 1e-1 band: frequent but
        # minor corruption (Table 11: 59 % of packets body-damaged).
        assert 1e-3 < jam < 1e-1

    def test_samples_are_bursty(self, rng):
        sample = self._pair().sample_packet(RX, SIGNAL, rng)
        assert sample.bursty


class TestQuietPhone:
    def test_not_talking_contributes_nothing(self, rng):
        pair = SpreadSpectrumPhonePair(
            handset_position=NEAR, base_position=NEAR, talking=False
        )
        sample = pair.sample_packet(RX, SIGNAL, rng)
        assert sample.signal_sample_dbm is None
        assert sample.miss_probability == 0.0


class TestCutoffBoundary:
    def test_cutoff_is_sharp(self, rng):
        """Effects vanish entirely below the capture cutoff — the model
        mechanism behind the paper's near/far knife edge."""
        # Margin just above cutoff: some effect.
        hot = SpreadSpectrumPhonePair(
            handset_position=FAR,
            base_position=Point(5.0, 0.0),  # base at 5 ft: level ~24.5
            base_level_at_1ft=31.5,
        )
        _, _, jam_hot = _mean_effects(hot, rng, n=300)
        assert jam_hot > 0.0
        # Same phone pushed far enough that the margin drops below cutoff.
        cold = SpreadSpectrumPhonePair(
            handset_position=FAR,
            base_position=Point(14.0, 0.0),  # level ~20 => margin < -8
            base_level_at_1ft=31.5,
        )
        _, _, jam_cold = _mean_effects(cold, rng, n=300)
        assert jam_cold == 0.0
