"""Narrowband phone models: silence-only signature and power control."""

import pytest

from repro.environment.geometry import Point
from repro.interference.narrowband import AmpsCellPhone, NarrowbandPhonePair
from repro.units import dbm_to_level

RX = Point(0.0, 0.0)
NEAR = Point(0.4, 0.3)
FAR = Point(0.0, 30.0)


class TestDsssRejection:
    """The headline finding of Table 10: narrowband sources damage nothing."""

    @pytest.mark.parametrize(
        "pair",
        [
            NarrowbandPhonePair(NEAR, NEAR),
            NarrowbandPhonePair(NEAR, FAR, talking=True),
            NarrowbandPhonePair(FAR, NEAR),
        ],
    )
    def test_no_bit_level_effects(self, pair, rng):
        for _ in range(20):
            sample = pair.sample_packet(RX, 26.7, rng)
            assert sample.jam_ber == 0.0
            assert sample.miss_probability == 0.0
            assert sample.truncate_probability == 0.0
            assert sample.clock_stress == 0.0

    def test_contributes_to_both_agc_samples(self, rng):
        sample = NarrowbandPhonePair(NEAR, NEAR).sample_packet(RX, 26.7, rng)
        assert sample.signal_sample_dbm is not None
        assert sample.silence_sample_dbm is not None


class TestPowerControl:
    """The Table-10 silence ordering fingerprint."""

    def _silence_level(self, pair, rng) -> float:
        sample = pair.sample_packet(RX, 26.7, rng)
        return dbm_to_level(sample.silence_sample_dbm)

    def test_bases_near_loudest(self, rng):
        bases_near = self._silence_level(NarrowbandPhonePair(FAR, NEAR), rng)
        cluster = self._silence_level(NarrowbandPhonePair(NEAR, NEAR), rng)
        assert bases_near > cluster

    def test_cluster_beats_idle_handsets(self, rng):
        cluster = self._silence_level(NarrowbandPhonePair(NEAR, NEAR), rng)
        handsets = self._silence_level(NarrowbandPhonePair(NEAR, FAR), rng)
        assert cluster > handsets

    def test_talking_handsets_quietest(self, rng):
        idle = self._silence_level(NarrowbandPhonePair(NEAR, FAR), rng)
        talking = self._silence_level(
            NarrowbandPhonePair(NEAR, FAR, talking=True), rng
        )
        assert talking < idle

    def test_power_control_can_be_disabled(self, rng):
        controlled = self._silence_level(
            NarrowbandPhonePair(NEAR, NEAR, power_control=True), rng
        )
        uncontrolled = self._silence_level(
            NarrowbandPhonePair(NEAR, NEAR, power_control=False), rng
        )
        assert uncontrolled > controlled


class TestAmpsPhone:
    def test_no_errors_ever(self, rng):
        phone = AmpsCellPhone(NEAR)
        sample = phone.sample_packet(RX, 26.7, rng)
        assert sample.jam_ber == 0.0
        assert sample.miss_probability == 0.0

    def test_off_phone_contributes_nothing(self, rng):
        phone = AmpsCellPhone(NEAR, transmitting=False)
        sample = phone.sample_packet(RX, 26.7, rng)
        assert sample.signal_sample_dbm is None
        assert sample.silence_sample_dbm is None
