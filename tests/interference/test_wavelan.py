"""Competing WaveLAN transmitters: masked vs unmasked regimes."""

from repro.environment.geometry import Point
from repro.interference.wavelan import CompetingWaveLanTransmitter

RX = Point(0.0, 0.0)
# 30 ft away with default emitted power: received level ~30.5.
NEARBY = Point(30.0, 0.0)


class TestMasking:
    def test_received_level_from_geometry(self):
        tx = CompetingWaveLanTransmitter(NEARBY)
        assert 28.0 < tx.received_level(RX) < 34.0

    def test_masked_when_threshold_above_level(self):
        tx = CompetingWaveLanTransmitter(
            NEARBY, level_at_1ft=20.0, victim_receive_threshold=25
        )
        assert tx.masked_at(RX)  # ~5.2 at 30 ft

    def test_unmasked_at_default_threshold(self):
        tx = CompetingWaveLanTransmitter(NEARBY, victim_receive_threshold=3)
        assert not tx.masked_at(RX)


class TestEffects:
    def test_masked_contributes_silence_only(self, rng):
        tx = CompetingWaveLanTransmitter(
            NEARBY, level_at_1ft=24.0, victim_receive_threshold=25
        )
        assert tx.masked_at(RX)
        sample = tx.sample_packet(RX, 28.6, rng)
        assert sample.silence_sample_dbm is not None
        assert sample.jam_ber == 0.0
        assert sample.miss_probability == 0.0
        assert sample.truncate_probability == 0.0

    def test_unmasked_is_devastating(self, rng):
        tx = CompetingWaveLanTransmitter(NEARBY, victim_receive_threshold=3)
        sample = tx.sample_packet(RX, 28.6, rng)
        assert sample.miss_probability > 0.5
        assert sample.truncate_probability > 0.3
        assert sample.jam_ber > 0.0
        assert sample.clock_stress > 0.0

    def test_duty_cycle_respected(self, rng):
        tx = CompetingWaveLanTransmitter(
            NEARBY, duty=0.0, victim_receive_threshold=3
        )
        sample = tx.sample_packet(RX, 28.6, rng)
        assert sample.signal_sample_dbm is None
        assert sample.miss_probability == 0.0
