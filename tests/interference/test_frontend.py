"""Front-end overload sources: no effect, per Section 7.1."""

from repro.environment.geometry import Point
from repro.interference.frontend import AmateurRadioTransmitter, MicrowaveOven

RX = Point(0.0, 0.0)
TOUCHING = Point(0.1, 0.0)


class TestAmateurRadio:
    def test_default_contributes_nothing(self, rng):
        ham = AmateurRadioTransmitter(TOUCHING)
        sample = ham.sample_packet(RX, 29.5, rng)
        assert sample.signal_sample_dbm is None
        assert sample.jam_ber == 0.0
        assert sample.miss_probability == 0.0

    def test_configurable_leakage_raises_silence(self, rng):
        ham = AmateurRadioTransmitter(TOUCHING, leakage_level=10.0)
        sample = ham.sample_packet(RX, 29.5, rng)
        assert sample.silence_sample_dbm is not None
        assert sample.jam_ber == 0.0


class TestMicrowaveOven:
    def test_900mhz_band_sees_nothing(self, rng):
        oven = MicrowaveOven(TOUCHING, band_ghz=0.915)
        for _ in range(20):
            sample = oven.sample_packet(RX, 29.5, rng)
            assert sample.signal_sample_dbm is None
            assert sample.jam_ber == 0.0

    def test_oven_off_sees_nothing(self, rng):
        oven = MicrowaveOven(TOUCHING, operating=False, band_ghz=2.45)
        sample = oven.sample_packet(RX, 29.5, rng)
        assert sample.signal_sample_dbm is None

    def test_24ghz_band_what_if(self, rng):
        """The paper's caveat: 2.4 GHz units 'would receive more
        interference' — the what-if knob produces duty-cycled noise."""
        oven = MicrowaveOven(TOUCHING, band_ghz=2.45)
        active = 0
        for _ in range(400):
            sample = oven.sample_packet(RX, 29.5, rng)
            if sample.signal_sample_dbm is not None:
                active += 1
        # Magnetron duty ~50%.
        assert 120 < active < 280
