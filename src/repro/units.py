"""Physical unit conversions and the WaveLAN AGC unit mapping.

The WaveLAN modem control unit reports *signal level* and *silence level*
as 5-bit-or-so automatic-gain-control (AGC) readings, and *signal quality*
as a 4-bit value.  The paper reports all propagation results in these
dimensionless AGC units (observed range roughly 2..41 for level/silence
and 0..15 for quality).

This module defines the calibrated mapping between physical received power
(dBm) and AGC "level units" used throughout the simulator:

    level = (P_rx_dBm - AGC_FLOOR_DBM) / DB_PER_LEVEL

with the constants chosen so that the scenarios of the paper produce level
readings in the bands the paper reports (see DESIGN.md section 3).
"""

from __future__ import annotations

import math

# Speed of light, metres / second.
SPEED_OF_LIGHT_M_S = 299_792_458.0

# WaveLAN 900 MHz ISM band centre frequency (Hz).  The units under study
# operate in the 902-928 MHz band; we use the centre.
WAVELAN_FREQ_HZ = 915e6

# WaveLAN transmit power: 500 milliwatts (paper, Section 2).
WAVELAN_TX_POWER_MW = 500.0

# Calibrated AGC mapping (DESIGN.md section 3).  One AGC level unit spans
# DB_PER_LEVEL decibels, and AGC_FLOOR_DBM is the received power that
# reads as level 0.
DB_PER_LEVEL = 2.0
AGC_FLOOR_DBM = -72.0

# The level/silence registers are reported in a bounded hardware range.
# The paper observes values up to 41, so the register is wider than 5
# bits of dynamic range at 1 unit granularity; we bound at 6 bits.
AGC_MAX_READING = 63
QUALITY_MAX = 15

FEET_PER_METRE = 3.280839895


def mw_to_dbm(milliwatts: float) -> float:
    """Convert a power in milliwatts to dBm.

    >>> mw_to_dbm(1.0)
    0.0
    >>> round(mw_to_dbm(500.0), 2)
    26.99
    """
    if milliwatts <= 0.0:
        raise ValueError(f"power must be positive, got {milliwatts} mW")
    return 10.0 * math.log10(milliwatts)


def dbm_to_mw(dbm: float) -> float:
    """Convert a power in dBm to milliwatts.

    >>> dbm_to_mw(0.0)
    1.0
    """
    return 10.0 ** (dbm / 10.0)


def db_ratio(numerator_mw: float, denominator_mw: float) -> float:
    """Power ratio in decibels.

    >>> db_ratio(100.0, 1.0)
    20.0
    """
    if numerator_mw <= 0.0 or denominator_mw <= 0.0:
        raise ValueError("powers must be positive")
    return 10.0 * math.log10(numerator_mw / denominator_mw)


def feet_to_metres(feet: float) -> float:
    """Convert feet to metres (the paper reports distances in feet)."""
    return feet / FEET_PER_METRE


def metres_to_feet(metres: float) -> float:
    """Convert metres to feet."""
    return metres * FEET_PER_METRE


def free_space_path_loss_db(distance_m: float, freq_hz: float = WAVELAN_FREQ_HZ) -> float:
    """Free-space path loss (Friis) in dB at ``distance_m`` metres.

    Clamps the distance to a tenth of a wavelength so that the formula
    remains finite for units in physical contact (the paper's "zero
    point" of Figure 1).
    """
    wavelength_m = SPEED_OF_LIGHT_M_S / freq_hz
    d = max(distance_m, wavelength_m / 10.0)
    return 20.0 * math.log10(4.0 * math.pi * d / wavelength_m)


def dbm_to_level(p_rx_dbm: float) -> float:
    """Map received power in dBm to a continuous AGC level reading.

    The hardware rounds and clamps; callers that want the register value
    should pass the result through :func:`clamp_agc`.
    """
    return (p_rx_dbm - AGC_FLOOR_DBM) / DB_PER_LEVEL


def level_to_dbm(level: float) -> float:
    """Inverse of :func:`dbm_to_level`."""
    return AGC_FLOOR_DBM + level * DB_PER_LEVEL


def clamp_agc(reading: float) -> int:
    """Round and clamp a continuous AGC reading to the hardware register."""
    return int(min(max(round(reading), 0), AGC_MAX_READING))


def clamp_quality(reading: float) -> int:
    """Round and clamp a continuous quality reading to the 4-bit register."""
    return int(min(max(round(reading), 0), QUALITY_MAX))


# ----------------------------------------------------------------------
# Motion / Doppler (paper, Section 3: error sources NOT considered)
# ----------------------------------------------------------------------

# Frequency tolerance of the crystal oscillators WaveLAN-era radios
# used (a typical ±25 ppm part).
CRYSTAL_TOLERANCE_PPM = 25.0

SPEED_OF_SOUND_M_S = 343.0


def doppler_shift_hz(
    relative_speed_m_s: float, freq_hz: float = WAVELAN_FREQ_HZ
) -> float:
    """Doppler shift for two units closing at ``relative_speed_m_s``.

    The paper's Section-3 argument for ignoring motion: "the Doppler
    shift due to moving a WaveLAN unit at the speed of sound would be
    substantially less than the inaccuracy of the clock crystals".

    >>> doppler_shift_hz(343.0) < crystal_offset_hz()
    True
    """
    return freq_hz * relative_speed_m_s / SPEED_OF_LIGHT_M_S


def crystal_offset_hz(
    freq_hz: float = WAVELAN_FREQ_HZ, tolerance_ppm: float = CRYSTAL_TOLERANCE_PPM
) -> float:
    """Worst-case carrier offset from crystal tolerance alone."""
    return freq_hz * tolerance_ppm * 1e-6
