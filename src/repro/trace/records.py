"""Trace records: what the paper's modified driver logged.

A :class:`PacketRecord` holds the raw received bytes (possibly damaged,
possibly truncated, possibly not a test packet at all) plus the modem
status registers.  The analysis package consumes *only* this artifact —
it re-identifies test packets heuristically, exactly as the paper's
offline tooling had to.

For memory efficiency on half-million-packet trials, records whose
bytes are byte-identical to a known pristine frame may be stored as a
(factory, sequence) reference and materialized on demand; the analysis
stage still sees plain bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.framing.testpacket import TestPacketFactory, TestPacketSpec
from repro.phy.modem import ModemRxStatus


@dataclass
class PacketRecord:
    """One received packet: every bit, plus the status registers."""

    status: ModemRxStatus
    time: float = 0.0
    _data: Optional[bytes] = None
    _pristine_ref: Optional[tuple[TestPacketFactory, int]] = None

    @classmethod
    def from_bytes(
        cls, data: bytes, status: ModemRxStatus, time: float = 0.0
    ) -> "PacketRecord":
        return cls(status=status, time=time, _data=data)

    @classmethod
    def pristine(
        cls,
        factory: TestPacketFactory,
        sequence: int,
        status: ModemRxStatus,
        time: float = 0.0,
    ) -> "PacketRecord":
        """A record whose bytes equal the undamaged frame ``sequence``.

        Storage optimization only — :attr:`data` returns the same bytes
        a full copy would.
        """
        return cls(status=status, time=time, _pristine_ref=(factory, sequence))

    @property
    def data(self) -> bytes:
        if self._data is not None:
            return self._data
        if self._pristine_ref is not None:
            factory, sequence = self._pristine_ref
            return factory.build(sequence)
        raise ValueError("empty PacketRecord")

    @property
    def length(self) -> int:
        if self._data is not None:
            return len(self._data)
        from repro.framing.testpacket import FRAME_BYTES

        return FRAME_BYTES


def materialize_data(records: Sequence[PacketRecord]) -> list[bytes]:
    """Bytes for each record — ``[r.data for r in records]``, faster.

    Pristine references are materialized through
    :meth:`TestPacketFactory.build_bulk`, grouped by factory, instead
    of one scalar ``build()`` per record.  Consumers still receive
    plain bytes; nothing downstream can tell which records were stored
    by reference.
    """
    datas: list[Optional[bytes]] = [record._data for record in records]
    pending: dict[int, tuple[TestPacketFactory, list[int], list[int]]] = {}
    for index, record in enumerate(records):
        if datas[index] is not None:
            continue
        if record._pristine_ref is None:
            raise ValueError("empty PacketRecord")
        factory, sequence = record._pristine_ref
        entry = pending.setdefault(id(factory), (factory, [], []))
        entry[1].append(index)
        entry[2].append(sequence)
    for factory, indices, sequences in pending.values():
        frames = factory.build_bulk(np.asarray(sequences, dtype=np.int64))
        for row, index in enumerate(indices):
            datas[index] = frames[row].tobytes()
    return datas  # type: ignore[return-value]


@dataclass
class TrialTrace:
    """Everything one trial produced, as the offline analysis sees it.

    ``packets_sent`` is ground truth the experimenters knew (they ran
    the sender); everything else must be inferred from ``records``.
    """

    name: str
    spec: TestPacketSpec
    packets_sent: int
    records: list[PacketRecord] = field(default_factory=list)
    first_sequence: int = 0

    @property
    def packets_received(self) -> int:
        return len(self.records)

    def extend(self, other: "TrialTrace") -> None:
        """Aggregate another burst into this trial (paper: "aggregating
        multiple bursts to form a long trial")."""
        if other.spec != self.spec:
            raise ValueError("cannot aggregate traces with different specs")
        self.packets_sent += other.packets_sent
        self.records.extend(other.records)
