"""Trace records: what the paper's modified driver logged.

A :class:`PacketRecord` holds the raw received bytes (possibly damaged,
possibly truncated, possibly not a test packet at all) plus the modem
status registers.  The analysis package consumes *only* this artifact —
it re-identifies test packets heuristically, exactly as the paper's
offline tooling had to.

For memory efficiency on half-million-packet trials, records whose
bytes are byte-identical to a known pristine frame may be stored as a
(factory, sequence) reference and materialized on demand; the analysis
stage still sees plain bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.framing.testpacket import TestPacketFactory, TestPacketSpec
from repro.phy.modem import ModemRxStatus


@dataclass
class PacketRecord:
    """One received packet: every bit, plus the status registers."""

    status: ModemRxStatus
    time: float = 0.0
    _data: Optional[bytes] = None
    _pristine_ref: Optional[tuple[TestPacketFactory, int]] = None

    @classmethod
    def from_bytes(
        cls, data: bytes, status: ModemRxStatus, time: float = 0.0
    ) -> "PacketRecord":
        return cls(status=status, time=time, _data=data)

    @classmethod
    def pristine(
        cls,
        factory: TestPacketFactory,
        sequence: int,
        status: ModemRxStatus,
        time: float = 0.0,
    ) -> "PacketRecord":
        """A record whose bytes equal the undamaged frame ``sequence``.

        Storage optimization only — :attr:`data` returns the same bytes
        a full copy would.
        """
        return cls(status=status, time=time, _pristine_ref=(factory, sequence))

    @property
    def data(self) -> bytes:
        if self._data is not None:
            return self._data
        if self._pristine_ref is not None:
            factory, sequence = self._pristine_ref
            return factory.build(sequence)
        raise ValueError("empty PacketRecord")

    @property
    def length(self) -> int:
        if self._data is not None:
            return len(self._data)
        from repro.framing.testpacket import FRAME_BYTES

        return FRAME_BYTES


def materialize_data(records: Sequence[PacketRecord]) -> list[bytes]:
    """Bytes for each record — ``[r.data for r in records]``, faster.

    Pristine references are materialized through
    :meth:`TestPacketFactory.build_bulk`, grouped by factory, instead
    of one scalar ``build()`` per record.  Consumers still receive
    plain bytes; nothing downstream can tell which records were stored
    by reference.
    """
    datas: list[Optional[bytes]] = [record._data for record in records]
    pending: dict[int, tuple[TestPacketFactory, list[int], list[int]]] = {}
    for index, record in enumerate(records):
        if datas[index] is not None:
            continue
        if record._pristine_ref is None:
            raise ValueError("empty PacketRecord")
        factory, sequence = record._pristine_ref
        entry = pending.setdefault(id(factory), (factory, [], []))
        entry[1].append(index)
        entry[2].append(sequence)
    for factory, indices, sequences in pending.values():
        frames = factory.build_bulk(np.asarray(sequences, dtype=np.int64))
        for row, index in enumerate(indices):
            datas[index] = frames[row].tobytes()
    return datas  # type: ignore[return-value]


class LazyRecordList(list):
    """A record list materialized on first element access.

    The vectorized trial runner decides every packet's fate in columns;
    constructing half a million :class:`PacketRecord` objects eagerly
    would dominate clean-trial wall clock even though many callers only
    ever read ``len()`` (``packets_received``) before handing the trace
    to a columnar writer.  This list holds the column-to-object builder
    and runs it the first time anything touches an element; from then
    on it *is* the plain list the eager path would have built —
    identical objects, identical order.

    ``len()`` and truth-testing never materialize.  Pickling
    materializes and ships a plain ``list`` (cross-process consumers
    see ordinary records).
    """

    __slots__ = ("_builder", "_deferred_len")

    def __init__(
        self, builder: Callable[[], list["PacketRecord"]], length: int
    ) -> None:
        super().__init__()
        self._builder: Optional[Callable[[], list[PacketRecord]]] = builder
        self._deferred_len = length

    def _materialize(self) -> None:
        builder = self._builder
        if builder is not None:
            self._builder = None
            built = builder()
            if len(built) != self._deferred_len:
                raise RuntimeError(
                    f"lazy record builder produced {len(built)} records, "
                    f"promised {self._deferred_len}"
                )
            list.extend(self, built)

    def __len__(self) -> int:
        if self._builder is not None:
            return self._deferred_len
        return list.__len__(self)

    def __reduce__(self):
        self._materialize()
        return (list, (), None, iter(list(self)))


def _lazy_forwarder(name: str):
    target = getattr(list, name)

    def method(self, *args, **kwargs):
        self._materialize()
        return target(self, *args, **kwargs)

    method.__name__ = name
    method.__qualname__ = f"LazyRecordList.{name}"
    return method


# Every mutating or element-reading list operation materializes first;
# anything missed here would silently operate on the (empty) backing
# storage, so the forwarding is exhaustive over the list API.
for _name in (
    "append", "clear", "copy", "count", "extend", "index", "insert",
    "pop", "remove", "reverse", "sort",
    "__add__", "__contains__", "__delitem__", "__eq__", "__ge__",
    "__getitem__", "__gt__", "__iadd__", "__imul__", "__iter__",
    "__le__", "__lt__", "__mul__", "__ne__", "__repr__",
    "__reversed__", "__rmul__", "__setitem__",
):
    setattr(LazyRecordList, _name, _lazy_forwarder(_name))
del _name


@dataclass
class TrialTrace:
    """Everything one trial produced, as the offline analysis sees it.

    ``packets_sent`` is ground truth the experimenters knew (they ran
    the sender); everything else must be inferred from ``records``.
    """

    name: str
    spec: TestPacketSpec
    packets_sent: int
    records: list[PacketRecord] = field(default_factory=list)
    first_sequence: int = 0

    @property
    def packets_received(self) -> int:
        return len(self.records)

    def extend(self, other: "TrialTrace") -> None:
        """Aggregate another burst into this trial (paper: "aggregating
        multiple bursts to form a long trial")."""
        if other.spec != self.spec:
            raise ValueError("cannot aggregate traces with different specs")
        self.packets_sent += other.packets_sent
        self.records.extend(other.records)
