"""The paper's measurement methodology (Section 4).

"On the receiver, the kernel device driver was modified to place both
the Ethernet controller and the modem control unit into 'promiscuous'
mode and to log, for each incoming packet, every bit and all available
status information, even if the packet failed the Ethernet CRC check."

* :mod:`~repro.trace.records` — the per-packet log record (raw bytes +
  level/silence/quality/antenna) and the whole-trial container.
* :mod:`~repro.trace.columnar` — the v2 columnar binary store: flat
  frame-bytes payload + numpy columns, memory-mapped for zero-copy
  analysis.
* :mod:`~repro.trace.sender` — the UDP burst test-traffic generator.
* :mod:`~repro.trace.trial` — trial runners: a vectorized fast path for
  contention-free scenarios (half-million-packet office trials) and an
  event-driven path through the full MAC/channel simulation.
"""

from repro.trace.columnar import (
    ColumnarTrace,
    ColumnarTraceWriter,
    read_columnar,
    write_columnar,
)
from repro.trace.persist import load_trace, save_trace
from repro.trace.receiver import TraceRecorder
from repro.trace.records import PacketRecord, TrialTrace
from repro.trace.sender import BurstSender
from repro.trace.trial import TrialConfig, run_fast_trial, run_mac_trial

__all__ = [
    "BurstSender",
    "ColumnarTrace",
    "ColumnarTraceWriter",
    "PacketRecord",
    "TraceRecorder",
    "TrialConfig",
    "TrialTrace",
    "load_trace",
    "read_columnar",
    "run_fast_trial",
    "run_mac_trial",
    "save_trace",
    "write_columnar",
]
