"""Columnar binary trace storage (format v2).

The v1 JSON-lines format (:mod:`repro.trace.persist`) is self-describing
and greppable, but reloading a half-million-packet trial means parsing
half a million JSON objects and hex-decoding every frame — the analysis
pipeline's bulk paths then immediately re-pack those per-record objects
into matrices.  Format v2 stores the trace the way the analysis consumes
it: contiguous numpy columns plus one flat frame-bytes buffer, so a
loader can ``np.memmap`` the file and hand the columns straight to
:meth:`repro.analysis.matching.TraceMatcher.match_matrix` without ever
materializing per-packet objects for the undamaged majority.

Layout (single file; identical bytes when stored in a shared-memory
block for the parallel handoff)::

    [0:8]   magic  b"WLTRACE2"
    [8:..]  payload — every record's raw bytes, back to back
    ...     columns, each 8-byte aligned:
              times     <f8   offsets  <u8 (relative to payload start)
              levels    <i2   lengths  <u4
              silences  <i2
              qualities <i2
              antennas  <i2
    [..]    footer JSON (name, spec, packets_sent, counts, column table)
    [-16:-8] footer length, little-endian u64
    [-8:]   magic  b"WLTRACE2"  (trailer: absent on a truncated write)

The footer lives at the end so the writer can stream the payload without
knowing record counts up front; the trailing magic makes truncation
detectable (a crashed writer leaves no trailer, and the loader refuses
the file loudly rather than serving partial columns).
"""

from __future__ import annotations

import io
import json
import struct
from array import array
from pathlib import Path
from typing import IO, Iterator, Optional, Sequence, Union

import numpy as np

from repro.framing.ethernet import MacAddress
from repro.framing.testpacket import TestPacketSpec
from repro.phy.modem import ModemRxStatus
from repro.trace.records import PacketRecord, TrialTrace, materialize_data

MAGIC = b"WLTRACE2"
FORMAT_VERSION = 2
TRACE_KIND = "wavelan-trial-trace"
# Canonical filename suffix for v2 columnar traces (detection is by
# magic, not suffix; the suffix only steers ``save_trace``'s default).
V2_SUFFIX = ".wlt2"

_ALIGN = 8
_LEN_STRUCT = struct.Struct("<Q")

# Column name -> (dtype, array.array typecode used while writing).
_COLUMNS: dict[str, tuple[str, str]] = {
    "times": ("<f8", "d"),
    "levels": ("<i2", "h"),
    "silences": ("<i2", "h"),
    "qualities": ("<i2", "h"),
    "antennas": ("<i2", "h"),
    "offsets": ("<u8", "Q"),
    "lengths": ("<u4", "I"),
}

PathLike = Union[str, Path]


def spec_to_dict(spec: TestPacketSpec) -> dict:
    """JSON-serializable form of a test-packet spec (shared with v1)."""
    return {
        "src_mac": str(spec.src_mac),
        "dst_mac": str(spec.dst_mac),
        "src_ip": spec.src_ip,
        "dst_ip": spec.dst_ip,
        "src_port": spec.src_port,
        "dst_port": spec.dst_port,
        "network_id": spec.network_id,
        "first_sequence": spec.first_sequence,
    }


def spec_from_dict(data: dict) -> TestPacketSpec:
    return TestPacketSpec(
        src_mac=MacAddress.from_string(data["src_mac"]),
        dst_mac=MacAddress.from_string(data["dst_mac"]),
        src_ip=data["src_ip"],
        dst_ip=data["dst_ip"],
        src_port=data["src_port"],
        dst_port=data["dst_port"],
        network_id=data["network_id"],
        first_sequence=data["first_sequence"],
    )


# ----------------------------------------------------------------------
# Writer
# ----------------------------------------------------------------------
class ColumnarTraceWriter:
    """Streaming append writer for format v2.

    Frame bytes go straight to the output stream as records arrive —
    the writer never holds the payload in memory — while the per-record
    scalars (26 bytes each) accumulate in compact typed arrays and land
    as contiguous columns at :meth:`close`.  Use as a context manager::

        with ColumnarTraceWriter(path, name, spec, packets_sent) as w:
            for record in records:
                w.append_record(record)
    """

    def __init__(
        self,
        target: Union[PathLike, IO[bytes]],
        name: str,
        spec: TestPacketSpec,
        packets_sent: int,
        first_sequence: int = 0,
    ) -> None:
        if hasattr(target, "write"):
            self._stream: IO[bytes] = target  # type: ignore[assignment]
            self._owns_stream = False
        else:
            self._stream = open(target, "wb")
            self._owns_stream = True
        self.name = name
        self.spec = spec
        self.packets_sent = packets_sent
        self.first_sequence = first_sequence
        self._cols = {key: array(code) for key, (_, code) in _COLUMNS.items()}
        self._payload_nbytes = 0
        self._closed = False
        self._stream.write(MAGIC)

    # ------------------------------------------------------------------
    def append(
        self, data: bytes, status: ModemRxStatus, time: float = 0.0
    ) -> None:
        """Append one record (raw bytes + status registers)."""
        cols = self._cols
        cols["times"].append(time)
        cols["levels"].append(status.signal_level)
        cols["silences"].append(status.silence_level)
        cols["qualities"].append(status.signal_quality)
        cols["antennas"].append(status.antenna)
        cols["offsets"].append(self._payload_nbytes)
        cols["lengths"].append(len(data))
        self._payload_nbytes += len(data)
        self._stream.write(data)

    def append_record(self, record: PacketRecord) -> None:
        self.append(record.data, record.status, record.time)

    # ------------------------------------------------------------------
    def _pad(self, position: int) -> int:
        pad = (-position) % _ALIGN
        if pad:
            self._stream.write(b"\0" * pad)
        return position + pad

    def close(self) -> None:
        """Land the columns and the self-describing footer."""
        if self._closed:
            return
        self._closed = True
        position = self._pad(len(MAGIC) + self._payload_nbytes)
        count = len(self._cols["times"])
        column_table: dict[str, dict] = {}
        for key, (dtype, _) in _COLUMNS.items():
            block = np.asarray(self._cols[key], dtype=dtype).tobytes()
            column_table[key] = {
                "dtype": dtype, "offset": position, "count": count
            }
            self._stream.write(block)
            position = self._pad(position + len(block))
        footer = json.dumps(
            {
                "kind": TRACE_KIND,
                "format": FORMAT_VERSION,
                "name": self.name,
                "spec": spec_to_dict(self.spec),
                "packets_sent": self.packets_sent,
                "first_sequence": self.first_sequence,
                "count": count,
                "payload": {
                    "offset": len(MAGIC), "nbytes": self._payload_nbytes
                },
                "columns": column_table,
            },
            sort_keys=True,
        ).encode("utf-8")
        self._stream.write(footer)
        self._stream.write(_LEN_STRUCT.pack(len(footer)))
        self._stream.write(MAGIC)
        if self._owns_stream:
            self._stream.close()

    def __enter__(self) -> "ColumnarTraceWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# Records are appended through ``materialize_data`` in batches of this
# many so pristine references hit the bulk template bank, not the
# scalar ``build()`` path.
_WRITE_CHUNK_RECORDS = 4096


def write_columnar(
    trace: Union[TrialTrace, "ColumnarTrace"],
    target: Union[PathLike, IO[bytes]],
) -> None:
    """Write ``trace`` (in-memory or already-columnar) as format v2."""
    if isinstance(trace, ColumnarTrace):
        with ColumnarTraceWriter(
            target, trace.name, trace.spec, trace.packets_sent,
            trace.first_sequence,
        ) as writer:
            # Columns are already materialized: stream the payload
            # wholesale and splice the columns in directly.
            writer._stream.write(trace.payload.tobytes())
            writer._payload_nbytes = int(trace.payload.shape[0])
            for key, (dtype, code) in _COLUMNS.items():
                column = array(code)
                column.frombytes(
                    np.ascontiguousarray(
                        getattr(trace, key), dtype=dtype
                    ).tobytes()
                )
                writer._cols[key] = column
        return
    with ColumnarTraceWriter(
        target, trace.name, trace.spec, trace.packets_sent,
        trace.first_sequence,
    ) as writer:
        records = trace.records
        for start in range(0, len(records), _WRITE_CHUNK_RECORDS):
            chunk = records[start : start + _WRITE_CHUNK_RECORDS]
            for record, data in zip(chunk, materialize_data(chunk)):
                writer.append(data, record.status, record.time)


# ----------------------------------------------------------------------
# Lazy record views
# ----------------------------------------------------------------------
class PacketRecordView:
    """One record of a :class:`ColumnarTrace`, materialized on access.

    Quacks like :class:`~repro.trace.records.PacketRecord` — ``status``,
    ``time``, ``data``, ``length`` — but holds only an index into the
    trace's columns until a field is read.  ``status`` is cached after
    first access (the signal-statistics pass reads it three times).
    """

    __slots__ = ("_trace", "_index", "_status")

    def __init__(self, trace: "ColumnarTrace", index: int) -> None:
        self._trace = trace
        self._index = index
        self._status: Optional[ModemRxStatus] = None

    @property
    def status(self) -> ModemRxStatus:
        if self._status is None:
            t, i = self._trace, self._index
            self._status = ModemRxStatus(
                signal_level=int(t.levels[i]),
                silence_level=int(t.silences[i]),
                signal_quality=int(t.qualities[i]),
                antenna=int(t.antennas[i]),
            )
        return self._status

    @property
    def time(self) -> float:
        return float(self._trace.times[self._index])

    @property
    def data(self) -> bytes:
        return self._trace.data(self._index)

    @property
    def length(self) -> int:
        return int(self._trace.lengths[self._index])

    def materialize(self) -> PacketRecord:
        return PacketRecord.from_bytes(self.data, self.status, self.time)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PacketRecordView(index={self._index}, time={self.time}, "
            f"length={self.length})"
        )


class LazyRecords(Sequence[PacketRecordView]):
    """Sequence facade over a :class:`ColumnarTrace`'s columns.

    Keeps the scalar ``trace.records[i]`` / iteration API working for
    existing callers without materializing anything until a record is
    actually touched.
    """

    __slots__ = ("_trace",)

    def __init__(self, trace: "ColumnarTrace") -> None:
        self._trace = trace

    def __len__(self) -> int:
        return self._trace.packets_received

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [
                PacketRecordView(self._trace, i)
                for i in range(*index.indices(len(self)))
            ]
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(index)
        return PacketRecordView(self._trace, index)

    def __iter__(self) -> Iterator[PacketRecordView]:
        for i in range(len(self)):
            yield PacketRecordView(self._trace, i)


# ----------------------------------------------------------------------
# The columnar trace
# ----------------------------------------------------------------------
class ColumnarTrace:
    """A trial trace held as contiguous columns.

    Drop-in for :class:`~repro.trace.records.TrialTrace` wherever the
    analysis pipeline consumes traces (``classify_trace``,
    ``analyze_trial``, the signal-statistics passes): ``name``, ``spec``,
    ``packets_sent``, ``packets_received`` and ``records`` all work.
    Columns may be views onto a memory-mapped file or a shared-memory
    block (``_backing`` keeps the mapping alive); nothing is copied
    until a consumer asks for per-record bytes.
    """

    def __init__(
        self,
        name: str,
        spec: TestPacketSpec,
        packets_sent: int,
        *,
        times: np.ndarray,
        levels: np.ndarray,
        silences: np.ndarray,
        qualities: np.ndarray,
        antennas: np.ndarray,
        offsets: np.ndarray,
        lengths: np.ndarray,
        payload: np.ndarray,
        first_sequence: int = 0,
        backing: object = None,
    ) -> None:
        self.name = name
        self.spec = spec
        self.packets_sent = packets_sent
        self.first_sequence = first_sequence
        self.times = times
        self.levels = levels
        self.silences = silences
        self.qualities = qualities
        self.antennas = antennas
        self.offsets = offsets
        self.lengths = lengths
        self.payload = payload
        self._backing = backing

    # -- TrialTrace-compatible surface ---------------------------------
    @property
    def packets_received(self) -> int:
        return int(self.times.shape[0])

    @property
    def records(self) -> LazyRecords:
        return LazyRecords(self)

    def record_view(self, index: int) -> PacketRecordView:
        return PacketRecordView(self, index)

    def data(self, index: int) -> bytes:
        offset = int(self.offsets[index])
        return self.payload[offset : offset + int(self.lengths[index])].tobytes()

    # -- bulk access ---------------------------------------------------
    def frame_matrix(self, rows: np.ndarray, frame_bytes: int) -> np.ndarray:
        """An ``(len(rows), frame_bytes)`` uint8 matrix of full frames.

        ``rows`` must index records whose length is ``frame_bytes``.
        When the selected payload spans are back to back (the common
        case: a clean trial written in arrival order) the matrix is a
        zero-copy reshape of the payload; otherwise a single vectorized
        gather builds it.
        """
        offsets = self.offsets[rows]
        if offsets.size == 0:
            return np.empty((0, frame_bytes), dtype=np.uint8)
        start = int(offsets[0])
        if offsets.size == 1 or bool(
            (np.diff(offsets) == frame_bytes).all()
        ):
            flat = self.payload[start : start + offsets.size * frame_bytes]
            return flat.reshape(offsets.size, frame_bytes)
        gather = offsets[:, None].astype(np.int64) + np.arange(frame_bytes)
        return self.payload[gather]

    # -- conversion ----------------------------------------------------
    @classmethod
    def from_trace(cls, trace: TrialTrace) -> "ColumnarTrace":
        """Columnarize an in-memory :class:`TrialTrace` (no file I/O)."""
        buffer = io.BytesIO()
        write_columnar(trace, buffer)
        return read_columnar_buffer(buffer.getbuffer(), copy=True)

    def to_trial_trace(self) -> TrialTrace:
        """Materialize every record into a plain :class:`TrialTrace`."""
        trace = TrialTrace(
            name=self.name,
            spec=self.spec,
            packets_sent=self.packets_sent,
            first_sequence=self.first_sequence,
        )
        payload = self.payload
        for i in range(self.packets_received):
            offset = int(self.offsets[i])
            data = payload[offset : offset + int(self.lengths[i])].tobytes()
            trace.records.append(
                PacketRecord.from_bytes(
                    data,
                    ModemRxStatus(
                        signal_level=int(self.levels[i]),
                        silence_level=int(self.silences[i]),
                        signal_quality=int(self.qualities[i]),
                        antenna=int(self.antennas[i]),
                    ),
                    time=float(self.times[i]),
                )
            )
        return trace

    # -- slicing -------------------------------------------------------
    def slice(self, start: int, stop: int) -> "ColumnarTrace":
        """Rows ``[start, stop)`` as a standalone columnar trace.

        The payload window is cut between the first selected record's
        offset and the last one's end, and offsets are rebased to it —
        valid because the writer lands frame bytes in append order, so
        offsets are nondecreasing.  Columns are views (zero-copy) into
        this trace's columns except ``offsets``, which must be rebased.
        Used by the streaming service to frame a stored trial into
        wire chunks; an empty slice (``start >= stop``) is a valid
        zero-record trace.
        """
        n = self.packets_received
        start = max(0, min(start, n))
        stop = max(start, min(stop, n))
        if start == stop:
            return ColumnarTrace(
                name=self.name,
                spec=self.spec,
                packets_sent=self.packets_sent,
                first_sequence=self.first_sequence,
                times=self.times[:0],
                levels=self.levels[:0],
                silences=self.silences[:0],
                qualities=self.qualities[:0],
                antennas=self.antennas[:0],
                offsets=self.offsets[:0],
                lengths=self.lengths[:0],
                payload=self.payload[:0],
                backing=self._backing,
            )
        base = int(self.offsets[start])
        end = int(self.offsets[stop - 1]) + int(self.lengths[stop - 1])
        return ColumnarTrace(
            name=self.name,
            spec=self.spec,
            packets_sent=self.packets_sent,
            first_sequence=self.first_sequence,
            times=self.times[start:stop],
            levels=self.levels[start:stop],
            silences=self.silences[start:stop],
            qualities=self.qualities[start:stop],
            antennas=self.antennas[start:stop],
            offsets=self.offsets[start:stop] - base,
            lengths=self.lengths[start:stop],
            payload=self.payload[base:end],
            backing=self._backing,
        )

    # -- merge ---------------------------------------------------------
    @classmethod
    def concat(
        cls, traces: Sequence["ColumnarTrace"], name: Optional[str] = None
    ) -> "ColumnarTrace":
        """Concatenate shard traces column-wise (the parallel merge step).

        ``packets_sent`` adds up (the paper's "aggregating multiple
        bursts to form a long trial"); specs must agree, exactly as
        :meth:`TrialTrace.extend` demands.
        """
        if not traces:
            raise ValueError("cannot concatenate zero traces")
        spec = traces[0].spec
        for trace in traces[1:]:
            if trace.spec != spec:
                raise ValueError(
                    "cannot aggregate traces with different specs"
                )
        shifts = np.cumsum([0] + [t.payload.shape[0] for t in traces[:-1]])
        return cls(
            name=name if name is not None else traces[0].name,
            spec=spec,
            packets_sent=sum(t.packets_sent for t in traces),
            first_sequence=traces[0].first_sequence,
            times=np.concatenate([t.times for t in traces]),
            levels=np.concatenate([t.levels for t in traces]),
            silences=np.concatenate([t.silences for t in traces]),
            qualities=np.concatenate([t.qualities for t in traces]),
            antennas=np.concatenate([t.antennas for t in traces]),
            offsets=np.concatenate(
                [t.offsets + shift for t, shift in zip(traces, shifts)]
            ),
            lengths=np.concatenate([t.lengths for t in traces]),
            payload=np.concatenate([t.payload for t in traces]),
        )

    def extend(self, other: "ColumnarTrace") -> None:
        """In-place aggregation (column concatenation under the hood)."""
        merged = ColumnarTrace.concat([self, other], name=self.name)
        self.__dict__.update(merged.__dict__)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ColumnarTrace(name={self.name!r}, "
            f"packets_sent={self.packets_sent}, "
            f"packets_received={self.packets_received})"
        )


# ----------------------------------------------------------------------
# Readers
# ----------------------------------------------------------------------
def _parse_columnar(flat: np.ndarray, origin: str, backing: object,
                    copy: bool) -> ColumnarTrace:
    """Build a :class:`ColumnarTrace` over a flat uint8 buffer."""
    total = flat.shape[0]
    min_size = 2 * len(MAGIC) + _LEN_STRUCT.size
    if total < min_size or flat[: len(MAGIC)].tobytes() != MAGIC:
        raise ValueError(f"{origin}: not a columnar (v2) trace file")
    if flat[total - len(MAGIC) :].tobytes() != MAGIC:
        raise ValueError(
            f"{origin}: truncated columnar trace (trailer magic missing — "
            "the writer did not finish)"
        )
    (footer_len,) = _LEN_STRUCT.unpack(
        flat[total - len(MAGIC) - _LEN_STRUCT.size : total - len(MAGIC)]
        .tobytes()
    )
    footer_start = total - len(MAGIC) - _LEN_STRUCT.size - footer_len
    if footer_start < len(MAGIC):
        raise ValueError(f"{origin}: corrupt columnar trace footer")
    try:
        footer = json.loads(
            flat[footer_start : footer_start + footer_len].tobytes()
        )
    except json.JSONDecodeError as exc:
        raise ValueError(
            f"{origin}: corrupt columnar trace footer: {exc}"
        ) from exc
    if footer.get("kind") != TRACE_KIND:
        raise ValueError(f"{origin}: not a trial trace file")
    if footer.get("format") != FORMAT_VERSION:
        raise ValueError(
            f"{origin}: format {footer.get('format')} "
            f"(this reader supports {FORMAT_VERSION})"
        )

    def column(key: str) -> np.ndarray:
        entry = footer["columns"][key]
        start, count = entry["offset"], entry["count"]
        dtype = np.dtype(entry["dtype"])
        stop = start + count * dtype.itemsize
        if stop > footer_start:
            raise ValueError(f"{origin}: column {key!r} overruns the file")
        view = flat[start:stop].view(dtype)
        return view.copy() if copy else view

    payload_meta = footer["payload"]
    payload = flat[
        payload_meta["offset"] : payload_meta["offset"]
        + payload_meta["nbytes"]
    ]
    return ColumnarTrace(
        name=footer["name"],
        spec=spec_from_dict(footer["spec"]),
        packets_sent=footer["packets_sent"],
        first_sequence=footer.get("first_sequence", 0),
        times=column("times"),
        levels=column("levels"),
        silences=column("silences"),
        qualities=column("qualities"),
        antennas=column("antennas"),
        offsets=column("offsets"),
        lengths=column("lengths"),
        payload=payload.copy() if copy else payload,
        backing=None if copy else backing,
    )


def read_columnar(path: PathLike) -> ColumnarTrace:
    """Memory-map a v2 file; columns are zero-copy views into the map."""
    path = Path(path)
    size = path.stat().st_size
    if size == 0:
        raise ValueError(f"{path}: empty trace file")
    flat = np.memmap(path, dtype=np.uint8, mode="r")
    return _parse_columnar(flat, str(path), backing=flat, copy=False)


def read_columnar_buffer(
    buffer, origin: str = "<buffer>", *, copy: bool = False,
    backing: object = None,
) -> ColumnarTrace:
    """Read v2 bytes from any buffer (shared memory, BytesIO contents).

    With ``copy=False`` the columns are views — the caller must keep the
    buffer alive, or pass it as ``backing`` so the trace pins it.
    """
    flat = np.frombuffer(buffer, dtype=np.uint8)
    return _parse_columnar(flat, origin, backing=backing, copy=copy)


def is_columnar_file(path: PathLike) -> bool:
    """True when ``path`` starts with the v2 magic."""
    try:
        with open(path, "rb") as stream:
            return stream.read(len(MAGIC)) == MAGIC
    except OSError:
        return False
