"""Foreign ("outsider") traffic.

"In some trials we received packets from WaveLAN units in nearby rooms
or in other buildings.  Typically these packets were few, had poor
signal characteristics, and were damaged.  Frequently we could determine
that they were ARP packets or inter-bridge routing packets" (Section 4).

Outsider frames are ordinary short Ethernet frames (ARP requests and
spanning-tree-style bridge hellos) from foreign stations at low signal
level; they run through the *same* modem pipeline as test packets, so
their observed signatures — weak, low quality, usually damaged — emerge
from the channel model rather than being scripted.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.framing import ethernet
from repro.framing.ethernet import BROADCAST, EthernetFrame, MacAddress
from repro.framing.modem import DEFAULT_NETWORK_ID


def build_arp_request(src: MacAddress, seed_byte: int) -> bytes:
    """A plausible ARP-request payload (28 bytes, RFC 826 layout)."""
    payload = bytearray(28)
    payload[0:2] = (1).to_bytes(2, "big")  # HTYPE Ethernet
    payload[2:4] = ethernet.ETHERTYPE_IPV4.to_bytes(2, "big")
    payload[4] = 6  # HLEN
    payload[5] = 4  # PLEN
    payload[6:8] = (1).to_bytes(2, "big")  # OPER request
    payload[8:14] = src.octets
    payload[14:18] = bytes([128, 2, seed_byte, 1])  # SPA
    payload[24:28] = bytes([128, 2, seed_byte, 254])  # TPA
    return bytes(payload)


def build_bridge_hello(src: MacAddress, sequence: int) -> bytes:
    """A small inter-bridge routing frame payload."""
    body = bytearray(46)
    body[0:4] = b"BRDG"
    body[4:8] = (sequence & 0xFFFFFFFF).to_bytes(4, "big")
    body[8:14] = src.octets
    return bytes(body)


@dataclass
class OutsiderTraffic:
    """A population of distant foreign WaveLAN stations.

    ``rate_per_test_packet`` is the expected number of outsider frames
    arriving per test packet sent; ``mean_level``/``level_sd`` describe
    how weak they are at the receiver (other rooms, other buildings).
    """

    mean_level: float = 5.0
    level_sd: float = 1.3
    rate_per_test_packet: float = 0.05
    network_id: int = DEFAULT_NETWORK_ID
    station_count: int = 6

    def frame_count(self, test_packets: int, rng: np.random.Generator) -> int:
        return int(rng.poisson(self.rate_per_test_packet * test_packets))

    def sample_level(self, rng: np.random.Generator) -> float:
        return float(rng.normal(self.mean_level, self.level_sd))

    def build_frame(self, rng: np.random.Generator) -> bytes:
        """One outsider frame (modem framing + Ethernet + ARP/hello)."""
        station = int(rng.integers(100, 100 + self.station_count))
        src = MacAddress.station(station)
        if rng.random() < 0.5:
            payload = build_arp_request(src, station & 0xFF)
            ethertype = ethernet.ETHERTYPE_ARP
        else:
            payload = build_bridge_hello(src, int(rng.integers(0, 1 << 16)))
            ethertype = 0x4242  # bridge-protocol style
        # Pad to the Ethernet minimum payload.
        if len(payload) < 46:
            payload = payload + bytes(46 - len(payload))
        eth = EthernetFrame(
            dst=BROADCAST, src=src, ethertype=ethertype, payload=payload
        ).to_bytes(with_fcs=True)
        return (self.network_id & 0xFFFF).to_bytes(2, "big") + eth
