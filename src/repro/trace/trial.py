"""Trial runners.

Two paths produce the same artifact (a :class:`~repro.trace.records.TrialTrace`):

* :func:`run_fast_trial` — contention-free point-to-point trials.  When
  no interference source is configured the per-packet work is fully
  vectorized and only damaged packets are materialized individually,
  making the paper's half-million-packet office trials (Table 2)
  tractable in seconds.
* :func:`run_mac_trial` — the full event-driven simulation (MACs,
  carrier sense, overlapping transmissions); used by the
  receive-threshold and competing-transmitter experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.environment.geometry import Point
from repro.environment.propagation import PropagationModel
from repro.framing.testpacket import FRAME_BYTES, TestPacketFactory, TestPacketSpec
from repro.interference.base import InterferenceSource
from repro.link.channel import RadioChannel
from repro.link.station import LinkStation
from repro.mac.csma import CsmaCaMac
from repro.obs import runtime as _obs
from repro.phy.modem import (
    DropReason,
    ModemConfig,
    ModemRxStatus,
    RxDisposition,
    WaveLanModem,
)
from repro.simkit.rng import RngRegistry
from repro.simkit.simulator import Simulator
from repro.trace.outsiders import OutsiderTraffic
from repro.trace.records import PacketRecord, TrialTrace
from repro.trace.sender import BurstSender
from repro.units import AGC_MAX_READING, QUALITY_MAX


@dataclass
class TrialConfig:
    """A point-to-point measurement trial.

    Either give explicit ``tx_position``/``rx_position`` with a
    ``propagation`` model, or set ``mean_level`` directly (several paper
    tables are defined by their observed level, not their geometry).
    """

    name: str
    packets: int
    seed: int = 0
    spec: TestPacketSpec = field(default_factory=TestPacketSpec.default)
    propagation: PropagationModel = field(default_factory=PropagationModel)
    tx_position: Point = Point(0.0, 0.0)
    rx_position: Point = Point(7.0, 0.0)
    mean_level: Optional[float] = None
    modem_config: ModemConfig = field(default_factory=ModemConfig)
    interference: Sequence[InterferenceSource] = ()
    outsiders: Optional[OutsiderTraffic] = None
    # Receiver antenna branches (1 disables diversity; the X8 ablation).
    antenna_branches: int = 2

    def resolved_mean_level(self) -> float:
        if self.mean_level is not None:
            return self.mean_level
        return self.propagation.mean_level(self.tx_position, self.rx_position)


@dataclass
class TrialDispositions:
    """Ground-truth accounting of what happened to each sent packet.

    The *analysis* stage never sees this — it re-derives loss from the
    trace — but tests and calibration checks do.
    """

    delivered: int = 0
    missed: int = 0
    threshold_filtered: int = 0
    quality_filtered: int = 0
    outsiders_delivered: int = 0
    outsiders_lost: int = 0


@dataclass
class TrialOutput:
    """A trial's trace plus its ground-truth dispositions."""

    trace: TrialTrace
    dispositions: TrialDispositions


def _clamp_array(values: np.ndarray, maximum: int) -> np.ndarray:
    return np.clip(np.rint(values), 0, maximum).astype(np.int16)


def run_fast_trial(config: TrialConfig) -> TrialOutput:
    """Run a contention-free trial and return its trace."""
    with _obs.span("profile.trial_fast"):
        rng_registry = RngRegistry(config.seed).fork(config.name)
        factory = TestPacketFactory(config.spec)
        modem = WaveLanModem(config=config.modem_config)
        modem.antenna.branches = config.antenna_branches
        mean_level = config.resolved_mean_level()
        dispositions = TrialDispositions()
        trace = TrialTrace(
            name=config.name, spec=config.spec, packets_sent=config.packets
        )

        if config.interference:
            _run_per_packet(config, factory, modem, mean_level, rng_registry, trace, dispositions)
        else:
            _run_vectorized(config, factory, modem, mean_level, rng_registry, trace, dispositions)

        if config.outsiders is not None:
            _inject_outsiders(config, modem, rng_registry, trace, dispositions)

        _record_fast_trial_metrics(config, dispositions)

    return TrialOutput(trace=trace, dispositions=dispositions)


def _record_fast_trial_metrics(
    config: TrialConfig, dispositions: TrialDispositions
) -> None:
    """Account one completed fast trial in the metrics registry.

    The fast path bypasses the MAC and channel objects, so the MAC/link
    accounting those layers would have produced is synthesized here:
    every frame of a contention-free point-to-point trial is one
    collision-free MAC transmission offered to the link.
    """
    state = _obs.STATE
    if not state.enabled:
        return
    metrics = state.metrics
    metrics.counter("trace.trials", mode="fast").inc()
    metrics.counter("trace.packets_offered").inc(config.packets)
    metrics.counter("trace.packets_delivered").inc(dispositions.delivered)
    metrics.counter("mac.attempts", protocol="contention_free").inc(
        config.packets
    )
    metrics.counter("mac.transmissions", protocol="contention_free").inc(
        config.packets
    )
    metrics.counter("link.transmissions").inc(config.packets)
    metrics.counter("link.deliveries").inc(dispositions.delivered)
    for reason, count in (
        (DropReason.BOF_MISSED, dispositions.missed),
        (DropReason.BELOW_RECEIVE_THRESHOLD, dispositions.threshold_filtered),
        (DropReason.QUALITY_FILTERED, dispositions.quality_filtered),
    ):
        if count:
            metrics.counter("link.drops", reason=reason.value).inc(count)


def _run_per_packet(
    config: TrialConfig,
    factory: TestPacketFactory,
    modem: WaveLanModem,
    mean_level: float,
    rng_registry: RngRegistry,
    trace: TrialTrace,
    dispositions: TrialDispositions,
) -> None:
    rng = rng_registry.stream("channel")
    ambient = config.propagation.ambient
    for sequence in range(config.packets):
        frame = factory.build(sequence)
        samples = [
            source.sample_packet(config.rx_position, mean_level, rng)
            for source in config.interference
        ]
        ambient_level = float(ambient.sample(rng, 1)[0])
        reception = modem.receive(frame, mean_level, ambient_level, rng, samples)
        if reception.disposition is RxDisposition.DELIVERED:
            dispositions.delivered += 1
            trace.records.append(
                PacketRecord.from_bytes(
                    reception.data, reception.status, time=float(sequence)
                )
            )
        elif reception.disposition is RxDisposition.MISSED:
            dispositions.missed += 1
        elif reception.disposition is RxDisposition.THRESHOLD_FILTERED:
            dispositions.threshold_filtered += 1
        else:
            dispositions.quality_filtered += 1


def _run_vectorized(
    config: TrialConfig,
    factory: TestPacketFactory,
    modem: WaveLanModem,
    mean_level: float,
    rng_registry: RngRegistry,
    trace: TrialTrace,
    dispositions: TrialDispositions,
) -> None:
    rng = rng_registry.stream("channel")
    n = config.packets
    error_model = modem.error_model
    stress_params = error_model.params.stress

    levels, antennas = modem.antenna.select_bulk(mean_level, n, rng)
    flags = error_model.sample_bulk_clean(levels, FRAME_BYTES, rng)
    missed = flags["missed"]

    signal_readings = _clamp_array(
        levels + rng.normal(0.0, modem.agc.reading_jitter_sd, size=n),
        AGC_MAX_READING,
    )
    ambient_draws = config.propagation.ambient.sample(rng, n)
    silence_readings = _clamp_array(
        ambient_draws + rng.normal(0.0, modem.agc.reading_jitter_sd, size=n),
        AGC_MAX_READING,
    )
    quality_clean = _clamp_array(
        15.0
        - flags["stress"]
        - (rng.random(n) < stress_params.baseline_dip_probability),
        QUALITY_MAX,
    )

    threshold = config.modem_config.receive_threshold
    quality_threshold = config.modem_config.quality_threshold
    interesting = flags["truncated"] | flags["hit"] | flags["residual_hit"]

    # Plain Python lists: scalar indexing into numpy arrays dominates
    # the loop otherwise on half-million-packet trials.
    missed_list = missed.tolist()
    interesting_list = interesting.tolist()
    signal_list = signal_readings.tolist()
    silence_list = silence_readings.tolist()
    antenna_list = antennas.tolist()
    quality_list = quality_clean.tolist()
    stress_list = flags["stress"].tolist()
    truncated_list = flags["truncated"].tolist()
    hit_list = flags["hit"].tolist()
    residual_list = flags["residual_hit"].tolist()
    records_append = trace.records.append

    for sequence in range(n):
        if missed_list[sequence]:
            dispositions.missed += 1
            continue
        if signal_list[sequence] < threshold:
            dispositions.threshold_filtered += 1
            continue
        status_kwargs = {
            "signal_level": signal_list[sequence],
            "silence_level": silence_list[sequence],
            "antenna": antenna_list[sequence],
        }
        if not interesting_list[sequence]:
            quality = quality_list[sequence]
            if quality < quality_threshold:
                dispositions.quality_filtered += 1
                continue
            dispositions.delivered += 1
            records_append(
                PacketRecord.pristine(
                    factory,
                    sequence,
                    ModemRxStatus(signal_quality=quality, **status_kwargs),
                    time=float(sequence),
                )
            )
            continue
        fate = error_model.detail_clean_packet(
            stress=stress_list[sequence],
            truncated=truncated_list[sequence],
            hit=hit_list[sequence],
            residual_hit=residual_list[sequence],
            frame_bytes=FRAME_BYTES,
            rng=rng,
        )
        if fate.quality < quality_threshold:
            dispositions.quality_filtered += 1
            continue
        frame = factory.build(sequence)
        data = WaveLanModem.apply_fate(frame, fate)
        dispositions.delivered += 1
        trace.records.append(
            PacketRecord.from_bytes(
                data,
                ModemRxStatus(signal_quality=fate.quality, **status_kwargs),
                time=float(sequence),
            )
        )


def _inject_outsiders(
    config: TrialConfig,
    modem: WaveLanModem,
    rng_registry: RngRegistry,
    trace: TrialTrace,
    dispositions: TrialDispositions,
) -> None:
    outsiders = config.outsiders
    rng = rng_registry.stream("outsiders")
    count = outsiders.frame_count(config.packets, rng)
    ambient = config.propagation.ambient
    for i in range(count):
        frame = outsiders.build_frame(rng)
        level = outsiders.sample_level(rng)
        samples = [
            source.sample_packet(config.rx_position, level, rng)
            for source in config.interference
        ]
        ambient_level = float(ambient.sample(rng, 1)[0])
        reception = modem.receive(frame, level, ambient_level, rng, samples)
        if reception.disposition is RxDisposition.DELIVERED:
            dispositions.outsiders_delivered += 1
            # Interleave at a pseudo-time inside the trial.
            position = (i + 0.5) * config.packets / max(count, 1)
            trace.records.append(
                PacketRecord.from_bytes(reception.data, reception.status, position)
            )
        else:
            dispositions.outsiders_lost += 1
    trace.records.sort(key=lambda record: record.time)


def run_mac_trial(
    config: TrialConfig,
    extra_stations: Sequence[tuple[LinkStation, Optional[bytes]]] = (),
    rate_bps: float = 1_400_000.0,
) -> tuple[TrialOutput, RadioChannel]:
    """Run a trial through the full MAC/channel event simulation.

    ``extra_stations`` are additional stations; each optional ``bytes``
    payload makes that station a continuous transmitter of that frame
    (the paper's "raise the receive threshold to 35 so they transmit
    continuously" hostile configuration).
    """
    with _obs.span("profile.trial_mac"):
        sim = Simulator(seed=config.seed)
        channel = RadioChannel(
            sim,
            config.propagation,
            interference_sources=list(config.interference),
        )

        sender_station = LinkStation.tracing_station(1, config.tx_position)
        receiver_station = LinkStation.tracing_station(
            2, config.rx_position, modem_config=config.modem_config
        )
        channel.add_station(sender_station)
        channel.add_station(receiver_station)
        for station, payload in extra_stations:
            channel.add_station(station)

        sender_mac = CsmaCaMac(
            sim, channel, sender_station.station_id, sim.rng.stream("mac.sender")
        )
        burst = BurstSender.for_spec(
            sim, config.spec, sender_mac.enqueue, config.packets, rate_bps
        )
        burst.start()

        for station, payload in extra_stations:
            if payload is None:
                continue
            jammer_mac = CsmaCaMac(
                sim,
                channel,
                station.station_id,
                sim.rng.stream(f"mac.jammer.{station.station_id}"),
            )
            _keep_queue_full(sim, jammer_mac, payload)

        # Bound the run: the burst takes count * frame-interval at the
        # offered rate; allow generous slack for backoff, then stop (jammers
        # would otherwise refill forever).
        horizon = config.packets * (FRAME_BYTES * 8.0 / rate_bps) * 3.0 + 1.0
        sim.run_until(horizon)

        trace = TrialTrace(
            name=config.name, spec=config.spec, packets_sent=config.packets
        )
        for received in receiver_station.log:
            trace.records.append(
                PacketRecord.from_bytes(received.data, received.status, received.time)
            )
        dispositions = TrialDispositions(
            delivered=len(receiver_station.log),
            missed=channel.stats.misses,
            threshold_filtered=channel.stats.threshold_filtered,
            quality_filtered=channel.stats.quality_filtered,
        )
        state = _obs.STATE
        if state.enabled:
            state.metrics.counter("trace.trials", mode="mac").inc()
            state.metrics.counter("trace.packets_offered").inc(config.packets)
            state.metrics.counter("trace.packets_delivered").inc(
                dispositions.delivered
            )
    return TrialOutput(trace=trace, dispositions=dispositions), channel


def _keep_queue_full(sim: Simulator, mac: CsmaCaMac, payload: bytes) -> None:
    """Continuously refill a jammer MAC so it never goes idle."""

    def refill() -> None:
        while mac.queue_length < 4:
            mac.enqueue(payload)
        sim.schedule(0.002, refill, name="jammer.refill")

    sim.schedule(0.0, refill, name="jammer.refill")
