"""The promiscuous trace recorder.

Wraps a :class:`~repro.link.station.LinkStation` so everything its
controller accepts lands in a :class:`~repro.trace.records.TrialTrace`
— the software equivalent of the paper's modified NetBSD driver
("place both the Ethernet controller and the modem control unit into
'promiscuous' mode and ... log, for each incoming packet, every bit
and all available status information").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.framing.testpacket import TestPacketSpec
from repro.link.station import LinkStation, ReceivedFrame
from repro.trace.records import PacketRecord, TrialTrace


@dataclass
class TraceRecorder:
    """Attach to a station; harvest its receptions into a trace."""

    station: LinkStation
    spec: TestPacketSpec = field(default_factory=TestPacketSpec.default)
    trial_name: str = "recorded"
    records: list[PacketRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        previous = self.station.on_receive

        def hook(frame: ReceivedFrame) -> None:
            self.records.append(
                PacketRecord.from_bytes(frame.data, frame.status, frame.time)
            )
            if previous is not None:
                previous(frame)

        self.station.on_receive = hook

    @property
    def packets_recorded(self) -> int:
        return len(self.records)

    def to_trace(self, packets_sent: int) -> TrialTrace:
        """Materialize the recording as an analyzable trial trace.

        ``packets_sent`` is ground truth the experimenter supplies (they
        ran the sender), exactly as in the paper.
        """
        trace = TrialTrace(
            name=self.trial_name, spec=self.spec, packets_sent=packets_sent
        )
        trace.records.extend(self.records)
        return trace

    def reset(self) -> None:
        """Discard the recording (start a new burst)."""
        self.records.clear()
