"""The UDP burst test-traffic generator.

"We decided to collect bursts of packets at the maximum possible
transmission rate (roughly 1.4 Mb/s for this machine and protocol
stack), aggregating multiple bursts to form a long trial" (Section 4).

The sender hands pre-built test frames to a MAC at the host-limited
offered rate; the contention-free fast path in :mod:`repro.trace.trial`
bypasses it and enumerates sequences directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.framing.testpacket import TestPacketFactory, TestPacketSpec
from repro.simkit.simulator import Simulator

# The DECpc 425SL + NetBSD protocol stack topped out around 1.4 Mb/s.
HOST_LIMITED_RATE_BPS = 1_400_000.0


@dataclass
class BurstSender:
    """Feeds test frames to a MAC queue at the host-limited rate."""

    sim: Simulator
    factory: TestPacketFactory
    enqueue: Callable[[bytes], None]
    count: int
    rate_bps: float = HOST_LIMITED_RATE_BPS
    on_done: Optional[Callable[[], None]] = None
    sent: int = field(default=0, init=False)

    @classmethod
    def for_spec(
        cls,
        sim: Simulator,
        spec: TestPacketSpec,
        enqueue: Callable[[bytes], None],
        count: int,
        rate_bps: float = HOST_LIMITED_RATE_BPS,
    ) -> "BurstSender":
        return cls(
            sim=sim,
            factory=TestPacketFactory(spec),
            enqueue=enqueue,
            count=count,
            rate_bps=rate_bps,
        )

    def start(self) -> None:
        """Begin the burst."""
        self.sim.schedule(0.0, self._tick, name="sender.tick")

    def _interval(self) -> float:
        from repro.framing.testpacket import FRAME_BYTES

        return FRAME_BYTES * 8.0 / self.rate_bps

    def _tick(self) -> None:
        if self.sent >= self.count:
            if self.on_done is not None:
                self.on_done()
            return
        frame = self.factory.build(self.sent)
        self.sent += 1
        self.enqueue(frame)
        self.sim.schedule(self._interval(), self._tick, name="sender.tick")
