"""Trace persistence: save and reload trial traces.

The paper's workflow was capture-then-analyze-offline; a library user
wants the same separation — run a long capture once, keep the trace,
iterate on analysis.  The format is JSON-lines (optionally gzipped by
file extension):

* line 1 — the trial header: name, packets sent, the test-packet spec;
* each further line — one packet record: timestamp, the four status
  registers, and the raw bytes (hex).

The format is deliberately self-describing and greppable; a trace
captured from real hardware could be converted to it and fed to the
same analysis.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import IO, Union

from repro.framing.ethernet import MacAddress
from repro.framing.testpacket import TestPacketSpec
from repro.phy.modem import ModemRxStatus
from repro.trace.records import PacketRecord, TrialTrace

FORMAT_VERSION = 1

PathLike = Union[str, Path]


def _spec_to_dict(spec: TestPacketSpec) -> dict:
    return {
        "src_mac": str(spec.src_mac),
        "dst_mac": str(spec.dst_mac),
        "src_ip": spec.src_ip,
        "dst_ip": spec.dst_ip,
        "src_port": spec.src_port,
        "dst_port": spec.dst_port,
        "network_id": spec.network_id,
        "first_sequence": spec.first_sequence,
    }


def _spec_from_dict(data: dict) -> TestPacketSpec:
    return TestPacketSpec(
        src_mac=MacAddress.from_string(data["src_mac"]),
        dst_mac=MacAddress.from_string(data["dst_mac"]),
        src_ip=data["src_ip"],
        dst_ip=data["dst_ip"],
        src_port=data["src_port"],
        dst_port=data["dst_port"],
        network_id=data["network_id"],
        first_sequence=data["first_sequence"],
    )


def _open(path: PathLike, mode: str) -> IO:
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def save_trace(trace: TrialTrace, path: PathLike) -> None:
    """Write a trace to ``path`` (gzipped when it ends in .gz)."""
    with _open(path, "w") as stream:
        header = {
            "format": FORMAT_VERSION,
            "kind": "wavelan-trial-trace",
            "name": trace.name,
            "packets_sent": trace.packets_sent,
            "spec": _spec_to_dict(trace.spec),
        }
        stream.write(json.dumps(header) + "\n")
        for record in trace.records:
            status = record.status
            line = {
                "t": record.time,
                "lvl": status.signal_level,
                "sil": status.silence_level,
                "q": status.signal_quality,
                "ant": status.antenna,
                "data": record.data.hex(),
            }
            stream.write(json.dumps(line) + "\n")


def load_trace(path: PathLike) -> TrialTrace:
    """Read a trace written by :func:`save_trace`.

    Raises ValueError on version/kind mismatches — the format is simple
    enough that failing loudly beats guessing.
    """
    with _open(path, "r") as stream:
        header_line = stream.readline()
        if not header_line:
            raise ValueError(f"{path}: empty trace file")
        header = json.loads(header_line)
        if header.get("kind") != "wavelan-trial-trace":
            raise ValueError(f"{path}: not a trial trace file")
        if header.get("format") != FORMAT_VERSION:
            raise ValueError(
                f"{path}: format {header.get('format')} "
                f"(this reader supports {FORMAT_VERSION})"
            )
        trace = TrialTrace(
            name=header["name"],
            spec=_spec_from_dict(header["spec"]),
            packets_sent=header["packets_sent"],
        )
        for line in stream:
            if not line.strip():
                continue
            entry = json.loads(line)
            status = ModemRxStatus(
                signal_level=entry["lvl"],
                silence_level=entry["sil"],
                signal_quality=entry["q"],
                antenna=entry["ant"],
            )
            trace.records.append(
                PacketRecord.from_bytes(
                    bytes.fromhex(entry["data"]), status, entry["t"]
                )
            )
        return trace
