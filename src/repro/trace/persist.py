"""Trace persistence: save and reload trial traces.

The paper's workflow was capture-then-analyze-offline; a library user
wants the same separation — run a long capture once, keep the trace,
iterate on analysis.  Two formats are supported (docs/TRACE_FORMAT.md):

* **v1 — JSON-lines** (optionally gzipped by ``.gz`` extension):
  line 1 the trial header, each further line one packet record with
  hex-encoded bytes.  Deliberately self-describing and greppable; the
  interchange format for traces captured from real hardware.
* **v2 — columnar binary** (:mod:`repro.trace.columnar`): a flat
  frame-bytes payload plus contiguous numpy columns and a JSON footer,
  loaded via ``np.memmap`` so the analysis pipeline consumes the
  columns zero-copy.  The performance format for large traces.

``load_trace`` auto-detects the format from the file's leading bytes
(v2 magic / gzip magic / JSON), never from the filename.  ``save_trace``
picks v2 for the ``.wlt2`` suffix and v1 otherwise unless ``format=``
overrides.  Gzipped v1 output is byte-deterministic: the gzip member
header is written with ``mtime=0`` and no embedded filename, so two
identical saves produce identical files (the serial-vs-``jobs=N``
byte-identity invariants extend to compressed artifacts).
"""

from __future__ import annotations

import gzip
import io
import json
from pathlib import Path
from typing import IO, Optional, Union

from repro.obs import runtime as _obs
from repro.phy.modem import ModemRxStatus
from repro.trace import columnar
from repro.trace.columnar import (
    ColumnarTrace,
    read_columnar,
    spec_from_dict,
    spec_to_dict,
    write_columnar,
)
from repro.trace.records import PacketRecord, TrialTrace, materialize_data

FORMAT_VERSION = 1
GZIP_MAGIC = b"\x1f\x8b"

PathLike = Union[str, Path]
AnyTrace = Union[TrialTrace, ColumnarTrace]

# Spec serialization lives in repro.trace.columnar (shared by both
# formats); re-exported here for callers of the historical names.
_spec_to_dict = spec_to_dict
_spec_from_dict = spec_from_dict


class _DeterministicGzipFile(gzip.GzipFile):
    """Gzip writer with a reproducible member header.

    ``gzip.open(path, "wt")`` embeds the current time (and the target
    filename) in the member header, so two byte-identical saves differ.
    Opening the raw stream ourselves and passing it as ``fileobj`` with
    ``mtime=0`` drops both fields — identical traces compress to
    identical files.
    """

    def __init__(self, path: PathLike) -> None:
        self._raw = open(path, "wb")
        # filename="" stops GzipFile from lifting the FNAME field off
        # the raw stream's .name attribute.
        super().__init__(filename="", fileobj=self._raw, mode="wb", mtime=0)

    def close(self) -> None:
        try:
            super().close()
        finally:
            self._raw.close()


def _open(path: PathLike, mode: str) -> IO:
    path = Path(path)
    if path.suffix == ".gz":
        if "w" in mode:
            return io.TextIOWrapper(
                _DeterministicGzipFile(path), encoding="utf-8"
            )
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def _infer_save_format(path: PathLike, format: Optional[str]) -> str:
    if format is not None:
        if format not in ("v1", "v2"):
            raise ValueError(f"unknown trace format {format!r}")
        return format
    return "v2" if Path(path).suffix == columnar.V2_SUFFIX else "v1"


def save_trace(
    trace: AnyTrace, path: PathLike, format: Optional[str] = None
) -> None:
    """Write a trace to ``path``.

    ``format`` is ``"v1"`` (JSON-lines; gzipped when the name ends in
    ``.gz``) or ``"v2"`` (columnar binary); when omitted it is inferred
    from the suffix — ``.wlt2`` means v2, anything else v1, preserving
    the historical behaviour of every existing call site.
    """
    fmt = _infer_save_format(path, format)
    with _obs.trace_span("trace.save", path=str(path), format=fmt):
        _save_trace(trace, path, fmt)


def _save_trace(trace: AnyTrace, path: PathLike, fmt: str) -> None:
    if fmt == "v2":
        write_columnar(trace, path)
        return
    if isinstance(trace, ColumnarTrace):
        trace = trace.to_trial_trace()
    with _open(path, "w") as stream:
        header = {
            "format": FORMAT_VERSION,
            "kind": "wavelan-trial-trace",
            "name": trace.name,
            "packets_sent": trace.packets_sent,
            "spec": _spec_to_dict(trace.spec),
        }
        stream.write(json.dumps(header) + "\n")
        records = trace.records
        for record, data in zip(records, materialize_data(records)):
            status = record.status
            line = {
                "t": record.time,
                "lvl": status.signal_level,
                "sil": status.silence_level,
                "q": status.signal_quality,
                "ant": status.antenna,
                "data": data.hex(),
            }
            stream.write(json.dumps(line) + "\n")


def load_trace(path: PathLike) -> AnyTrace:
    """Read a trace written by :func:`save_trace`, either format.

    The format is sniffed from the file's first bytes: the v2 magic
    selects the zero-copy columnar reader (returning a
    :class:`ColumnarTrace`), anything else the v1 JSON-lines reader
    (returning a :class:`TrialTrace`).  Raises ValueError on
    version/kind mismatches and on malformed record lines — the formats
    are simple enough that failing loudly beats guessing.
    """
    with open(path, "rb") as probe:
        head = probe.read(len(columnar.MAGIC))
    if head == columnar.MAGIC:
        with _obs.trace_span("trace.load", path=str(path), format="v2"):
            return read_columnar(path)
    with _obs.trace_span("trace.load", path=str(path), format="v1"), \
            _open(path, "r") as stream:
        header_line = stream.readline()
        if not header_line:
            raise ValueError(f"{path}: empty trace file")
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:1: malformed trace header: {exc}") from exc
        if header.get("kind") != "wavelan-trial-trace":
            raise ValueError(f"{path}: not a trial trace file")
        if header.get("format") != FORMAT_VERSION:
            raise ValueError(
                f"{path}: format {header.get('format')} "
                f"(this reader supports {FORMAT_VERSION})"
            )
        trace = TrialTrace(
            name=header["name"],
            spec=_spec_from_dict(header["spec"]),
            packets_sent=header["packets_sent"],
        )
        for lineno, line in enumerate(stream, start=2):
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
                status = ModemRxStatus(
                    signal_level=entry["lvl"],
                    silence_level=entry["sil"],
                    signal_quality=entry["q"],
                    antenna=entry["ant"],
                )
                record = PacketRecord.from_bytes(
                    bytes.fromhex(entry["data"]), status, entry["t"]
                )
            except (json.JSONDecodeError, KeyError, ValueError) as exc:
                raise ValueError(
                    f"{path}:{lineno}: malformed trace record: {exc!r}"
                ) from exc
            trace.records.append(record)
        return trace
