"""repro — a reproduction of Eckhardt & Steenkiste, "Measurement and
Analysis of the Error Characteristics of an In-Building Wireless
Network" (SIGCOMM 1996).

The package simulates the paper's measurement apparatus — an AT&T
WaveLAN 900 MHz in-building wireless LAN, its DSSS physical layer,
CSMA/CA MAC, and the error environment of offices, walls, human bodies
and interfering phones — and re-implements the paper's offline trace
analysis on top, faithfully enough that every table and figure in the
paper can be regenerated in shape.

Quick start::

    from repro import TrialConfig, run_fast_trial, analyze_trial

    output = run_fast_trial(TrialConfig(name="demo", packets=10_000,
                                        mean_level=29.5))
    metrics = analyze_trial(output.trace)
    print(metrics.packet_loss_percent, metrics.bit_error_rate)

Layer map (bottom-up):

* :mod:`repro.simkit` — deterministic discrete-event kernel.
* :mod:`repro.framing` — bit-exact packet formats (CRC-32, IP/UDP,
  modem framing, the paper's 256-word test packet).
* :mod:`repro.environment` — floor plans, materials, propagation.
* :mod:`repro.phy` — DSSS, AGC, antenna diversity, the calibrated
  impairment pipeline, the modem control unit.
* :mod:`repro.mac` — CSMA/CA (and a CSMA/CD baseline), the 82593
  controller.
* :mod:`repro.interference` — cordless phones, overload sources,
  competing WaveLAN units.
* :mod:`repro.link` — stations on a shared radio channel.
* :mod:`repro.trace` — the tracing methodology (Section 4).
* :mod:`repro.analysis` — heuristic matching, damage classification,
  Table-1 metrics, signal statistics.
* :mod:`repro.fec` — the Section-8 variable-FEC proposal, implemented.
* :mod:`repro.experiments` — one module per paper table/figure.
"""

from repro.analysis import analyze_trial, classify_trace, signal_stats_by_class
from repro.analysis.metrics import TrialMetrics
from repro.environment import FloorPlan, Point, PropagationModel, Wall
from repro.fec import AdaptiveFecController, ConvolutionalCode, RcpcCodec
from repro.framing import TestPacketFactory, TestPacketSpec
from repro.link import LinkStation, RadioChannel
from repro.phy import ModemConfig, WaveLanErrorModel, WaveLanModem
from repro.simkit import Simulator
from repro.trace import TrialConfig, TrialTrace, run_fast_trial, run_mac_trial

__version__ = "1.0.0"

__all__ = [
    "AdaptiveFecController",
    "ConvolutionalCode",
    "FloorPlan",
    "LinkStation",
    "ModemConfig",
    "Point",
    "PropagationModel",
    "RadioChannel",
    "RcpcCodec",
    "Simulator",
    "TestPacketFactory",
    "TestPacketSpec",
    "TrialConfig",
    "TrialMetrics",
    "TrialTrace",
    "Wall",
    "WaveLanErrorModel",
    "WaveLanModem",
    "analyze_trial",
    "classify_trace",
    "run_fast_trial",
    "run_mac_trial",
    "signal_stats_by_class",
    "__version__",
]
