"""Built-in scenarios: every paper setup, declaratively, exactly once.

This module is the single source of truth for the paper's physical
geometry.  The legacy hand-coded constructors in
:mod:`repro.experiments.scenarios` now delegate here (kept as adapters
for their public API), and the experiment modules resolve these
registry names — so the Table-4 walls, the Figure-4 building, and the
interference rooms each exist in exactly one place.

Naming convention: ``paper/<artifact>-<variant>`` for reproduced
setups, ``demo/<name>`` for the new scenarios the DSL unlocks (3-floor
building, dense office, interferer pareto point).

The numbers themselves (anchors, positions, wall coordinates) are
pinned by the golden-equivalence tests in ``tests/scenario/`` against
the pre-refactor constructors — do not tweak them casually.
"""

from __future__ import annotations

from repro.environment.materials import (
    CONCRETE_BLOCK_WALL,
)
from repro.scenario.spec import (
    DipSpec,
    OutsiderSpec,
    ScenarioBuilder,
    ScenarioSpec,
)

# Positions used by the phone trials, relative to the receiver at the
# origin (see the paper's Section 7 prose).
PHONE_NEAR = (0.4, 0.3)  # "a few inches from the receiver's modem unit"
PHONE_NEAR_2 = (-0.4, 0.3)  # the second phone's unit, also clustered
PHONE_ACROSS_HALL = (0.0, 30.0)  # "an office across the hall"
PHONE_ACROSS_HALL_2 = (2.0, 30.0)
PHONE_FAR = (11.0, 8.7)  # "approximately 14 feet from the receiver"
PHONE_FAR_BASE = (12.5, 8.7)

#: Experiment-trial name -> registry scenario name, per experiment.
#: The experiment modules use these to tag their plans and compile
#: their geometry; the keys are the paper's trial labels.
TABLE4_SCENARIOS = {
    "Air 1": "paper/table4-air1",
    "Wall 1": "paper/table4-wall1",
    "Air 2": "paper/table4-air2",
    "Wall 2": "paper/table4-wall2",
}
TABLE10_SCENARIOS = {
    "Phones off": "paper/table10-phones-off",
    "Cluster": "paper/table10-cluster",
    "Handsets nearby": "paper/table10-handsets-nearby",
    "Handsets nearby talking": "paper/table10-handsets-talking",
    "Bases nearby": "paper/table10-bases-nearby",
}
TABLE11_SCENARIOS = {
    "Phones off": "paper/table11-phones-off",
    "RS base": "paper/table11-rs-base",
    "RS cluster": "paper/table11-rs-cluster",
    "AT&T cluster": "paper/table11-att-cluster",
    "RS remote cluster": "paper/table11-rs-remote",
    "AT&T handset": "paper/table11-att-handset",
}
TABLE14_SCENARIOS = {
    "Without interference": "paper/table14-quiet",
    "With interference": "paper/table14-masked",
    "Unmasked (threshold 3)": "paper/table14-unmasked",
}


def _office() -> ScenarioSpec:
    return (
        ScenarioBuilder("paper/office", "Table 2: two laptops across an office desk")
        .calibrate(level=29.5, at_distance_ft=8.0)
        .station("tx", 0.0, 0.0, role="tx")
        .station("rx", 8.0, 0.0, role="rx")
        .traffic(packets=12_720)
        .build()
    )


def _lecture_hall() -> ScenarioSpec:
    return (
        ScenarioBuilder(
            "paper/lecture-hall",
            "Figures 1-3: the lecture hall with its multipath dips",
        )
        .preset("lecture_hall")
        .station("tx", 30.0, 0.0, role="tx")
        .station("rx", 0.0, 0.0, role="rx")
        .traffic(packets=576)
        .build()
    )


def _table4() -> list[ScenarioSpec]:
    def pair(name: str, description: str, level: float, distance: float):
        return (
            ScenarioBuilder(name, description)
            .calibrate(level=level, at_distance_ft=distance)
            .station("tx", distance, 0.0, role="tx")
            .station("rx", 0.0, 0.0, role="rx")
            .traffic(packets=12_720)
        )

    air1 = pair(
        "paper/table4-air1", "Table 4 'Air 1': 7 ft, no wall", 30.58, 7.0
    ).build()
    wall1 = (
        pair("paper/table4-wall1", "Table 4 'Wall 1': plaster+mesh wall", 30.58, 7.0)
        .room("plaster office")
        .wall(3.5, -8.0, 3.5, 8.0, "plaster+wire-mesh wall")
        .build()
    )
    air2 = pair(
        "paper/table4-air2", "Table 4 'Air 2': 11 ft, no wall", 28.58, 11.0
    ).build()
    wall2 = (
        pair("paper/table4-wall2", "Table 4 'Wall 2': concrete-block wall", 28.58, 11.0)
        .room("concrete office")
        .wall(5.5, -8.0, 5.5, 8.0, "concrete-block wall")
        .build()
    )
    return [air1, wall1, air2, wall2]


def _multiroom_builder(name: str, description: str) -> ScenarioBuilder:
    """The Figure-4 concrete-block building (Tables 5-7 and 14).

    One geometry definition serves both experiments — the dedupe the
    scenario layer exists for.
    """
    return (
        ScenarioBuilder(name, description)
        .room("figure-4 building")
        .calibrate(level=28.58, at_distance_ft=9.0)
        # West: one concrete wall between the office and Tx2's room.
        .wall(-5.0, -6.0, -5.0, 6.0, "concrete-block wall", name="w-wall")
        # North corridor toward Tx4: two concrete walls and a door.
        .wall(-8.0, 15.0, 8.0, 15.0, "concrete-block wall", name="n-wall-1")
        .wall(-8.0, 32.0, 8.0, 32.0, "interior door", name="n-door")
        # East toward Tx5: two concrete walls, two metal obstacles, a door.
        .wall(5.0, -3.0, 5.0, 3.0, "concrete-block wall", name="e-wall-1")
        .wall(12.0, -3.0, 12.0, 3.0, "concrete-block wall", name="e-wall-2")
        .wall(18.0, -3.0, 18.0, 3.0, "metal obstacle", name="e-cabinet-1")
        .wall(22.0, -3.0, 22.0, 3.0, "metal obstacle", name="e-cabinet-2")
        .wall(26.0, -3.0, 26.0, 3.0, "interior door", name="e-door")
        .station("rx", 0.0, 0.0, role="rx")
        .station("Tx1", 7.2, 5.4, role="tx")  # 9.0 ft diagonal, same office
        .station("Tx2", -9.6, 0.0, role="tx")  # through the west concrete wall
        .station("Tx4", 0.0, 45.0, role="tx")  # north, 45 ft, wall + door
        .station("Tx5", 30.0, 0.0, role="tx")  # east, 30 ft, walls + metal
    )


def _multiroom() -> ScenarioSpec:
    return (
        _multiroom_builder(
            "paper/multiroom", "Tables 5-7: four transmitter locations, Figure 4"
        )
        .traffic(packets=12_720)
        .build()
    )


def _table14() -> list[ScenarioSpec]:
    def variant(name: str, description: str, threshold: int, jammed: bool):
        builder = (
            _multiroom_builder(name, description)
            .link("Tx1", "rx", name="Tx1")
            .modem(receive_threshold=threshold)
            .traffic(packets=12_715)
        )
        if jammed:
            for location in ("Tx4", "Tx5"):
                builder.interferer(
                    "competing_wavelan",
                    at_station=location,
                    match_received_level=True,
                    name=f"hostile-{location}",
                )
        return builder.build()

    return [
        variant(
            "paper/table14-quiet",
            "Table 14: Tx1 link, victim threshold 25, no competition",
            25,
            False,
        ),
        variant(
            "paper/table14-masked",
            "Table 14: hostile units at Tx4/Tx5 masked by threshold 25",
            25,
            True,
        ),
        variant(
            "paper/table14-unmasked",
            "Table 14: default threshold 3 — 'completely unusable'",
            3,
            True,
        ),
    ]


def _body(with_body: bool) -> ScenarioSpec:
    name = "paper/body" if with_body else "paper/no-body"
    builder = (
        ScenarioBuilder(
            name,
            "Tables 8-9: 56 ft across a hallway, two concrete walls"
            + (", a person in the way" if with_body else ""),
        )
        .room("hallway classrooms")
        .calibrate(
            level=12.55 + 2.0 * CONCRETE_BLOCK_WALL.attenuation_levels,
            at_distance_ft=56.0,
        )
        .wall(15.0, -10.0, 15.0, 10.0, "concrete-block wall")
        .wall(40.0, -10.0, 40.0, 10.0, "concrete-block wall")
        .station("tx", 56.0, 0.0, role="tx")
        .station("rx", 0.0, 0.0, role="rx")
        .traffic(packets=1_440)
    )
    if with_body:
        builder.obstacle("human body")
    return builder.build()


def _narrowband_room(variant: str) -> ScenarioSpec:
    """Table 10: FM cordless phones around a 20 ft lecture-hall link."""
    builder = (
        ScenarioBuilder(
            TABLE10_SCENARIOS[variant],
            f"Table 10 {variant!r}: narrowband 900 MHz cordless phones",
        )
        .calibrate(level=26.71, at_distance_ft=20.0)
        .station("tx", 20.0, 0.0, role="tx")
        .station("rx", 0.0, 0.0, role="rx")
    )
    outsiders = None
    if variant == "Phones off":
        outsiders = OutsiderSpec(mean_level=4.7, rate_per_test_packet=0.23)
    elif variant == "Cluster":
        # Handsets docked on their bases, all a few inches away.
        builder.interferer(
            "narrowband_phone", handset=PHONE_NEAR, base=PHONE_NEAR, name="att-9100"
        )
        builder.interferer(
            "narrowband_phone", handset=PHONE_NEAR_2, base=PHONE_NEAR_2,
            name="panasonic",
        )
    elif variant == "Handsets nearby":
        builder.interferer(
            "narrowband_phone", handset=PHONE_NEAR, base=PHONE_ACROSS_HALL,
            name="att-9100",
        )
        builder.interferer(
            "narrowband_phone", handset=PHONE_NEAR_2, base=PHONE_ACROSS_HALL_2,
            name="panasonic",
        )
    elif variant == "Handsets nearby talking":
        builder.interferer(
            "narrowband_phone", handset=PHONE_NEAR, base=PHONE_ACROSS_HALL,
            talking=True, name="att-9100",
        )
        builder.interferer(
            "narrowband_phone", handset=PHONE_NEAR_2, base=PHONE_ACROSS_HALL_2,
            talking=True, name="panasonic",
        )
        outsiders = OutsiderSpec(mean_level=7.0, rate_per_test_packet=0.15)
    elif variant == "Bases nearby":
        builder.interferer(
            "narrowband_phone", handset=PHONE_ACROSS_HALL, base=PHONE_NEAR,
            name="att-9100",
        )
        builder.interferer(
            "narrowband_phone", handset=PHONE_ACROSS_HALL_2, base=PHONE_NEAR_2,
            name="panasonic",
        )
    return builder.traffic(packets=1_440, outsiders=outsiders).build()


def _spread_room(variant: str) -> ScenarioSpec:
    """Tables 11-13: spread-spectrum phones around a 25 ft link."""
    builder = (
        ScenarioBuilder(
            TABLE11_SCENARIOS[variant],
            f"Table 11 {variant!r}: 900 MHz spread-spectrum cordless phones",
        )
        .calibrate(level=29.63, at_distance_ft=25.0)
        .station("tx", 25.0, 0.0, role="tx")
        .station("rx", 0.0, 0.0, role="rx")
    )
    outsiders = None
    if variant == "Phones off":
        # The quiet trial heard many outsiders (619 of 2008 records).
        outsiders = OutsiderSpec(
            mean_level=5.5, level_sd=2.2, rate_per_test_packet=0.45
        )
    elif variant == "RS base":
        builder.interferer(
            "spread_phone", handset=PHONE_FAR, base=PHONE_NEAR, variant="rs",
            base_level_at_1ft=31.5, name="rs-et909",
        )
    elif variant == "RS cluster":
        builder.interferer(
            "spread_phone", handset=PHONE_NEAR_2, base=PHONE_NEAR, variant="rs",
            base_level_at_1ft=31.5, name="rs-et909",
        )
    elif variant == "AT&T cluster":
        builder.interferer(
            "spread_phone", handset=PHONE_NEAR_2, base=PHONE_NEAR, variant="att",
            base_level_at_1ft=33.0, name="att-9300",
        )
    elif variant == "RS remote cluster":
        builder.interferer(
            "spread_phone", handset=PHONE_FAR, base=PHONE_FAR_BASE, variant="rs",
            base_level_at_1ft=31.5, name="rs-et909",
        )
    elif variant == "AT&T handset":
        builder.interferer(
            "spread_phone", handset=PHONE_NEAR, base=PHONE_ACROSS_HALL,
            variant="att", base_level_at_1ft=33.0,
            # The AT&T handset runs hot enough at inches from the
            # receiver to land in the intermediate-damage regime.
            handset_level_at_1ft=23.5, name="att-9300",
        )
    return builder.traffic(packets=1_440, outsiders=outsiders).build()


def _demo_interferer_pareto() -> ScenarioSpec:
    """One point of the interferer pareto family the generator sweeps:
    an office link with a spread-spectrum phone at middling distance
    (see ``examples/scenario_sweep.py`` for the whole frontier)."""
    return (
        ScenarioBuilder(
            "demo/interferer-pareto",
            "Office link vs one SS phone at middling range (sweep anchor)",
        )
        .calibrate(level=29.5, at_distance_ft=8.0)
        .station("tx", 0.0, 0.0, role="tx")
        .station("rx", 8.0, 0.0, role="rx")
        .interferer(
            "spread_phone", handset=(8.5, 4.0), base=(10.0, 4.0), name="ss-phone"
        )
        .traffic(packets=1_440)
        .build()
    )


def builtin_specs() -> list[ScenarioSpec]:
    """Every built-in scenario, in registry (= presentation) order."""
    from repro.scenario.generate import dense_office, stack_floors

    specs: list[ScenarioSpec] = [_office(), _lecture_hall()]
    specs.extend(_table4())
    specs.append(_multiroom())
    specs.extend([_body(False), _body(True)])
    specs.extend(_narrowband_room(variant) for variant in TABLE10_SCENARIOS)
    specs.extend(_spread_room(variant) for variant in TABLE11_SCENARIOS)
    specs.extend(_table14())
    specs.append(
        stack_floors(
            floors=3, name="demo/three-floor",
            description="A 3-floor building: one AP on the middle storey",
        )
    )
    specs.append(
        dense_office(
            stations=50, name="demo/dense-office",
            description="50-station dense office, two APs, interior walls",
        )
    )
    specs.append(_demo_interferer_pareto())
    return specs
