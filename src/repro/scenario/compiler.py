"""Lower a validated :class:`ScenarioSpec` into engine-ready physics.

The compiler is the one place declarative topology turns into live
objects: per-floor :class:`~repro.environment.floorplan.FloorPlan`s,
per-floor :class:`~repro.environment.propagation.PropagationModel`s
anchored by the spec's calibration, interference-source wiring, and —
per measurement link — a :class:`~repro.trace.trial.TrialConfig` ready
for :func:`~repro.trace.trial.run_fast_trial`.

Equivalence contract: for the paper scenarios the compiled objects are
*structurally equal* to the hand-coded setups the experiment modules
used to build inline (same floor-plan names, wall order, calibration
anchors, interference parameters), so trial results are byte-identical.
The golden tests in ``tests/scenario/`` pin this.

Cross-floor links have no 2-D wall geometry to intersect; their mean
level is computed directly — the slant-path log-distance level (storey
separation from ``floor_height_ft``) minus one concrete-floor-slab
attenuation per storey crossed minus the spec's free-floating obstacles
— and injected as the trial's ``mean_level`` override.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Optional, Union

from repro.environment.floorplan import FloorPlan
from repro.environment.geometry import Point
from repro.environment.materials import CONCRETE_FLOOR_SLAB, material_named
from repro.environment.propagation import PropagationModel
from repro.interference.narrowband import NarrowbandPhonePair
from repro.interference.spreadspectrum import SpreadSpectrumPhonePair
from repro.interference.wavelan import CompetingWaveLanTransmitter
from repro.phy.modem import DEFAULT_RECEIVE_THRESHOLD, ModemConfig
from repro.scenario.spec import (
    ScenarioError,
    ScenarioSpec,
    StationSpec,
)
from repro.trace.outsiders import OutsiderTraffic
from repro.trace.trial import TrialConfig


@dataclass(frozen=True)
class CompiledLink:
    """One tx→rx measurement pair with its resolved radio path."""

    name: str
    tx: StationSpec
    rx: StationSpec
    distance_ft: float
    floor_crossings: int
    predicted_level: float
    #: Set only for cross-floor links (2-D wall intersection does not
    #: apply); same-floor links resolve through the propagation model.
    mean_level_override: Optional[float]


class CompiledScenario:
    """A spec lowered to floor plans, propagation, and trial configs."""

    def __init__(self, spec: ScenarioSpec) -> None:
        self.spec = spec
        self._propagation: dict[int, PropagationModel] = {}
        self.floors = sorted(
            {s.position.floor for s in spec.stations}
            | {w.floor for w in spec.walls}
            | {0}
        )
        self.links = tuple(self._resolve_links())

    # ------------------------------------------------------------------
    # Physics
    # ------------------------------------------------------------------
    def floorplan(self, floor: int = 0) -> Optional[FloorPlan]:
        """The floor's plan, or ``None`` for the canonical open room."""
        walls = [w for w in self.spec.walls if w.floor == floor]
        obstacles: list[str] = []
        for obstacle in self.spec.obstacles:
            obstacles.extend([obstacle.material] * obstacle.count)
        if not walls and not obstacles and self.spec.room is None:
            return None
        base = self.spec.room if self.spec.room is not None else self.spec.name
        name = base if floor == 0 else f"{base} (floor {floor})"
        return FloorPlan.from_spec(
            name,
            walls=[
                {
                    "a": [w.ax, w.ay],
                    "b": [w.bx, w.by],
                    "material": w.material,
                    "name": w.name,
                }
                for w in walls
            ],
            obstacles=obstacles,
        )

    def propagation(self, floor: int = 0) -> PropagationModel:
        """The floor's propagation model (cached; treat as read-only)."""
        if floor not in self._propagation:
            calibration = self.spec.calibration
            spec_dict: dict[str, Any] = (
                {"preset": calibration.preset}
                if calibration.preset is not None
                else {
                    "level": calibration.level,
                    "at_distance_ft": calibration.at_distance_ft,
                    "levels_per_decade": calibration.levels_per_decade,
                    "dips": [
                        {
                            "distance_ft": dip.distance_ft,
                            "depth_levels": dip.depth_levels,
                            "width_ft": dip.width_ft,
                        }
                        for dip in calibration.dips
                    ],
                }
            )
            self._propagation[floor] = PropagationModel.from_spec(
                spec_dict, floorplan=self.floorplan(floor)
            )
        return self._propagation[floor]

    def station_point(self, name: str) -> Point:
        position = self.spec.station(name).position
        return Point(position.x, position.y)

    # ------------------------------------------------------------------
    # Links
    # ------------------------------------------------------------------
    def _resolve_links(self) -> list[CompiledLink]:
        pairs: list[tuple[StationSpec, StationSpec, str]]
        if self.spec.links:
            pairs = [
                (self.spec.station(link.tx), self.spec.station(link.rx), link.name)
                for link in self.spec.links
            ]
        else:
            receivers = self.spec.receivers()
            pairs = [
                (tx, min(receivers, key=lambda rx: self._distance(tx, rx)), "")
                for tx in self.spec.transmitters()
            ]
        resolved = []
        for tx, rx, name in pairs:
            resolved.append(self._compile_link(tx, rx, name))
        return resolved

    def _distance(self, a: StationSpec, b: StationSpec) -> float:
        dz = (a.position.floor - b.position.floor) * self.spec.floor_height_ft
        return math.hypot(
            a.position.x - b.position.x, a.position.y - b.position.y, dz
        )

    def _compile_link(
        self, tx: StationSpec, rx: StationSpec, name: str
    ) -> CompiledLink:
        crossings = abs(tx.position.floor - rx.position.floor)
        distance = self._distance(tx, rx)
        if crossings == 0:
            propagation = self.propagation(rx.position.floor)
            predicted = propagation.mean_level(
                Point(tx.position.x, tx.position.y),
                Point(rx.position.x, rx.position.y),
            )
            override = None
        else:
            propagation = self.propagation(rx.position.floor)
            level = propagation.path_level(distance)
            level -= crossings * CONCRETE_FLOOR_SLAB.attenuation_levels
            for obstacle in self.spec.obstacles:
                level -= (
                    obstacle.count
                    * material_named(obstacle.material).attenuation_levels
                )
            predicted = override = level
        return CompiledLink(
            name=name or (tx.name if len(self.spec.receivers()) <= 1
                          else f"{tx.name}->{rx.name}"),
            tx=tx,
            rx=rx,
            distance_ft=distance,
            floor_crossings=crossings,
            predicted_level=predicted,
            mean_level_override=override,
        )

    def link(self, name: str) -> CompiledLink:
        for link in self.links:
            if link.name == name:
                return link
        valid = ", ".join(link.name for link in self.links)
        raise ScenarioError(
            f"scenario {self.spec.name!r} has no link {name!r}; links: {valid}"
        )

    # ------------------------------------------------------------------
    # Trial wiring
    # ------------------------------------------------------------------
    def modem_config(self) -> ModemConfig:
        kwargs: dict[str, Any] = {}
        if self.spec.modem.receive_threshold is not None:
            kwargs["receive_threshold"] = self.spec.modem.receive_threshold
        if self.spec.modem.quality_threshold is not None:
            kwargs["quality_threshold"] = self.spec.modem.quality_threshold
        return ModemConfig(**kwargs)

    def outsiders(self) -> Optional[OutsiderTraffic]:
        outsiders = self.spec.traffic.outsiders
        if outsiders is None:
            return None
        return OutsiderTraffic(
            mean_level=outsiders.mean_level,
            level_sd=outsiders.level_sd,
            rate_per_test_packet=outsiders.rate_per_test_packet,
        )

    def interference_sources(self) -> list:
        """Fresh interference-source instances, in spec order."""
        return [
            self._build_interferer(interferer.kind, dict(interferer.params))
            for interferer in self.spec.interferers
        ]

    def _build_interferer(self, kind: str, params: dict[str, Any]):
        if kind == "spread_phone":
            return SpreadSpectrumPhonePair(
                handset_position=Point(*params.pop("handset")),
                base_position=Point(*params.pop("base")),
                **params,
            )
        if kind == "narrowband_phone":
            return NarrowbandPhonePair(
                handset_position=Point(*params.pop("handset")),
                base_position=Point(*params.pop("base")),
                **params,
            )
        if kind == "competing_wavelan":
            return self._build_competing(params)
        raise ScenarioError(f"unknown interferer kind {kind!r}")

    def _build_competing(self, params: dict[str, Any]):
        at_station = params.pop("at_station", None)
        if at_station is not None:
            position = self.station_point(at_station)
        else:
            position = Point(*params.pop("at"))
        kwargs: dict[str, Any] = {
            "position": position,
            "victim_receive_threshold": (
                self.spec.modem.receive_threshold
                if self.spec.modem.receive_threshold is not None
                else DEFAULT_RECEIVE_THRESHOLD
            ),
        }
        if params.pop("match_received_level", False):
            # Invert the emitter model so level_at(rx) reproduces what
            # the scenario's propagation predicts from this position —
            # the Table-14 "same emitted power as a test station" wiring.
            (rx,) = self.spec.receivers()
            rx_point = Point(rx.position.x, rx.position.y)
            received = self.propagation(rx.position.floor).mean_level(
                position, rx_point
            )
            distance = max(position.distance_to(rx_point), 0.25)
            kwargs["level_at_1ft"] = received + 10.0 * math.log10(distance)
        for key in ("name", "level_at_1ft", "duty"):
            if key in params:
                kwargs[key] = params.pop(key)
        return CompetingWaveLanTransmitter(**kwargs)

    def trial_config(
        self,
        link: Union[CompiledLink, str, None] = None,
        *,
        packets: Optional[int] = None,
        seed: int = 0,
        name: Optional[str] = None,
        force_per_packet: bool = False,
    ) -> TrialConfig:
        """An engine-ready trial for one link of this scenario.

        ``link`` may be a :class:`CompiledLink`, a link name, or ``None``
        for a single-link scenario.  ``name`` defaults to the link name
        and matters: the trial's RNG streams fork on it.
        """
        if link is None:
            if len(self.links) != 1:
                names = ", ".join(one.name for one in self.links)
                raise ScenarioError(
                    f"scenario {self.spec.name!r} has {len(self.links)} links "
                    f"({names}); pass one explicitly"
                )
            resolved = self.links[0]
        elif isinstance(link, str):
            resolved = self.link(link)
        else:
            resolved = link
        return TrialConfig(
            name=name if name is not None else resolved.name,
            packets=packets if packets is not None else self.spec.traffic.packets,
            seed=seed,
            propagation=self.propagation(resolved.rx.position.floor),
            tx_position=Point(resolved.tx.position.x, resolved.tx.position.y),
            rx_position=Point(resolved.rx.position.x, resolved.rx.position.y),
            mean_level=resolved.mean_level_override,
            modem_config=self.modem_config(),
            interference=self.interference_sources(),
            outsiders=self.outsiders(),
            antenna_branches=self.spec.modem.antenna_branches,
            force_per_packet=force_per_packet,
        )


def compile_scenario(spec: ScenarioSpec) -> CompiledScenario:
    """Validate and lower one spec (raises :class:`ScenarioError`)."""
    return CompiledScenario(spec.validate())
