"""Declarative scenario layer: specs, compiler, registry, fleets.

The paper fixes a handful of physical setups (an office desk, the
Figure-4 concrete building, phone-cluttered conference rooms); each
used to be hand-coded inside its experiment module.  This package
makes topology *data*:

* :mod:`repro.scenario.spec` — the typed :class:`ScenarioSpec` model
  and fluent :class:`ScenarioBuilder`;
* :mod:`repro.scenario.compiler` — lowering to propagation models,
  floor plans, interference wiring, and engine-ready trial configs;
* :mod:`repro.scenario.registry` — the process-wide name registry
  (built-ins preloaded; YAML loadable);
* :mod:`repro.scenario.yamlio` — round-tripping specs through YAML;
* :mod:`repro.scenario.generate` — seeded fleets: grid sweeps, random
  layouts, multi-floor composition;
* :mod:`repro.scenario.fleet` — executing fleets through the
  experiment engine with ``jobs=N`` fan-out;
* :mod:`repro.scenario.render` — ASCII floor plans with signal
  contours;
* :mod:`repro.scenario.cli` — the ``python -m repro scenario``
  subcommands.

See ``docs/SCENARIOS.md`` for the YAML schema and a tour.
"""

from repro.scenario.compiler import (
    CompiledLink,
    CompiledScenario,
    compile_scenario,
)
from repro.scenario.registry import REGISTRY, ScenarioRegistry
from repro.scenario.spec import (
    ScenarioBuilder,
    ScenarioError,
    ScenarioSpec,
)

__all__ = [
    "REGISTRY",
    "CompiledLink",
    "CompiledScenario",
    "ScenarioBuilder",
    "ScenarioError",
    "ScenarioRegistry",
    "ScenarioSpec",
    "compile_scenario",
]
