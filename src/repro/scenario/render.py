"""ASCII rendering of a compiled scenario: floor plan + signal contours.

``scenario render NAME`` draws the floor in the terminal: walls as
``#``, the primary transmitter as ``T``, receivers as ``R`` (access
points ``A``, other stations ``s``), and the mean signal level from
the primary transmitter shaded through a character ramp — a quick
visual check that a YAML file describes the topology its author
intended, and a tiny homage to the paper's floor-plan figures.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.environment.geometry import Point
from repro.scenario.compiler import CompiledScenario

#: Dark → bright signal shading (mean level in WaveLAN AGC units).
RAMP = " .:-=+*%@"
ROLE_GLYPHS = {"tx": "T", "rx": "R", "ap": "A", "sta": "s"}


def _bounds(
    compiled: CompiledScenario, floor: int
) -> tuple[float, float, float, float]:
    xs: list[float] = []
    ys: list[float] = []
    for station in compiled.spec.stations:
        if station.position.floor == floor:
            xs.append(station.position.x)
            ys.append(station.position.y)
    for wall in compiled.spec.walls:
        if wall.floor == floor:
            xs.extend((wall.ax, wall.bx))
            ys.extend((wall.ay, wall.by))
    for interferer in compiled.spec.interferers:
        for value in interferer.params.values():
            if isinstance(value, tuple) and len(value) == 2:
                xs.append(float(value[0]))
                ys.append(float(value[1]))
    if not xs:
        xs, ys = [0.0, 10.0], [0.0, 10.0]
    pad_x = max(2.0, (max(xs) - min(xs)) * 0.12)
    pad_y = max(2.0, (max(ys) - min(ys)) * 0.12)
    return min(xs) - pad_x, max(xs) + pad_x, min(ys) - pad_y, max(ys) + pad_y


def render_scenario(
    compiled: CompiledScenario,
    width: int = 64,
    height: int = 22,
    floor: Optional[int] = None,
) -> str:
    """The floor as a character grid, y increasing upward."""
    spec = compiled.spec
    if floor is None:
        floor = compiled.floors[0]
    x0, x1, y0, y1 = _bounds(compiled, floor)
    propagation = compiled.propagation(floor)
    same_floor = [
        link for link in compiled.links if link.tx.position.floor == floor
    ]
    tx_point = (
        Point(same_floor[0].tx.position.x, same_floor[0].tx.position.y)
        if same_floor
        else None
    )

    def cell_point(col: int, row: int) -> Point:
        return Point(
            x0 + (x1 - x0) * (col + 0.5) / width,
            y1 - (y1 - y0) * (row + 0.5) / height,
        )

    grid = [[" "] * width for _ in range(height)]
    if tx_point is not None:
        levels = [
            [
                propagation.mean_level(tx_point, cell_point(col, row))
                for col in range(width)
            ]
            for row in range(height)
        ]
        flat = [level for row in levels for level in row]
        low, high = min(flat), max(flat)
        span = max(high - low, 1e-9)
        for row in range(height):
            for col in range(width):
                shade = (levels[row][col] - low) / span
                index = min(
                    len(RAMP) - 1, max(0, int(shade * (len(RAMP) - 1) + 0.5))
                )
                grid[row][col] = RAMP[index]

    def plot(x: float, y: float, glyph: str) -> None:
        col = int((x - x0) / (x1 - x0) * width)
        row = int((y1 - y) / (y1 - y0) * height)
        if 0 <= row < height and 0 <= col < width:
            grid[row][col] = glyph

    for wall in spec.walls:
        if wall.floor != floor:
            continue
        steps = max(
            2, int(2 * max(width, height) * math.hypot(
                (wall.bx - wall.ax) / max(x1 - x0, 1e-9),
                (wall.by - wall.ay) / max(y1 - y0, 1e-9),
            ))
        )
        for step in range(steps + 1):
            t = step / steps
            plot(
                wall.ax + (wall.bx - wall.ax) * t,
                wall.ay + (wall.by - wall.ay) * t,
                "#",
            )
    for interferer in spec.interferers:
        for value in interferer.params.values():
            if isinstance(value, tuple) and len(value) == 2:
                plot(float(value[0]), float(value[1]), "!")
    for station in spec.stations:
        if station.position.floor == floor:
            plot(
                station.position.x,
                station.position.y,
                ROLE_GLYPHS.get(station.role, "?"),
            )

    lines = [
        f"{spec.name} — floor {floor} "
        f"({x1 - x0:.0f} x {y1 - y0:.0f} ft shown)"
    ]
    if spec.description:
        lines.append(spec.description)
    border = "+" + "-" * width + "+"
    lines.append(border)
    lines.extend("|" + "".join(row) + "|" for row in grid)
    lines.append(border)
    lines.append(
        "T tx   R rx   A ap   s sta   ! interferer   # wall   "
        f"shade = level ({RAMP[0]!r} low … {RAMP[-1]!r} high)"
    )
    for link in compiled.links:
        crossing = (
            f", {link.floor_crossings} floor(s) crossed"
            if link.floor_crossings
            else ""
        )
        lines.append(
            f"  link {link.name}: {link.tx.name} -> {link.rx.name}  "
            f"{link.distance_ft:.1f} ft, predicted level "
            f"{link.predicted_level:.1f}{crossing}"
        )
    return "\n".join(lines)
