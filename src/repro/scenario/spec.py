"""The typed scenario model: a declarative description of one topology.

A :class:`ScenarioSpec` is everything the paper fixes per physical
setup — stations with positions (optionally on different floors), walls
with materials, free-floating obstacles, interference sources, traffic
mix, modem settings, and the calibration anchor that pins the
propagation law to a measured (level, distance) point.  Specs are plain
frozen dataclasses with structural equality, built three ways:

* hand-written YAML (see :mod:`repro.scenario.yamlio`),
* the fluent :class:`ScenarioBuilder`,
* the generator layer (:mod:`repro.scenario.generate`).

``validate()`` collects *every* problem (unknown materials, dangling
link endpoints, bad roles, malformed interferer parameters) and raises
one :class:`ScenarioError`, so a YAML author fixes a file in one pass.
The compiler (:mod:`repro.scenario.compiler`) lowers a validated spec
into ``PropagationModel`` + ``FloorPlan`` + interference wiring.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Mapping, Optional, Sequence

from repro.environment.materials import MATERIALS_BY_NAME


class ScenarioError(ValueError):
    """A scenario spec failed validation or a registry lookup."""


STATION_ROLES = ("tx", "rx", "ap", "sta")
#: Roles that transmit test packets / that receive them.  An access
#: point is a receiver in the paper's fixed-receiver methodology; a
#: plain station is a transmitter.
TRANSMIT_ROLES = ("tx", "sta")
RECEIVE_ROLES = ("rx", "ap")

#: Interferer kinds the compiler can wire, with their parameter schema:
#: ``positions`` are [x, y] pairs, ``passthrough`` forward verbatim to
#: the interference-source constructor.
INTERFERER_KINDS: dict[str, dict[str, tuple[str, ...]]] = {
    "spread_phone": {
        "required": ("handset", "base"),
        "positions": ("handset", "base"),
        "passthrough": (
            "talking",
            "variant",
            "name",
            "base_level_at_1ft",
            "handset_level_at_1ft",
        ),
    },
    "narrowband_phone": {
        "required": ("handset", "base"),
        "positions": ("handset", "base"),
        "passthrough": ("talking", "power_control", "name"),
    },
    "competing_wavelan": {
        "required": (),
        "positions": ("at",),
        "passthrough": ("name", "level_at_1ft", "duty", "at_station",
                        "match_received_level"),
    },
}


@dataclass(frozen=True)
class Position:
    """A station position: feet in the floor plane, plus a storey index."""

    x: float
    y: float
    floor: int = 0


@dataclass(frozen=True)
class StationSpec:
    """One radio: a transmitter (``tx``/``sta``) or receiver (``rx``/``ap``)."""

    name: str
    role: str
    position: Position


@dataclass(frozen=True)
class WallSpec:
    """A wall segment on one floor, referencing a material by name."""

    ax: float
    ay: float
    bx: float
    by: float
    material: str
    name: str = ""
    floor: int = 0


@dataclass(frozen=True)
class ObstacleSpec:
    """A free-floating obstacle applied to every path (e.g. a human body)."""

    material: str
    count: int = 1


@dataclass(frozen=True)
class DipSpec:
    """A room-specific multipath notch (mirrors ``MultipathDip``)."""

    distance_ft: float
    depth_levels: float
    width_ft: float = 1.5


@dataclass(frozen=True)
class CalibrationSpec:
    """The propagation anchor: a preset name, or a (level, distance) pin."""

    level: Optional[float] = None
    at_distance_ft: Optional[float] = None
    levels_per_decade: float = 17.5
    preset: Optional[str] = None
    dips: tuple[DipSpec, ...] = ()


@dataclass(frozen=True)
class InterfererSpec:
    """One interference source: a kind plus its constructor parameters.

    ``params`` values are scalars, strings, booleans, or ``(x, y)``
    position tuples; the per-kind schema lives in
    :data:`INTERFERER_KINDS` so typos fail at validation.
    """

    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class OutsiderSpec:
    """Background foreign-station traffic heard during the trial."""

    mean_level: float = 5.0
    level_sd: float = 1.3
    rate_per_test_packet: float = 0.05


@dataclass(frozen=True)
class TrafficSpec:
    """The offered test traffic: packet count plus optional outsiders."""

    packets: int = 1_440
    outsiders: Optional[OutsiderSpec] = None


@dataclass(frozen=True)
class ModemSpec:
    """Receiver settings; ``None`` keeps the modem's own default."""

    receive_threshold: Optional[int] = None
    quality_threshold: Optional[int] = None
    antenna_branches: int = 2


@dataclass(frozen=True)
class LinkSpec:
    """An explicit tx→rx measurement pair (defaults are derived)."""

    tx: str
    rx: str
    name: str = ""


@dataclass(frozen=True)
class ScenarioSpec:
    """One complete declarative topology.

    ``room`` names the floor plan (kept for byte-identity with the
    hand-coded setups, e.g. ``"figure-4 building"``); when ``None`` and
    the scenario has no walls or obstacles the compiler uses the
    canonical open room.  ``floor_height_ft`` only matters for links
    that cross storeys.
    """

    name: str
    description: str = ""
    room: Optional[str] = None
    floor_height_ft: float = 10.0
    calibration: CalibrationSpec = field(default_factory=CalibrationSpec)
    stations: tuple[StationSpec, ...] = ()
    walls: tuple[WallSpec, ...] = ()
    obstacles: tuple[ObstacleSpec, ...] = ()
    interferers: tuple[InterfererSpec, ...] = ()
    links: tuple[LinkSpec, ...] = ()
    traffic: TrafficSpec = field(default_factory=TrafficSpec)
    modem: ModemSpec = field(default_factory=ModemSpec)

    # ------------------------------------------------------------------
    def station(self, name: str) -> StationSpec:
        for station in self.stations:
            if station.name == name:
                return station
        raise ScenarioError(f"scenario {self.name!r} has no station {name!r}")

    def transmitters(self) -> list[StationSpec]:
        return [s for s in self.stations if s.role in TRANSMIT_ROLES]

    def receivers(self) -> list[StationSpec]:
        return [s for s in self.stations if s.role in RECEIVE_ROLES]

    # ------------------------------------------------------------------
    def validate(self) -> "ScenarioSpec":
        """Check the whole spec; raise one ScenarioError listing every
        problem, or return ``self`` for chaining."""
        problems: list[str] = []
        if not self.name:
            problems.append("scenario name must be non-empty")

        seen: set[str] = set()
        for station in self.stations:
            if station.role not in STATION_ROLES:
                problems.append(
                    f"station {station.name!r}: role {station.role!r} not in "
                    f"{'/'.join(STATION_ROLES)}"
                )
            if station.name in seen:
                problems.append(f"duplicate station name {station.name!r}")
            seen.add(station.name)
            if station.position.floor < 0:
                problems.append(
                    f"station {station.name!r}: floor must be >= 0"
                )

        for index, wall in enumerate(self.walls):
            if wall.material not in MATERIALS_BY_NAME:
                problems.append(
                    f"walls[{index}]: unknown material {wall.material!r} "
                    f"(valid: {', '.join(sorted(MATERIALS_BY_NAME))})"
                )
            if (wall.ax, wall.ay) == (wall.bx, wall.by):
                problems.append(f"walls[{index}]: zero-length segment")
        for index, obstacle in enumerate(self.obstacles):
            if obstacle.material not in MATERIALS_BY_NAME:
                problems.append(
                    f"obstacles[{index}]: unknown material {obstacle.material!r}"
                )
            if obstacle.count < 1:
                problems.append(f"obstacles[{index}]: count must be >= 1")

        calibration = self.calibration
        if calibration.preset is None:
            if calibration.level is None or calibration.at_distance_ft is None:
                problems.append(
                    "calibration needs level + at_distance_ft (or a preset)"
                )
            elif calibration.at_distance_ft <= 0:
                problems.append("calibration at_distance_ft must be positive")
        elif calibration.level is not None or calibration.at_distance_ft is not None:
            problems.append(
                "calibration preset and level/at_distance_ft are exclusive"
            )

        problems.extend(self._validate_interferers())
        problems.extend(self._validate_links(seen))

        if self.traffic.packets < 1:
            problems.append("traffic.packets must be >= 1")
        if self.modem.antenna_branches < 1:
            problems.append("modem.antenna_branches must be >= 1")
        if self.floor_height_ft <= 0:
            problems.append("floor_height_ft must be positive")

        if problems:
            raise ScenarioError(
                f"scenario {self.name!r} is invalid:\n  - "
                + "\n  - ".join(problems)
            )
        return self

    def _validate_interferers(self) -> list[str]:
        problems: list[str] = []
        station_names = {s.name for s in self.stations}
        for index, interferer in enumerate(self.interferers):
            label = f"interferers[{index}]"
            schema = INTERFERER_KINDS.get(interferer.kind)
            if schema is None:
                problems.append(
                    f"{label}: unknown kind {interferer.kind!r} "
                    f"(valid: {', '.join(sorted(INTERFERER_KINDS))})"
                )
                continue
            allowed = set(schema["positions"]) | set(schema["passthrough"])
            for key in interferer.params:
                if key not in allowed:
                    problems.append(
                        f"{label}: unknown parameter {key!r} for kind "
                        f"{interferer.kind!r} (valid: {', '.join(sorted(allowed))})"
                    )
            for key in schema["required"]:
                if key not in interferer.params:
                    problems.append(f"{label}: missing required parameter {key!r}")
            for key in schema["positions"]:
                value = interferer.params.get(key)
                if value is not None and (
                    not isinstance(value, (tuple, list)) or len(value) != 2
                ):
                    problems.append(f"{label}: {key!r} must be an [x, y] pair")
            if interferer.kind == "competing_wavelan":
                at_station = interferer.params.get("at_station")
                if at_station is not None and at_station not in station_names:
                    problems.append(
                        f"{label}: at_station {at_station!r} names no station"
                    )
                if at_station is None and "at" not in interferer.params:
                    problems.append(f"{label}: needs 'at' or 'at_station'")
                if interferer.params.get("match_received_level") and len(
                    self.receivers()
                ) != 1:
                    problems.append(
                        f"{label}: match_received_level needs exactly one receiver"
                    )
        return problems

    def _validate_links(self, station_names: set[str]) -> list[str]:
        problems: list[str] = []
        for index, link in enumerate(self.links):
            label = f"links[{index}]"
            for endpoint, role_set, role_label in (
                (link.tx, TRANSMIT_ROLES, "transmit"),
                (link.rx, RECEIVE_ROLES, "receive"),
            ):
                if endpoint not in station_names:
                    problems.append(f"{label}: unknown station {endpoint!r}")
                else:
                    role = self.station(endpoint).role
                    if role not in role_set:
                        problems.append(
                            f"{label}: {endpoint!r} (role {role!r}) cannot "
                            f"{role_label}"
                        )
        if not self.links:
            if not self.transmitters():
                problems.append("scenario has no transmitter (role tx/sta)")
            if not self.receivers():
                problems.append("scenario has no receiver (role rx/ap)")
        return problems

    # ------------------------------------------------------------------
    # Serialization (shared by YAML io and the pool-crossing fleet runner)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """A plain-dict form that omits defaulted fields (tidy YAML)."""
        out: dict[str, Any] = {"name": self.name}
        if self.description:
            out["description"] = self.description
        if self.room is not None:
            out["room"] = self.room
        if self.floor_height_ft != 10.0:
            out["floor_height_ft"] = self.floor_height_ft
        out["calibration"] = _calibration_to_dict(self.calibration)
        out["stations"] = [_station_to_dict(s) for s in self.stations]
        if self.walls:
            out["walls"] = [_wall_to_dict(w) for w in self.walls]
        if self.obstacles:
            out["obstacles"] = [_obstacle_to_dict(o) for o in self.obstacles]
        if self.interferers:
            out["interferers"] = [
                {"kind": i.kind, "params": _params_to_plain(i.params)}
                for i in self.interferers
            ]
        if self.links:
            out["links"] = [_link_to_dict(link) for link in self.links]
        out["traffic"] = _traffic_to_dict(self.traffic)
        modem = _modem_to_dict(self.modem)
        if modem:
            out["modem"] = modem
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Parse (and validate) a plain-dict spec; unknown keys are errors."""
        known = {
            "name", "description", "room", "floor_height_ft", "calibration",
            "stations", "walls", "obstacles", "interferers", "links",
            "traffic", "modem",
        }
        unknown = set(data) - known
        if unknown:
            raise ScenarioError(
                f"unknown scenario keys: {', '.join(sorted(unknown))} "
                f"(valid: {', '.join(sorted(known))})"
            )
        if "name" not in data:
            raise ScenarioError("scenario is missing required key 'name'")
        spec = cls(
            name=str(data["name"]),
            description=str(data.get("description", "")),
            room=data.get("room"),
            floor_height_ft=float(data.get("floor_height_ft", 10.0)),
            calibration=_calibration_from_dict(data.get("calibration", {})),
            stations=tuple(
                _station_from_dict(i, entry)
                for i, entry in enumerate(data.get("stations", ()))
            ),
            walls=tuple(
                _wall_from_dict(i, entry)
                for i, entry in enumerate(data.get("walls", ()))
            ),
            obstacles=tuple(
                _obstacle_from_dict(i, entry)
                for i, entry in enumerate(data.get("obstacles", ()))
            ),
            interferers=tuple(
                _interferer_from_dict(i, entry)
                for i, entry in enumerate(data.get("interferers", ()))
            ),
            links=tuple(
                _link_from_dict(i, entry)
                for i, entry in enumerate(data.get("links", ()))
            ),
            traffic=_traffic_from_dict(data.get("traffic", {})),
            modem=_modem_from_dict(data.get("modem", {})),
        )
        return spec.validate()

    def renamed(self, name: str) -> "ScenarioSpec":
        return replace(self, name=name)


# ----------------------------------------------------------------------
# dict <-> spec helpers
# ----------------------------------------------------------------------
def _station_to_dict(station: StationSpec) -> dict[str, Any]:
    out: dict[str, Any] = {
        "name": station.name,
        "role": station.role,
        "at": [station.position.x, station.position.y],
    }
    if station.position.floor:
        out["floor"] = station.position.floor
    return out


def _station_from_dict(index: int, data: Mapping[str, Any]) -> StationSpec:
    try:
        x, y = data["at"]
        return StationSpec(
            name=str(data["name"]),
            role=str(data.get("role", "sta")),
            position=Position(float(x), float(y), int(data.get("floor", 0))),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ScenarioError(f"stations[{index}]: {exc}") from exc


def _wall_to_dict(wall: WallSpec) -> dict[str, Any]:
    out: dict[str, Any] = {
        "a": [wall.ax, wall.ay],
        "b": [wall.bx, wall.by],
        "material": wall.material,
    }
    if wall.name:
        out["name"] = wall.name
    if wall.floor:
        out["floor"] = wall.floor
    return out


def _wall_from_dict(index: int, data: Mapping[str, Any]) -> WallSpec:
    try:
        (ax, ay), (bx, by) = data["a"], data["b"]
        return WallSpec(
            ax=float(ax), ay=float(ay), bx=float(bx), by=float(by),
            material=str(data["material"]),
            name=str(data.get("name", "")),
            floor=int(data.get("floor", 0)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ScenarioError(f"walls[{index}]: {exc}") from exc


def _obstacle_to_dict(obstacle: ObstacleSpec) -> dict[str, Any]:
    out: dict[str, Any] = {"material": obstacle.material}
    if obstacle.count != 1:
        out["count"] = obstacle.count
    return out


def _obstacle_from_dict(index: int, data: Mapping[str, Any]) -> ObstacleSpec:
    try:
        return ObstacleSpec(
            material=str(data["material"]), count=int(data.get("count", 1))
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ScenarioError(f"obstacles[{index}]: {exc}") from exc


def _calibration_to_dict(calibration: CalibrationSpec) -> dict[str, Any]:
    if calibration.preset is not None:
        return {"preset": calibration.preset}
    out: dict[str, Any] = {
        "level": calibration.level,
        "at_distance_ft": calibration.at_distance_ft,
    }
    if calibration.levels_per_decade != 17.5:
        out["levels_per_decade"] = calibration.levels_per_decade
    if calibration.dips:
        out["dips"] = [
            {
                "distance_ft": dip.distance_ft,
                "depth_levels": dip.depth_levels,
                **({"width_ft": dip.width_ft} if dip.width_ft != 1.5 else {}),
            }
            for dip in calibration.dips
        ]
    return out


def _calibration_from_dict(data: Mapping[str, Any]) -> CalibrationSpec:
    known = {"level", "at_distance_ft", "levels_per_decade", "preset", "dips"}
    unknown = set(data) - known
    if unknown:
        raise ScenarioError(
            f"calibration: unknown keys {', '.join(sorted(unknown))}"
        )
    level = data.get("level")
    at_distance = data.get("at_distance_ft")
    return CalibrationSpec(
        level=float(level) if level is not None else None,
        at_distance_ft=float(at_distance) if at_distance is not None else None,
        levels_per_decade=float(data.get("levels_per_decade", 17.5)),
        preset=data.get("preset"),
        dips=tuple(
            DipSpec(
                distance_ft=float(dip["distance_ft"]),
                depth_levels=float(dip["depth_levels"]),
                width_ft=float(dip.get("width_ft", 1.5)),
            )
            for dip in data.get("dips", ())
        ),
    )


def _params_to_plain(params: Mapping[str, Any]) -> dict[str, Any]:
    return {
        key: list(value) if isinstance(value, tuple) else value
        for key, value in params.items()
    }


def normalize_params(params: Mapping[str, Any]) -> dict[str, Any]:
    """Lists → tuples so specs compare equal regardless of source."""
    return {
        key: tuple(value) if isinstance(value, list) else value
        for key, value in params.items()
    }


def _interferer_from_dict(index: int, data: Mapping[str, Any]) -> InterfererSpec:
    try:
        return InterfererSpec(
            kind=str(data["kind"]),
            params=normalize_params(data.get("params", {})),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ScenarioError(f"interferers[{index}]: {exc}") from exc


def _link_to_dict(link: LinkSpec) -> dict[str, Any]:
    out: dict[str, Any] = {"tx": link.tx, "rx": link.rx}
    if link.name:
        out["name"] = link.name
    return out


def _link_from_dict(index: int, data: Mapping[str, Any]) -> LinkSpec:
    try:
        return LinkSpec(
            tx=str(data["tx"]), rx=str(data["rx"]), name=str(data.get("name", ""))
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ScenarioError(f"links[{index}]: {exc}") from exc


def _traffic_to_dict(traffic: TrafficSpec) -> dict[str, Any]:
    out: dict[str, Any] = {"packets": traffic.packets}
    if traffic.outsiders is not None:
        outsiders = traffic.outsiders
        entry: dict[str, Any] = {"mean_level": outsiders.mean_level}
        if outsiders.level_sd != 1.3:
            entry["level_sd"] = outsiders.level_sd
        entry["rate_per_test_packet"] = outsiders.rate_per_test_packet
        out["outsiders"] = entry
    return out


def _traffic_from_dict(data: Mapping[str, Any]) -> TrafficSpec:
    known = {"packets", "outsiders"}
    unknown = set(data) - known
    if unknown:
        raise ScenarioError(f"traffic: unknown keys {', '.join(sorted(unknown))}")
    outsiders = data.get("outsiders")
    return TrafficSpec(
        packets=int(data.get("packets", 1_440)),
        outsiders=OutsiderSpec(
            mean_level=float(outsiders["mean_level"]),
            level_sd=float(outsiders.get("level_sd", 1.3)),
            rate_per_test_packet=float(outsiders["rate_per_test_packet"]),
        )
        if outsiders is not None
        else None,
    )


def _modem_to_dict(modem: ModemSpec) -> dict[str, Any]:
    out: dict[str, Any] = {}
    if modem.receive_threshold is not None:
        out["receive_threshold"] = modem.receive_threshold
    if modem.quality_threshold is not None:
        out["quality_threshold"] = modem.quality_threshold
    if modem.antenna_branches != 2:
        out["antenna_branches"] = modem.antenna_branches
    return out


def _modem_from_dict(data: Mapping[str, Any]) -> ModemSpec:
    known = {"receive_threshold", "quality_threshold", "antenna_branches"}
    unknown = set(data) - known
    if unknown:
        raise ScenarioError(f"modem: unknown keys {', '.join(sorted(unknown))}")
    receive = data.get("receive_threshold")
    quality = data.get("quality_threshold")
    return ModemSpec(
        receive_threshold=int(receive) if receive is not None else None,
        quality_threshold=int(quality) if quality is not None else None,
        antenna_branches=int(data.get("antenna_branches", 2)),
    )


# ----------------------------------------------------------------------
# Builder
# ----------------------------------------------------------------------
class ScenarioBuilder:
    """Fluent construction of a :class:`ScenarioSpec`.

    ::

        spec = (
            ScenarioBuilder("paper/office", "Table 2 office desk")
            .calibrate(level=29.5, at_distance_ft=8.0)
            .station("tx", 0.0, 0.0, role="tx")
            .station("rx", 8.0, 0.0, role="rx")
            .traffic(packets=12_720)
            .build()
        )

    ``build()`` validates; every other method returns ``self``.
    """

    def __init__(self, name: str, description: str = "") -> None:
        self._name = name
        self._description = description
        self._room: Optional[str] = None
        self._floor_height_ft = 10.0
        self._calibration = CalibrationSpec()
        self._stations: list[StationSpec] = []
        self._walls: list[WallSpec] = []
        self._obstacles: list[ObstacleSpec] = []
        self._interferers: list[InterfererSpec] = []
        self._links: list[LinkSpec] = []
        self._traffic = TrafficSpec()
        self._modem = ModemSpec()

    def room(self, name: str) -> "ScenarioBuilder":
        self._room = name
        return self

    def floor_height(self, feet: float) -> "ScenarioBuilder":
        self._floor_height_ft = feet
        return self

    def calibrate(
        self,
        level: float,
        at_distance_ft: float,
        levels_per_decade: float = 17.5,
        dips: Sequence[DipSpec] = (),
    ) -> "ScenarioBuilder":
        self._calibration = CalibrationSpec(
            level=level,
            at_distance_ft=at_distance_ft,
            levels_per_decade=levels_per_decade,
            dips=tuple(dips),
        )
        return self

    def preset(self, name: str) -> "ScenarioBuilder":
        self._calibration = CalibrationSpec(preset=name)
        return self

    def station(
        self, name: str, x: float, y: float, role: str = "sta", floor: int = 0
    ) -> "ScenarioBuilder":
        self._stations.append(StationSpec(name, role, Position(x, y, floor)))
        return self

    def wall(
        self,
        ax: float,
        ay: float,
        bx: float,
        by: float,
        material: str,
        name: str = "",
        floor: int = 0,
    ) -> "ScenarioBuilder":
        self._walls.append(WallSpec(ax, ay, bx, by, material, name, floor))
        return self

    def obstacle(self, material: str, count: int = 1) -> "ScenarioBuilder":
        self._obstacles.append(ObstacleSpec(material, count))
        return self

    def interferer(self, kind: str, **params: Any) -> "ScenarioBuilder":
        self._interferers.append(InterfererSpec(kind, normalize_params(params)))
        return self

    def link(self, tx: str, rx: str, name: str = "") -> "ScenarioBuilder":
        self._links.append(LinkSpec(tx, rx, name))
        return self

    def traffic(
        self, packets: int, outsiders: Optional[OutsiderSpec] = None
    ) -> "ScenarioBuilder":
        self._traffic = TrafficSpec(packets=packets, outsiders=outsiders)
        return self

    def modem(
        self,
        receive_threshold: Optional[int] = None,
        quality_threshold: Optional[int] = None,
        antenna_branches: int = 2,
    ) -> "ScenarioBuilder":
        self._modem = ModemSpec(receive_threshold, quality_threshold, antenna_branches)
        return self

    def build(self) -> ScenarioSpec:
        return ScenarioSpec(
            name=self._name,
            description=self._description,
            room=self._room,
            floor_height_ft=self._floor_height_ft,
            calibration=self._calibration,
            stations=tuple(self._stations),
            walls=tuple(self._walls),
            obstacles=tuple(self._obstacles),
            interferers=tuple(self._interferers),
            links=tuple(self._links),
            traffic=self._traffic,
            modem=self._modem,
        ).validate()


def spec_fields() -> list[str]:
    """Field names of ScenarioSpec (docs/tests introspection helper)."""
    return [f.name for f in fields(ScenarioSpec)]
