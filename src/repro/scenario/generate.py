"""Scenario generators: fleets of specs from sweeps, seeds, and floors.

Three families:

* :func:`grid_fleet` — the cartesian sweep (distance × wall count ×
  interferer count) behind ``scenario run --generate grid`` and
  ``examples/scenario_sweep.py``;
* :func:`random_fleet` — seeded random office layouts via
  ``numpy.random.SeedSequence`` spawning, so the same seed always
  yields the identical fleet (and ``jobs=N`` equals ``jobs=1``);
* :func:`stack_floors` / :func:`dense_office` — the composition
  helpers behind the ``demo/three-floor`` and ``demo/dense-office``
  built-ins.

Generators emit plain :class:`~repro.scenario.spec.ScenarioSpec`
values — already validated, ready for the compiler or the fleet
runner, YAML-exportable like any hand-written scenario.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.scenario.spec import ScenarioBuilder, ScenarioSpec

#: Anchor shared by generated office scenarios: the paper's Table-2
#: office measurement (level 29.5 at 8 ft).
OFFICE_ANCHOR_LEVEL = 29.5
OFFICE_ANCHOR_DISTANCE_FT = 8.0

DEFAULT_DISTANCES_FT = (8.0, 16.0, 24.0, 32.0, 40.0)
DEFAULT_WALL_COUNTS = (0, 2)
DEFAULT_INTERFERER_COUNTS = (0, 1)


def _office_builder(name: str, description: str) -> ScenarioBuilder:
    return ScenarioBuilder(name, description).calibrate(
        level=OFFICE_ANCHOR_LEVEL, at_distance_ft=OFFICE_ANCHOR_DISTANCE_FT
    )


def grid_fleet(
    distances_ft: Sequence[float] = DEFAULT_DISTANCES_FT,
    wall_counts: Sequence[int] = DEFAULT_WALL_COUNTS,
    interferer_counts: Sequence[int] = DEFAULT_INTERFERER_COUNTS,
    packets: int = 1_440,
    prefix: str = "sweep",
) -> list[ScenarioSpec]:
    """The cartesian sweep: one office-anchored scenario per cell.

    Walls are plaster partitions evenly spaced between tx and rx;
    interferers are spread-spectrum phones clustered near the receiver
    (the paper's worst case).  The defaults yield 5 × 2 × 2 = 20
    scenarios — the fleet the CI smoke job executes end-to-end.
    """
    fleet: list[ScenarioSpec] = []
    for distance in distances_ft:
        for walls in wall_counts:
            for phones in interferer_counts:
                name = f"{prefix}/d{distance:g}-w{walls}-p{phones}"
                builder = _office_builder(
                    name,
                    f"{distance:g} ft link, {walls} plaster wall(s), "
                    f"{phones} SS phone(s)",
                )
                builder.station("tx", distance, 0.0, role="tx")
                builder.station("rx", 0.0, 0.0, role="rx")
                for index in range(walls):
                    x = distance * (index + 1) / (walls + 1)
                    builder.wall(
                        x, -8.0, x, 8.0, "plaster+wire-mesh wall",
                        name=f"partition-{index + 1}",
                    )
                for index in range(phones):
                    builder.interferer(
                        "spread_phone",
                        handset=(0.4 + 0.3 * index, 0.3),
                        base=(0.4 + 0.3 * index, 1.8),
                        name=f"ss-phone-{index + 1}",
                    )
                fleet.append(builder.traffic(packets=packets).build())
    return fleet


def random_fleet(
    count: int,
    seed: int = 0,
    packets: int = 1_440,
    prefix: str = "random",
) -> list[ScenarioSpec]:
    """``count`` seeded random office layouts.

    Each scenario draws from its own ``SeedSequence.spawn`` child, so
    the fleet is a pure function of ``(count, seed)`` — scenario ``i``
    is identical whether the fleet has 5 members or 500, and reruns
    reproduce it byte-for-byte.
    """
    children = np.random.SeedSequence(seed).spawn(count)
    fleet: list[ScenarioSpec] = []
    for index, child in enumerate(children):
        rng = np.random.default_rng(child)
        room_w = float(rng.uniform(20.0, 60.0))
        room_h = float(rng.uniform(15.0, 40.0))
        builder = _office_builder(
            f"{prefix}/{seed}-{index:03d}",
            f"random layout {index} "
            f"({room_w:.0f} x {room_h:.0f} ft, seed {seed})",
        )
        builder.station(
            "rx",
            float(rng.uniform(2.0, room_w / 2.0)),
            float(rng.uniform(2.0, room_h - 2.0)),
            role="rx",
        )
        builder.station(
            "tx",
            float(rng.uniform(room_w / 2.0, room_w - 2.0)),
            float(rng.uniform(2.0, room_h - 2.0)),
            role="tx",
        )
        for wall_index in range(int(rng.integers(0, 3))):
            x = float(rng.uniform(room_w * 0.25, room_w * 0.75))
            material = (
                "plaster+wire-mesh wall"
                if rng.random() < 0.5
                else "concrete-block wall"
            )
            builder.wall(
                x, 0.0, x, room_h, material, name=f"wall-{wall_index + 1}"
            )
        if rng.random() < 0.5:
            builder.interferer(
                "spread_phone",
                handset=(
                    float(rng.uniform(0.0, room_w)),
                    float(rng.uniform(0.0, room_h)),
                ),
                base=(
                    float(rng.uniform(0.0, room_w)),
                    float(rng.uniform(0.0, room_h)),
                ),
                name="ss-phone",
            )
        fleet.append(builder.traffic(packets=packets).build())
    return fleet


def stack_floors(
    floors: int = 3,
    name: str = "demo/three-floor",
    description: str = "",
    floor_height_ft: float = 10.0,
    packets: int = 1_440,
) -> ScenarioSpec:
    """A multi-storey building: one access point on the middle floor,
    one station per storey.  Cross-floor links pay one concrete slab
    per storey crossed (see the compiler's cross-floor lowering)."""
    middle = floors // 2
    builder = (
        ScenarioBuilder(
            name,
            description
            or f"{floors}-floor building, AP on floor {middle}",
        )
        .floor_height(floor_height_ft)
        .calibrate(
            level=OFFICE_ANCHOR_LEVEL, at_distance_ft=OFFICE_ANCHOR_DISTANCE_FT
        )
        .station("ap", 0.0, 0.0, role="ap", floor=middle)
    )
    for floor in range(floors):
        builder.station(
            f"sta-f{floor}", 12.0, 6.0, role="sta", floor=floor
        )
    return builder.traffic(packets=packets).build()


def dense_office(
    stations: int = 50,
    name: str = "demo/dense-office",
    description: str = "",
    seed: int = 1996,
    packets: int = 1_440,
) -> ScenarioSpec:
    """A dense office floor: ``stations`` seeded desk positions, two
    access points, and two interior plaster partitions.  Every station
    links to its nearest AP (the compiler's default pairing)."""
    room_w, room_h = 60.0, 30.0
    rng = np.random.default_rng(np.random.SeedSequence(seed))
    builder = (
        ScenarioBuilder(
            name,
            description or f"{stations}-station dense office, two APs",
        )
        .room("dense office")
        .calibrate(
            level=OFFICE_ANCHOR_LEVEL, at_distance_ft=OFFICE_ANCHOR_DISTANCE_FT
        )
        .wall(20.0, 0.0, 20.0, 22.0, "plaster+wire-mesh wall", name="part-1")
        .wall(40.0, 8.0, 40.0, 30.0, "plaster+wire-mesh wall", name="part-2")
        .station("ap-west", 15.0, 15.0, role="ap")
        .station("ap-east", 45.0, 15.0, role="ap")
    )
    for index in range(stations):
        builder.station(
            f"desk-{index:02d}",
            float(rng.uniform(1.0, room_w - 1.0)),
            float(rng.uniform(1.0, room_h - 1.0)),
            role="sta",
        )
    return builder.traffic(packets=packets).build()


def interferer_pareto_fleet(
    phone_distances_ft: Sequence[float] = (1.0, 4.0, 8.0, 14.0, 22.0),
    link_distance_ft: float = 25.0,
    packets: int = 1_440,
    prefix: str = "pareto",
) -> list[ScenarioSpec]:
    """The interferer pareto sweep: a fixed 25 ft link with one
    spread-spectrum phone base stepped away from the receiver — the
    goodput-vs-phone-distance frontier of Table 11's worst case."""
    fleet: list[ScenarioSpec] = []
    for distance in phone_distances_ft:
        name = f"{prefix}/phone-at-{distance:g}ft"
        fleet.append(
            ScenarioBuilder(
                name, f"SS phone base {distance:g} ft from the receiver"
            )
            .calibrate(level=29.63, at_distance_ft=25.0)
            .station("tx", link_distance_ft, 0.0, role="tx")
            .station("rx", 0.0, 0.0, role="rx")
            .interferer(
                "spread_phone",
                handset=(distance, 1.5),
                base=(distance, 0.0),
                name="ss-phone",
            )
            .traffic(packets=packets)
            .build()
        )
    return fleet


def fleet_names(fleet: Sequence[ScenarioSpec]) -> list[str]:
    return [spec.name for spec in fleet]


__all__ = [
    "DEFAULT_DISTANCES_FT",
    "DEFAULT_INTERFERER_COUNTS",
    "DEFAULT_WALL_COUNTS",
    "dense_office",
    "fleet_names",
    "grid_fleet",
    "interferer_pareto_fleet",
    "random_fleet",
    "stack_floors",
]
