"""YAML persistence for scenario specs.

The on-disk form is exactly ``ScenarioSpec.to_dict()`` — defaults
omitted, insertion-ordered keys — so ``load(dump(spec)) == spec`` and
the curated ``scenarios/`` directory stays tidy and diffable.  Loading
always validates: a malformed file raises one
:class:`~repro.scenario.spec.ScenarioError` listing every problem.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import yaml

from repro.scenario.spec import ScenarioError, ScenarioSpec

_HEADER = "# Scenario spec for `python -m repro scenario` (see docs/SCENARIOS.md)\n"


def spec_to_yaml(spec: ScenarioSpec) -> str:
    """Deterministic YAML for one spec (insertion order, no aliases)."""
    return yaml.safe_dump(
        spec.to_dict(), sort_keys=False, default_flow_style=None
    )


def spec_from_yaml(text: str) -> ScenarioSpec:
    """Parse and validate one YAML document into a spec."""
    try:
        data = yaml.safe_load(text)
    except yaml.YAMLError as exc:
        raise ScenarioError(f"malformed YAML: {exc}") from exc
    if not isinstance(data, dict):
        raise ScenarioError(
            "scenario YAML must be a mapping "
            f"(got {type(data).__name__})"
        )
    return ScenarioSpec.from_dict(data)


def load_file(path: Union[str, Path]) -> ScenarioSpec:
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ScenarioError(f"cannot read {path}: {exc}") from exc
    try:
        return spec_from_yaml(text)
    except ScenarioError as exc:
        raise ScenarioError(f"{path}: {exc}") from exc


def load_dir(path: Union[str, Path]) -> list[ScenarioSpec]:
    """Every ``*.yaml`` under ``path``, recursively, sorted by path."""
    path = Path(path)
    if not path.is_dir():
        raise ScenarioError(f"not a directory: {path}")
    return [load_file(f) for f in sorted(path.rglob("*.yaml"))]


def scenario_filename(name: str) -> str:
    """The canonical file name for a scenario (``/`` → ``--``)."""
    return name.replace("/", "--") + ".yaml"


def save(spec: ScenarioSpec, path: Union[str, Path]) -> Path:
    """Write one spec to ``path`` (parents created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(_HEADER + spec_to_yaml(spec))
    return path


def export_dir(
    specs: list[ScenarioSpec], directory: Union[str, Path]
) -> list[Path]:
    """Write every spec into ``directory`` under its canonical name."""
    directory = Path(directory)
    return [
        save(spec, directory / scenario_filename(spec.name))
        for spec in specs
    ]
