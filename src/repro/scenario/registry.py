"""The scenario registry: names → specs → cached compilations.

``REGISTRY`` is the process-wide instance, preloaded with every
built-in paper scenario (:mod:`repro.scenario.builtin`).  Experiment
modules resolve their geometry through it, the engine validates
``TrialPlan.scenario`` tags against it before executing anything, and
the CLI's ``scenario`` subcommands enumerate it.

Lookup failures are loud and listing: an unknown name raises
:class:`ScenarioError` naming every registered scenario, so a typo in
a plan tag or a CLI argument fails at plan-build time — never
mid-trial on a pool worker.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Optional, Union

from repro.scenario.builtin import builtin_specs
from repro.scenario.compiler import CompiledScenario, compile_scenario
from repro.scenario.spec import ScenarioError, ScenarioSpec


class ScenarioRegistry:
    """An ordered name → :class:`ScenarioSpec` map with a compile cache."""

    def __init__(self, specs: Iterable[ScenarioSpec] = ()) -> None:
        self._specs: dict[str, ScenarioSpec] = {}
        self._compiled: dict[str, CompiledScenario] = {}
        for spec in specs:
            self.register(spec)

    # ------------------------------------------------------------------
    def register(
        self, spec: ScenarioSpec, replace: bool = False
    ) -> ScenarioSpec:
        """Add a validated spec; duplicate names are errors unless
        ``replace`` (re-registering invalidates the compile cache)."""
        spec.validate()
        if spec.name in self._specs and not replace:
            raise ScenarioError(
                f"scenario {spec.name!r} is already registered"
            )
        self._specs[spec.name] = spec
        self._compiled.pop(spec.name, None)
        return spec

    def get(self, name: str) -> ScenarioSpec:
        """The named spec, or a ScenarioError listing every valid name."""
        try:
            return self._specs[name]
        except KeyError:
            valid = ", ".join(self.names()) or "(none registered)"
            raise ScenarioError(
                f"unknown scenario {name!r}; valid names: {valid}"
            ) from None

    def compile(self, name: str) -> CompiledScenario:
        """The named scenario, compiled (cached per registry entry)."""
        if name not in self._compiled:
            self._compiled[name] = compile_scenario(self.get(name))
        return self._compiled[name]

    def names(self) -> list[str]:
        """Registered names, in registration (= presentation) order."""
        return list(self._specs)

    def specs(self) -> list[ScenarioSpec]:
        return list(self._specs.values())

    def __contains__(self, name: object) -> bool:
        return name in self._specs

    def __len__(self) -> int:
        return len(self._specs)

    # ------------------------------------------------------------------
    def load_file(
        self, path: Union[str, Path], replace: bool = False
    ) -> ScenarioSpec:
        """Register one scenario from a YAML file."""
        from repro.scenario.yamlio import load_file

        return self.register(load_file(path), replace=replace)

    def load_dir(
        self, path: Union[str, Path], replace: bool = False
    ) -> list[ScenarioSpec]:
        """Register every ``*.yaml`` under ``path`` (sorted, recursive)."""
        from repro.scenario.yamlio import load_dir

        return [
            self.register(spec, replace=replace) for spec in load_dir(path)
        ]


def _builtin_registry() -> ScenarioRegistry:
    return ScenarioRegistry(builtin_specs())


#: The process-wide registry: built-ins preloaded, user YAML loadable.
REGISTRY = _builtin_registry()


def compiled(name: str) -> CompiledScenario:
    """Shorthand: ``REGISTRY.compile(name)``."""
    return REGISTRY.compile(name)


def find(name: str) -> Optional[ScenarioSpec]:
    """Like ``REGISTRY.get`` but returning ``None`` for unknown names."""
    return REGISTRY._specs.get(name)
