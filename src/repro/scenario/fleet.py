"""Execute scenario fleets through the experiment engine.

A *fleet* is any list of :class:`~repro.scenario.spec.ScenarioSpec`s —
curated YAML, a generator sweep, or a mix.  :func:`run_fleet` turns it
into one dynamic :class:`~repro.experiments.engine.ExperimentSpec`
(one ``TrialPlan`` per compiled link, tagged with its scenario name so
the engine pre-validates every tag) and executes it with the engine's
uniform services: derived per-trial seeds and ``jobs=N`` fan-out that
is byte-identical to serial.

The worker rebuilds its scenario from a plain dict, so the only
payload crossing the pool boundary is YAML-shaped data — no live
propagation models or interference objects are pickled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.classify import classify_trace
from repro.analysis.metrics import metrics_from_classified
from repro.experiments.engine import (
    ENGINE,
    ExperimentSpec,
    PlanContext,
    TrialPlan,
)
from repro.framing.testpacket import BODY_BITS
from repro.scenario.compiler import compile_scenario
from repro.scenario.spec import ScenarioSpec
from repro.trace.trial import run_fast_trial

FLEET_EXPERIMENT = "scenario-fleet"
DEFAULT_FLEET_SEED = 1996


@dataclass(frozen=True)
class LinkRow:
    """One fleet link's outcome — a row of the goodput table."""

    scenario: str
    link: str
    distance_ft: float
    predicted_level: float
    packets_sent: int
    packets_received: int
    loss_percent: float
    truncated_percent: float
    body_damaged_percent: float
    worst_body_fraction: float
    goodput_percent: float


@dataclass
class FleetResult:
    """All rows, in (scenario, link) plan order."""

    rows: list[LinkRow]

    def row(self, scenario: str, link: Optional[str] = None) -> LinkRow:
        for row in self.rows:
            if row.scenario == scenario and (link is None or row.link == link):
                return row
        raise KeyError((scenario, link))

    def by_goodput(self) -> list[LinkRow]:
        return sorted(
            self.rows, key=lambda row: row.goodput_percent, reverse=True
        )


def _run_link(
    spec_dict: dict, link: str, packets: int, seed: int
) -> LinkRow:
    """One fleet link, self-contained and picklable.

    Rebuilds (and re-validates) the scenario from its dict form, runs
    the compiled trial, and classifies in-worker — only the summary row
    returns to the parent.
    """
    spec = ScenarioSpec.from_dict(spec_dict)
    compiled = compile_scenario(spec)
    resolved = compiled.link(link)
    config = compiled.trial_config(
        resolved,
        packets=packets,
        seed=seed,
        name=f"{spec.name}:{link}",
    )
    output = run_fast_trial(config)
    metrics = metrics_from_classified(classify_trace(output.trace))
    received = metrics.packets_received
    damaged = (
        metrics.packets_truncated
        + metrics.wrapper_damaged
        + metrics.body_damaged_packets
    )
    denominator = max(1, received)
    return LinkRow(
        scenario=spec.name,
        link=resolved.name,
        distance_ft=resolved.distance_ft,
        predicted_level=resolved.predicted_level,
        packets_sent=packets,
        packets_received=received,
        loss_percent=metrics.packet_loss_percent,
        truncated_percent=100.0 * metrics.packets_truncated / denominator,
        body_damaged_percent=100.0 * metrics.body_damaged_packets / denominator,
        worst_body_fraction=(metrics.worst_body_bits or 0) / BODY_BITS,
        goodput_percent=100.0 * max(0, received - damaged) / max(1, packets),
    )


def _aggregate(ctx: PlanContext, values: list) -> FleetResult:
    return FleetResult(rows=[row for row in values if row is not None])


def fleet_experiment(
    fleet: Sequence[ScenarioSpec],
    packets: Optional[int] = None,
    name: str = FLEET_EXPERIMENT,
) -> ExperimentSpec:
    """A dynamic engine spec running every link of every scenario.

    Not registered in the CLI experiment registry — pass the returned
    spec object straight to ``ENGINE.run``.  Plans are tagged with
    their scenario names, so the engine refuses to start unless every
    fleet member is present in the scenario registry.
    """
    specs = [spec.validate() for spec in fleet]

    def build_plans(ctx: PlanContext) -> list[TrialPlan]:
        plans: list[TrialPlan] = []
        for spec in specs:
            compiled = compile_scenario(spec)
            spec_dict = spec.to_dict()
            for link in compiled.links:
                count = packets if packets is not None else spec.traffic.packets
                plans.append(
                    TrialPlan(
                        f"{spec.name}:{link.name}",
                        _run_link,
                        {
                            "spec_dict": spec_dict,
                            "link": link.name,
                            "packets": max(1, int(count * ctx.scale)),
                        },
                        scenario=spec.name,
                    )
                )
        return plans

    return ExperimentSpec(
        name=name,
        artifact="scenario fleet",
        description=f"{len(specs)} scenario(s) through the engine",
        build_plans=build_plans,
        aggregate=_aggregate,
        default_seed=DEFAULT_FLEET_SEED,
    )


def run_fleet(
    fleet: Sequence[ScenarioSpec],
    scale: float = 1.0,
    seed: int = DEFAULT_FLEET_SEED,
    jobs: int = 1,
    packets: Optional[int] = None,
) -> FleetResult:
    """Execute a fleet; ``jobs=N`` output is byte-identical to serial.

    Fleet members not yet in the scenario registry are registered
    (replacing stale same-name entries), satisfying the engine's
    plan-tag validation and making the names resolvable afterwards.
    """
    from repro.scenario.registry import REGISTRY

    for spec in fleet:
        REGISTRY.register(spec, replace=True)
    return ENGINE.run(
        fleet_experiment(fleet, packets=packets),
        scale=scale,
        seed=seed,
        jobs=jobs,
    )


def render_fleet(result: FleetResult, pareto: bool = False) -> str:
    """The fleet's goodput table (optionally sorted best-first)."""
    rows = result.by_goodput() if pareto else result.rows
    header = (
        f"{'Scenario':<28} {'Link':<12} {'Dist':>6} {'Level':>6} "
        f"{'Recv':>6} {'Loss%':>6} {'Trunc%':>7} {'Body%':>6} {'Goodput%':>8}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.scenario:<28} {row.link:<12} {row.distance_ft:>6.1f} "
            f"{row.predicted_level:>6.1f} {row.packets_received:>6d} "
            f"{row.loss_percent:>6.1f} {row.truncated_percent:>7.1f} "
            f"{row.body_damaged_percent:>6.1f} {row.goodput_percent:>8.1f}"
        )
    return "\n".join(lines)
