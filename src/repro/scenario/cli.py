"""``python -m repro scenario`` — list, validate, render, run, export.

Subcommands:

* ``list`` — every registered scenario (built-ins plus ``--load``ed
  YAML), with link counts and descriptions;
* ``validate PATH...`` — check YAML files or directories without
  running anything; all problems in a file are reported at once;
* ``render NAME|FILE`` — ASCII floor plan with signal-level shading;
* ``run NAME...|--generate ...`` — execute a fleet through the
  experiment engine (``--jobs N`` fans out, byte-identical results);
* ``export DIR`` — write every built-in scenario as YAML.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.scenario.spec import ScenarioError


def build_parser(
    subparsers: argparse._SubParsersAction,
) -> argparse.ArgumentParser:
    """Attach the ``scenario`` subcommand tree to the repro CLI."""
    scenario = subparsers.add_parser(
        "scenario",
        help="declarative topologies: list, validate, render, run, export",
    )
    actions = scenario.add_subparsers(
        dest="scenario_command", metavar="ACTION", required=True
    )

    listing = actions.add_parser("list", help="list registered scenarios")
    listing.add_argument(
        "--load", default=None, metavar="DIR",
        help="also register every *.yaml under DIR before listing",
    )

    validate = actions.add_parser(
        "validate", help="validate YAML scenario files or directories"
    )
    validate.add_argument(
        "paths", nargs="*", default=[], metavar="PATH",
        help="files or directories (default: the repo's scenarios/ dir)",
    )

    render = actions.add_parser(
        "render", help="draw a scenario's floor plan with signal shading"
    )
    render.add_argument("name", metavar="NAME_OR_FILE")
    render.add_argument("--width", type=int, default=64)
    render.add_argument("--height", type=int, default=22)
    render.add_argument("--floor", type=int, default=None)

    run = actions.add_parser(
        "run", help="execute scenarios (a fleet) through the engine"
    )
    run.add_argument(
        "names", nargs="*", metavar="NAME",
        help="registered scenario names (or YAML files) to run",
    )
    run.add_argument(
        "--generate", choices=("grid", "random", "pareto"), default=None,
        help="generate a fleet instead: grid = distance x walls x phones "
             "sweep (20 scenarios), random = seeded layouts, pareto = "
             "phone-distance sweep",
    )
    run.add_argument("--count", type=int, default=8, metavar="N",
                     help="fleet size for --generate random (default 8)")
    run.add_argument("--load", default=None, metavar="DIR",
                     help="register every *.yaml under DIR first")
    run.add_argument("--scale", type=float, default=1.0,
                     help="multiplier on per-scenario packet counts")
    run.add_argument("--seed", type=int, default=None, help="root seed")
    run.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="fan links across N worker processes "
                          "(identical output to --jobs 1)")
    run.add_argument("--packets", type=int, default=None,
                     help="override every scenario's packet count")
    run.add_argument("--pareto", action="store_true",
                     help="sort the result table by goodput, best first")

    export = actions.add_parser(
        "export", help="write every built-in scenario as YAML into DIR"
    )
    export.add_argument("directory", metavar="DIR")
    return scenario


def _cmd_list(args) -> int:
    from repro.scenario.compiler import compile_scenario
    from repro.scenario.registry import REGISTRY

    if args.load is not None:
        REGISTRY.load_dir(args.load, replace=True)
    for spec in REGISTRY.specs():
        links = len(compile_scenario(spec).links)
        extras = []
        if spec.interferers:
            extras.append(f"{len(spec.interferers)} interferer(s)")
        if spec.walls:
            extras.append(f"{len(spec.walls)} wall(s)")
        suffix = f" [{', '.join(extras)}]" if extras else ""
        print(f"  {spec.name:<28} {links:>2} link(s)  "
              f"{spec.description}{suffix}")
    print(f"{len(REGISTRY)} scenario(s) registered")
    return 0


def _cmd_validate(args) -> int:
    from repro.scenario.compiler import compile_scenario
    from repro.scenario.yamlio import load_dir, load_file

    paths = [Path(p) for p in args.paths] or [Path("scenarios")]
    checked = 0
    failures = 0
    for path in paths:
        try:
            specs = load_dir(path) if path.is_dir() else [load_file(path)]
        except ScenarioError as exc:
            print(f"INVALID: {exc}", file=sys.stderr)
            failures += 1
            continue
        for spec in specs:
            checked += 1
            try:
                compiled = compile_scenario(spec)
                print(f"ok: {spec.name} ({len(compiled.links)} link(s))")
            except ScenarioError as exc:
                print(f"INVALID {spec.name}: {exc}", file=sys.stderr)
                failures += 1
    print(f"{checked} scenario(s) checked, {failures} invalid")
    return 1 if failures else 0


def _resolve(name: str):
    """A CLI scenario argument: a registered name or a YAML file path."""
    from repro.scenario.registry import REGISTRY
    from repro.scenario.yamlio import load_file

    if name in REGISTRY:
        return REGISTRY.get(name)
    if name.endswith((".yaml", ".yml")) and Path(name).exists():
        return REGISTRY.register(load_file(name), replace=True)
    return REGISTRY.get(name)  # raises, listing valid names


def _cmd_render(args) -> int:
    from repro.scenario.compiler import compile_scenario
    from repro.scenario.render import render_scenario

    spec = _resolve(args.name)
    print(
        render_scenario(
            compile_scenario(spec),
            width=args.width,
            height=args.height,
            floor=args.floor,
        )
    )
    return 0


def _cmd_run(args) -> int:
    from repro.scenario.fleet import (
        DEFAULT_FLEET_SEED,
        render_fleet,
        run_fleet,
    )
    from repro.scenario.generate import (
        grid_fleet,
        interferer_pareto_fleet,
        random_fleet,
    )
    from repro.scenario.registry import REGISTRY

    if args.load is not None:
        REGISTRY.load_dir(args.load, replace=True)
    seed = args.seed if args.seed is not None else DEFAULT_FLEET_SEED
    fleet = [_resolve(name) for name in args.names]
    if args.generate == "grid":
        fleet.extend(grid_fleet())
    elif args.generate == "random":
        fleet.extend(random_fleet(args.count, seed=seed))
    elif args.generate == "pareto":
        fleet.extend(interferer_pareto_fleet())
    if not fleet:
        print(
            "scenario run: give scenario NAMEs and/or --generate "
            "(see `scenario list`)",
            file=sys.stderr,
        )
        return 2
    result = run_fleet(
        fleet,
        scale=args.scale,
        seed=seed,
        jobs=args.jobs,
        packets=args.packets,
    )
    print(
        f"Fleet: {len(fleet)} scenario(s), {len(result.rows)} link(s), "
        f"seed {seed}, scale {args.scale:g}"
    )
    print(render_fleet(result, pareto=args.pareto))
    return 0


def _cmd_export(args) -> int:
    from repro.scenario.builtin import builtin_specs
    from repro.scenario.yamlio import export_dir

    written = export_dir(builtin_specs(), args.directory)
    for path in written:
        print(f"wrote {path}")
    print(f"{len(written)} scenario(s) exported to {args.directory}")
    return 0


def main(args) -> int:
    """Dispatch a parsed ``scenario`` subcommand."""
    try:
        if args.scenario_command == "list":
            return _cmd_list(args)
        if args.scenario_command == "validate":
            return _cmd_validate(args)
        if args.scenario_command == "render":
            return _cmd_render(args)
        if args.scenario_command == "run":
            return _cmd_run(args)
        if args.scenario_command == "export":
            return _cmd_export(args)
    except ScenarioError as exc:
        print(f"scenario: {exc}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled scenario action {args.scenario_command}")
