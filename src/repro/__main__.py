"""Command-line entry point: regenerate any paper table or figure.

    python -m repro list
    python -m repro table5
    python -m repro figure1 --scale 0.5
    python -m repro all --scale 0.2
    python -m repro table2 --telemetry run.jsonl --metrics
    python -m repro table2 --save-traces traces/ --trace-format v2
    python -m repro stats run.jsonl
    python -m repro convert traces/office1.wlt2 office1.jsonl
"""

from __future__ import annotations

import argparse
import sys
from inspect import signature
from time import perf_counter

from repro import obs
from repro.experiments import (
    baseline,
    body,
    burst_ablation,
    cdma_extension,
    competing,
    diversity_ablation,
    error_vs_level,
    fec_eval,
    hidden_terminal,
    mac_ablation,
    multiroom,
    phones_narrowband,
    phones_spread,
    signal_vs_distance,
    tcp_over_wavelan,
    threshold,
    throughput,
    validation,
    walls,
)

# name -> (module, description, default scale)
EXPERIMENTS = {
    "table2": (baseline, "Table 2: in-room base case", 0.05),
    "figure1": (signal_vs_distance, "Figure 1: signal level vs distance", 1.0),
    "table3": (error_vs_level, "Table 3 + Figure 2: errors vs signal metrics", 1.0),
    "figure2": (error_vs_level, "Figure 2 (alias of table3)", 1.0),
    "figure3": (threshold, "Figure 3: receive threshold sweep", 0.15),
    "table4": (walls, "Table 4: single wall", 0.5),
    "table5": (multiroom, "Tables 5-7: multi-room experiment", 1.0),
    "table8": (body, "Tables 8-9: human body", 1.0),
    "table10": (phones_narrowband, "Table 10: narrowband phones", 1.0),
    "table11": (phones_spread, "Tables 11-13: spread-spectrum phones", 1.0),
    "table14": (competing, "Table 14: competing WaveLAN units", 0.25),
    "fec": (fec_eval, "X1: variable FEC on observed syndromes", 1.0),
    "mac": (mac_ablation, "X3: CSMA/CA vs CSMA/CD ablation", 1.0),
    "burst": (burst_ablation, "X4: burst vs i.i.d. error ablation", 1.0),
    "cdma": (cdma_extension, "X5: cellular WaveLAN (codes + power control)", 1.0),
    "hidden": (hidden_terminal, "X6: hidden transmitters and capture", 1.0),
    "diversity": (diversity_ablation, "X8: antenna diversity ablation", 1.0),
    "throughput": (throughput, "X7: goodput across the error environment", 1.0),
    "tcp": (tcp_over_wavelan, "X9: TCP-Reno over the error environment", 1.0),
    "validate": (validation, "V1: fast path vs MAC path self-check", 1.0),
}

# Aliases covered by another module's output.
_DUPLICATE_OF = {"figure2": "table3", "table6": "table5", "table7": "table5",
                 "table9": "table8", "table12": "table11", "table13": "table11"}


def _convert(targets: list[str], trace_format: str | None) -> int:
    """``python -m repro convert IN OUT`` — re-encode a trace.

    The input format is auto-detected from the file's leading bytes
    (v1 JSONL, gzipped v1, or v2 columnar); the output format comes
    from ``--trace-format``, or failing that the output suffix
    (``.wlt2`` means v2, anything else v1).  Works in both directions.
    """
    from repro.trace.persist import load_trace, save_trace

    if len(targets) != 2:
        print("usage: python -m repro convert IN OUT [--trace-format v1|v2]",
              file=sys.stderr)
        return 2
    source, destination = targets
    try:
        trace = load_trace(source)
        save_trace(trace, destination, format=trace_format)
    except (OSError, ValueError) as exc:
        print(f"convert: {exc}", file=sys.stderr)
        return 2
    print(f"converted {source} -> {destination} "
          f"({len(trace.records)} records)")
    return 0


def _emit_manifest(
    experiment: str,
    counters_before: dict[str, int],
    wall_clock_s: float,
    seed: int | None,
    scale: float | None,
    git_rev: str | None,
) -> None:
    """Build the per-experiment run manifest and write it to the sink."""
    manifest = obs.build_manifest(
        experiment,
        metrics=obs.STATE.metrics,
        counters_before=counters_before,
        wall_clock_s=wall_clock_s,
        seed=seed,
        scale=scale,
        git_rev=git_rev,
    )
    if obs.STATE.sink is not None:
        obs.STATE.sink.emit(manifest.to_record())


def _finish_observation(want_metrics: bool) -> None:
    """Flush the final metrics record and optionally print the summary."""
    snapshot = obs.STATE.metrics.snapshot()
    if obs.STATE.sink is not None:
        obs.STATE.sink.emit({"type": "metrics", "metrics": snapshot})
    if want_metrics:
        print()
        print(obs.render_snapshot(snapshot))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate tables/figures from Eckhardt & Steenkiste, "
                    "SIGCOMM 1996.",
    )
    parser.add_argument(
        "experiment",
        help="experiment name, 'list', 'all', 'stats', or 'convert'",
    )
    parser.add_argument(
        "target",
        nargs="*",
        default=[],
        help="'stats': telemetry JSONL file to summarize; "
             "'convert': input and output trace paths",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="multiplier on the paper's trial lengths "
             "(default: per-experiment)",
    )
    parser.add_argument("--seed", type=int, default=None, help="override seed")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="fan independent work across N worker processes where the "
             "experiment supports it (report, table2, table5); output is "
             "identical to --jobs 1, which runs everything in-process",
    )
    parser.add_argument(
        "--out", default=None, help="('report' only) write Markdown here"
    )
    parser.add_argument(
        "--telemetry",
        default=None,
        metavar="PATH",
        help="write structured run telemetry (JSONL; gzip if PATH ends "
             "in .gz) with per-experiment manifests",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="collect per-layer metrics and print the registry summary "
             "after the run",
    )
    parser.add_argument(
        "--save-traces",
        default=None,
        metavar="DIR",
        dest="save_traces",
        help="persist each trial's raw trace into DIR (experiments that "
             "support it: table2, table11) for offline analysis",
    )
    parser.add_argument(
        "--trace-format",
        choices=("v1", "v2"),
        default=None,
        dest="trace_format",
        help="trace format for --save-traces and 'convert' "
             "(v1 JSON-lines, v2 columnar binary; default: v2 for "
             "--save-traces, inferred from the output suffix for "
             "'convert')",
    )
    args = parser.parse_args(argv)

    if args.experiment == "stats":
        from repro.obs import stats as stats_module

        if len(args.target) != 1:
            print("usage: python -m repro stats TELEMETRY_FILE",
                  file=sys.stderr)
            return 2
        try:
            return stats_module.main(args.target[0])
        except (OSError, ValueError) as exc:
            print(f"stats: {exc}", file=sys.stderr)
            return 2

    if args.experiment == "convert":
        return _convert(args.target, args.trace_format)

    observing = args.metrics or args.telemetry is not None
    if observing:
        try:
            obs.configure(telemetry_path=args.telemetry)
        except OSError as exc:
            print(f"--telemetry: {exc}", file=sys.stderr)
            return 2
    git_rev = obs.git_revision() if observing else None

    try:
        if args.experiment == "report":
            from repro.experiments import report as report_module

            kwargs = {"scale": args.scale if args.scale is not None else 0.25,
                      "out": args.out, "jobs": args.jobs}
            if args.seed is not None:
                kwargs["seed"] = args.seed
            report = report_module.main(**kwargs)
            if observing:
                _finish_observation(args.metrics)
            return 0 if report.in_band_count == report.total else 1

        if args.experiment == "list":
            for name, (module, description, default_scale) in EXPERIMENTS.items():
                print(f"  {name:<10} {description} "
                      f"(default scale {default_scale:g})")
            print("  report     run everything, emit a paper-vs-measured "
                  "Markdown report (default scale 0.25)")
            print("  stats      summarize a telemetry file written with "
                  "--telemetry")
            return 0

        names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
        seen_modules = set()
        for name in names:
            canonical = _DUPLICATE_OF.get(name, name)
            if canonical not in EXPERIMENTS:
                print(f"unknown experiment {name!r}; try 'python -m repro list'",
                      file=sys.stderr)
                return 2
            module, description, default_scale = EXPERIMENTS[canonical]
            if module in seen_modules:
                continue
            seen_modules.add(module)
            print("=" * 72)
            kwargs = {"scale": args.scale if args.scale is not None
                      else default_scale}
            if args.seed is not None:
                kwargs["seed"] = args.seed
            if args.jobs > 1 and "jobs" in signature(module.main).parameters:
                kwargs["jobs"] = args.jobs
            if (args.save_traces is not None
                    and "trace_dir" in signature(module.main).parameters):
                kwargs["trace_dir"] = args.save_traces
                kwargs["trace_format"] = args.trace_format or "v2"
            counters_before = obs.STATE.metrics.counters_snapshot()
            start = perf_counter()
            module.main(**kwargs)
            # An experiment that fanned its trials across a pool already
            # emitted per-trial manifests (in shards) plus one merged
            # manifest; a wrapper manifest here would double-count them.
            if observing and "jobs" not in kwargs:
                _emit_manifest(
                    canonical,
                    counters_before,
                    perf_counter() - start,
                    seed=args.seed,
                    scale=kwargs["scale"],
                    git_rev=git_rev,
                )
            print()
        if observing:
            _finish_observation(args.metrics)
        return 0
    finally:
        if observing:
            obs.reset()


if __name__ == "__main__":
    raise SystemExit(main())
