"""Command-line entry point: regenerate any paper table or figure.

    python -m repro list
    python -m repro table5
    python -m repro figure1 --scale 0.5
    python -m repro all --scale 0.2
    python -m repro table2 --telemetry run.jsonl --metrics
    python -m repro table2 --save-traces traces/ --trace-format v2
    python -m repro report --jobs 4 --out report.md
    python -m repro stats run.jsonl
    python -m repro timeline run.jsonl --export trace.json
    python -m repro bench diff benchmarks/baseline.json BENCH_internal.json
    python -m repro convert traces/office1.wlt2 office1.jsonl

Every experiment subcommand is generated from the spec registry
(:mod:`repro.experiments.engine`): names, aliases, descriptions,
default scales, and the ``--jobs``/``--save-traces`` capability lists
all come from the registered :class:`ExperimentSpec` objects, so a new
experiment module shows up here by registering itself — no CLI edit.
"""

from __future__ import annotations

import argparse
import sys
from time import perf_counter

from repro import obs
from repro.experiments import engine


def _jobs_help() -> str:
    names = ", ".join(engine.parallel_names())
    return (
        "fan the experiment's independent trials across N worker "
        f"processes (supported: {names}); output is identical to "
        "--jobs 1, which runs everything in-process"
    )


def _save_traces_help() -> str:
    names = ", ".join(engine.traceable_names())
    return (
        "persist each trial's raw trace into DIR for offline analysis "
        f"(experiments that capture traces: {names})"
    )


def _add_observability_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--telemetry",
        default=None,
        metavar="PATH",
        help="write structured run telemetry (JSONL; gzip if PATH ends "
             "in .gz) with per-experiment manifests",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="collect per-layer metrics and print the registry summary "
             "after the run",
    )
    parser.add_argument(
        "--compiled",
        action="store_true",
        help="use the numba-compiled kernel tier where available "
             "(equivalent to REPRO_COMPILED=1; warns and stays on the "
             "numpy reference path when numba is not installed)",
    )


def _add_run_flags(parser: argparse.ArgumentParser, default_scale: float) -> None:
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="multiplier on the paper's trial lengths "
             f"(default {default_scale:g})",
    )
    parser.add_argument("--seed", type=int, default=None, help="override seed")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help=_jobs_help())
    parser.add_argument("--save-traces", default=None, metavar="DIR",
                        dest="save_traces", help=_save_traces_help())
    parser.add_argument(
        "--trace-format",
        choices=("v1", "v2"),
        default=None,
        dest="trace_format",
        help="trace format for --save-traces (v1 JSON-lines, v2 "
             "columnar binary; default v2)",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="emit a heartbeat per finished trial (telemetry record "
             "when --telemetry is on — watch live with `timeline FILE "
             "--follow` — else a stderr line)",
    )
    _add_observability_flags(parser)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate tables/figures from Eckhardt & Steenkiste, "
                    "SIGCOMM 1996.",
    )
    commands = parser.add_subparsers(dest="command", metavar="COMMAND",
                                     required=True)

    commands.add_parser("list", help="list every experiment")

    for spec in engine.specs():
        sub = commands.add_parser(
            spec.name,
            aliases=list(spec.aliases),
            help=f"{spec.description} (default scale {spec.default_scale:g})",
        )
        _add_run_flags(sub, spec.default_scale)
        sub.set_defaults(experiment=spec.name)

    run_all = commands.add_parser("all", help="run every experiment")
    _add_run_flags(run_all, 1.0)
    run_all.set_defaults(experiment=None)

    report = commands.add_parser(
        "report",
        help="run everything, emit a paper-vs-measured Markdown report",
    )
    report.add_argument("--scale", type=float, default=0.25,
                        help="report scale (default 0.25)")
    report.add_argument("--seed", type=int, default=None, help="override seed")
    report.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="fan the report's experiments across N worker "
                             "processes; the comparison table is identical "
                             "to --jobs 1")
    report.add_argument("--out", default=None, help="write Markdown here")
    report.add_argument(
        "--progress",
        action="store_true",
        help="emit a heartbeat per finished experiment (see the "
             "per-experiment --progress flag)",
    )
    _add_observability_flags(report)

    stats = commands.add_parser(
        "stats", help="summarize a telemetry file written with --telemetry"
    )
    stats.add_argument("target", metavar="TELEMETRY_FILE")

    timeline = commands.add_parser(
        "timeline",
        help="render a traced run's span tree (terminal waterfall, "
             "Perfetto export, or live heartbeat tail)",
    )
    timeline.add_argument("target", metavar="TELEMETRY_FILE")
    timeline.add_argument(
        "--export",
        default=None,
        metavar="OUT.json",
        help="write Chrome trace-event JSON for https://ui.perfetto.dev "
             "instead of rendering the terminal waterfall",
    )
    timeline.add_argument(
        "--follow",
        action="store_true",
        help="tail the (still-running) file's heartbeat records live",
    )

    bench = commands.add_parser(
        "bench",
        help="benchmark history: append snapshots, diff with a "
             "regression gate",
    )
    bench_commands = bench.add_subparsers(dest="bench_command",
                                          metavar="ACTION", required=True)
    bench_append = bench_commands.add_parser(
        "append",
        help="stamp BENCH_internal.json with the git revision and "
             "append it to the history series",
    )
    bench_append.add_argument(
        "--bench", default="BENCH_internal.json", metavar="FILE",
        help="snapshot to append (default BENCH_internal.json)",
    )
    bench_append.add_argument(
        "--history", default="benchmarks/history.jsonl", metavar="FILE",
        help="history series to append to "
             "(default benchmarks/history.jsonl)",
    )
    bench_diff = bench_commands.add_parser(
        "diff",
        help="compare two snapshots' *_wall_s timings; exit 1 when any "
             "stage slowed beyond tolerance (the CI regression gate)",
    )
    bench_diff.add_argument("baseline", metavar="BASELINE.json")
    bench_diff.add_argument("current", metavar="CURRENT.json")
    bench_diff.add_argument(
        "--tolerance", type=float, default=None, metavar="FRACTION",
        help="allowed per-timing slowdown (default 0.25 = 25%%)",
    )

    convert = commands.add_parser(
        "convert", help="re-encode a saved trace between v1 and v2"
    )
    convert.add_argument("source", metavar="IN")
    convert.add_argument("destination", metavar="OUT")
    convert.add_argument(
        "--trace-format",
        choices=("v1", "v2"),
        default=None,
        dest="trace_format",
        help="output format (default: inferred from the output suffix)",
    )

    serve = commands.add_parser(
        "serve",
        help="run the streaming trace-analysis ingest server",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (default 0 = ephemeral, printed "
                            "at startup)")
    serve.add_argument("--unix", default=None, dest="unix_path",
                       metavar="PATH",
                       help="listen on a unix socket instead of TCP")
    serve.add_argument("--jobs", type=int, default=1,
                       help="worker processes for chunk classification "
                            "(1 = classify inline; default 1)")
    serve.add_argument("--queue-chunks", type=int, default=8,
                       dest="queue_chunks",
                       help="bounded per-session chunk queue "
                            "(backpressure; default 8)")
    serve.add_argument("--window-chunks", type=int, default=4,
                       dest="window_chunks",
                       help="in-flight credit advertised to clients "
                            "(default 4)")
    serve.add_argument("--transport",
                       choices=("ring", "shm", "file", "inline"),
                       default="ring",
                       help="chunk handoff to pool workers: ring = "
                            "per-session shared-memory slot ring, shm = "
                            "per-chunk shm blocks, file = spill to disk, "
                            "inline = pickle bytes (default ring)")
    serve.add_argument("--coalesce-chunks", type=int, default=4,
                       dest="coalesce_chunks",
                       help="max queued chunks classified per worker "
                            "round-trip (1 disables coalescing; "
                            "default 4)")
    serve.add_argument("--ring-slots", type=int, default=None,
                       dest="ring_slots",
                       help="slots per session ring (default: sized from "
                            "queue + coalesce + window)")
    serve.add_argument("--ring-slot-bytes", type=int, default=None,
                       dest="ring_slot_bytes",
                       help="bytes per ring slot (default: sized from "
                            "the first chunk, page-rounded)")
    serve.add_argument("--uvloop", action="store_true",
                       help="use uvloop for the event loop (needs the "
                            "repro[serve] extra; falls back to asyncio "
                            "with a warning)")
    serve.add_argument("--telemetry", default=None, metavar="FILE",
                       help="write session spans and ingest heartbeats "
                            "as JSONL (tail with `timeline --follow`)")

    loadgen = commands.add_parser(
        "loadgen",
        help="replay a stored trace against a running server",
    )
    loadgen.add_argument("--connect", required=True,
                         help="server address: HOST:PORT or a unix "
                              "socket path")
    loadgen.add_argument("--trace", required=True,
                         help="stored trace to replay (.wlt2 or v1)")
    loadgen.add_argument("--sessions", type=int, default=8,
                         help="concurrent sessions (default 8)")
    loadgen.add_argument("--chunk-records", type=int, default=2048,
                         dest="chunk_records",
                         help="records per CHUNK frame (default 2048)")
    loadgen.add_argument("--processes", type=int, default=1,
                         help="client processes driving the load "
                              "(default 1 = in-process)")
    loadgen.add_argument("--no-ring", action="store_true",
                         help="never request the shared-memory slot "
                              "ring; always send full CHUNK frames")
    loadgen.add_argument("--uvloop", action="store_true",
                         help="use uvloop for the client event loop")

    from repro.scenario import cli as scenario_cli

    scenario_cli.build_parser(commands)
    return parser


def _cmd_list() -> int:
    for spec in engine.specs():
        names = spec.name
        if spec.aliases:
            names += " (" + ", ".join(spec.aliases) + ")"
        print(f"  {names:<28} {spec.description} "
              f"(default scale {spec.default_scale:g})")
    print("  report                       run everything, emit a "
          "paper-vs-measured Markdown report (default scale 0.25)")
    print("  stats                        summarize a telemetry file "
          "written with --telemetry")
    print("  timeline                     render a traced run's span "
          "tree (waterfall, Perfetto export, --follow)")
    print("  bench                        benchmark history: append "
          "snapshots, diff with a regression gate")
    print("  convert                      re-encode a saved trace "
          "between v1 and v2")
    print("  serve                        run the streaming "
          "trace-analysis ingest server")
    print("  loadgen                      replay a stored trace against "
          "a running server")
    print("  scenario                     declarative topologies: list, "
          "validate, render, run, export")
    return 0


def _cmd_serve(args) -> int:
    """``python -m repro serve`` — run the ingest server until ^C."""
    import asyncio

    from repro.serve import install_uvloop
    from repro.serve.server import ServeConfig, run_server

    if args.uvloop:
        install_uvloop(explicit=True)
    if args.telemetry is not None:
        try:
            obs.configure(
                telemetry_path=args.telemetry, trace_label="serve"
            )
        except OSError as exc:
            print(f"--telemetry: {exc}", file=sys.stderr)
            return 2
    config = ServeConfig(
        host=args.host,
        port=args.port,
        unix_path=args.unix_path,
        jobs=args.jobs,
        queue_chunks=args.queue_chunks,
        window_chunks=args.window_chunks,
        transport=args.transport,
        coalesce_chunks=args.coalesce_chunks,
        ring_slots=args.ring_slots,
        ring_slot_bytes=args.ring_slot_bytes,
    )
    try:
        asyncio.run(run_server(config))
    except KeyboardInterrupt:
        return 130
    finally:
        if args.telemetry is not None:
            obs.reset()
    return 0


def _cmd_convert(source: str, destination: str,
                 trace_format: str | None) -> int:
    """``python -m repro convert IN OUT`` — re-encode a trace.

    The input format is auto-detected from the file's leading bytes
    (v1 JSONL, gzipped v1, or v2 columnar); the output format comes
    from ``--trace-format``, or failing that the output suffix
    (``.wlt2`` means v2, anything else v1).  Works in both directions.
    """
    from repro.trace.persist import load_trace, save_trace

    try:
        trace = load_trace(source)
        save_trace(trace, destination, format=trace_format)
    except (OSError, ValueError) as exc:
        print(f"convert: {exc}", file=sys.stderr)
        return 2
    print(f"converted {source} -> {destination} "
          f"({len(trace.records)} records)")
    return 0


def _emit_manifest(
    experiment: str,
    counters_before: dict[str, int],
    wall_clock_s: float,
    seed: int | None,
    scale: float | None,
    git_rev: str | None,
) -> None:
    """Build the per-experiment run manifest and write it to the sink."""
    manifest = obs.build_manifest(
        experiment,
        metrics=obs.STATE.metrics,
        counters_before=counters_before,
        wall_clock_s=wall_clock_s,
        seed=seed,
        scale=scale,
        git_rev=git_rev,
    )
    if obs.STATE.sink is not None:
        obs.STATE.sink.emit(manifest.to_record())


def _finish_observation(want_metrics: bool) -> None:
    """Flush the final metrics record and optionally print the summary."""
    snapshot = obs.STATE.metrics.snapshot()
    if obs.STATE.sink is not None:
        obs.STATE.sink.emit({"type": "metrics", "metrics": snapshot})
    if want_metrics:
        print()
        print(obs.render_snapshot(snapshot))


def _run_one(spec, args, observing: bool, git_rev: str | None) -> None:
    print("=" * 72)
    scale = args.scale if args.scale is not None else spec.default_scale
    counters_before = obs.STATE.metrics.counters_snapshot()
    start = perf_counter()
    result = engine.ENGINE.run(
        spec,
        scale=scale,
        seed=args.seed,
        jobs=args.jobs,
        trace_dir=args.save_traces,
        trace_format=args.trace_format or "v2",
        progress=args.progress,
    )
    if spec.render is not None:
        spec.render(result, scale)
    # An experiment that fanned its trials across a pool already
    # emitted per-trial manifests (in shards) plus one merged
    # manifest; a wrapper manifest here would double-count them.
    if observing and (args.jobs <= 1 or not spec.parallel):
        _emit_manifest(
            spec.name,
            counters_before,
            perf_counter() - start,
            seed=args.seed,
            scale=scale,
            git_rev=git_rev,
        )
    print()


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return int(exc.code or 0)

    if args.command == "list":
        return _cmd_list()
    if args.command == "stats":
        from repro.obs import stats as stats_module

        try:
            return stats_module.main(args.target)
        except (OSError, ValueError) as exc:
            print(f"stats: {exc}", file=sys.stderr)
            return 2
    if args.command == "timeline":
        from repro.obs import export as export_module

        try:
            return export_module.main(
                args.target, export=args.export, follow=args.follow
            )
        except (OSError, ValueError) as exc:
            print(f"timeline: {exc}", file=sys.stderr)
            return 2
        except KeyboardInterrupt:
            return 130
    if args.command == "bench":
        from repro.obs import bench as bench_module

        try:
            if args.bench_command == "append":
                return bench_module.main_append(
                    bench=args.bench, history=args.history
                )
            return bench_module.main_diff(
                args.baseline,
                args.current,
                tolerance=(
                    args.tolerance
                    if args.tolerance is not None
                    else bench_module.DEFAULT_TOLERANCE
                ),
            )
        except (OSError, ValueError) as exc:
            print(f"bench: {exc}", file=sys.stderr)
            return 2
    if args.command == "scenario":
        from repro.scenario import cli as scenario_cli

        return scenario_cli.main(args)
    if args.command == "convert":
        return _cmd_convert(args.source, args.destination, args.trace_format)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "loadgen":
        from repro.serve import loadgen as loadgen_module

        forwarded = [
            "--connect", args.connect,
            "--trace", args.trace,
            "--sessions", str(args.sessions),
            "--chunk-records", str(args.chunk_records),
            "--processes", str(args.processes),
        ]
        if args.no_ring:
            forwarded.append("--no-ring")
        if args.uvloop:
            forwarded.append("--uvloop")
        return loadgen_module.main(forwarded)

    if getattr(args, "compiled", False):
        from repro import compiled as compiled_module

        compiled_module.set_compiled(True)

    observing = args.metrics or args.telemetry is not None
    if observing:
        try:
            obs.configure(
                telemetry_path=args.telemetry,
                trace_label=args.command,
            )
        except OSError as exc:
            print(f"--telemetry: {exc}", file=sys.stderr)
            return 2
    git_rev = obs.git_revision() if observing else None

    try:
        if args.command == "report":
            from repro.experiments import report as report_module

            kwargs = {"scale": args.scale, "out": args.out,
                      "jobs": args.jobs, "progress": args.progress}
            if args.seed is not None:
                kwargs["seed"] = args.seed
            report = report_module.main(**kwargs)
            if observing:
                _finish_observation(args.metrics)
            return 0 if report.in_band_count == report.total else 1

        if args.experiment is None:  # "all"
            for spec in engine.specs():
                _run_one(spec, args, observing, git_rev)
        else:
            _run_one(engine.get(args.experiment), args, observing, git_rev)
        if observing:
            _finish_observation(args.metrics)
        return 0
    finally:
        if observing:
            obs.reset()


if __name__ == "__main__":
    raise SystemExit(main())
