"""Construction materials and their measured attenuation.

Attenuations are calibrated directly from the paper's measurements,
expressed in WaveLAN AGC level units (1 unit = 2 dB in our mapping,
see :mod:`repro.units`):

* Section 6.1: "The first wall is plaster with a wire mesh core and it
  reduces the signal level by about 5 points.  The second wall consists
  of concrete blocks and reduces the signal level by only 2 points."
* Section 6.3 (Tables 8/9): interposing a human body between units drops
  the mean level from 12.55 to 6.73 — about 6 points.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import DB_PER_LEVEL


@dataclass(frozen=True)
class Material:
    """A propagation obstacle material.

    ``attenuation_levels`` is the mean signal-level cost of one traversal;
    ``attenuation_db`` derives from the AGC unit mapping.
    """

    name: str
    attenuation_levels: float

    @property
    def attenuation_db(self) -> float:
        return self.attenuation_levels * DB_PER_LEVEL


PLASTER_MESH_WALL = Material("plaster+wire-mesh wall", 5.0)
CONCRETE_BLOCK_WALL = Material("concrete-block wall", 2.0)
INTERIOR_DOOR = Material("interior door", 1.0)
METAL_OBSTACLE = Material("metal obstacle", 2.5)
HUMAN_BODY = Material("human body", 6.0)
GLASS_PARTITION = Material("glass partition", 0.5)
# Reinforced slab between building storeys.  The paper never measures a
# floor crossing (every trial is single-storey); the value extrapolates
# the wall series — a slab is thicker than a concrete-block wall and
# rebar-meshed like the plaster wall — for the multi-floor scenarios.
CONCRETE_FLOOR_SLAB = Material("concrete floor slab", 6.5)

ALL_MATERIALS = (
    PLASTER_MESH_WALL,
    CONCRETE_BLOCK_WALL,
    INTERIOR_DOOR,
    METAL_OBSTACLE,
    HUMAN_BODY,
    GLASS_PARTITION,
    CONCRETE_FLOOR_SLAB,
)

MATERIALS_BY_NAME = {material.name: material for material in ALL_MATERIALS}


def material_named(name: str) -> Material:
    """Look up a material by its declarative-spec name.

    Scenario YAML refers to materials by name; an unknown name lists
    the valid ones so a typo fails at validation, not mid-trial.
    """
    try:
        return MATERIALS_BY_NAME[name]
    except KeyError:
        valid = ", ".join(sorted(MATERIALS_BY_NAME))
        raise ValueError(f"unknown material {name!r}; valid names: {valid}") from None
