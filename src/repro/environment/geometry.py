"""2-D geometry for floor plans.

Distances are in **feet** throughout the environment package, because
every distance in the paper is reported in feet.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Point:
    """A 2-D position in feet."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)

    def midpoint(self, other: "Point") -> "Point":
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)

    def translated(self, dx: float, dy: float) -> "Point":
        return Point(self.x + dx, self.y + dy)


@dataclass(frozen=True)
class Segment:
    """A line segment between two points."""

    a: Point
    b: Point

    @property
    def length(self) -> float:
        return self.a.distance_to(self.b)

    def midpoint(self) -> Point:
        return self.a.midpoint(self.b)


def _orientation(p: Point, q: Point, r: Point) -> int:
    """Orientation of ordered triplet: 0 collinear, 1 clockwise, 2 ccw."""
    value = (q.y - p.y) * (r.x - q.x) - (q.x - p.x) * (r.y - q.y)
    if abs(value) < 1e-12:
        return 0
    return 1 if value > 0 else 2


def _on_segment(p: Point, q: Point, r: Point) -> bool:
    """Given collinear p, q, r: does q lie on segment pr?"""
    return (
        min(p.x, r.x) - 1e-12 <= q.x <= max(p.x, r.x) + 1e-12
        and min(p.y, r.y) - 1e-12 <= q.y <= max(p.y, r.y) + 1e-12
    )


def segments_intersect(s1: Segment, s2: Segment) -> bool:
    """True when two closed segments share at least one point.

    Standard orientation test with collinear special cases; used to count
    how many walls a line-of-sight path crosses.
    """
    p1, q1, p2, q2 = s1.a, s1.b, s2.a, s2.b
    o1 = _orientation(p1, q1, p2)
    o2 = _orientation(p1, q1, q2)
    o3 = _orientation(p2, q2, p1)
    o4 = _orientation(p2, q2, q1)

    if o1 != o2 and o3 != o4:
        return True
    if o1 == 0 and _on_segment(p1, p2, q1):
        return True
    if o2 == 0 and _on_segment(p1, q2, q1):
        return True
    if o3 == 0 and _on_segment(p2, p1, q2):
        return True
    if o4 == 0 and _on_segment(p2, q1, q2):
        return True
    return False
