"""Distance and obstacles → mean WaveLAN signal level.

Calibration targets (DESIGN.md section 3, all from the paper):

* in an office at ~7 ft, level ≈ 29.5–30.5 (Tables 2 and 4);
* across a large lecture hall the level decays smoothly from a saturated
  reading near contact down to ~5 at the far side (Figure 1), with
  room-specific multipath dips (the paper saw them at 6 ft and 30 ft);
* level ≥ ~10 ⇒ reliable reception; level < 8 ⇒ the "error region"
  (Figure 2).

We model mean level as a log-distance law in AGC units:

    level(d) = ref_level_1ft - levels_per_decade * log10(d / 1 ft)
               - sum(obstacle levels) - sum(multipath dips)

clamped at the receiver's AGC saturation for a single coherent signal.
With ``DB_PER_LEVEL = 2`` the default slope of 17.5 levels/decade is a
path-loss exponent of 3.5 — typical of cluttered indoor propagation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from repro.environment.floorplan import FloorPlan
from repro.environment.geometry import Point

# AGC saturation for a single coherent signal: in-contact units read
# about this value.  Readings above it occur only when interference
# power adds to the signal sample (Tables 12/14).
SIGNAL_SATURATION_LEVEL = 34.0

# Minimum modelled distance: units in physical contact are still a few
# tenths of a foot of circuit-to-circuit separation.
MIN_DISTANCE_FT = 0.5


@dataclass(frozen=True)
class MultipathDip:
    """A room-specific destructive-interference notch.

    The paper attributes the non-monotonic dips of Figure 1 at 6 and 30
    feet to multipath, "likely to be particular to the room where the
    measurements were taken".  Each dip is a Gaussian notch in level as
    a function of transmitter-receiver distance.
    """

    distance_ft: float
    depth_levels: float
    width_ft: float = 1.5

    def attenuation_at(self, distance_ft: float) -> float:
        z = (distance_ft - self.distance_ft) / self.width_ft
        return self.depth_levels * math.exp(-z * z)


@dataclass(frozen=True)
class AmbientNoise:
    """Background silence-level distribution with no interferers active.

    The paper's quiet trials report silence means of roughly 1.3–4.2
    with maxima up to 13; we model the ambient reading as a clipped
    normal per packet.
    """

    mean_level: float = 2.8
    sd_level: float = 1.4

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        draws = rng.normal(self.mean_level, self.sd_level, size=n)
        return np.clip(draws, 0.0, None)


@dataclass
class PropagationModel:
    """Mean-signal-level predictor over a floor plan."""

    floorplan: FloorPlan = field(default_factory=FloorPlan.open_room)
    ref_level_1ft: float = 45.3
    levels_per_decade: float = 17.5
    dips: tuple[MultipathDip, ...] = ()
    saturation_level: float = SIGNAL_SATURATION_LEVEL
    ambient: AmbientNoise = field(default_factory=AmbientNoise)

    def distance_ft(self, tx: Point, rx: Point) -> float:
        return max(tx.distance_to(rx), MIN_DISTANCE_FT)

    def path_level(self, distance_ft: float) -> float:
        """Level from distance alone (no obstacles, no dips)."""
        d = max(distance_ft, MIN_DISTANCE_FT)
        level = self.ref_level_1ft - self.levels_per_decade * math.log10(d)
        return min(level, self.saturation_level)

    def mean_level(self, tx: Point, rx: Point) -> float:
        """Mean AGC signal level for a transmitter/receiver pair.

        May be negative for hopeless paths; the PHY clamps the reported
        register at zero but uses the continuous value for error rates.
        """
        d = self.distance_ft(tx, rx)
        level = self.path_level(d)
        level -= self.floorplan.total_obstacle_levels(tx, rx)
        for dip in self.dips:
            level -= dip.attenuation_at(d)
        return level

    @classmethod
    def calibrated(
        cls,
        level: float,
        at_distance_ft: float,
        levels_per_decade: float = 17.5,
        floorplan: FloorPlan | None = None,
        dips: tuple[MultipathDip, ...] = (),
    ) -> "PropagationModel":
        """Build a model anchored at a measured (level, distance) point.

        The paper's rooms differ in absolute signal level for a given
        distance (antenna orientation, furniture, construction), so each
        scenario anchors the log-distance law at the level the paper
        reports for its geometry.  Obstacles in ``floorplan`` are *not*
        folded into the anchor: the anchor describes the unobstructed
        path in that room.
        """
        ref = level + levels_per_decade * math.log10(max(at_distance_ft, MIN_DISTANCE_FT))
        return cls(
            floorplan=floorplan or FloorPlan.open_room(),
            ref_level_1ft=ref,
            levels_per_decade=levels_per_decade,
            dips=dips,
        )

    @classmethod
    def from_spec(
        cls,
        spec: Mapping[str, Any],
        floorplan: FloorPlan | None = None,
    ) -> "PropagationModel":
        """Build a model from a declarative calibration mapping.

        Two shapes are accepted:

        * ``{"preset": "lecture_hall"}`` — a named factory calibration
          (``"lecture_hall"`` or ``"office"``); a ``floorplan`` argument
          replaces the preset's own plan when given.
        * ``{"level": L, "at_distance_ft": D}`` with optional
          ``"levels_per_decade"`` and ``"dips"`` (each dip a mapping of
          :class:`MultipathDip` fields) — the :meth:`calibrated` anchor
          form the paper scenarios use.
        """
        preset = spec.get("preset")
        if preset is not None:
            factories = {"lecture_hall": cls.lecture_hall, "office": cls.office}
            if preset not in factories:
                valid = ", ".join(sorted(factories))
                raise ValueError(
                    f"unknown propagation preset {preset!r}; valid presets: {valid}"
                )
            model = factories[preset]()
            if floorplan is not None:
                model.floorplan = floorplan
            return model
        missing = [key for key in ("level", "at_distance_ft") if key not in spec]
        if missing:
            raise ValueError(
                "calibration needs 'level' and 'at_distance_ft' (or a 'preset'); "
                f"missing: {', '.join(missing)}"
            )
        return cls.calibrated(
            level=float(spec["level"]),
            at_distance_ft=float(spec["at_distance_ft"]),
            levels_per_decade=float(spec.get("levels_per_decade", 17.5)),
            floorplan=floorplan,
            dips=tuple(MultipathDip(**dict(dip)) for dip in spec.get("dips", ())),
        )

    @classmethod
    def office(cls, floorplan: FloorPlan | None = None) -> "PropagationModel":
        """Calibration for the small-office trials (Tables 2, 4, 5):
        level ≈ 30.5 at 7 ft (Table 4, "Air 1")."""
        return cls(floorplan=floorplan or FloorPlan.open_room("office"))

    @classmethod
    def lecture_hall(cls) -> "PropagationModel":
        """Calibration for the Figure-1 lecture-hall sweep, including the
        multipath dips the paper observed at 6 and 30 feet.

        The slope is slightly steeper than the office model so the far
        side of a ~90 ft hall lands in the error region (level < 8), as
        Figures 1 and 2 show.
        """
        return cls(
            floorplan=FloorPlan.open_room("lecture hall"),
            ref_level_1ft=42.0,
            levels_per_decade=18.0,
            dips=(
                MultipathDip(distance_ft=6.0, depth_levels=6.0, width_ft=1.2),
                MultipathDip(distance_ft=30.0, depth_levels=7.0, width_ft=2.5),
            ),
        )
