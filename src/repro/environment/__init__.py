"""Physical-world model: geometry, materials, floor plans, propagation.

The paper expresses all of its propagation findings in WaveLAN AGC
"level" units: a plaster-over-wire-mesh wall costs about 5 levels, a
concrete-block wall about 2, a human body about 6, and signal level
decays smoothly with distance apart from room-specific multipath dips
(Figure 1).  This package turns a floor plan (walls with materials,
station positions) into the *mean* signal level a receiver observes,
which the PHY layer then perturbs per packet.
"""

from repro.environment.floorplan import FloorPlan, Wall
from repro.environment.geometry import Point, Segment, segments_intersect
from repro.environment.materials import (
    CONCRETE_BLOCK_WALL,
    CONCRETE_FLOOR_SLAB,
    GLASS_PARTITION,
    HUMAN_BODY,
    INTERIOR_DOOR,
    MATERIALS_BY_NAME,
    METAL_OBSTACLE,
    PLASTER_MESH_WALL,
    Material,
    material_named,
)
from repro.environment.propagation import (
    AmbientNoise,
    MultipathDip,
    PropagationModel,
)

__all__ = [
    "AmbientNoise",
    "CONCRETE_BLOCK_WALL",
    "CONCRETE_FLOOR_SLAB",
    "FloorPlan",
    "GLASS_PARTITION",
    "HUMAN_BODY",
    "INTERIOR_DOOR",
    "MATERIALS_BY_NAME",
    "METAL_OBSTACLE",
    "Material",
    "MultipathDip",
    "PLASTER_MESH_WALL",
    "Point",
    "PropagationModel",
    "Segment",
    "Wall",
    "material_named",
    "segments_intersect",
]
