"""Floor plans: walls with materials, and obstacle counting along paths."""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import Any, Mapping, Sequence

from repro.environment.geometry import Point, Segment, segments_intersect
from repro.environment.materials import Material, material_named


@dataclass(frozen=True)
class Wall:
    """A wall (or other planar obstacle) in the floor plan."""

    segment: Segment
    material: Material
    name: str = ""

    @classmethod
    def between(
        cls, ax: float, ay: float, bx: float, by: float, material: Material, name: str = ""
    ) -> "Wall":
        return cls(Segment(Point(ax, ay), Point(bx, by)), material, name)

    @classmethod
    def from_spec(cls, spec: Mapping[str, Any]) -> "Wall":
        """Build a wall from a declarative mapping.

        Expected shape: ``{"a": [x, y], "b": [x, y], "material": name}``
        plus an optional ``"name"``.  Materials resolve by name through
        :func:`repro.environment.materials.material_named`.
        """
        (ax, ay), (bx, by) = spec["a"], spec["b"]
        return cls.between(
            float(ax), float(ay), float(bx), float(by),
            material_named(str(spec["material"])),
            name=str(spec.get("name", "")),
        )


@dataclass
class FloorPlan:
    """A collection of walls plus free-floating obstacles.

    ``extra_obstacles`` models things that sit *on* the direct path
    without a fixed wall geometry — e.g. the human body of Section 6.3,
    or "some classroom furniture".  Each entry applies to every path.
    """

    name: str = "unnamed"
    walls: list[Wall] = field(default_factory=list)
    extra_obstacles: list[Material] = field(default_factory=list)

    def add_wall(self, wall: Wall) -> None:
        self.walls.append(wall)

    def add_obstacle(self, material: Material) -> None:
        self.extra_obstacles.append(material)

    def obstacles_between(self, a: Point, b: Point) -> list[Material]:
        """Materials crossed by the direct path from ``a`` to ``b``.

        Counts one traversal per intersected wall, plus all free-floating
        obstacles.
        """
        path = Segment(a, b)
        crossed = [
            wall.material
            for wall in self.walls
            if segments_intersect(path, wall.segment)
        ]
        return crossed + list(self.extra_obstacles)

    def total_obstacle_levels(self, a: Point, b: Point) -> float:
        """Summed attenuation (level units) of all obstacles on the path."""
        return sum(m.attenuation_levels for m in self.obstacles_between(a, b))

    @classmethod
    def open_room(cls, name: str = "open room") -> "FloorPlan":
        """A plan with no obstacles (offices, lecture halls in-room)."""
        return cls(name=name)

    @classmethod
    def from_spec(
        cls,
        name: str,
        walls: Sequence[Mapping[str, Any]] = (),
        obstacles: Sequence[str] = (),
    ) -> "FloorPlan":
        """Build a plan from declarative wall mappings and material names.

        Wall order is preserved (it is part of structural equality with
        hand-built plans); each ``obstacles`` entry is a material name
        applied to every path, repeated entries stack.
        """
        return cls(
            name=name,
            walls=[Wall.from_spec(wall) for wall in walls],
            extra_obstacles=[material_named(material) for material in obstacles],
        )
