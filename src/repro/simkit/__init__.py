"""Deterministic discrete-event simulation substrate.

Every stochastic experiment in this repository runs on this kernel so
that trials are exactly reproducible from a seed.  The kernel is a
classic event-list simulator:

* :class:`~repro.simkit.simulator.Simulator` — the clock and event loop.
* :class:`~repro.simkit.event.Event` — a scheduled callback.
* :class:`~repro.simkit.rng.RngRegistry` — named, independently seeded
  random streams, so adding a new consumer of randomness never perturbs
  the draws made by existing consumers.
* :class:`~repro.simkit.process.Process` — a generator-based process
  abstraction for writing station behaviour as sequential code.
"""

from repro.simkit.event import Event, EventQueue
from repro.simkit.process import Process, Timeout, Waiter
from repro.simkit.rng import RngRegistry, derive_seed
from repro.simkit.simulator import Simulator

__all__ = [
    "Event",
    "EventQueue",
    "Process",
    "RngRegistry",
    "Simulator",
    "Timeout",
    "Waiter",
    "derive_seed",
]
