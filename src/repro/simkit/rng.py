"""Named, independently seeded random streams.

Monte-Carlo networking simulations are notoriously easy to de-reproduce:
adding one extra random draw in a shared stream shifts every subsequent
draw.  The registry hands out one :class:`numpy.random.Generator` per
*name*, each derived from the experiment seed and the name via NumPy's
``SeedSequence.spawn`` mechanism, so streams are mutually independent and
stable under code evolution.

Because every seed is a pure function of ``(root seed, label)`` — never
of process identity, wall clock, or draw order in a shared stream —
work that forks its registry per trial can be executed on any worker
process of a pool and still produce bit-identical results.  This is
the property :mod:`repro.parallel` relies on: per-task seeds are
derived here, in the parent, from the task's *name*, and travel with
the task.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.obs import runtime as _obs


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a deterministic child seed from a root seed and a label.

    Uses CRC-32 of the label mixed into the root seed; stable across
    Python processes (unlike ``hash``, which is salted).
    """
    label_code = zlib.crc32(name.encode("utf-8"))
    return (root_seed * 0x9E3779B1 + label_code) & 0xFFFFFFFF


def spawn_seed(root_seed: int, *labels: str) -> int:
    """Derive a collision-resistant child seed via ``SeedSequence`` spawning.

    Each label becomes one coordinate of the spawn key (its CRC-32, so
    the key is stable across processes and Python versions), and the
    child seed is the first 64-bit word of the spawned sequence's
    entropy stream.  Unlike the additive ``seed + index`` idiom this
    never aliases across experiments: ``spawn_seed(63, "table8",
    "Body")`` and ``spawn_seed(64, "table4", "Air 1")`` land in
    unrelated regions of seed space even though ``63 + 1 == 64 + 0``.

    >>> spawn_seed(1996, "table2", "office1") == spawn_seed(1996, "table2", "office1")
    True
    >>> spawn_seed(1996, "table2", "office1") != spawn_seed(1996, "table2", "office2")
    True
    """
    key = tuple(zlib.crc32(label.encode("utf-8")) for label in labels)
    sequence = np.random.SeedSequence(
        int(root_seed) & 0xFFFFFFFFFFFFFFFF, spawn_key=key
    )
    return int(sequence.generate_state(1, np.uint64)[0])


class _CountingStream:
    """Transparent proxy over a generator that tallies method calls.

    Only installed when an observability session enables RNG
    accounting; the tally feeds the ``rng.calls{stream=...}`` counters
    the run manifest reports as each stream's draw budget.  Counting
    wraps *calls*, not elements, so a vectorized ``rng.random(n)`` is
    one call — the interesting quantity for reproducibility audits is
    how often a stream is consulted, and wrapping per element would
    change hot-path costs.  The proxy never touches the underlying
    draw sequence, so seeds stay stable with accounting on or off.
    """

    __slots__ = ("_generator", "_counter")

    def __init__(self, generator: np.random.Generator, counter) -> None:
        self._generator = generator
        self._counter = counter

    def __getattr__(self, name: str):
        attribute = getattr(self._generator, name)
        if not callable(attribute):
            return attribute
        counter = self._counter

        def counted(*args, **kwargs):
            counter.inc()
            return attribute(*args, **kwargs)

        return counted


class RngRegistry:
    """A factory of named random generators rooted at a single seed.

    >>> reg = RngRegistry(seed=42)
    >>> a = reg.stream("channel")
    >>> b = reg.stream("mac")
    >>> a is reg.stream("channel")
    True
    >>> a is b
    False
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        generator = self._streams.get(name)
        if generator is None:
            child_seed = derive_seed(self.seed, name)
            generator = np.random.Generator(np.random.PCG64(child_seed))
            state = _obs.STATE
            if state.rng_accounting and state.enabled:
                generator = _CountingStream(
                    generator, state.metrics.counter("rng.calls", stream=name)
                )
            self._streams[name] = generator
        return generator

    def child_seed(self, name: str) -> int:
        """The root seed a :meth:`fork` for ``name`` would use.

        Exposed so callers that ship work to other processes (the
        parallel runner, the trial fan-out in scale-heavy experiments)
        can derive a task's seed in the parent and send the plain
        integer — the worker reconstructs an identical registry.
        """
        return derive_seed(self.seed, name)

    def fork(self, name: str) -> "RngRegistry":
        """Return a new registry whose root seed is derived from ``name``.

        Used to give each trial within an experiment its own seed space.
        """
        return RngRegistry(self.child_seed(name))

    def names(self) -> list[str]:
        """Names of the streams created so far (for diagnostics)."""
        return sorted(self._streams)
