"""Generator-based processes on top of the event kernel.

A :class:`Process` wraps a Python generator that yields *wait requests*;
the scheduler resumes the generator when the request is satisfied.  Two
request types exist:

* :class:`Timeout` — resume after a simulated delay.
* :class:`Waiter` — a one-shot condition another component triggers.

This is a deliberately small subset of SimPy-style processes: enough to
express station send loops and interference duty cycles as sequential
code without callback pyramids.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.simkit.simulator import Simulator


class Timeout:
    """Yielded by a process to sleep for ``delay`` simulated seconds."""

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout: {delay}")
        self.delay = delay


class Waiter:
    """A one-shot event a process can block on until triggered.

    Create a Waiter, hand it to the component that will eventually call
    :meth:`trigger`, and ``yield`` it from the process body.  The
    triggered value becomes the result of the yield expression.
    """

    def __init__(self) -> None:
        self.triggered = False
        self.value: Any = None
        self._process: Optional["Process"] = None

    def trigger(self, value: Any = None) -> None:
        """Fire the waiter, resuming any process blocked on it."""
        if self.triggered:
            return
        self.triggered = True
        self.value = value
        if self._process is not None:
            process, self._process = self._process, None
            process._resume(value)


class Process:
    """Drives a generator as a simulation process.

    The generator may yield ``Timeout`` or ``Waiter`` instances.  When it
    returns (or raises StopIteration) the process is finished; the return
    value is stored in :attr:`result`.
    """

    def __init__(self, sim: Simulator, body: Generator, name: str = "") -> None:
        self.sim = sim
        self.body = body
        self.name = name or getattr(body, "__name__", "process")
        self.finished = False
        self.result: Any = None
        # Kick off on the next kernel step so construction order does not
        # matter within a time instant.
        sim.schedule(0.0, self._resume, name=f"start:{self.name}")

    def _resume(self, send_value: Any = None) -> None:
        if self.finished:
            return
        try:
            request = self.body.send(send_value)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            return
        if isinstance(request, Timeout):
            self.sim.schedule(request.delay, self._resume, name=f"wake:{self.name}")
        elif isinstance(request, Waiter):
            if request.triggered:
                # Already fired: resume immediately (next kernel step).
                self.sim.schedule(
                    0.0, lambda: self._resume(request.value), name=f"wake:{self.name}"
                )
            else:
                request._process = self
        else:
            raise TypeError(
                f"process {self.name!r} yielded {type(request).__name__}; "
                "expected Timeout or Waiter"
            )
