"""The discrete-event simulation kernel."""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.simkit.event import Event, EventQueue
from repro.simkit.rng import RngRegistry


class SimulationError(RuntimeError):
    """Raised for kernel misuse (e.g. scheduling into the past)."""


class Simulator:
    """Event-list simulator with a float clock in seconds.

    The kernel owns the clock, the event queue, and the random-stream
    registry.  Components schedule callbacks with :meth:`schedule` /
    :meth:`schedule_at`, and the experiment driver advances time with
    :meth:`run` or :meth:`run_until`.
    """

    def __init__(self, seed: int = 0) -> None:
        self.now = 0.0
        self.queue = EventQueue()
        self.rng = RngRegistry(seed)
        self._events_fired = 0
        self._running = False
        self._stop_requested = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        action: Callable[[], Any],
        priority: int = 0,
        name: str = "",
    ) -> Event:
        """Schedule ``action`` to fire ``delay`` seconds from now."""
        return self.schedule_at(self.now + delay, action, priority, name)

    def schedule_at(
        self,
        time: float,
        action: Callable[[], Any],
        priority: int = 0,
        name: str = "",
    ) -> Event:
        """Schedule ``action`` at absolute time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule into the past: now={self.now}, requested={time}"
            )
        return self.queue.push(time, action, priority, name)

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event."""
        self.queue.cancel(event)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next event.  Returns False when the queue is empty."""
        event = self.queue.pop()
        if event is None:
            return False
        self.now = event.time
        self._events_fired += 1
        event.action()
        return True

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the event queue drains (or ``max_events`` fire).

        Returns the number of events fired by this call.
        """
        fired = 0
        self._running = True
        self._stop_requested = False
        try:
            while not self._stop_requested:
                if max_events is not None and fired >= max_events:
                    break
                if not self.step():
                    break
                fired += 1
        finally:
            self._running = False
        return fired

    def run_until(self, end_time: float) -> int:
        """Run events with time <= ``end_time``; leave later events queued.

        The clock is advanced to ``end_time`` even if the queue drains
        earlier, so consecutive ``run_until`` calls compose naturally.
        """
        fired = 0
        self._running = True
        self._stop_requested = False
        try:
            while not self._stop_requested:
                next_time = self.queue.peek_time()
                if next_time is None or next_time > end_time:
                    break
                self.step()
                fired += 1
        finally:
            self._running = False
        if self.now < end_time:
            self.now = end_time
        return fired

    def stop(self) -> None:
        """Request that the currently executing run loop exit."""
        self._stop_requested = True

    @property
    def events_fired(self) -> int:
        """Total events executed over the simulator's lifetime."""
        return self._events_fired
