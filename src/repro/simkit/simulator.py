"""The discrete-event simulation kernel."""

from __future__ import annotations

import warnings
from time import perf_counter
from typing import Any, Callable, Optional

from repro.obs import runtime as _obs
from repro.obs.events import EventTracer
from repro.obs.metrics import Metrics
from repro.simkit.event import Event, EventQueue
from repro.simkit.rng import RngRegistry


class SimulationError(RuntimeError):
    """Raised for kernel misuse (e.g. scheduling into the past)."""


class Simulator:
    """Event-list simulator with a float clock in seconds.

    The kernel owns the clock, the event queue, and the random-stream
    registry.  Components schedule callbacks with :meth:`schedule` /
    :meth:`schedule_at`, and the experiment driver advances time with
    :meth:`run` or :meth:`run_until`.

    Observability: the kernel mirrors its event accounting into the
    active metrics registry (``sim.events_fired``, ``sim.queue_depth``,
    ``sim.event_queued_s``, ``sim.event_handler_s``) and, when an event
    tracer is attached, emits one telemetry record per fired event.
    Both default to the process-wide state in :mod:`repro.obs.runtime`
    and cost one branch per event when disabled.
    """

    def __init__(
        self,
        seed: int = 0,
        metrics: Optional[Metrics] = None,
        tracer: Optional[EventTracer] = None,
    ) -> None:
        self.now = 0.0
        self.queue = EventQueue()
        self.rng = RngRegistry(seed)
        self.metrics = metrics if metrics is not None else _obs.STATE.metrics
        self.tracer = tracer if tracer is not None else _obs.STATE.tracer
        self._fired = 0
        self._running = False
        self._stop_requested = False
        # Instrument handles are fetched once; on a disabled registry
        # they are shared no-ops.
        self._fired_counter = self.metrics.counter("sim.events_fired")
        self._queued_histogram = self.metrics.histogram("sim.event_queued_s")
        self._handler_timer = self.metrics.timer("sim.event_handler_s")
        self._depth_gauge = self.metrics.gauge("sim.queue_depth")

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        action: Callable[[], Any],
        priority: int = 0,
        name: str = "",
    ) -> Event:
        """Schedule ``action`` to fire ``delay`` seconds from now."""
        return self.schedule_at(self.now + delay, action, priority, name)

    def schedule_at(
        self,
        time: float,
        action: Callable[[], Any],
        priority: int = 0,
        name: str = "",
    ) -> Event:
        """Schedule ``action`` at absolute time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule into the past: now={self.now}, requested={time}"
            )
        event = self.queue.push(time, action, priority, name)
        event.created = self.now
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event."""
        self.queue.cancel(event)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next event.  Returns False when the queue is empty."""
        event = self.queue.pop()
        if event is None:
            return False
        self.now = event.time
        self._fired += 1
        metrics = self.metrics
        tracer = self.tracer
        if tracer is None and not metrics.enabled:
            event.action()
            return True
        start = perf_counter()
        event.action()
        elapsed = perf_counter() - start
        if metrics.enabled:
            self._fired_counter.inc()
            self._queued_histogram.record(event.time - event.created)
            self._handler_timer.record(elapsed)
            self._depth_gauge.set(len(self.queue))
        if tracer is not None:
            tracer.event_fired(
                name=event.name,
                sim_time=event.time,
                created_time=event.created,
                duration_s=elapsed,
                queue_depth=len(self.queue),
            )
        return True

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the event queue drains (or ``max_events`` fire).

        Returns the number of events fired by this call.
        """
        fired = 0
        self._running = True
        self._stop_requested = False
        try:
            while not self._stop_requested:
                if max_events is not None and fired >= max_events:
                    break
                if not self.step():
                    break
                fired += 1
        finally:
            self._running = False
        return fired

    def run_until(self, end_time: float) -> int:
        """Run events with time <= ``end_time``; leave later events queued.

        The clock is advanced to ``end_time`` even if the queue drains
        earlier, so consecutive ``run_until`` calls compose naturally.
        """
        fired = 0
        self._running = True
        self._stop_requested = False
        try:
            while not self._stop_requested:
                next_time = self.queue.peek_time()
                if next_time is None or next_time > end_time:
                    break
                self.step()
                fired += 1
        finally:
            self._running = False
        if self.now < end_time:
            self.now = end_time
        return fired

    def stop(self) -> None:
        """Request that the currently executing run loop exit."""
        self._stop_requested = True

    @property
    def events_fired(self) -> int:
        """Total events executed over the simulator's lifetime.

        Also mirrored into the ``sim.events_fired`` counter of the
        attached metrics registry when one is enabled.
        """
        return self._fired

    @property
    def _events_fired(self) -> int:
        """Deprecated alias of :attr:`events_fired`.

        The counter used to be a bare underscore attribute; external
        readers should use the public property or the
        ``sim.events_fired`` metric.
        """
        warnings.warn(
            "Simulator._events_fired is deprecated; use the events_fired "
            "property or the sim.events_fired metrics counter",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._fired
