"""Event records and the time-ordered event queue."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(order=False)
class Event:
    """A single scheduled callback.

    Events compare by ``(time, priority, sequence)``, so two events at the
    same instant fire in deterministic order: lower priority value first,
    then insertion order.  ``cancelled`` events stay in the heap but are
    skipped by the queue when popped (lazy deletion).
    """

    time: float
    priority: int
    sequence: int
    action: Callable[[], Any]
    name: str = ""
    cancelled: bool = field(default=False, compare=False)
    # Simulation time at which the event was scheduled; the tracer
    # derives the scheduled-vs-fired queueing delay from it.
    created: float = field(default=0.0, compare=False)

    def cancel(self) -> None:
        """Mark the event so the queue discards it instead of firing it."""
        self.cancelled = True

    def sort_key(self) -> tuple[float, int, int]:
        return (self.time, self.priority, self.sequence)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.name or getattr(self.action, "__name__", "action")
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.9f} p={self.priority} {label}{state}>"


class EventQueue:
    """A binary-heap event list with lazy cancellation.

    The queue assigns each pushed event a monotonically increasing
    sequence number, which both breaks ties deterministically and gives
    FIFO semantics among same-time, same-priority events.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[tuple[float, int, int], Event]] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        action: Callable[[], Any],
        priority: int = 0,
        name: str = "",
    ) -> Event:
        """Schedule ``action`` at ``time`` and return the event handle."""
        event = Event(
            time=time,
            priority=priority,
            sequence=next(self._counter),
            action=action,
            name=name,
        )
        heapq.heappush(self._heap, (event.sort_key(), event))
        self._live += 1
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a previously pushed event (lazy removal)."""
        if not event.cancelled:
            event.cancel()
            self._live -= 1

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or None if empty."""
        while self._heap:
            __, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the time of the earliest live event without popping it."""
        while self._heap and self._heap[0][1].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0][1].time
