"""Signal-metric summaries per packet class.

"When we present signal level, silence level, and signal quality, we
give the minimum observation, mean, standard deviation (in
parentheses), and maximum observation" (Section 4).  These are the
↓ / μ / (σ) / ↑ columns of Tables 3, 4, 6-10, 12-14.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.analysis.classify import ClassifiedPacket, ClassifiedTrace, PacketClass


@dataclass
class MetricSummary:
    """min / mean / sd / max of one signal metric over a packet group."""

    minimum: int
    mean: float
    sd: float
    maximum: int
    count: int

    def formatted(self) -> str:
        return f"{self.minimum} {self.mean:.2f} ({self.sd:.2f}) {self.maximum}"


def summarize(values: Sequence[int]) -> Optional[MetricSummary]:
    """Summary statistics over raw register values (None when empty)."""
    if not values:
        return None
    n = len(values)
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / n
    return MetricSummary(
        minimum=min(values),
        mean=mean,
        sd=math.sqrt(variance),
        maximum=max(values),
        count=n,
    )


@dataclass
class SignalStats:
    """Level / silence / quality summaries for one packet group."""

    group: str
    packets: int
    level: Optional[MetricSummary]
    silence: Optional[MetricSummary]
    quality: Optional[MetricSummary]


def stats_for_packets(group: str, packets: Iterable[ClassifiedPacket]) -> SignalStats:
    """Compute the three metric summaries for a packet group."""
    packet_list = list(packets)
    levels = [p.record.status.signal_level for p in packet_list]
    silences = [p.record.status.silence_level for p in packet_list]
    qualities = [p.record.status.signal_quality for p in packet_list]
    return SignalStats(
        group=group,
        packets=len(packet_list),
        level=summarize(levels),
        silence=summarize(silences),
        quality=summarize(qualities),
    )


# The standard grouping used by Table 3 (and echoed by Tables 7, 9, 13).
STANDARD_GROUPS: list[tuple[str, tuple[PacketClass, ...]]] = [
    (
        "All test packets",
        (
            PacketClass.UNDAMAGED,
            PacketClass.TRUNCATED,
            PacketClass.WRAPPER_DAMAGED,
            PacketClass.BODY_DAMAGED,
        ),
    ),
    ("Undamaged", (PacketClass.UNDAMAGED,)),
    ("Truncated", (PacketClass.TRUNCATED,)),
    ("Wrapper damaged", (PacketClass.WRAPPER_DAMAGED,)),
    ("Body damaged", (PacketClass.BODY_DAMAGED,)),
    ("Undamaged outsiders", (PacketClass.OUTSIDER_UNDAMAGED,)),
    ("Damaged outsiders", (PacketClass.OUTSIDER_DAMAGED,)),
]


def signal_stats_by_class(
    classified: ClassifiedTrace,
    groups: Sequence[tuple[str, tuple[PacketClass, ...]]] = STANDARD_GROUPS,
    include_empty: bool = False,
) -> list[SignalStats]:
    """Per-class signal summaries in the paper's standard grouping."""
    rows = []
    for name, classes in groups:
        stats = stats_for_packets(name, classified.by_class(*classes))
        if stats.packets > 0 or include_empty:
            rows.append(stats)
    return rows
