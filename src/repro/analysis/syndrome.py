"""Error syndrome (bit corruption pattern) extraction.

"Since the packet body consists of a single word repeated multiple
times, truncated packet bodies are ambiguous — it is not possible to
know which words are missing.  Therefore, we produce an estimated error
syndrome ... only for those test packets which are damaged but not
truncated" (Section 4).

A syndrome is the XOR of the received frame against the expected frame
for the recovered sequence number, split into wrapper and body regions.
Body syndromes feed the FEC evaluation (:mod:`repro.fec`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.framing.testpacket import (
    BODY_END,
    BODY_START,
    FRAME_BYTES,
    TestPacketFactory,
)


@dataclass
class ErrorSyndrome:
    """Bit corruption pattern of one damaged, untruncated test packet.

    Bit positions are MSB-first offsets; body positions are relative to
    the body start, wrapper positions relative to the frame start.
    """

    sequence: int
    body_bit_positions: np.ndarray
    wrapper_bit_positions: np.ndarray

    @property
    def body_bits_damaged(self) -> int:
        return len(self.body_bit_positions)

    @property
    def wrapper_damaged(self) -> bool:
        return len(self.wrapper_bit_positions) > 0

    @property
    def damaged(self) -> bool:
        return self.wrapper_damaged or self.body_bits_damaged > 0

    def burst_spans(self, max_gap_bits: int = 32) -> list[tuple[int, int]]:
        """Group body bit errors into bursts separated by > ``max_gap_bits``.

        Returns (first_bit, last_bit) spans; used to characterize the
        burstiness of the channel for FEC/interleaving decisions.
        """
        if self.body_bits_damaged == 0:
            return []
        positions = np.sort(self.body_bit_positions)
        spans: list[tuple[int, int]] = []
        start = prev = int(positions[0])
        for pos in positions[1:]:
            pos = int(pos)
            if pos - prev > max_gap_bits:
                spans.append((start, prev))
                start = pos
            prev = pos
        spans.append((start, prev))
        return spans


def extract_syndrome(
    data: bytes, sequence: int, factory: TestPacketFactory
) -> ErrorSyndrome:
    """XOR a full-length received frame against its expected contents.

    Raises ValueError for truncated frames — their syndromes are
    ambiguous by construction and the paper declines to estimate them.
    """
    if len(data) != FRAME_BYTES:
        raise ValueError(
            f"syndrome undefined for truncated frame ({len(data)} bytes)"
        )
    expected = factory.build(sequence)
    received = np.frombuffer(data, dtype=np.uint8)
    template = np.frombuffer(expected, dtype=np.uint8)
    xored = received ^ template
    bit_positions = np.flatnonzero(np.unpackbits(xored))

    body_start_bit = BODY_START * 8
    body_end_bit = BODY_END * 8
    in_body = (bit_positions >= body_start_bit) & (bit_positions < body_end_bit)
    body_positions = bit_positions[in_body] - body_start_bit
    wrapper_positions = bit_positions[~in_body]
    return ErrorSyndrome(
        sequence=sequence,
        body_bit_positions=body_positions,
        wrapper_bit_positions=wrapper_positions,
    )
