"""Paper-style ASCII table rendering.

Every benchmark prints its table through these helpers, so the output
can be compared line-for-line with the corresponding paper table.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.metrics import TrialMetrics
from repro.analysis.signalstats import SignalStats


def _format_row(cells: Sequence[str], widths: Sequence[int]) -> str:
    return " | ".join(cell.rjust(width) for cell, width in zip(cells, widths))


def _render(headers: Sequence[str], rows: list[list[str]]) -> str:
    widths = [
        max(len(header), *(len(row[i]) for row in rows)) if rows else len(header)
        for i, header in enumerate(headers)
    ]
    lines = [_format_row(headers, widths)]
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(_format_row(row, widths) for row in rows)
    return "\n".join(lines)


def format_loss_percent(metrics: TrialMetrics) -> str:
    """The paper's loss format: '0%', '.03%', '52%'."""
    percent = metrics.packet_loss_percent
    if percent == 0.0:
        return "0%"
    if percent < 1.0:
        return f"{percent:.2f}%".lstrip("0")
    return f"{percent:.0f}%"


def render_metrics_table(rows: Sequence[TrialMetrics]) -> str:
    """A Table-2/5/8-style results table."""
    headers = [
        "Trial",
        "Packets Received",
        "Packet Loss",
        "Packets Truncated",
        "Bits Received",
        "Wrapper Damaged",
        "Body Bits",
        "Worst Body",
    ]
    body = []
    for m in rows:
        body.append(
            [
                m.name,
                str(m.packets_received),
                format_loss_percent(m),
                str(m.packets_truncated),
                m.bits_received_magnitude,
                str(m.wrapper_damaged),
                str(m.body_bits_damaged),
                "-" if m.worst_body_bits is None else str(m.worst_body_bits),
            ]
        )
    return _render(headers, body)


def _summary_cells(summary) -> list[str]:
    if summary is None:
        return ["-", "-", "-", "-"]
    return [
        str(summary.minimum),
        f"{summary.mean:.2f}",
        f"({summary.sd:.2f})",
        str(summary.maximum),
    ]


def render_signal_table(
    rows: Sequence[SignalStats], label: str = "Packet Type"
) -> str:
    """A Table-3/6/9-style signal-metrics table (↓ μ σ ↑ per metric)."""
    headers = [
        label,
        "Packets",
        "Lvl v", "Lvl u", "Lvl (s)", "Lvl ^",
        "Sil v", "Sil u", "Sil (s)", "Sil ^",
        "Qual v", "Qual u", "Qual (s)", "Qual ^",
    ]
    body = []
    for stats in rows:
        body.append(
            [stats.group, str(stats.packets)]
            + _summary_cells(stats.level)
            + _summary_cells(stats.silence)
            + _summary_cells(stats.quality)
        )
    return _render(headers, body)


def render_comparison(
    title: str,
    paper_rows: dict[str, str],
    measured_rows: dict[str, str],
) -> str:
    """Side-by-side paper-vs-measured lines for EXPERIMENTS.md."""
    keys = list(paper_rows)
    width = max(len(k) for k in keys) if keys else 0
    lines = [title]
    for key in keys:
        measured: Optional[str] = measured_rows.get(key)
        lines.append(
            f"  {key.ljust(width)}  paper: {paper_rows[key]:>12}  "
            f"measured: {(measured or 'n/a'):>12}"
        )
    return "\n".join(lines)
