"""Trial metrics: the columns of the paper's Table 1.

| Column            | Meaning                                               |
|-------------------|-------------------------------------------------------|
| Packets Received  | Test packets received                                 |
| Packet Loss       | Percentage of transmitted test packets that were lost |
| Packets Truncated | Number of received test packets which were truncated  |
| Bits Received     | Number of *body* bits received, rounded down          |
| Wrapper Damaged   | Number of packets with damaged headers or trailers    |
| Body Bits         | Total number of body bits damaged in trial            |
| Worst Body        | Number of bits damaged in most-corrupted packet body  |
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.analysis.classify import ClassifiedTrace, PacketClass, classify_trace
from repro.framing.testpacket import BODY_BITS, BODY_START
from repro.trace.records import TrialTrace


@dataclass
class TrialMetrics:
    """The Table-1 row for one trial."""

    name: str
    packets_sent: int
    packets_received: int
    packets_truncated: int
    body_bits_received: int
    wrapper_damaged: int
    body_damaged_packets: int
    body_bits_damaged: int
    worst_body_bits: Optional[int]
    outsiders_received: int

    @property
    def packets_lost(self) -> int:
        return max(0, self.packets_sent - self.packets_received)

    @property
    def packet_loss_fraction(self) -> float:
        if self.packets_sent == 0:
            return 0.0
        return self.packets_lost / self.packets_sent

    @property
    def packet_loss_percent(self) -> float:
        return 100.0 * self.packet_loss_fraction

    @property
    def bit_error_rate(self) -> float:
        """Estimated body BER: damaged body bits / received body bits.

        The paper stresses these "are necessarily only estimates":
        truncated bodies contribute received bits but no syndrome.
        """
        if self.body_bits_received == 0:
            return 0.0
        return self.body_bits_damaged / self.body_bits_received

    @property
    def bits_received_magnitude(self) -> str:
        """The paper renders bits received as a power of ten (e.g. 10^9)."""
        if self.body_bits_received <= 0:
            return "0"
        exponent = int(math.floor(math.log10(self.body_bits_received)))
        mantissa = self.body_bits_received / 10**exponent
        if mantissa < 1.5:
            return f"10^{exponent}"
        return f"{mantissa:.0f}x10^{exponent}"


def metrics_from_classified(classified: ClassifiedTrace) -> TrialMetrics:
    """Fold a classified trace into its Table-1 row."""
    trace = classified.trace
    test_packets = classified.test_packets

    truncated = classified.by_class(PacketClass.TRUNCATED)
    body_damaged = classified.by_class(PacketClass.BODY_DAMAGED)
    wrapper_damaged_count = sum(
        1
        for packet in test_packets
        if packet.wrapper_damaged
        or packet.packet_class is PacketClass.WRAPPER_DAMAGED
    )

    body_bits_received = 0
    for packet in test_packets:
        if packet.packet_class is PacketClass.TRUNCATED:
            received_body_bytes = max(0, packet.record.length - BODY_START)
            body_bits_received += received_body_bytes * 8
        else:
            body_bits_received += BODY_BITS

    body_bits_damaged = sum(p.body_bits_damaged for p in test_packets)
    worst = max(
        (p.body_bits_damaged for p in body_damaged),
        default=None,
    )

    return TrialMetrics(
        name=trace.name,
        packets_sent=trace.packets_sent,
        packets_received=len(test_packets),
        packets_truncated=len(truncated),
        body_bits_received=body_bits_received,
        wrapper_damaged=wrapper_damaged_count,
        body_damaged_packets=len(body_damaged),
        body_bits_damaged=body_bits_damaged,
        worst_body_bits=worst,
        outsiders_received=len(classified.outsiders),
    )


def analyze_trial(trace: TrialTrace) -> TrialMetrics:
    """Classify and summarize a trial in one call."""
    return metrics_from_classified(classify_trace(trace))
