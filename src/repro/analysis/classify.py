"""Per-packet damage classification.

Mirrors the packet classes of the paper's tables (e.g. Table 3):
undamaged, truncated, wrapper damaged, body damaged, and outsiders
(undamaged/damaged).  A packet can be both wrapper- and body-damaged;
like the paper's tables we give body damage precedence for the primary
class but keep both flags.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from repro.analysis.matching import MatchOutcome, MatchResult, TraceMatcher
from repro.analysis.syndrome import ErrorSyndrome, extract_syndrome
from repro.obs import runtime as _obs
from repro.framing.crc import check_fcs
from repro.framing.modem import NETWORK_ID_LEN
from repro.framing.testpacket import FRAME_BYTES
from repro.trace.columnar import ColumnarTrace
from repro.trace.records import PacketRecord, TrialTrace, materialize_data

AnyTrace = Union[TrialTrace, ColumnarTrace]


class PacketClass(enum.Enum):
    """Primary damage class of a received packet."""

    UNDAMAGED = "undamaged"
    TRUNCATED = "truncated"
    WRAPPER_DAMAGED = "wrapper_damaged"
    BODY_DAMAGED = "body_damaged"
    OUTSIDER_UNDAMAGED = "outsider_undamaged"
    OUTSIDER_DAMAGED = "outsider_damaged"

    @property
    def is_test_packet(self) -> bool:
        return self not in (
            PacketClass.OUTSIDER_UNDAMAGED,
            PacketClass.OUTSIDER_DAMAGED,
        )


@dataclass
class ClassifiedPacket:
    """One record plus everything the analysis derived from it."""

    record: PacketRecord
    packet_class: PacketClass
    sequence: Optional[int] = None
    syndrome: Optional[ErrorSyndrome] = None
    wrapper_damaged: bool = False
    body_bits_damaged: int = 0
    truncated_bytes_missing: int = 0


@dataclass
class ClassifiedTrace:
    """A whole trial's classification output."""

    trace: TrialTrace
    packets: list[ClassifiedPacket] = field(default_factory=list)

    def by_class(self, *classes: PacketClass) -> list[ClassifiedPacket]:
        wanted = set(classes)
        return [p for p in self.packets if p.packet_class in wanted]

    @property
    def test_packets(self) -> list[ClassifiedPacket]:
        return [p for p in self.packets if p.packet_class.is_test_packet]

    @property
    def outsiders(self) -> list[ClassifiedPacket]:
        return [p for p in self.packets if not p.packet_class.is_test_packet]


def _classify_outsider(data: bytes) -> PacketClass:
    """Damage heuristic for foreign packets: without ground truth, the
    Ethernet CRC is the only oracle (the paper's tool had the same
    limitation — weak foreign packets failing CRC are "damaged")."""
    if len(data) > NETWORK_ID_LEN and check_fcs(data[NETWORK_ID_LEN:]):
        return PacketClass.OUTSIDER_UNDAMAGED
    return PacketClass.OUTSIDER_DAMAGED


# Records are matched in batches of this many: large enough that the
# bulk matcher's whole-matrix reductions amortize, small enough that the
# materialized byte matrix stays cache-friendly (~2 MB per chunk).
MATCH_CHUNK_RECORDS = 2048


def classify_trace(trace: AnyTrace) -> ClassifiedTrace:
    """Run matching + damage classification over a whole trial.

    Matching runs chunk-at-a-time through the batched fast path
    (:meth:`TraceMatcher.match_bulk`); only records it could not prove
    byte-identical to their expected frame — the damaged minority —
    fall back to the scalar voting/header procedure.

    A :class:`~repro.trace.columnar.ColumnarTrace` (a memory-mapped v2
    file, or a shared-memory handoff block) takes the zero-copy route:
    frame matrices are sliced straight off the flat payload and fed to
    :meth:`TraceMatcher.match_matrix`, and the undamaged majority never
    materializes per-packet records or bytes — classified packets carry
    lazy record views instead.
    """
    if isinstance(trace, ColumnarTrace):
        with _obs.trace_span(
            "analysis.classify",
            records=trace.packets_received, columnar=True,
        ):
            return _classify_columnar(trace)
    matcher = TraceMatcher(trace.spec, trace.packets_sent)
    result = ClassifiedTrace(trace=trace)
    records = trace.records
    with _obs.trace_span(
        "analysis.classify", records=len(records), columnar=False
    ):
        for chunk_start in range(0, len(records), MATCH_CHUNK_RECORDS):
            chunk = records[chunk_start : chunk_start + MATCH_CHUNK_RECORDS]
            with _obs.span("profile.classify_chunk"):
                datas = materialize_data(chunk)
                bulk_results = matcher.match_bulk(datas)
                for record, data, match in zip(chunk, datas, bulk_results):
                    if match is None:
                        match = matcher.match_bytes(data, skip_fast=True)
                    result.packets.append(
                        _classify_one(matcher, record, data, match)
                    )
    return result


def _classify_columnar(trace: ColumnarTrace) -> ClassifiedTrace:
    """The zero-copy classification path over columnar storage.

    Byte-for-byte the same verdicts as the record-list path: the frame
    matrix rows feed the identical matrix reductions, and the fallback
    minority goes through the identical scalar procedure.
    """
    matcher = TraceMatcher(trace.spec, trace.packets_sent)
    result = ClassifiedTrace(trace=trace)
    lengths = trace.lengths
    n = trace.packets_received
    packets_append = result.packets.append
    for chunk_start in range(0, n, MATCH_CHUNK_RECORDS):
        chunk_stop = min(chunk_start + MATCH_CHUNK_RECORDS, n)
        with _obs.span("profile.classify_chunk"):
            chunk_lengths = lengths[chunk_start:chunk_stop]
            full_rows = chunk_start + np.nonzero(
                chunk_lengths == FRAME_BYTES
            )[0]
            matches: list[Optional[MatchResult]] = [None] * (
                chunk_stop - chunk_start
            )
            if full_rows.size:
                matrix = trace.frame_matrix(full_rows, FRAME_BYTES)
                for row, match in zip(
                    (full_rows - chunk_start).tolist(),
                    matcher.match_matrix(matrix),
                ):
                    matches[row] = match
            lengths_list = chunk_lengths.tolist()
            for offset, index in enumerate(range(chunk_start, chunk_stop)):
                match = matches[offset]
                data: Optional[bytes] = None
                if match is None:
                    data = trace.data(index)
                    match = matcher.match_bytes(data, skip_fast=True)
                packets_append(
                    _classify_one(
                        matcher,
                        trace.record_view(index),
                        data,
                        match,
                        length=lengths_list[offset],
                    )
                )
    return result


def _classify_one(
    matcher: TraceMatcher,
    record: PacketRecord,
    data: Optional[bytes],
    match: MatchResult,
    length: Optional[int] = None,
) -> ClassifiedPacket:
    """Turn one record's match result into its classification.

    ``data`` may be ``None`` on the columnar path — but only for exact
    (fast-path) matches, whose branches never touch the bytes; every
    fallback verdict (outsiders, voting, header-led) arrives with the
    frame already materialized.
    """
    if length is None:
        length = len(data)
    if match.outcome is MatchOutcome.OUTSIDER:
        return ClassifiedPacket(
            record=record, packet_class=_classify_outsider(data)
        )
    sequence = match.sequence
    if sequence is None:
        # Confident test packet, ambiguous sequence: the IP id only
        # carries seq mod 2^16 and no surviving byte broke the tie
        # between trial epochs.  These are (near-)always deeply
        # truncated frames; classify the damage without claiming a
        # sequence rather than guessing the wrong epoch.
        assert match.ambiguous
        return ClassifiedPacket(
            record=record,
            packet_class=PacketClass.TRUNCATED
            if length < FRAME_BYTES
            else PacketClass.WRAPPER_DAMAGED,
            truncated_bytes_missing=max(0, FRAME_BYTES - length),
        )
    if match.exact:
        return ClassifiedPacket(
            record=record,
            packet_class=PacketClass.UNDAMAGED,
            sequence=sequence,
        )
    if length < FRAME_BYTES:
        return ClassifiedPacket(
            record=record,
            packet_class=PacketClass.TRUNCATED,
            sequence=sequence,
            truncated_bytes_missing=FRAME_BYTES - length,
        )
    syndrome = extract_syndrome(data, sequence, matcher.factory)
    if syndrome.body_bits_damaged > 0:
        packet_class = PacketClass.BODY_DAMAGED
    elif syndrome.wrapper_damaged:
        packet_class = PacketClass.WRAPPER_DAMAGED
    else:
        packet_class = PacketClass.UNDAMAGED
    return ClassifiedPacket(
        record=record,
        packet_class=packet_class,
        sequence=sequence,
        syndrome=syndrome,
        wrapper_damaged=syndrome.wrapper_damaged,
        body_bits_damaged=syndrome.body_bits_damaged,
    )
