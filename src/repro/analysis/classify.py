"""Per-packet damage classification.

Mirrors the packet classes of the paper's tables (e.g. Table 3):
undamaged, truncated, wrapper damaged, body damaged, and outsiders
(undamaged/damaged).  A packet can be both wrapper- and body-damaged;
like the paper's tables we give body damage precedence for the primary
class but keep both flags.

Classification is *incremental at heart*: :class:`IncrementalClassifier`
consumes frame chunks as they arrive (record lists or columnar slices),
runs each chunk through the batched matching fast paths, and maintains
running verdicts and per-class counts.  Because every verdict depends
only on its own record's bytes, chunk boundaries never change the
output — :func:`classify_trace` is a thin wrapper that feeds a whole
trial through one classifier, and a streaming consumer
(:mod:`repro.serve`) feeds the same machinery one network chunk at a
time with byte-identical results.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

import numpy as np

from repro.analysis.matching import MatchOutcome, MatchResult, TraceMatcher
from repro.analysis.syndrome import ErrorSyndrome, extract_syndrome
from repro.obs import runtime as _obs
from repro.framing.crc import check_fcs
from repro.framing.modem import NETWORK_ID_LEN
from repro.framing.testpacket import FRAME_BYTES
from repro.trace.columnar import ColumnarTrace
from repro.trace.records import PacketRecord, TrialTrace

AnyTrace = Union[TrialTrace, ColumnarTrace]

# Stable code order for PacketClass verdict columns: the wire/handoff
# encoding (repro.parallel.handoff, repro.serve.protocol) and the
# incremental verdict columns all index this list.
CLASS_ORDER: "list[PacketClass]"


class PacketClass(enum.Enum):
    """Primary damage class of a received packet."""

    UNDAMAGED = "undamaged"
    TRUNCATED = "truncated"
    WRAPPER_DAMAGED = "wrapper_damaged"
    BODY_DAMAGED = "body_damaged"
    OUTSIDER_UNDAMAGED = "outsider_undamaged"
    OUTSIDER_DAMAGED = "outsider_damaged"

    @property
    def is_test_packet(self) -> bool:
        return self not in (
            PacketClass.OUTSIDER_UNDAMAGED,
            PacketClass.OUTSIDER_DAMAGED,
        )


CLASS_ORDER = list(PacketClass)
CLASS_CODE = {cls: code for code, cls in enumerate(CLASS_ORDER)}


@dataclass
class ClassifiedPacket:
    """One record plus everything the analysis derived from it."""

    record: PacketRecord
    packet_class: PacketClass
    sequence: Optional[int] = None
    syndrome: Optional[ErrorSyndrome] = None
    wrapper_damaged: bool = False
    body_bits_damaged: int = 0
    truncated_bytes_missing: int = 0


@dataclass
class ClassifiedTrace:
    """A whole trial's classification output."""

    trace: TrialTrace
    packets: list[ClassifiedPacket] = field(default_factory=list)

    def by_class(self, *classes: PacketClass) -> list[ClassifiedPacket]:
        wanted = set(classes)
        return [p for p in self.packets if p.packet_class in wanted]

    @property
    def test_packets(self) -> list[ClassifiedPacket]:
        return [p for p in self.packets if p.packet_class.is_test_packet]

    @property
    def outsiders(self) -> list[ClassifiedPacket]:
        return [p for p in self.packets if not p.packet_class.is_test_packet]

    def class_counts(self) -> dict[PacketClass, int]:
        """Packets per primary class.  Conservation invariant: the
        values always sum to ``len(self.packets)`` — trivially (and
        importantly for streaming consumers) also for empty traces."""
        counts = Counter(p.packet_class for p in self.packets)
        return {cls: counts.get(cls, 0) for cls in CLASS_ORDER}


def _classify_outsider(data: bytes) -> PacketClass:
    """Damage heuristic for foreign packets: without ground truth, the
    Ethernet CRC is the only oracle (the paper's tool had the same
    limitation — weak foreign packets failing CRC are "damaged")."""
    if len(data) > NETWORK_ID_LEN and check_fcs(data[NETWORK_ID_LEN:]):
        return PacketClass.OUTSIDER_UNDAMAGED
    return PacketClass.OUTSIDER_DAMAGED


# Records are matched in batches of this many: large enough that the
# bulk matcher's whole-matrix reductions amortize, small enough that the
# materialized byte matrix stays cache-friendly (~2 MB per chunk).
MATCH_CHUNK_RECORDS = 2048


class IncrementalClassifier:
    """Online matching + damage classification over arriving frames.

    The streaming core that :func:`classify_trace` (batch) and the
    :mod:`repro.serve` ingest service (online) share.  Feed frame
    chunks as they arrive — record lists via :meth:`feed_records`,
    columnar slices via :meth:`feed_columnar` — in any chunking; every
    verdict depends only on its own record's bytes, so the output is
    byte-identical for chunk size 1, 7, or the whole trial.  The
    classifier maintains running verdicts (:attr:`packets`) and
    per-class counts (:attr:`class_counts`); :meth:`finish` wraps them
    into the :class:`ClassifiedTrace` the batch API returns, and
    :meth:`verdict_columns` exports them as compact numpy columns for
    pool/wire boundaries.

    Zero-record traces and zero-length chunks are routine (an idle
    server session is exactly that) and feed through without raising.
    """

    def __init__(
        self,
        spec,
        packets_sent: int,
        *,
        matcher: Optional[TraceMatcher] = None,
        collect_packets: bool = True,
    ) -> None:
        self.matcher = (
            matcher
            if matcher is not None
            else TraceMatcher(spec, packets_sent)
        )
        self.collect_packets = collect_packets
        self.packets: list[ClassifiedPacket] = []
        self.records_seen = 0
        self.class_counts: Counter = Counter()
        self._column_chunks: list[dict] = []

    # ------------------------------------------------------------------
    def _note(self, packet: ClassifiedPacket) -> ClassifiedPacket:
        if self.collect_packets:
            self.packets.append(packet)
        self.records_seen += 1
        self.class_counts[packet.packet_class] += 1
        return packet

    def _note_chunk(self, packets: list[ClassifiedPacket]) -> None:
        """Batched :meth:`_note`: one extend + one counter update."""
        if self.collect_packets:
            self.packets.extend(packets)
        self.records_seen += len(packets)
        self.class_counts.update(p.packet_class for p in packets)

    def feed_records(
        self, records: Sequence[PacketRecord]
    ) -> list[ClassifiedPacket]:
        """Classify a chunk of records (the v1 / in-memory path).

        Internally re-chunks at :data:`MATCH_CHUNK_RECORDS` so huge
        feeds stay cache-friendly; matching runs through the batched
        fast path (:meth:`TraceMatcher.match_records_arrays`) — the
        clean majority resolves as array columns, never materializing
        bytes or :class:`MatchResult` objects — with only the damaged
        minority falling back to the scalar voting/header procedure.
        Returns the newly classified packets (also appended to
        :attr:`packets`).
        """
        matcher = self.matcher
        out: list[ClassifiedPacket] = []
        for chunk_start in range(0, len(records), MATCH_CHUNK_RECORDS):
            chunk = records[chunk_start : chunk_start + MATCH_CHUNK_RECORDS]
            with _obs.span("profile.classify_chunk"):
                exact, sequences, datas = matcher.match_records_arrays(chunk)
                seq_list = sequences.tolist()
                chunk_out: list[ClassifiedPacket] = []
                for offset, record in enumerate(chunk):
                    if exact[offset]:
                        # Exact fast-path rows are by definition
                        # undamaged with a known sequence — identical
                        # to _classify_one's verdict for them.
                        chunk_out.append(
                            ClassifiedPacket(
                                record=record,
                                packet_class=PacketClass.UNDAMAGED,
                                sequence=seq_list[offset],
                            )
                        )
                        continue
                    data = datas[offset]
                    if data is None:
                        data = record.data
                    match = matcher.match_bytes(data, skip_fast=True)
                    chunk_out.append(
                        _classify_one(matcher, record, data, match)
                    )
                self._note_chunk(chunk_out)
                out.extend(chunk_out)
                if not self.collect_packets:
                    self._column_chunks.append(
                        _columns_from_packets(chunk_out)
                    )
        return out

    def feed_columnar(
        self,
        trace: ColumnarTrace,
        start: int = 0,
        stop: Optional[int] = None,
    ) -> list[ClassifiedPacket]:
        """Classify rows ``[start, stop)`` of a columnar trace.

        The zero-copy route: frame matrices are sliced straight off the
        flat payload and fed to :meth:`TraceMatcher.match_matrix`; the
        undamaged majority never materializes per-packet records or
        bytes — classified packets carry lazy record views instead.
        Byte-for-byte the same verdicts as the record-list path.
        """
        matcher = self.matcher
        lengths = trace.lengths
        n = trace.packets_received
        if stop is None:
            stop = n
        stop = min(stop, n)
        if not self.collect_packets:
            self._feed_columnar_vectorized(trace, start, stop)
            return []
        out: list[ClassifiedPacket] = []
        for chunk_start in range(start, stop, MATCH_CHUNK_RECORDS):
            chunk_stop = min(chunk_start + MATCH_CHUNK_RECORDS, stop)
            with _obs.span("profile.classify_chunk"):
                chunk_lengths = lengths[chunk_start:chunk_stop]
                m = chunk_stop - chunk_start
                exact = np.zeros(m, dtype=bool)
                sequences = np.full(m, -1, dtype=np.int64)
                full_local = np.nonzero(chunk_lengths == FRAME_BYTES)[0]
                if full_local.size:
                    matrix = trace.frame_matrix(
                        chunk_start + full_local, FRAME_BYTES
                    )
                    ex, matched = matcher.match_matrix_arrays(matrix)
                    exact[full_local[ex]] = True
                    sequences[full_local[ex]] = matched[ex]
                seq_list = sequences.tolist()
                lengths_list = chunk_lengths.tolist()
                chunk_out: list[ClassifiedPacket] = []
                for offset, index in enumerate(
                    range(chunk_start, chunk_stop)
                ):
                    if exact[offset]:
                        chunk_out.append(
                            ClassifiedPacket(
                                record=trace.record_view(index),
                                packet_class=PacketClass.UNDAMAGED,
                                sequence=seq_list[offset],
                            )
                        )
                        continue
                    data = trace.data(index)
                    match = matcher.match_bytes(data, skip_fast=True)
                    chunk_out.append(
                        _classify_one(
                            matcher,
                            trace.record_view(index),
                            data,
                            match,
                            length=lengths_list[offset],
                        )
                    )
                self._note_chunk(chunk_out)
                out.extend(chunk_out)
        return out

    def _feed_columnar_vectorized(
        self, trace: ColumnarTrace, start: int, stop: int
    ) -> None:
        """Columns-only twin of the columnar loop (``collect_packets``
        off): verdicts land straight in numpy columns, so the clean
        majority never materializes a single per-packet Python object.
        Exact fast-path rows are *by definition* undamaged with a known
        sequence — identical to what :func:`_classify_one` returns for
        them — and only the damaged minority runs the scalar fallback.
        The streaming server's hot path.
        """
        matcher = self.matcher
        lengths = trace.lengths
        undamaged_code = CLASS_CODE[PacketClass.UNDAMAGED]
        for chunk_start in range(start, stop, MATCH_CHUNK_RECORDS):
            chunk_stop = min(chunk_start + MATCH_CHUNK_RECORDS, stop)
            with _obs.span("profile.classify_chunk"):
                m = chunk_stop - chunk_start
                codes = np.full(m, undamaged_code, dtype=np.uint8)
                sequences = np.full(m, -1, dtype=np.int64)
                wrapper = np.zeros(m, dtype=bool)
                body_bits = np.zeros(m, dtype=np.int64)
                truncated = np.zeros(m, dtype=np.int32)
                chunk_lengths = lengths[chunk_start:chunk_stop]
                resolved = np.zeros(m, dtype=bool)
                full_local = np.nonzero(chunk_lengths == FRAME_BYTES)[0]
                if full_local.size:
                    matrix = trace.frame_matrix(
                        chunk_start + full_local, FRAME_BYTES
                    )
                    exact, matched = matcher.match_matrix_arrays(matrix)
                    hit_local = full_local[exact]
                    resolved[hit_local] = True
                    sequences[hit_local] = matched[exact]
                for offset in np.nonzero(~resolved)[0].tolist():
                    index = chunk_start + offset
                    data = trace.data(index)
                    match = matcher.match_bytes(data, skip_fast=True)
                    packet = _classify_one(
                        matcher,
                        trace.record_view(index),
                        data,
                        match,
                        length=int(chunk_lengths[offset]),
                    )
                    codes[offset] = CLASS_CODE[packet.packet_class]
                    sequences[offset] = (
                        -1 if packet.sequence is None else packet.sequence
                    )
                    wrapper[offset] = packet.wrapper_damaged
                    body_bits[offset] = packet.body_bits_damaged
                    truncated[offset] = packet.truncated_bytes_missing
                self._column_chunks.append({
                    "class_codes": codes,
                    "sequences": sequences,
                    "wrapper_damaged": wrapper,
                    "body_bits_damaged": body_bits,
                    "truncated_missing": truncated,
                })
                self.records_seen += m
                for code, count in enumerate(
                    np.bincount(codes, minlength=len(CLASS_ORDER)).tolist()
                ):
                    if count:
                        self.class_counts[CLASS_ORDER[code]] += count

    def feed(self, trace: AnyTrace) -> list[ClassifiedPacket]:
        """Classify a whole trace-shaped chunk (dispatch on its type)."""
        if isinstance(trace, ColumnarTrace):
            return self.feed_columnar(trace)
        return self.feed_records(trace.records)

    # ------------------------------------------------------------------
    def verdict_columns(self) -> dict:
        """The running verdicts as compact numpy columns.

        Same encoding the parallel handoff uses (``class_codes`` index
        :data:`CLASS_ORDER`; ``sequences`` holds -1 for "none"): cheap
        to pickle across a pool boundary or frame onto a wire.
        """
        if not self.collect_packets:
            chunks = self._column_chunks
            if len(chunks) == 1:
                return dict(chunks[0])
            if not chunks:
                return _columns_from_packets([])
            return {
                key: np.concatenate([chunk[key] for chunk in chunks])
                for key in chunks[0]
            }
        return _columns_from_packets(self.packets)

    def count_summary(self) -> dict[str, int]:
        """JSON-friendly per-class counts (zero-filled, conserved)."""
        return {
            cls.value: self.class_counts.get(cls, 0) for cls in CLASS_ORDER
        }

    def finish(self, trace: AnyTrace) -> ClassifiedTrace:
        """Wrap the running verdicts as the batch-API result object."""
        if not self.collect_packets:
            raise RuntimeError(
                "finish() needs per-packet results; this classifier was "
                "built with collect_packets=False (columns only)"
            )
        return ClassifiedTrace(trace=trace, packets=self.packets)


def _columns_from_packets(
    packets: Sequence[ClassifiedPacket],
) -> dict:
    """Pack classified packets into the compact verdict columns."""
    n = len(packets)
    class_codes = np.empty(n, dtype=np.uint8)
    sequences = np.empty(n, dtype=np.int64)
    wrapper_damaged = np.empty(n, dtype=bool)
    body_bits = np.empty(n, dtype=np.int64)
    truncated = np.empty(n, dtype=np.int32)
    for index, packet in enumerate(packets):
        class_codes[index] = CLASS_CODE[packet.packet_class]
        sequences[index] = (
            -1 if packet.sequence is None else packet.sequence
        )
        wrapper_damaged[index] = packet.wrapper_damaged
        body_bits[index] = packet.body_bits_damaged
        truncated[index] = packet.truncated_bytes_missing
    return {
        "class_codes": class_codes,
        "sequences": sequences,
        "wrapper_damaged": wrapper_damaged,
        "body_bits_damaged": body_bits,
        "truncated_missing": truncated,
    }


def verdict_row_bytes(columns: dict) -> bytes:
    """Verdict columns re-packed as per-record rows, for digesting.

    Streaming consumers prove byte-identity with the batch path by
    hashing verdicts as they arrive; hashing column-by-column would
    make the digest depend on where chunk boundaries fell.  Row-major
    packing is concatenation-stable: ``rows(A) + rows(B) ==
    rows(A + B)`` for any split, so one running hash over any chunking
    equals the hash of the whole trace's columns.
    """
    codes = np.asarray(columns["class_codes"])
    rows = np.empty(
        codes.shape[0],
        dtype=[
            ("code", "u1"),
            ("sequence", "<i8"),
            ("wrapper", "u1"),
            ("body_bits", "<i8"),
            ("truncated", "<i4"),
        ],
    )
    rows["code"] = codes
    rows["sequence"] = columns["sequences"]
    rows["wrapper"] = columns["wrapper_damaged"]
    rows["body_bits"] = columns["body_bits_damaged"]
    rows["truncated"] = columns["truncated_missing"]
    return rows.tobytes()


def classify_trace(trace: AnyTrace) -> ClassifiedTrace:
    """Run matching + damage classification over a whole trial.

    A thin batch wrapper over :class:`IncrementalClassifier` — one
    classifier, the whole trace fed as a single chunk (the classifier
    re-chunks internally for cache friendliness), results identical to
    any streamed chunking of the same records.
    """
    classifier = IncrementalClassifier(trace.spec, trace.packets_sent)
    with _obs.trace_span(
        "analysis.classify",
        records=trace.packets_received,
        columnar=isinstance(trace, ColumnarTrace),
    ):
        classifier.feed(trace)
    return classifier.finish(trace)


def _classify_one(
    matcher: TraceMatcher,
    record: PacketRecord,
    data: Optional[bytes],
    match: MatchResult,
    length: Optional[int] = None,
) -> ClassifiedPacket:
    """Turn one record's match result into its classification.

    ``data`` may be ``None`` on the columnar path — but only for exact
    (fast-path) matches, whose branches never touch the bytes; every
    fallback verdict (outsiders, voting, header-led) arrives with the
    frame already materialized.
    """
    if length is None:
        length = len(data)
    if match.outcome is MatchOutcome.OUTSIDER:
        return ClassifiedPacket(
            record=record, packet_class=_classify_outsider(data)
        )
    sequence = match.sequence
    if sequence is None:
        # Confident test packet, ambiguous sequence: the IP id only
        # carries seq mod 2^16 and no surviving byte broke the tie
        # between trial epochs.  These are (near-)always deeply
        # truncated frames; classify the damage without claiming a
        # sequence rather than guessing the wrong epoch.
        assert match.ambiguous
        return ClassifiedPacket(
            record=record,
            packet_class=PacketClass.TRUNCATED
            if length < FRAME_BYTES
            else PacketClass.WRAPPER_DAMAGED,
            truncated_bytes_missing=max(0, FRAME_BYTES - length),
        )
    if match.exact:
        return ClassifiedPacket(
            record=record,
            packet_class=PacketClass.UNDAMAGED,
            sequence=sequence,
        )
    if length < FRAME_BYTES:
        return ClassifiedPacket(
            record=record,
            packet_class=PacketClass.TRUNCATED,
            sequence=sequence,
            truncated_bytes_missing=FRAME_BYTES - length,
        )
    syndrome = extract_syndrome(data, sequence, matcher.factory)
    if syndrome.body_bits_damaged > 0:
        packet_class = PacketClass.BODY_DAMAGED
    elif syndrome.wrapper_damaged:
        packet_class = PacketClass.WRAPPER_DAMAGED
    else:
        packet_class = PacketClass.UNDAMAGED
    return ClassifiedPacket(
        record=record,
        packet_class=packet_class,
        sequence=sequence,
        syndrome=syndrome,
        wrapper_damaged=syndrome.wrapper_damaged,
        body_bits_damaged=syndrome.body_bits_damaged,
    )
