"""Offline trace analysis — the paper's core methodological contribution.

Given a :class:`~repro.trace.records.TrialTrace` (raw received bytes +
modem status per packet, CRC filtering disabled), this package:

1. heuristically decides which received packets belong to the test
   series, and recovers each one's sequence number even in the face of
   substantial corruption (:mod:`~repro.analysis.matching`);
2. classifies each test packet as undamaged / truncated / wrapper
   damaged / body damaged, and everything unmatched as an "outsider"
   (:mod:`~repro.analysis.classify`);
3. extracts estimated error syndromes (bit corruption patterns) for
   damaged-but-not-truncated packets (:mod:`~repro.analysis.syndrome`);
4. computes the Table-1 metrics — packet loss, truncations, bits
   received, wrapper damage, body bits damaged, worst body
   (:mod:`~repro.analysis.metrics`);
5. summarizes the signal metrics per packet class the way the paper's
   tables do: min, mean, (sd), max (:mod:`~repro.analysis.signalstats`);
6. renders paper-style ASCII tables (:mod:`~repro.analysis.tables`).

Everything here consumes only what the modified driver logged; the
simulator's ground truth is never used (the test suite *checks* the
pipeline against ground truth, which is a luxury the paper's authors
did not have).
"""

from repro.analysis.burststats import BurstStatistics, burst_statistics
from repro.analysis.classify import ClassifiedPacket, PacketClass, classify_trace
from repro.analysis.matching import MatchOutcome, MatchResult, match_record
from repro.analysis.metrics import TrialMetrics, analyze_trial
from repro.analysis.signalstats import SignalStats, signal_stats_by_class
from repro.analysis.syndrome import ErrorSyndrome, extract_syndrome
from repro.analysis.tables import render_metrics_table, render_signal_table

__all__ = [
    "BurstStatistics",
    "ClassifiedPacket",
    "ErrorSyndrome",
    "MatchOutcome",
    "MatchResult",
    "PacketClass",
    "SignalStats",
    "TrialMetrics",
    "analyze_trial",
    "burst_statistics",
    "classify_trace",
    "extract_syndrome",
    "match_record",
    "render_metrics_table",
    "render_signal_table",
    "signal_stats_by_class",
]
