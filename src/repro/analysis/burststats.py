"""Channel burst characterization from extracted syndromes.

"Information on the frequency and nature of errors is needed to select
the method of dealing with the problem ... the most appropriate
solution depends in part on the nature of the error patterns"
(Section 1).  This module turns a classified trace's syndromes into
the statistics an FEC designer needs:

* burst-length and burst-gap distributions;
* a fitted :class:`~repro.phy.gilbert.GilbertElliott` process with the
  same mean burst length and mean BER — closing the loop between the
  measured channel and the burst-ablation model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.classify import ClassifiedTrace, PacketClass
from repro.framing.testpacket import BODY_BITS
from repro.phy.gilbert import GilbertElliott

BURST_GAP_BITS = 32  # bits of clean channel that end a burst


@dataclass
class BurstStatistics:
    """Burst structure of one trial's body-bit errors."""

    packets_analyzed: int
    packets_with_errors: int
    total_error_bits: int
    total_body_bits: int
    burst_lengths: list[int] = field(default_factory=list)
    burst_sizes: list[int] = field(default_factory=list)  # errors per burst

    @property
    def mean_ber(self) -> float:
        if self.total_body_bits == 0:
            return 0.0
        return self.total_error_bits / self.total_body_bits

    @property
    def burst_count(self) -> int:
        return len(self.burst_lengths)

    @property
    def mean_burst_span_bits(self) -> float:
        """Mean first-to-last span of a burst."""
        if not self.burst_lengths:
            return 0.0
        return float(np.mean(self.burst_lengths))

    @property
    def mean_burst_errors(self) -> float:
        if not self.burst_sizes:
            return 0.0
        return float(np.mean(self.burst_sizes))

    @property
    def burstiness_ratio(self) -> float:
        """Mean errors per burst; 1.0 means the channel is effectively
        i.i.d. (every error is its own burst), larger means bursty."""
        return self.mean_burst_errors if self.burst_sizes else 1.0

    def fitted_gilbert_elliott(self, bad_ber: float = 0.25) -> GilbertElliott:
        """A Gilbert–Elliott process matching the measured statistics."""
        mean_burst = max(1.0, self.mean_burst_span_bits)
        mean_ber = max(1e-12, self.mean_ber)
        return GilbertElliott.calibrated_to_syndromes(
            mean_burst_bits=mean_burst, mean_ber=mean_ber, bad_ber=bad_ber
        )


def burst_statistics(
    classified: ClassifiedTrace, max_gap_bits: int = BURST_GAP_BITS
) -> BurstStatistics:
    """Extract burst structure from a classified trace's body syndromes.

    Truncated packets contribute no syndrome (their damage is
    positionally ambiguous, per the paper's methodology); undamaged
    packets contribute clean body bits to the denominator.
    """
    stats = BurstStatistics(
        packets_analyzed=0,
        packets_with_errors=0,
        total_error_bits=0,
        total_body_bits=0,
    )
    for packet in classified.test_packets:
        if packet.packet_class is PacketClass.TRUNCATED:
            continue
        stats.packets_analyzed += 1
        stats.total_body_bits += BODY_BITS
        syndrome = packet.syndrome
        if syndrome is None or syndrome.body_bits_damaged == 0:
            continue
        stats.packets_with_errors += 1
        stats.total_error_bits += syndrome.body_bits_damaged
        for start, end in syndrome.burst_spans(max_gap_bits=max_gap_bits):
            stats.burst_lengths.append(end - start + 1)
        # Count errors per burst.
        positions = np.sort(syndrome.body_bit_positions)
        current = 1
        for gap in np.diff(positions):
            if gap > max_gap_bits:
                stats.burst_sizes.append(current)
                current = 1
            else:
                current += 1
        stats.burst_sizes.append(current)
    return stats
