"""Heuristic test-packet identification and sequence recovery.

The paper (Section 4): "we ... use a heuristic matching procedure to
determine whether a given packet is one of the test series" and "a
second heuristic procedure to determine the sequence number of any
packet we believe is a test packet."

The test packets were designed for this: the body is a single 32-bit
word repeated 256 times, so a **majority vote over the body words**
recovers the sequence number through substantial corruption, and the
wrapper can then be compared against the expected header bytes for that
sequence.  The procedure here:

1. *Fast path* — frame is full length, body words unanimous, wrapper
   byte-identical to the expected frame: undamaged test packet.
2. *Voting path* — take all complete 32-bit words from the (possibly
   truncated) body region, find the plurality value; if it wins enough
   support and implies a plausible sequence number, score the wrapper
   against the expected template.  A combined body+wrapper score above
   threshold ⇒ test packet.
3. *Header path* — when the body is gone (deep truncation) or garbled
   beyond voting, a near-perfect header still identifies a test packet
   and the IP identification field (which the sender loads with the low
   16 bits of the sequence number) recovers the sequence.
4. Otherwise ⇒ outsider.  (The paper: "It is possible ... that some
   packets we identify as outsiders may instead be badly corrupted test
   packets."  The same ambiguity shrinks but persists here, and the
   integration tests measure how rarely it bites.)
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro import compiled as _compiled
from repro.obs import runtime as _obs
from repro.framing.testpacket import (
    BODY_START,
    FRAME_BYTES,
    TestPacketFactory,
    TestPacketSpec,
    WORD_BYTES,
)
from repro.trace.records import PacketRecord

# Minimum complete body words needed before a majority vote is trusted.
MIN_WORDS_FOR_VOTE = 8
# The winning word must carry at least this fraction of the vote.  The
# bar can be low because corrupted words scatter to essentially unique
# values (a 12% plurality among 100+ words is overwhelming) and a voted
# match must still pass the wrapper-score check.
MIN_VOTE_FRACTION = 0.12
# Sequence numbers this far beyond the number of packets sent are
# implausible and rejected.
SEQUENCE_SLACK = 16
# Fraction of wrapper bytes that must match the expected template for a
# voted match to be accepted (guards against foreign frames whose
# payload happens to repeat a word).
MIN_WRAPPER_SCORE = 0.5
# Header-led fallback: when the body is gone (deep truncation) or too
# corrupted to vote, an almost-intact header still identifies a test
# packet, and the IP identification field carries the low 16 bits of
# the sequence number.  The bar is high because the header is short.
MIN_HEADER_SCORE = 0.85
IP_ID_OFFSET = 20  # bytes: modem(2) + eth(14) + ip version..ttl(4)


def _plurality(words: np.ndarray) -> tuple[int, int]:
    """Winning word value and its count over an int array.

    Ties break toward the value that occurs *first* in ``words`` —
    the behaviour ``collections.Counter.most_common`` had here (its
    sort is stable over insertion order), preserved so the voting
    verdicts are bit-compatible with the old implementation.  The
    numpy path is the executable reference for
    :func:`repro.compiled.plurality_vote`.
    """
    if _compiled.compiled_enabled():
        return _compiled.plurality_vote(words)
    values, first, counts = np.unique(
        words, return_index=True, return_counts=True
    )
    best = counts.max()
    tied = counts == best
    winner = values[tied][np.argmin(first[tied])]
    return int(winner), int(best)


class MatchOutcome(enum.Enum):
    """Verdict of the matching procedure for one record."""

    TEST_PACKET = "test"
    OUTSIDER = "outsider"


@dataclass
class MatchResult:
    """Outcome plus the recovered sequence number (test packets only)."""

    outcome: MatchOutcome
    sequence: Optional[int] = None
    exact: bool = False  # fast path: byte-identical to the pristine frame
    vote_fraction: float = 0.0
    wrapper_score: float = 0.0
    # True when the body was useless and the headers (plus the IP
    # identification field) carried the identification.
    header_led: bool = False
    # True when the record is confidently a test packet but the exact
    # sequence could not be pinned down (the IP id only carries the low
    # 16 bits; in trials longer than 2^16 packets several sequences
    # share it, and the bytes that could break the tie were damaged or
    # missing).  ``sequence`` is None in that case.
    ambiguous: bool = False


def _path_counter_name(result: MatchResult) -> str:
    """Which ``match.*`` counter a finished match result lands in."""
    if result.outcome is MatchOutcome.OUTSIDER:
        return "match.outsiders"
    if result.exact:
        return "match.fast_path_hits"
    if result.ambiguous:
        return "match.header_ambiguous"
    if result.header_led:
        return "match.header_path_hits"
    return "match.voting_path_hits"


class TraceMatcher:
    """Matches records against one trial's test-packet series.

    Holds the spec (the experimenters knew their own configuration) and
    the number of packets sent (they ran the sender), which bounds
    plausible sequence numbers.
    """

    def __init__(self, spec: TestPacketSpec, packets_sent: int) -> None:
        self.spec = spec
        self.packets_sent = packets_sent
        self.factory = TestPacketFactory(spec)
        self._bank: Optional[np.ndarray] = None

    def enable_template_cache(self, max_records: int = 65_536) -> bool:
        """Precompute the full template bank for this trial's sequences.

        The fast path's dominant cost on clean traffic is rebuilding
        expected frames (:meth:`TestPacketFactory.build_bulk`) for every
        candidate row.  A batch run pays that once per trace; a
        long-lived ingest session (:mod:`repro.serve`) matching many
        streams of the same series would pay it per chunk, forever.
        Caching every possible template turns the rebuild into a row
        gather.  Declined (returns False) when the bank would exceed
        ``max_records`` rows (~1 KB each) — the cache is a speed/memory
        trade the caller opts into, never a surprise allocation.
        """
        total = self.packets_sent + SEQUENCE_SLACK
        if total > max_records:
            return False
        if self._bank is None:
            self._bank = self.factory.build_bulk(
                np.arange(total, dtype=np.int64)
            )
        return True

    def _template_rows(self, sequences: np.ndarray) -> np.ndarray:
        """Expected frames for ``sequences``: cached gather or rebuild."""
        if self._bank is not None:
            return self._bank[sequences]
        return self.factory.build_bulk(sequences)

    # ------------------------------------------------------------------
    def match(self, record: PacketRecord) -> MatchResult:
        """Classify one record as test packet (with sequence) or outsider."""
        return self.match_bytes(record.data)

    def match_bytes(self, data: bytes, skip_fast: bool = False) -> MatchResult:
        """Like :meth:`match` for callers that already hold the bytes.

        ``skip_fast`` elides the exact-comparison fast path; callers use
        it after :meth:`match_bulk` has already proven the record is not
        byte-identical to any plausible template.
        """
        state = _obs.STATE
        if not state.enabled:
            return self._match_impl(data, skip_fast)
        if state.profiling:
            with state.metrics.timer("profile.match").time():
                result = self._match_impl(data, skip_fast)
        else:
            result = self._match_impl(data, skip_fast)
        state.metrics.counter(_path_counter_name(result)).inc()
        return result

    def match_bulk(self, datas: Sequence[bytes]) -> list[Optional[MatchResult]]:
        """Batched fast path over many records at once.

        Returns one entry per input: a fast-path :class:`MatchResult`
        where the record is byte-identical to its expected frame, else
        ``None`` (caller falls back to ``match_bytes(data,
        skip_fast=True)``).  The criteria are exactly those of
        :meth:`_fast_match` — full length, unanimous body words,
        plausible sequence, byte equality against the template bank —
        evaluated as whole-matrix reductions.
        """
        results: list[Optional[MatchResult]] = [None] * len(datas)
        full_rows = [i for i, data in enumerate(datas) if len(data) == FRAME_BYTES]
        if not full_rows:
            return results
        matrix = np.frombuffer(
            b"".join(datas[i] for i in full_rows), dtype=np.uint8
        ).reshape(len(full_rows), FRAME_BYTES)
        for row, match in enumerate(self.match_matrix(matrix)):
            results[full_rows[row]] = match
        return results

    def match_matrix(
        self, matrix: np.ndarray
    ) -> list[Optional[MatchResult]]:
        """The fast path over an ``(n, FRAME_BYTES)`` uint8 matrix.

        The columnar analysis path (:class:`repro.trace.columnar
        .ColumnarTrace`) feeds frame matrices straight off the
        memory-mapped payload — no per-record bytes objects are ever
        created for the rows this method resolves.  Same contract as
        :meth:`match_bulk`: a fast-path result per exactly-matching
        row, ``None`` elsewhere.
        """
        results: list[Optional[MatchResult]] = [None] * matrix.shape[0]
        if not matrix.shape[0]:
            return results
        exact, sequences = self.match_matrix_arrays(matrix)
        for row in np.nonzero(exact)[0].tolist():
            results[row] = MatchResult(
                MatchOutcome.TEST_PACKET,
                sequence=int(sequences[row]),
                exact=True,
                vote_fraction=1.0,
                wrapper_score=1.0,
            )
        return results

    def match_matrix_arrays(
        self, matrix: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """The fast path as pure arrays: no per-row result objects.

        Returns ``(exact, sequences)`` — a bool mask of rows that are
        byte-identical to their expected frame, and the matched
        sequence per hit row (-1 elsewhere).  This is the whole per-row
        cost for clean traffic; consumers that only need verdict
        columns (the streaming classifier) skip :class:`MatchResult`
        construction entirely and stay vectorized end to end.
        """
        n = matrix.shape[0]
        exact = np.zeros(n, dtype=bool)
        matched = np.full(n, -1, dtype=np.int64)
        if not n:
            return exact, matched
        if self._bank is not None:
            # Template-bank route (the streaming hot path): the first
            # body word alone names the candidate sequence, the cached
            # bank row is a cheap gather, and one whole-row equality
            # settles it.  Byte equality against the template *implies*
            # body unanimity (the template's body is one word repeated),
            # so the unanimity prefilter below is redundant here — the
            # verdicts are identical, minus two full-matrix passes and
            # two fancy-index copies.  Rows are compared as u64 lanes
            # (FRAME_BYTES is 8-aligned) to shrink the boolean temp 8x.
            word = np.ascontiguousarray(
                matrix[:, BODY_START : BODY_START + 4]
            ).view(">u4")[:, 0]
            sequences = (
                word.astype(np.int64) - self.spec.first_sequence
            ) & 0xFFFFFFFF
            plausible = sequences < self.packets_sent + SEQUENCE_SLACK
            first = int(sequences[0])
            if (
                first + n <= self._bank.shape[0]
                and bool(
                    (sequences == np.arange(first, first + n)).all()
                )
            ):
                # In-order chunk of a mostly-clean stream: the
                # candidate sequences are consecutive, so the bank rows
                # are one contiguous *view* — no fancy-index copy of
                # FRAME_BYTES per record, which at streaming rates is
                # the single largest memory cost of the whole kernel.
                bank = self._bank[first : first + n]
            else:
                bank = self._bank[np.where(plausible, sequences, 0)]
            if matrix.flags.c_contiguous:
                hit = (
                    matrix.view(np.uint64) == bank.view(np.uint64)
                ).all(axis=1)
            else:
                hit = (matrix == bank).all(axis=1)
            hit &= plausible
            exact[hit] = True
            matched[hit] = sequences[hit]
        else:
            # Bankless route (one-shot batch callers): keep the body
            # unanimity prefilter so templates are only *built* for
            # plausible candidates — build_bulk dwarfs the filter cost.
            body = np.ascontiguousarray(
                matrix[:, BODY_START : FRAME_BYTES - 4]
            ).view(">u4")
            unanimous = (body == body[:, :1]).all(axis=1)
            sequences = (
                body[:, 0].astype(np.int64) - self.spec.first_sequence
            ) & 0xFFFFFFFF
            candidates = unanimous & (
                sequences < self.packets_sent + SEQUENCE_SLACK
            )
            if candidates.any():
                rows = np.nonzero(candidates)[0]
                bank = self._template_rows(sequences[rows])
                hit = (matrix[rows] == bank).all(axis=1)
                hit_rows = rows[hit]
                exact[hit_rows] = True
                matched[hit_rows] = sequences[hit_rows]
        state = _obs.STATE
        if state.enabled:
            hits = int(exact.sum())
            if hits:
                state.metrics.counter("match.fast_path_hits").inc(hits)
        return exact, matched

    def match_records_arrays(
        self, records: Sequence[PacketRecord]
    ) -> tuple[np.ndarray, np.ndarray, list[Optional[bytes]]]:
        """The fast path over a chunk of records, bytes left lazy.

        Returns ``(exact, sequences, datas)``: the
        :meth:`match_matrix_arrays` verdict per record plus a bytes
        list populated *only* for the rows the fast path did not
        resolve (exactly the rows a caller must run the scalar
        fallback on).  Records stored as pristine references to this
        matcher's own spec are resolved without ever materializing
        their frames: ``record.data`` is *defined* as
        ``factory.build(sequence)``, and with equal specs that is
        byte-identical to the template the fast path would compare it
        against — so byte equality holds by construction and only the
        sequence-plausibility bound needs checking.  Explicit
        full-length rows still go through the whole-matrix comparison.
        """
        n = len(records)
        exact = np.zeros(n, dtype=bool)
        matched = np.full(n, -1, dtype=np.int64)
        datas: list[Optional[bytes]] = [None] * n
        if not n:
            return exact, matched, datas
        spec_ok: dict[int, bool] = {}
        pristine_rows: list[int] = []
        pristine_seqs: list[int] = []
        explicit_full: list[int] = []
        for index, record in enumerate(records):
            data = record._data
            if data is None:
                ref = record._pristine_ref
                if ref is not None:
                    factory = ref[0]
                    known = spec_ok.get(id(factory))
                    if known is None:
                        known = factory.spec == self.spec
                        spec_ok[id(factory)] = known
                    if known:
                        pristine_rows.append(index)
                        pristine_seqs.append(ref[1])
                        continue
                data = record.data  # foreign spec: no shortcut
                datas[index] = data
            else:
                datas[index] = data
            if len(data) == FRAME_BYTES:
                explicit_full.append(index)
        if pristine_rows:
            rows = np.asarray(pristine_rows, dtype=np.int64)
            seqs = np.asarray(pristine_seqs, dtype=np.int64)
            plausible = seqs < self.packets_sent + SEQUENCE_SLACK
            hit_rows = rows[plausible]
            exact[hit_rows] = True
            matched[hit_rows] = seqs[plausible]
            state = _obs.STATE
            if state.enabled and hit_rows.size:
                state.metrics.counter("match.fast_path_hits").inc(
                    int(hit_rows.size)
                )
            for row in rows[~plausible].tolist():
                datas[row] = records[row].data  # implausible: fall back
        if explicit_full:
            matrix = np.frombuffer(
                b"".join(datas[i] for i in explicit_full), dtype=np.uint8
            ).reshape(len(explicit_full), FRAME_BYTES)
            ex, seqs = self.match_matrix_arrays(matrix)
            rows = np.asarray(explicit_full, dtype=np.int64)
            hit_rows = rows[ex]
            exact[hit_rows] = True
            matched[hit_rows] = seqs[ex]
        return exact, matched, datas

    def _match_impl(self, data: bytes, skip_fast: bool = False) -> MatchResult:
        if not skip_fast:
            fast = self._fast_match(data)
            if fast is not None:
                return fast
        voted = self._voting_match(data)
        if voted.outcome is MatchOutcome.TEST_PACKET:
            return voted
        header = self._header_match(data)
        if header is not None:
            return header
        return voted

    # ------------------------------------------------------------------
    def _fast_match(self, data: bytes) -> Optional[MatchResult]:
        """Exact comparison for the common undamaged case."""
        if len(data) != FRAME_BYTES:
            return None
        body = np.frombuffer(data, dtype=">u4", count=-1, offset=BODY_START)
        # The final 4 bytes are the FCS, not a body word.
        body = body[: (FRAME_BYTES - BODY_START - 4) // WORD_BYTES]
        if not bool((body == body[0]).all()):
            return None
        sequence = self._sequence_from_word(int(body[0]))
        if sequence is None:
            return None
        if data == self.factory.build(sequence):
            return MatchResult(
                MatchOutcome.TEST_PACKET,
                sequence=sequence,
                exact=True,
                vote_fraction=1.0,
                wrapper_score=1.0,
            )
        return None  # fall through to the voting path

    def _voting_match(self, data: bytes) -> MatchResult:
        """Majority vote over body words + wrapper scoring."""
        body_bytes = data[BODY_START:]
        # Exclude a trailing FCS only when the frame is full length; a
        # truncated frame's tail is body bytes.
        if len(data) == FRAME_BYTES:
            body_bytes = data[BODY_START : FRAME_BYTES - 4]
        complete_words = len(body_bytes) // WORD_BYTES
        if complete_words < MIN_WORDS_FOR_VOTE:
            return MatchResult(MatchOutcome.OUTSIDER)
        words = np.frombuffer(
            body_bytes[: complete_words * WORD_BYTES], dtype=">u4"
        )
        winner, winner_count = _plurality(words.astype(np.int64))
        vote_fraction = winner_count / complete_words
        if vote_fraction < MIN_VOTE_FRACTION:
            return MatchResult(MatchOutcome.OUTSIDER, vote_fraction=vote_fraction)
        sequence = self._sequence_from_word(int(winner))
        if sequence is None:
            return MatchResult(MatchOutcome.OUTSIDER, vote_fraction=vote_fraction)
        wrapper_score = self._wrapper_score(data, sequence)
        if wrapper_score < MIN_WRAPPER_SCORE:
            return MatchResult(
                MatchOutcome.OUTSIDER,
                vote_fraction=vote_fraction,
                wrapper_score=wrapper_score,
            )
        return MatchResult(
            MatchOutcome.TEST_PACKET,
            sequence=sequence,
            vote_fraction=vote_fraction,
            wrapper_score=wrapper_score,
        )

    # ------------------------------------------------------------------
    def _sequence_from_word(self, word: int) -> Optional[int]:
        """Map a recovered body word back to a plausible sequence number."""
        sequence = (word - self.spec.first_sequence) & 0xFFFFFFFF
        if sequence >= self.packets_sent + SEQUENCE_SLACK:
            return None
        return sequence

    def _wrapper_score(self, data: bytes, sequence: int) -> float:
        """Fraction of received header bytes matching the expected frame.

        Only the leading wrapper (modem + Ethernet + IP + UDP headers)
        is scored: the FCS trailer is absent from truncated frames.
        """
        expected = self.factory.build(sequence)
        prefix_len = min(len(data), BODY_START)
        if prefix_len == 0:
            return 0.0
        received = np.frombuffer(data[:prefix_len], dtype=np.uint8)
        template = np.frombuffer(expected[:prefix_len], dtype=np.uint8)
        return float((received == template).mean())


    def _header_match(self, data: bytes) -> Optional[MatchResult]:
        """Header-led identification for body-destroyed packets.

        The paper's tooling did the analogous thing ("frequently we
        could determine that they were ARP packets" — and conversely,
        corrupted-station-address packets "associated with our test
        packets").  Requirements: enough prefix to read the IP id, an
        almost-intact wrapper (scored against the template with the
        sequence-dependent bytes excluded), and a plausible sequence in
        the id field.
        """
        if len(data) < IP_ID_OFFSET + 2:
            return None
        candidate_id = int.from_bytes(data[IP_ID_OFFSET : IP_ID_OFFSET + 2], "big")
        # The id carries seq mod 2^16, so every sequence congruent to it
        # below the plausibility bound is a candidate.  Trials of up to
        # 2^16 packets have at most one; longer trials (office5 at full
        # scale is 488k packets) alias seven or eight and need the
        # tie-break below.
        candidates = list(
            range(candidate_id, self.packets_sent + SEQUENCE_SLACK, 1 << 16)
        )
        if not candidates:
            return None
        # Score the wrapper once: the sequence-dependent bytes (IP
        # id+checksum, UDP checksum) are excluded because they prove
        # nothing beyond the id we already read — and with them masked,
        # every candidate's template is byte-identical in the prefix.
        expected = self.factory.build(candidates[0])
        prefix_len = min(len(data), BODY_START)
        received = np.frombuffer(data[:prefix_len], dtype=np.uint8)
        template = np.frombuffer(expected[:prefix_len], dtype=np.uint8)
        matches = received == template
        exclude = [20, 21, 26, 27, 42, 43]
        keep = np.ones(prefix_len, dtype=bool)
        for index in exclude:
            if index < prefix_len:
                keep[index] = False
        score = float(matches[keep].mean()) if keep.any() else 0.0
        if score < MIN_HEADER_SCORE:
            return None
        if len(candidates) == 1:
            sequence, ambiguous = candidates[0], False
        else:
            sequence, ambiguous = self._disambiguate(data, candidates)
        return MatchResult(
            MatchOutcome.TEST_PACKET,
            sequence=sequence,
            wrapper_score=score,
            header_led=True,
            ambiguous=ambiguous,
        )

    def _disambiguate(
        self, data: bytes, candidates: list[int]
    ) -> tuple[Optional[int], bool]:
        """Pick among sequences that share the same low 16 bits.

        Only bytes that depend on the *full* 32-bit sequence can break
        the tie: the UDP checksum (folded over the body word) and any
        surviving body bytes.  The IP id and IP checksum cannot — they
        are functions of seq mod 2^16 alone, identical for every
        candidate.  A unique best-scoring candidate wins; a tie (or no
        discriminating bytes at all) is reported as ambiguous rather
        than silently resolved to the wrong trial epoch.
        """
        length = min(len(data), FRAME_BYTES)
        scores = []
        for candidate in candidates:
            expected = self.factory.build(candidate)
            score = 0
            for index in (42, 43):  # UDP checksum
                if index < length and data[index] == expected[index]:
                    score += 1
            if length > BODY_START:
                received = np.frombuffer(data[BODY_START:length], dtype=np.uint8)
                template = np.frombuffer(
                    expected[BODY_START:length], dtype=np.uint8
                )
                score += int((received == template).sum())
            scores.append(score)
        best = max(scores)
        winners = [c for c, s in zip(candidates, scores) if s == best]
        if best > 0 and len(winners) == 1:
            return winners[0], False
        return None, True


def match_record(
    record: PacketRecord, spec: TestPacketSpec, packets_sent: int
) -> MatchResult:
    """One-shot convenience wrapper around :class:`TraceMatcher`."""
    return TraceMatcher(spec, packets_sent).match(record)
