"""The paper's test packet format (Section 4).

    "Within each trial, packets consisted of 256 32-bit words wrapped
    inside UDP, IP, Ethernet, and modem framing.  For each packet, the
    data words were identical to facilitate identification even in the
    face of substantial noise, and the data value was incremented
    between packets."

The factory below builds byte-exact wire frames and records the byte
offsets of each region so the analysis stage can distinguish *wrapper*
damage (headers/trailer) from *body* damage, exactly as the paper's
Table 1 columns require.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.framing import ethernet, ip, modem, udp
from repro.framing.checksum import internet_checksum
from repro.framing.crc import crc32
from repro.framing.ethernet import EthernetFrame, MacAddress
from repro.framing.ip import Ipv4Header
from repro.framing.udp import UdpHeader
from repro.obs import runtime as _obs

WORDS_PER_PACKET = 256
WORD_BYTES = 4
BODY_BYTES = WORDS_PER_PACKET * WORD_BYTES  # 1024
BODY_BITS = BODY_BYTES * 8  # 8192, the per-packet "body bits" of Table 1

# Region offsets within the full modem frame.
MODEM_HEADER_END = modem.NETWORK_ID_LEN
ETH_HEADER_END = MODEM_HEADER_END + ethernet.HEADER_LEN
IP_HEADER_END = ETH_HEADER_END + ip.HEADER_LEN
UDP_HEADER_END = IP_HEADER_END + udp.HEADER_LEN
BODY_START = UDP_HEADER_END
BODY_END = BODY_START + BODY_BYTES
FRAME_BYTES = BODY_END + ethernet.FCS_LEN  # 1072


@dataclass(frozen=True)
class TestPacketSpec:
    """Identity of a test-packet series: everything constant across a trial.

    The analysis stage is given the spec (as the authors knew their own
    tool's configuration) but must recover per-packet sequence numbers
    from the — possibly corrupted — received bits.
    """

    src_mac: MacAddress
    dst_mac: MacAddress
    src_ip: str
    dst_ip: str
    src_port: int
    dst_port: int
    network_id: int = modem.DEFAULT_NETWORK_ID
    first_sequence: int = 0

    # Not a pytest test class despite the name.
    __test__ = False

    @classmethod
    def default(cls) -> "TestPacketSpec":
        """The configuration used by all experiments unless overridden."""
        return cls(
            src_mac=MacAddress.station(1),
            dst_mac=MacAddress.station(2),
            src_ip="128.2.222.101",
            dst_ip="128.2.222.102",
            src_port=5001,
            dst_port=5001,
        )


class TestPacketFactory:
    """Builds and describes the byte-exact test frames of a trial.

    :meth:`build` is the fast incremental path (only the sequence-
    dependent fields are recomputed per frame); :meth:`build_reference`
    composes the frame through the full header classes.  The test suite
    proves them byte-identical.
    """

    __test__ = False  # not a pytest test class despite the name

    def __init__(self, spec: TestPacketSpec) -> None:
        self.spec = spec
        self._prefix = (
            (spec.network_id & 0xFFFF).to_bytes(2, "big")
            + spec.dst_mac.octets
            + spec.src_mac.octets
            + ethernet.ETHERTYPE_IPV4.to_bytes(2, "big")
        )
        udp_length = udp.HEADER_LEN + BODY_BYTES
        self._ip_template = bytearray(
            Ipv4Header(
                src=spec.src_ip,
                dst=spec.dst_ip,
                total_length=ip.HEADER_LEN + udp_length,
                identification=0,
            ).to_bytes()
        )
        # One's-complement sum of the IP header with id and checksum
        # fields zeroed; per-sequence checksum folds the id back in.
        zeroed = bytes(self._ip_template)
        zeroed = zeroed[:4] + b"\x00\x00" + zeroed[6:10] + b"\x00\x00" + zeroed[12:]
        self._ip_sum_base = (~internet_checksum(zeroed)) & 0xFFFF
        self._udp_header_base = (
            spec.src_port.to_bytes(2, "big")
            + spec.dst_port.to_bytes(2, "big")
            + udp_length.to_bytes(2, "big")
        )
        pseudo = (
            ip.ip_to_bytes(spec.src_ip)
            + ip.ip_to_bytes(spec.dst_ip)
            + b"\x00"
            + bytes([ip.IPV4_PROTO_UDP])
            + udp_length.to_bytes(2, "big")
        )
        self._udp_sum_base = (~internet_checksum(pseudo + self._udp_header_base)) & 0xFFFF
        # Lazily-built base frame for the vectorized template bank
        # (:meth:`build_bulk`); every sequence-dependent byte is patched
        # per row, so any sequence works as the base.
        self._bulk_base: np.ndarray | None = None

    @staticmethod
    def _fold(total: int) -> int:
        while total >> 16:
            total = (total & 0xFFFF) + (total >> 16)
        return total

    @staticmethod
    def _fold_array(totals: np.ndarray) -> np.ndarray:
        """Vectorized one's-complement fold of 32-bit running sums."""
        while (totals >> 16).any():
            totals = (totals & 0xFFFF) + (totals >> 16)
        return totals

    def body_word(self, sequence: int) -> bytes:
        """The 32-bit data word of packet ``sequence`` (big-endian).

        The word value starts at ``first_sequence`` and increments by one
        per packet, wrapping modulo 2**32.
        """
        value = (self.spec.first_sequence + sequence) & 0xFFFFFFFF
        return value.to_bytes(WORD_BYTES, "big")

    def body(self, sequence: int) -> bytes:
        """The 1024-byte packet body: one word repeated 256 times."""
        return self.body_word(sequence) * WORDS_PER_PACKET

    def build(self, sequence: int) -> bytes:
        """The full wire frame (modem + Ethernet + IP + UDP + body + FCS).

        Incremental fast path: patches the sequence-dependent fields (IP
        id + checksum, UDP checksum, body word) into precomputed
        templates.
        """
        state = _obs.STATE
        if state.profiling:
            with state.metrics.timer("profile.frame_build").time():
                return self._build_impl(sequence)
        return self._build_impl(sequence)

    def _build_impl(self, sequence: int) -> bytes:
        word = self.body_word(sequence)
        body = word * WORDS_PER_PACKET
        # The IP id is 16 bits wide, so it aliases sequences mod 2^16;
        # header-led matching must unalias against the trial length
        # (TraceMatcher._header_match).  The UDP checksum folds over the
        # full 32-bit body word and so still discriminates epochs.
        ident = sequence & 0xFFFF

        ip_hdr = bytes(self._ip_template)
        ip_checksum = (~self._fold(self._ip_sum_base + ident)) & 0xFFFF
        ip_hdr = (
            ip_hdr[:4]
            + ident.to_bytes(2, "big")
            + ip_hdr[6:10]
            + ip_checksum.to_bytes(2, "big")
            + ip_hdr[12:]
        )

        word_sum = ((word[0] << 8) | word[1]) + ((word[2] << 8) | word[3])
        udp_sum = self._fold(self._udp_sum_base + WORDS_PER_PACKET * word_sum)
        udp_checksum = (~udp_sum) & 0xFFFF
        if udp_checksum == 0:
            udp_checksum = 0xFFFF  # RFC 768: zero means "no checksum"
        udp_hdr = self._udp_header_base + udp_checksum.to_bytes(2, "big")

        eth_body = self._prefix[2:] + ip_hdr + udp_hdr + body
        fcs = crc32(eth_body).to_bytes(4, "little")
        frame = self._prefix[:2] + eth_body + fcs
        return frame

    # Byte offsets of the sequence-dependent header fields within the
    # full modem frame (modem prefix 2 + Ethernet 14 + IP offsets).
    _IP_ID_OFFSET = 20
    _IP_CHECKSUM_OFFSET = 26
    _UDP_CHECKSUM_OFFSET = 42

    def build_bulk(self, sequences: np.ndarray) -> np.ndarray:
        """The template bank: one full wire frame per requested sequence.

        Returns a ``(len(sequences), FRAME_BYTES)`` uint8 matrix, each
        row byte-identical to ``build(sequence)``.  All header patching
        is column-vectorized; only the FCS runs per row (zlib's C CRC
        over each row's buffer).  The bulk matcher compares candidate
        records against this bank with a single equality reduction.
        """
        sequences = np.asarray(sequences, dtype=np.int64)
        n = len(sequences)
        if self._bulk_base is None:
            self._bulk_base = np.frombuffer(
                self._build_impl(0), dtype=np.uint8
            ).copy()
        frames = np.tile(self._bulk_base, (n, 1))
        if n == 0:
            return frames

        # IP identification + checksum (both functions of seq mod 2^16).
        idents = sequences & 0xFFFF
        frames[:, self._IP_ID_OFFSET] = idents >> 8
        frames[:, self._IP_ID_OFFSET + 1] = idents & 0xFF
        ip_checksums = ~self._fold_array(self._ip_sum_base + idents) & 0xFFFF
        frames[:, self._IP_CHECKSUM_OFFSET] = ip_checksums >> 8
        frames[:, self._IP_CHECKSUM_OFFSET + 1] = ip_checksums & 0xFF

        # Body: the 32-bit word repeated 256 times.
        values = (self.spec.first_sequence + sequences) & 0xFFFFFFFF
        word_bytes = np.empty((n, WORD_BYTES), dtype=np.uint8)
        word_bytes[:, 0] = values >> 24
        word_bytes[:, 1] = (values >> 16) & 0xFF
        word_bytes[:, 2] = (values >> 8) & 0xFF
        word_bytes[:, 3] = values & 0xFF
        frames[:, BODY_START:BODY_END] = np.tile(word_bytes, (1, WORDS_PER_PACKET))

        # UDP checksum (folds over the full 32-bit word, so it
        # discriminates sequence epochs the IP id aliases).
        word_sums = (values >> 16) + (values & 0xFFFF)
        udp_sums = self._fold_array(
            self._udp_sum_base + WORDS_PER_PACKET * word_sums
        )
        udp_checksums = ~udp_sums & 0xFFFF
        udp_checksums[udp_checksums == 0] = 0xFFFF  # RFC 768
        frames[:, self._UDP_CHECKSUM_OFFSET] = udp_checksums >> 8
        frames[:, self._UDP_CHECKSUM_OFFSET + 1] = udp_checksums & 0xFF

        # FCS over everything after the modem prefix (little-endian).
        fcs_start = FRAME_BYTES - ethernet.FCS_LEN
        crcs = np.empty(n, dtype=np.int64)
        for row in range(n):
            crcs[row] = zlib.crc32(frames[row, MODEM_HEADER_END:fcs_start])
        frames[:, fcs_start] = crcs & 0xFF
        frames[:, fcs_start + 1] = (crcs >> 8) & 0xFF
        frames[:, fcs_start + 2] = (crcs >> 16) & 0xFF
        frames[:, fcs_start + 3] = (crcs >> 24) & 0xFF
        return frames

    def build_reference(self, sequence: int) -> bytes:
        """Compose the frame through the full header classes (slow path,
        used by tests to validate :meth:`build`)."""
        body = self.body(sequence)
        udp_length = udp.HEADER_LEN + len(body)
        udp_bytes = UdpHeader(
            src_port=self.spec.src_port,
            dst_port=self.spec.dst_port,
            length=udp_length,
        ).to_bytes(body, self.spec.src_ip, self.spec.dst_ip)
        ip_bytes = Ipv4Header(
            src=self.spec.src_ip,
            dst=self.spec.dst_ip,
            total_length=ip.HEADER_LEN + udp_length,
            identification=sequence & 0xFFFF,
        ).to_bytes()
        eth_wire = EthernetFrame(
            dst=self.spec.dst_mac,
            src=self.spec.src_mac,
            ethertype=ethernet.ETHERTYPE_IPV4,
            payload=ip_bytes + udp_bytes,
        ).to_bytes(with_fcs=True)
        frame = (self.spec.network_id & 0xFFFF).to_bytes(2, "big") + eth_wire
        if len(frame) != FRAME_BYTES:
            raise AssertionError(
                f"frame length {len(frame)} != expected {FRAME_BYTES}"
            )
        return frame

    @staticmethod
    def wrapper_slices() -> list[slice]:
        """Byte ranges of the frame that count as "wrapper" (headers+FCS)."""
        return [slice(0, BODY_START), slice(BODY_END, FRAME_BYTES)]

    @staticmethod
    def body_slice() -> slice:
        """Byte range of the frame occupied by the 256-word body."""
        return slice(BODY_START, BODY_END)
