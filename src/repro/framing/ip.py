"""IPv4 header construction and tolerant parsing.

The test traffic is UDP-over-IPv4 (paper Section 4); the analysis stage
needs to recognise IP headers in possibly-corrupted frames, so parsing
reports field values and checksum validity instead of raising.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.framing.checksum import internet_checksum

HEADER_LEN = 20
IPV4_PROTO_UDP = 17
IPV4_PROTO_TCP = 6


def ip_to_bytes(address: str) -> bytes:
    """Dotted-quad string to 4 bytes."""
    parts = address.split(".")
    if len(parts) != 4:
        raise ValueError(f"malformed IPv4 address: {address!r}")
    octets = bytes(int(p) for p in parts)
    return octets


def bytes_to_ip(octets: bytes) -> str:
    """4 bytes to dotted-quad string."""
    if len(octets) != 4:
        raise ValueError(f"IPv4 address must be 4 bytes, got {len(octets)}")
    return ".".join(str(b) for b in octets)


@dataclass
class Ipv4Header:
    """A minimal (no-options) IPv4 header."""

    src: str
    dst: str
    total_length: int
    protocol: int = IPV4_PROTO_UDP
    ttl: int = 64
    identification: int = 0
    checksum_valid: bool = field(default=True, compare=False)

    def to_bytes(self) -> bytes:
        """Serialize with a correct header checksum."""
        header = bytearray(HEADER_LEN)
        header[0] = 0x45  # version 4, IHL 5
        header[1] = 0x00  # DSCP/ECN
        header[2:4] = self.total_length.to_bytes(2, "big")
        header[4:6] = (self.identification & 0xFFFF).to_bytes(2, "big")
        header[6:8] = b"\x00\x00"  # flags/fragment offset
        header[8] = self.ttl & 0xFF
        header[9] = self.protocol & 0xFF
        header[10:12] = b"\x00\x00"  # checksum placeholder
        header[12:16] = ip_to_bytes(self.src)
        header[16:20] = ip_to_bytes(self.dst)
        header[10:12] = internet_checksum(bytes(header)).to_bytes(2, "big")
        return bytes(header)

    @classmethod
    def parse(cls, wire: bytes) -> "Ipv4Header":
        """Parse the first 20 bytes as an IPv4 header (tolerantly)."""
        if len(wire) < HEADER_LEN:
            raise ValueError(f"IP header too short: {len(wire)} bytes")
        header = wire[:HEADER_LEN]
        return cls(
            src=bytes_to_ip(header[12:16]),
            dst=bytes_to_ip(header[16:20]),
            total_length=int.from_bytes(header[2:4], "big"),
            protocol=header[9],
            ttl=header[8],
            identification=int.from_bytes(header[4:6], "big"),
            checksum_valid=internet_checksum(header) == 0,
        )
