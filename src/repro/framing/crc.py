"""IEEE 802.3 CRC-32, implemented from scratch.

This is the frame check sequence the Intel 82593 appends to every frame
and checks on receive (the paper disables the *filtering* on CRC failure
but the trace analysis still recomputes it to classify wrapper damage).

Algorithm: reflected CRC-32 with polynomial 0x04C11DB7 (reflected form
0xEDB88320), initial value 0xFFFFFFFF, final XOR 0xFFFFFFFF — the
standard Ethernet/zlib CRC.  A 256-entry table is built at import time
for the reference implementation; the hot paths delegate to the C
implementation in :mod:`zlib`, which the test suite proves bit-identical.
"""

from __future__ import annotations

import zlib

_POLY_REFLECTED = 0xEDB88320


def _build_table() -> list[int]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ _POLY_REFLECTED
            else:
                crc >>= 1
        table.append(crc)
    return table


_TABLE = _build_table()


def crc32_update_reference(crc: int, data: bytes) -> int:
    """The table-driven specification of :func:`crc32_update`."""
    for byte in data:
        crc = (crc >> 8) ^ _TABLE[(crc ^ byte) & 0xFF]
    return crc


def crc32_update(crc: int, data: bytes) -> int:
    """Feed ``data`` into a running CRC state (pre-inversion domain).

    ``zlib.crc32`` works in the post-inversion domain (it inverts the
    state on the way in and out), so bridging from the raw register
    state costs one XOR on each side:

    >>> crc32_update(0xFFFFFFFF, b"123456789") ^ 0xFFFFFFFF == 0xCBF43926
    True
    >>> state = crc32_update(0xFFFFFFFF, b"1234")
    >>> state == crc32_update_reference(0xFFFFFFFF, b"1234")
    True
    """
    return zlib.crc32(data, crc ^ 0xFFFFFFFF) ^ 0xFFFFFFFF


def crc32_reference(data: bytes) -> int:
    """CRC-32 via the table-driven from-scratch implementation.

    This is the specification; :func:`crc32` delegates to the C
    implementation in :mod:`zlib` (bit-identical — the test suite proves
    it against this function) because million-packet traces hash a
    gigabyte of frame bytes.

    >>> hex(crc32_reference(b"123456789"))
    '0xcbf43926'
    """
    return crc32_update_reference(0xFFFFFFFF, data) ^ 0xFFFFFFFF


def crc32(data: bytes) -> int:
    """CRC-32 of ``data`` (IEEE 802.3), fast path.

    >>> hex(crc32(b"123456789"))
    '0xcbf43926'
    """
    return zlib.crc32(data) & 0xFFFFFFFF


def append_fcs(frame_without_fcs: bytes) -> bytes:
    """Append the 4-byte frame check sequence (little-endian on the wire,
    per 802.3 transmission order of the reflected CRC)."""
    return frame_without_fcs + crc32(frame_without_fcs).to_bytes(4, "little")


def check_fcs(frame_with_fcs: bytes) -> bool:
    """True if the trailing 4 bytes are the valid FCS of the preceding bytes."""
    if len(frame_with_fcs) < 4:
        return False
    body, fcs = frame_with_fcs[:-4], frame_with_fcs[-4:]
    return crc32(body).to_bytes(4, "little") == fcs
