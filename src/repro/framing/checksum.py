"""RFC 1071 Internet checksum (used by the IPv4 and UDP headers)."""

from __future__ import annotations

import numpy as np

# Above this size the numpy path wins over the byte loop.
_VECTOR_THRESHOLD = 64


def _fold(total: int) -> int:
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total


def internet_checksum(data: bytes) -> int:
    """One's-complement sum of 16-bit words, complemented.

    Odd-length input is padded with a zero byte, per RFC 1071.  Large
    inputs take a vectorized path (bit-identical; the property tests
    compare the two).

    >>> hex(internet_checksum(bytes.fromhex("45000073000040004011b861c0a80001c0a800c7")))
    '0x0'
    """
    if len(data) % 2:
        data = data + b"\x00"
    if len(data) >= _VECTOR_THRESHOLD:
        words = np.frombuffer(data, dtype=">u2")
        total = int(words.sum(dtype=np.uint64))
    else:
        total = 0
        for i in range(0, len(data), 2):
            total += (data[i] << 8) | data[i + 1]
    return (~_fold(total)) & 0xFFFF


def verify_internet_checksum(data_including_checksum: bytes) -> bool:
    """True when a header that embeds its own checksum sums to zero."""
    return internet_checksum(data_including_checksum) == 0
