"""Bit-exact packet framing.

The paper's receiver logs *every bit* of every incoming frame, including
frames that fail the Ethernet CRC, and the offline analysis re-identifies
test packets heuristically from the raw bits.  This package provides the
frame formats involved, built from scratch:

* :mod:`~repro.framing.crc` — IEEE 802.3 CRC-32.
* :mod:`~repro.framing.checksum` — RFC 1071 Internet checksum.
* :mod:`~repro.framing.ethernet` / :mod:`~repro.framing.ip` /
  :mod:`~repro.framing.udp` — header construction and tolerant parsing.
* :mod:`~repro.framing.modem` — the WaveLAN modem's 16-bit network-ID
  wrapper.
* :mod:`~repro.framing.testpacket` — the paper's test payload: 256
  identical 32-bit words, incremented between packets (Section 4).
"""

from repro.framing.checksum import internet_checksum, verify_internet_checksum
from repro.framing.crc import crc32, crc32_update
from repro.framing.ethernet import (
    ETHERTYPE_ARP,
    ETHERTYPE_IPV4,
    EthernetFrame,
    MacAddress,
)
from repro.framing.ip import IPV4_PROTO_UDP, Ipv4Header
from repro.framing.modem import ModemFrame
from repro.framing.testpacket import TestPacketFactory, TestPacketSpec
from repro.framing.udp import UdpHeader

__all__ = [
    "ETHERTYPE_ARP",
    "ETHERTYPE_IPV4",
    "EthernetFrame",
    "IPV4_PROTO_UDP",
    "Ipv4Header",
    "MacAddress",
    "ModemFrame",
    "TestPacketFactory",
    "TestPacketSpec",
    "UdpHeader",
    "crc32",
    "crc32_update",
    "internet_checksum",
    "verify_internet_checksum",
]
