"""The WaveLAN modem control unit's framing.

The modem "prepends a 16-bit network ID to every packet on transmit, and
can be set to reject all but one network ID on receive" (paper, Section
2).  The network ID provides multiple logical Ethernet address spaces on
the single shared radio channel.
"""

from __future__ import annotations

from dataclasses import dataclass

NETWORK_ID_LEN = 2

# The network ID used by the test stations in all experiments unless a
# scenario overrides it.
DEFAULT_NETWORK_ID = 0xC5A3


@dataclass
class ModemFrame:
    """A radio frame: 16-bit network ID followed by the Ethernet frame."""

    network_id: int
    ethernet: bytes

    def to_bytes(self) -> bytes:
        return (self.network_id & 0xFFFF).to_bytes(2, "big") + self.ethernet

    @classmethod
    def parse(cls, wire: bytes) -> "ModemFrame":
        """Split a received radio frame into network ID + inner frame."""
        if len(wire) < NETWORK_ID_LEN:
            raise ValueError(f"modem frame too short: {len(wire)} bytes")
        return cls(
            network_id=int.from_bytes(wire[:NETWORK_ID_LEN], "big"),
            ethernet=wire[NETWORK_ID_LEN:],
        )

    def matches(self, configured_id: int) -> bool:
        """Receive-side network-ID filter check."""
        return self.network_id == (configured_id & 0xFFFF)
