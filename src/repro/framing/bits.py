"""Byte/bit manipulation helpers shared by the framing and error layers."""

from __future__ import annotations

import numpy as np


def bytes_to_bits(data: bytes | bytearray | np.ndarray) -> np.ndarray:
    """Expand bytes to a uint8 array of bits, MSB first within each byte."""
    arr = np.frombuffer(bytes(data), dtype=np.uint8)
    return np.unpackbits(arr)


def bits_to_bytes(bits: np.ndarray) -> bytes:
    """Pack an MSB-first bit array back into bytes.

    The bit array length must be a multiple of 8.
    """
    if len(bits) % 8 != 0:
        raise ValueError(f"bit count {len(bits)} is not a multiple of 8")
    return np.packbits(bits.astype(np.uint8)).tobytes()


def hamming_distance(a: bytes, b: bytes) -> int:
    """Number of differing bits between two equal-length byte strings."""
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
    xored = np.frombuffer(a, dtype=np.uint8) ^ np.frombuffer(b, dtype=np.uint8)
    return int(np.unpackbits(xored).sum())


def flip_bits(data: bytes, bit_positions: np.ndarray) -> bytes:
    """Return ``data`` with the given (MSB-first) bit positions inverted."""
    buf = bytearray(data)
    for pos in np.asarray(bit_positions, dtype=np.int64):
        byte_index = int(pos) // 8
        bit_index = int(pos) % 8
        buf[byte_index] ^= 0x80 >> bit_index
    return bytes(buf)


def popcount_bytes(data: bytes) -> int:
    """Number of set bits in a byte string."""
    if not data:
        return 0
    return int(np.unpackbits(np.frombuffer(data, dtype=np.uint8)).sum())
