"""Byte/bit manipulation helpers shared by the framing and error layers."""

from __future__ import annotations

import numpy as np


def bytes_to_bits(data: bytes | bytearray | np.ndarray) -> np.ndarray:
    """Expand bytes to a uint8 array of bits, MSB first within each byte."""
    arr = np.frombuffer(bytes(data), dtype=np.uint8)
    return np.unpackbits(arr)


def bits_to_bytes(bits: np.ndarray) -> bytes:
    """Pack an MSB-first bit array back into bytes.

    The bit array length must be a multiple of 8.
    """
    if len(bits) % 8 != 0:
        raise ValueError(f"bit count {len(bits)} is not a multiple of 8")
    return np.packbits(bits.astype(np.uint8)).tobytes()


def hamming_distance(a: bytes, b: bytes) -> int:
    """Number of differing bits between two equal-length byte strings."""
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
    xored = np.frombuffer(a, dtype=np.uint8) ^ np.frombuffer(b, dtype=np.uint8)
    return int(np.unpackbits(xored).sum())


def flip_bits(data: bytes, bit_positions: np.ndarray) -> bytes:
    """Return ``data`` with the given (MSB-first) bit positions inverted."""
    positions = np.asarray(bit_positions, dtype=np.int64)
    if positions.size == 0:
        return bytes(data)
    if positions.size < 24:
        # Scalar loop wins for the typical small-burst case.
        buf = bytearray(data)
        for pos in positions.tolist():
            buf[pos >> 3] ^= 0x80 >> (pos & 7)
        return bytes(buf)
    # Dense damage (jam windows): XOR-accumulate masks per byte.
    # ``bitwise_xor.at`` is unbuffered, so several flips landing in the
    # same byte compose exactly like the sequential loop.
    out = np.frombuffer(data, dtype=np.uint8).copy()
    masks = (0x80 >> (positions & 7)).astype(np.uint8)
    np.bitwise_xor.at(out, positions >> 3, masks)
    return out.tobytes()


def popcount_bytes(data: bytes) -> int:
    """Number of set bits in a byte string."""
    if not data:
        return 0
    return int(np.unpackbits(np.frombuffer(data, dtype=np.uint8)).sum())
