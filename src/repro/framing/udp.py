"""UDP header construction and tolerant parsing (RFC 768)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.framing.checksum import internet_checksum
from repro.framing.ip import IPV4_PROTO_UDP, ip_to_bytes

HEADER_LEN = 8


def _pseudo_header(src_ip: str, dst_ip: str, udp_length: int) -> bytes:
    return (
        ip_to_bytes(src_ip)
        + ip_to_bytes(dst_ip)
        + b"\x00"
        + bytes([IPV4_PROTO_UDP])
        + udp_length.to_bytes(2, "big")
    )


@dataclass
class UdpHeader:
    """A UDP header; the checksum covers the IPv4 pseudo-header."""

    src_port: int
    dst_port: int
    length: int
    checksum_valid: bool = field(default=True, compare=False)

    def to_bytes(self, payload: bytes, src_ip: str, dst_ip: str) -> bytes:
        """Serialize header+payload with a correct UDP checksum."""
        header = bytearray(HEADER_LEN)
        header[0:2] = self.src_port.to_bytes(2, "big")
        header[2:4] = self.dst_port.to_bytes(2, "big")
        header[4:6] = self.length.to_bytes(2, "big")
        header[6:8] = b"\x00\x00"
        pseudo = _pseudo_header(src_ip, dst_ip, self.length)
        checksum = internet_checksum(pseudo + bytes(header) + payload)
        if checksum == 0:
            checksum = 0xFFFF  # RFC 768: zero means "no checksum"
        header[6:8] = checksum.to_bytes(2, "big")
        return bytes(header) + payload

    @classmethod
    def parse(cls, wire: bytes, src_ip: str = "", dst_ip: str = "") -> "UdpHeader":
        """Parse the first 8 bytes as a UDP header.

        When ``src_ip``/``dst_ip`` are supplied the checksum is verified
        against the pseudo-header; otherwise ``checksum_valid`` is left
        True (unknown).
        """
        if len(wire) < HEADER_LEN:
            raise ValueError(f"UDP header too short: {len(wire)} bytes")
        length = int.from_bytes(wire[4:6], "big")
        valid = True
        if src_ip and dst_ip and len(wire) >= length >= HEADER_LEN:
            pseudo = _pseudo_header(src_ip, dst_ip, length)
            valid = internet_checksum(pseudo + wire[:length]) in (0, 0xFFFF)
        return cls(
            src_port=int.from_bytes(wire[0:2], "big"),
            dst_port=int.from_bytes(wire[2:4], "big"),
            length=length,
            checksum_valid=valid,
        )
