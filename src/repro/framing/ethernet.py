"""Ethernet II framing as performed by the Intel 82593 controller.

The 82593 in the WaveLAN performs "all standard Ethernet functions,
including framing, address recognition and filtering, CRC generation and
checking" (paper, Section 2).  We model Ethernet II frames: destination
and source MAC, 16-bit EtherType, payload, 32-bit FCS.

Parsing here is deliberately *tolerant*: the trace analysis needs to look
inside frames whose headers may be corrupted, so ``parse`` never raises
on bad field values — only on frames physically too short to slice.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.framing.crc import append_fcs, check_fcs

HEADER_LEN = 14
FCS_LEN = 4
ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_ARP = 0x0806


@dataclass(frozen=True)
class MacAddress:
    """A 48-bit MAC address."""

    octets: bytes

    def __post_init__(self) -> None:
        if len(self.octets) != 6:
            raise ValueError(f"MAC address must be 6 bytes, got {len(self.octets)}")

    @classmethod
    def from_string(cls, text: str) -> "MacAddress":
        """Parse ``aa:bb:cc:dd:ee:ff`` notation."""
        parts = text.split(":")
        if len(parts) != 6:
            raise ValueError(f"malformed MAC address: {text!r}")
        return cls(bytes(int(part, 16) for part in parts))

    @classmethod
    def station(cls, index: int) -> "MacAddress":
        """A deterministic locally-administered unicast address for tests."""
        return cls(bytes([0x02, 0x60, 0x8C]) + index.to_bytes(3, "big"))

    @property
    def is_multicast(self) -> bool:
        return bool(self.octets[0] & 0x01)

    def __str__(self) -> str:
        return ":".join(f"{b:02x}" for b in self.octets)


BROADCAST = MacAddress(b"\xff" * 6)


@dataclass
class EthernetFrame:
    """An Ethernet II frame (header fields + payload)."""

    dst: MacAddress
    src: MacAddress
    ethertype: int
    payload: bytes

    def to_bytes(self, with_fcs: bool = True) -> bytes:
        """Serialize; appends a freshly computed FCS when requested."""
        header = (
            self.dst.octets
            + self.src.octets
            + self.ethertype.to_bytes(2, "big")
        )
        frame = header + self.payload
        return append_fcs(frame) if with_fcs else frame

    @classmethod
    def parse(cls, wire: bytes, with_fcs: bool = True) -> "EthernetFrame":
        """Parse a frame; tolerant of corrupt field values.

        Raises ValueError only when ``wire`` is too short to contain the
        header (and FCS when ``with_fcs``).
        """
        minimum = HEADER_LEN + (FCS_LEN if with_fcs else 0)
        if len(wire) < minimum:
            raise ValueError(f"frame too short: {len(wire)} < {minimum} bytes")
        body = wire[:-FCS_LEN] if with_fcs else wire
        return cls(
            dst=MacAddress(body[0:6]),
            src=MacAddress(body[6:12]),
            ethertype=int.from_bytes(body[12:14], "big"),
            payload=body[HEADER_LEN:],
        )

    @staticmethod
    def fcs_ok(wire: bytes) -> bool:
        """True when the trailing FCS matches the frame contents."""
        return check_fcs(wire)
