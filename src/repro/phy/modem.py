"""The WaveLAN modem control unit.

Ties together antenna diversity, the AGC, the clock-stress/quality model
and the impairment pipeline, and applies the two receive-side filters
the hardware offers (paper, Sections 2 and 5.3):

* the **receive threshold** — "gives receivers the ability to mask out
  weak signals", used to simulate pseudo-cell boundaries; the paper's
  Figure 3 shows it filters *cleanly* (no damaged remnants leak through)
  but imperfectly near the signal level, because per-packet readings
  jitter;
* the **quality threshold** — present but set to 1 (effectively off) in
  all the paper's runs (footnote 1).

The modem also reports, per packet, the four status values the paper's
driver logged: signal level, silence level, signal quality, antenna.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.framing.bits import flip_bits
from repro.framing.modem import DEFAULT_NETWORK_ID
from repro.obs import runtime as _obs
from repro.phy.agc import AgcModel
from repro.phy.antenna import AntennaDiversity
from repro.phy.errormodel import (
    ErrorModelParams,
    InterferenceSample,
    PacketFate,
    WaveLanErrorModel,
)

# The threshold defaults used by "all runs" in the paper unless a
# scenario says otherwise (Section 4).
DEFAULT_RECEIVE_THRESHOLD = 3
DEFAULT_QUALITY_THRESHOLD = 1


class RxDisposition(enum.Enum):
    """What became of one transmitted packet at this receiver."""

    DELIVERED = "delivered"
    MISSED = "missed"  # BOF never detected / host loss: nothing logged
    THRESHOLD_FILTERED = "threshold_filtered"  # masked by receive threshold
    QUALITY_FILTERED = "quality_filtered"  # masked by quality threshold


class DropReason(enum.Enum):
    """Why a transmitted frame never reached the receiving host.

    Mirrors the paper's loss / truncation / corruption split at the
    granularity the metrics need: "lost below receive threshold" and
    "quality-threshold truncation" are distinguishable from each other
    and from MAC-level causes.  Used as the ``reason`` label of the
    ``link.drops`` counter family.
    """

    BOF_MISSED = "bof_missed"  # beginning-of-frame never detected / host loss
    BELOW_RECEIVE_THRESHOLD = "below_receive_threshold"
    QUALITY_FILTERED = "quality_filtered"  # quality-threshold truncation mask
    HALF_DUPLEX = "half_duplex"  # receiver was itself transmitting
    MAC_COLLISION = "mac_collision"  # transmission aborted after overlap
    MAC_BACKOFF_EXHAUSTED = "mac_backoff_exhausted"  # dropped before airtime
    CONTROLLER_REJECTED = "controller_rejected"  # 82593 filter discard

    @classmethod
    def from_disposition(
        cls, disposition: RxDisposition
    ) -> Optional["DropReason"]:
        """The drop reason a non-delivered disposition maps to."""
        return _DISPOSITION_DROPS.get(disposition)


_DISPOSITION_DROPS = {
    RxDisposition.MISSED: DropReason.BOF_MISSED,
    RxDisposition.THRESHOLD_FILTERED: DropReason.BELOW_RECEIVE_THRESHOLD,
    RxDisposition.QUALITY_FILTERED: DropReason.QUALITY_FILTERED,
}


def _record_disposition(disposition: RxDisposition) -> None:
    """Tally one receive disposition into ``phy.rx`` (no-op when
    observability is disabled)."""
    state = _obs.STATE
    if state.enabled:
        state.metrics.counter("phy.rx", disposition=disposition.value).inc()


@dataclass(frozen=True)
class ModemRxStatus:
    """The per-packet status the modem reports to the host driver."""

    signal_level: int
    silence_level: int
    signal_quality: int
    antenna: int


@dataclass
class ModemConfig:
    """Receive-side configuration of one WaveLAN unit."""

    network_id: int = DEFAULT_NETWORK_ID
    receive_threshold: int = DEFAULT_RECEIVE_THRESHOLD
    quality_threshold: int = DEFAULT_QUALITY_THRESHOLD


@dataclass
class Reception:
    """Result of offering one on-air frame to the modem."""

    disposition: RxDisposition
    data: Optional[bytes] = None
    status: Optional[ModemRxStatus] = None
    fate: Optional[PacketFate] = None


@dataclass
class WaveLanModem:
    """One unit's receive pipeline."""

    config: ModemConfig = field(default_factory=ModemConfig)
    error_model: WaveLanErrorModel = field(
        default_factory=lambda: WaveLanErrorModel(ErrorModelParams())
    )
    antenna: AntennaDiversity = field(default_factory=AntennaDiversity)
    agc: AgcModel = field(default_factory=AgcModel)

    def receive(
        self,
        frame: bytes,
        mean_level: float,
        ambient_level: float,
        rng: np.random.Generator,
        interference: Sequence[InterferenceSample] = (),
    ) -> Reception:
        """Offer a transmitted ``frame`` to this receiver.

        ``mean_level`` is the propagation model's prediction for the
        transmitter→receiver path; ``ambient_level`` seeds the silence
        reading.  Returns the disposition plus, when delivered, the
        possibly damaged bytes and the status registers.
        """
        selection = self.antenna.select(mean_level, rng)
        fate = self.error_model.sample_packet(
            selection.level, len(frame), rng, interference
        )
        if fate.missed:
            _record_disposition(RxDisposition.MISSED)
            return Reception(RxDisposition.MISSED, fate=fate)

        signal_reading = self.agc.signal_reading(
            selection.level,
            (s.signal_sample_dbm for s in interference),
            rng,
        )
        if signal_reading < self.config.receive_threshold:
            # The receive threshold filters cleanly: the packet never
            # reaches the controller (paper, Section 5.3).
            _record_disposition(RxDisposition.THRESHOLD_FILTERED)
            return Reception(RxDisposition.THRESHOLD_FILTERED, fate=fate)
        if fate.quality < self.config.quality_threshold:
            _record_disposition(RxDisposition.QUALITY_FILTERED)
            return Reception(RxDisposition.QUALITY_FILTERED, fate=fate)

        silence_reading = self.agc.silence_reading(
            ambient_level,
            (s.silence_sample_dbm for s in interference),
            rng,
        )
        data = self.apply_fate(frame, fate)
        status = ModemRxStatus(
            signal_level=signal_reading,
            silence_level=silence_reading,
            signal_quality=fate.quality,
            antenna=selection.antenna,
        )
        _record_disposition(RxDisposition.DELIVERED)
        return Reception(RxDisposition.DELIVERED, data=data, status=status, fate=fate)

    @staticmethod
    def apply_fate(frame: bytes, fate: PacketFate) -> bytes:
        """Materialize a fate's damage onto the frame bytes."""
        data = flip_bits(frame, fate.flipped_bits) if len(fate.flipped_bits) else frame
        if fate.truncated_at_byte is not None:
            data = data[: fate.truncated_at_byte]
        return data

    def senses_carrier(self, signal_reading: int) -> bool:
        """Carrier sense as the MAC sees it: readings below the receive
        threshold are hidden from the Ethernet chip (paper, Section 5.3)."""
        return signal_reading >= self.config.receive_threshold
