"""Dual-antenna selection diversity.

"The receiver selects between two perpendicular antennas and multiple
incoming signal paths to combat multipath interference" (paper, Section
2).  We model per-packet small-scale fading as an independent Gaussian
perturbation per antenna; the receiver picks the stronger branch and
reports which antenna it chose.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class AntennaSelection:
    """Outcome of diversity selection for one packet."""

    level: float
    antenna: int
    branch_levels: tuple[float, float]


@dataclass
class AntennaDiversity:
    """Selection diversity with Gaussian small-scale fading.

    ``branches=2`` is the WaveLAN hardware ("selects between two
    perpendicular antennas"); ``branches=1`` disables diversity and is
    used by the X8 ablation.
    """

    fading_sd: float = 0.55
    branches: int = 2

    def __post_init__(self) -> None:
        if self.branches < 1:
            raise ValueError(f"need at least one antenna, got {self.branches}")

    def select(self, mean_level: float, rng: np.random.Generator) -> AntennaSelection:
        """Fade every branch, return the strongest one.

        Selection of the max of two branches gives the observed per-trial
        level jitter (σ ≈ 0.5-0.9 in the paper's tables) and a small
        positive bias relative to the single-branch mean.
        """
        fades = rng.normal(0.0, self.fading_sd, size=self.branches)
        levels = mean_level + fades
        best = int(np.argmax(levels))
        pair = (float(levels[0]), float(levels[-1]))
        return AntennaSelection(float(levels[best]), best, pair)

    def select_bulk(
        self, mean_level: float, count: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`select` for long clean-channel trials.

        Returns (levels, antenna indices) arrays of length ``count``.
        """
        fades = rng.normal(0.0, self.fading_sd, size=(count, self.branches))
        branches = mean_level + fades
        antennas = np.argmax(branches, axis=1)
        levels = branches[np.arange(count), antennas]
        return levels, antennas.astype(np.uint8)
