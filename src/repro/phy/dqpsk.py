"""DQPSK bit-error-rate theory.

WaveLAN applies DQPSK modulation to the 2 Mb/s data stream (paper,
Section 2).  The calibrated empirical error model in
:mod:`repro.phy.errormodel` drives the experiments; this module provides
the physics-motivated reference curve used for sanity checks and for the
FEC evaluation's channel abstraction.

For differentially-detected QPSK with Gray coding the bit error
probability is well approximated by

    Pb ≈ 0.5 * exp(-0.5857 * Eb/N0)

(0.5857 = 4 * sin^2(pi/8), the standard high-SNR approximation of the
Marcum-Q expression; it puts the 1e-5 operating point near 12.7 dB
Eb/N0, ~2.3 dB worse than coherent QPSK, as the textbooks have it).
"""

from __future__ import annotations

import math

# 4 * sin^2(pi/8): the effective SNR scaling of Gray-coded DQPSK.
_DQPSK_SNR_FACTOR = 4.0 * math.sin(math.pi / 8.0) ** 2


def dqpsk_ber(eb_n0_db: float) -> float:
    """Approximate DQPSK bit error rate at the given Eb/N0 (dB).

    Monotone decreasing; clamped to 0.5 (random guessing) at very low
    SNR.

    >>> round(dqpsk_ber(-100.0), 6)
    0.5
    >>> dqpsk_ber(13.0) < 1e-5
    True
    """
    eb_n0 = 10.0 ** (eb_n0_db / 10.0)
    ber = 0.5 * math.exp(-_DQPSK_SNR_FACTOR * eb_n0)
    return min(ber, 0.5)


def required_eb_n0_db(target_ber: float) -> float:
    """Eb/N0 (dB) needed to achieve ``target_ber`` under DQPSK.

    Inverse of :func:`dqpsk_ber`.

    >>> round(dqpsk_ber(required_eb_n0_db(1e-5)), 10) == 1e-5
    True
    """
    if not 0.0 < target_ber < 0.5:
        raise ValueError(f"target BER must be in (0, 0.5), got {target_ber}")
    eb_n0 = -math.log(2.0 * target_ber) / _DQPSK_SNR_FACTOR
    return 10.0 * math.log10(eb_n0)
