"""The signal-quality register and the clock-recovery "stress" model.

The 4-bit signal quality "is sampled just after the beginning of the
packet and is derived from the information the receiver uses to select
between the two antennas" (paper, Section 2).  Empirically the paper
finds (Sections 5.2, 6.2, 7.3):

* undamaged packets have quality ≈ 15 with tiny variance, even at
  levels as low as 6.7 (Table 9);
* *truncated* packets have sharply reduced quality (means of 8.8-12),
  and truncation occurs rarely even on good links (Table 7 shows a
  truncated packet at level 10);
* *bit-corrupted* packets have mildly reduced quality (13.6-14.8);
* "very low signal quality seems to be a good predictor of truncation"
  and "it is possible that data decoding and clock recovery are impaired
  by different signal features" (Section 6.2).

We model this with a latent per-packet **clock stress** variable.
Attenuation contributes a usually-zero baseline stress that grows as the
signal weakens; a separate rare *clock-slip* event (probability rising
steeply in the error region, plus a tiny floor) truncates the packet and
jumps the stress above :attr:`ClockStressParams.truncation_threshold`.
Quality is 15 minus the stress (minus a small penalty when the
demodulator saw bit errors), so truncation and low quality correlate
through their common cause rather than by fiat.  Wideband interference
adds stress directly and can push it over the truncation threshold —
that is how the spread-spectrum phone trials produce 100 %-truncated,
quality-≈9 streams (Table 13).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.units import QUALITY_MAX, clamp_quality


def _logistic(x: float) -> float:
    if x > 60.0:
        return 1.0
    if x < -60.0:
        return 0.0
    return 1.0 / (1.0 + math.exp(-x))


@dataclass
class ClockStressParams:
    """Calibration of the latent stress process (see DESIGN.md §3)."""

    # Baseline stress: below ``level_onset`` the pre-clip mean rises
    # linearly; the ``stress_shift`` keeps the clipped draw at ~0 for
    # healthy links so undamaged quality stays pinned at 15.
    level_onset: float = 6.5
    level_slope: float = 0.9
    stress_shift: float = 1.0
    stress_sd: float = 1.0
    # Stress above this value means clock recovery has broken.
    truncation_threshold: float = 3.5
    # Clock-slip (truncation) probability: tiny floor + two logistic
    # ramps.  The floor (~1e-5) matches the office trials (1 truncation
    # in 102,720 packets, Table 2); the mid ramp produces the occasional
    # truncation at levels 9-14 (Tables 5/7: single truncations at Tx4
    # and Tx5, the Table 7 truncated packet read level 10); the low ramp
    # produces the error-region truncations of Table 3 (truncated mean
    # level 6.2).
    truncation_floor: float = 1.0e-5
    truncation_mid_coeff: float = 2.0e-3
    truncation_mid_midpoint: float = 9.0
    truncation_mid_steepness: float = 0.8
    truncation_coeff: float = 0.10
    truncation_midpoint: float = 4.2
    truncation_steepness: float = 1.4
    # When a clock slip fires, stress jumps to threshold + Exp(scale),
    # putting quality in the 8-12 band the paper reports for truncated
    # packets.
    truncation_excess_scale: float = 1.3
    # Additional quality penalty when the packet body took bit errors
    # (paper: body-damaged packets read ~1 quality unit low).
    bit_error_penalty: float = 1.2
    # Even pristine packets occasionally read 14 instead of 15
    # (paper: undamaged quality mean 14.94, sigma 0.37).
    baseline_dip_probability: float = 0.06


@dataclass
class ClockStressModel:
    """Samples stress, clock slips, and the quality register."""

    params: ClockStressParams

    def mean_stress(self, level: float) -> float:
        """Pre-shift mean of the attenuation stress at a signal level."""
        deficit = self.params.level_onset - level
        return max(0.0, deficit * self.params.level_slope)

    def sample_stress(
        self,
        level: float,
        interference_stress: float,
        rng: np.random.Generator,
    ) -> float:
        """One packet's stress draw (attenuation + interference parts)."""
        p = self.params
        base = rng.normal(self.mean_stress(level) - p.stress_shift, p.stress_sd)
        return max(0.0, base) + max(0.0, interference_stress)

    def sample_stress_bulk(
        self,
        levels: np.ndarray,
        rng: np.random.Generator,
        interference_stress: np.ndarray | float = 0.0,
    ) -> np.ndarray:
        """Vectorized :meth:`sample_stress` for a whole trial.

        ``interference_stress`` is the per-packet sum of the schedule's
        clock-stress columns (0 for interference-free trials).
        """
        p = self.params
        means = (
            np.maximum(0.0, (p.level_onset - levels) * p.level_slope)
            - p.stress_shift
        )
        draws = rng.normal(means, p.stress_sd)
        return np.maximum(0.0, draws) + np.maximum(0.0, interference_stress)

    def truncation_probability(self, level: float) -> float:
        """Chance of a clock slip (mid-packet truncation) at this level."""
        p = self.params
        mid = _logistic(
            p.truncation_mid_steepness * (p.truncation_mid_midpoint - level)
        )
        low = _logistic(p.truncation_steepness * (p.truncation_midpoint - level))
        return min(
            1.0,
            p.truncation_floor
            + p.truncation_mid_coeff * mid
            + p.truncation_coeff * low,
        )

    def truncation_probability_bulk(self, levels: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`truncation_probability`."""
        p = self.params
        mid = 1.0 / (
            1.0
            + np.exp(
                np.clip(
                    p.truncation_mid_steepness * (levels - p.truncation_mid_midpoint),
                    -60,
                    60,
                )
            )
        )
        low = 1.0 / (
            1.0
            + np.exp(
                np.clip(
                    p.truncation_steepness * (levels - p.truncation_midpoint),
                    -60,
                    60,
                )
            )
        )
        return np.minimum(
            1.0,
            p.truncation_floor + p.truncation_mid_coeff * mid + p.truncation_coeff * low,
        )

    def slip_stress(self, rng: np.random.Generator) -> float:
        """Stress value when a clock slip occurs (always above threshold)."""
        p = self.params
        return p.truncation_threshold + rng.exponential(p.truncation_excess_scale)

    def slip_stress_bulk(
        self, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        """:meth:`slip_stress` for ``count`` packets in one draw."""
        p = self.params
        return p.truncation_threshold + rng.exponential(
            p.truncation_excess_scale, size=count
        )

    def causes_truncation(self, stress: float) -> bool:
        """Does this stress level imply broken clock recovery?"""
        return stress > self.params.truncation_threshold

    def quality_reading(
        self,
        stress: float,
        had_bit_errors: bool,
        rng: np.random.Generator,
    ) -> int:
        """The 4-bit quality register for a packet with this stress."""
        reading = 15.0 - stress
        if had_bit_errors:
            reading -= self.params.bit_error_penalty
        if rng.random() < self.params.baseline_dip_probability:
            reading -= 1.0
        return clamp_quality(reading)

    def quality_reading_bulk(
        self,
        stress: np.ndarray,
        had_bit_errors: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """:meth:`quality_reading` over packet columns (int16 result).

        Same formula, same rounding (``np.rint`` is round-half-even,
        like Python's ``round``); the dip draw is one uniform column.
        """
        p = self.params
        reading = 15.0 - np.asarray(stress, dtype=np.float64)
        reading = reading - np.where(had_bit_errors, p.bit_error_penalty, 0.0)
        reading -= rng.random(reading.shape[0]) < p.baseline_dip_probability
        return np.clip(np.rint(reading), 0, QUALITY_MAX).astype(np.int16)
