"""Gilbert–Elliott two-state burst error process.

The syndromes the paper's analysis extracts are *bursty* (Section 6.2:
25 damaged packets carrying 82 bit errors; Section 7.3: contiguous jam
windows), and burstiness is what decides whether convolutional FEC
needs interleaving.  This module provides the classic two-state Markov
bit-error channel used by the burst-vs-i.i.d. ablation:

* GOOD state: errors at ``good_ber`` (very low);
* BAD state: errors at ``bad_ber`` (high);
* per-bit transition probabilities ``p_good_to_bad``/``p_bad_to_good``.

The stationary mean BER is

    pi_bad = g2b / (g2b + b2g)
    mean_ber = (1 - pi_bad) * good_ber + pi_bad * bad_ber

:meth:`GilbertElliott.matched_iid_ber` exposes that mean, so the
ablation can compare a bursty channel against an i.i.d. channel at the
*same* average error rate — the fair comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class GilbertElliott:
    """A two-state Markov bit-error channel."""

    p_good_to_bad: float = 2e-4
    p_bad_to_good: float = 2e-2
    good_ber: float = 1e-6
    bad_ber: float = 0.25

    def __post_init__(self) -> None:
        for name in ("p_good_to_bad", "p_bad_to_good"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{name} must be in (0, 1], got {value}")
        for name in ("good_ber", "bad_ber"):
            value = getattr(self, name)
            if not 0.0 <= value <= 0.5:
                raise ValueError(f"{name} must be in [0, 0.5], got {value}")

    @property
    def stationary_bad_fraction(self) -> float:
        """Long-run fraction of bits spent in the BAD state."""
        return self.p_good_to_bad / (self.p_good_to_bad + self.p_bad_to_good)

    @property
    def mean_ber(self) -> float:
        """Stationary average bit error rate."""
        pi_bad = self.stationary_bad_fraction
        return (1.0 - pi_bad) * self.good_ber + pi_bad * self.bad_ber

    @property
    def mean_burst_bits(self) -> float:
        """Expected BAD-state sojourn (geometric)."""
        return 1.0 / self.p_bad_to_good

    def matched_iid_ber(self) -> float:
        """The i.i.d. BER with the same average error rate."""
        return self.mean_ber

    def error_positions(
        self, n_bits: int, rng: np.random.Generator, start_bad: bool | None = None
    ) -> np.ndarray:
        """Sample the bit positions flipped over an ``n_bits`` stream.

        ``start_bad`` forces the initial state; the default draws it
        from the stationary distribution.
        """
        if n_bits <= 0:
            return np.empty(0, dtype=np.int64)
        if start_bad is None:
            bad = rng.random() < self.stationary_bad_fraction
        else:
            bad = bool(start_bad)

        # Sample the state sequence in sojourn chunks (geometric), which
        # keeps the Python loop proportional to the number of bursts
        # rather than the number of bits.
        positions: list[np.ndarray] = []
        cursor = 0
        while cursor < n_bits:
            if bad:
                run = int(rng.geometric(self.p_bad_to_good))
                ber = self.bad_ber
            else:
                run = int(rng.geometric(self.p_good_to_bad))
                ber = self.good_ber
            run = min(run, n_bits - cursor)
            if ber > 0.0:
                count = rng.binomial(run, ber)
                if count:
                    offsets = rng.choice(run, size=count, replace=False)
                    positions.append(cursor + np.sort(offsets))
            cursor += run
            bad = not bad
        if not positions:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(positions).astype(np.int64)

    def apply(self, bits: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Return ``bits`` with channel errors applied."""
        bits = np.asarray(bits, dtype=np.uint8)
        out = bits.copy()
        flips = self.error_positions(len(bits), rng)
        out[flips] ^= 1
        return out

    @classmethod
    def calibrated_to_syndromes(
        cls, mean_burst_bits: float, mean_ber: float, bad_ber: float = 0.25
    ) -> "GilbertElliott":
        """Build a channel with a target mean burst length and mean BER.

        Used to fit the process to the burst statistics the analysis
        pipeline extracts from a trace (e.g. Tx5's ~3.3-bit bursts).
        """
        if mean_burst_bits < 1.0:
            raise ValueError("mean burst length must be >= 1 bit")
        b2g = 1.0 / mean_burst_bits
        # Solve pi_bad from mean_ber ~= pi_bad * bad_ber (good_ber ~ 0).
        pi_bad = min(0.5, mean_ber / bad_ber)
        g2b = b2g * pi_bad / max(1e-12, 1.0 - pi_bad)
        return cls(
            p_good_to_bad=min(1.0, g2b),
            p_bad_to_good=b2g,
            good_ber=0.0,
            bad_ber=bad_ber,
        )
