"""The calibrated per-packet impairment pipeline.

For each transmitted packet the model decides, in the order the paper's
methodology section walks through reception failures (Section 4):

1. **Missed entirely** — "certain errors might cause the modem unit to
   miss the beginning-of-frame marker, resulting in a slightly-damaged
   packet being totally lost", plus a small host-side loss floor that
   the paper observes even in near-perfect environments (Table 2:
   .01-.07 % with zero bit errors).
2. **Truncated** — clock recovery breaks mid-packet; driven by the
   latent stress variable of :mod:`repro.phy.quality` and by wideband
   interference.
3. **Bit-corrupted** — attenuation-driven corruption arrives in small
   bursts (the paper's Tx5 location: 25 damaged packets carrying 82 bit
   errors, worst packet 7 — a mean burst of ~3.3 bits); interference
   adds its own error processes.

Calibration targets are tabulated in DESIGN.md §3.  All probabilities
are functions of the *continuous* post-diversity signal level; interference
contributes through :class:`InterferenceSample` records.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro import compiled as _compiled
from repro.obs import runtime as _obs
from repro.phy.quality import ClockStressModel, ClockStressParams

if TYPE_CHECKING:  # pragma: no cover - import cycle is typing-only
    from repro.interference.base import BulkInterference


@dataclass(frozen=True)
class InterferenceSample:
    """One interference source's contribution during one packet.

    Produced by :mod:`repro.interference` sources; consumed here and by
    the AGC model.  Power fields are in dBm at the receiver; ``None``
    means the source was quiet during that AGC sampling instant.
    """

    source_name: str
    signal_sample_dbm: Optional[float] = None
    silence_sample_dbm: Optional[float] = None
    jam_ber: float = 0.0
    miss_probability: float = 0.0
    truncate_probability: float = 0.0
    clock_stress: float = 0.0
    bursty: bool = False


@dataclass
class ErrorModelParams:
    """Calibrated constants of the impairment pipeline."""

    # Host/AGC residual loss on a perfect channel (Table 2).
    host_loss_probability: float = 3.0e-4
    # Beginning-of-frame miss: logistic in level.  Negligible above
    # level ~8, ~1.4% at 6.7 (the body trial "induced packet loss"),
    # 50% at 4.6 and rising steeply below (the Figure 2 "error region";
    # the paper's undamaged packets bottom out at level 5).
    bof_midpoint_level: float = 4.6
    bof_steepness: float = 2.0
    # Attenuation bit-corruption "hit" process: probability that a
    # packet takes a corruption burst, logistic in level.  At 9.5 →
    # ~1.6% (Table 5 Tx5: 25/1440), at 6.7 → ~16% (Table 8 body: 224/1442).
    hit_midpoint_level: float = 4.9
    hit_steepness: float = 0.9
    # Burst shape: 1 + Geometric(extra) bits, consecutive errors within
    # a bounded gap.  Mean burst ≈ 1 + p/(1-p) = 3.33 bits at p = 0.7.
    burst_continue_probability: float = 0.7
    burst_max_gap_bits: int = 16
    # Residual channel BER on strong links: over the ~1e10 office bits
    # of Table 2 the paper saw ~1 corrupted bit.
    residual_ber: float = 2.0e-10
    # Clock stress / truncation / quality calibration.
    stress: ClockStressParams = field(default_factory=ClockStressParams)


@dataclass
class PacketFate:
    """What the channel did to one packet.

    ``flipped_bits`` are MSB-first bit offsets into the full modem frame;
    flips beyond a truncation point are discarded (those bits never
    arrived).  ``stress``/``quality`` feed the modem status registers.
    """

    missed: bool
    truncated_at_byte: Optional[int]
    flipped_bits: np.ndarray
    stress: float
    quality: int

    @property
    def truncated(self) -> bool:
        return self.truncated_at_byte is not None

    @property
    def damaged(self) -> bool:
        return self.truncated or len(self.flipped_bits) > 0


def _logistic(x: float) -> float:
    # Guard the exp against overflow for extreme levels.
    if x > 60.0:
        return 1.0
    if x < -60.0:
        return 0.0
    return 1.0 / (1.0 + math.exp(-x))


def _sorted_unique(values: np.ndarray) -> np.ndarray:
    """``np.unique`` for small 1-D integer draws, minus its overhead.

    The damage paths dedup a few dozen bit offsets per packet;
    ``np.unique``'s generic machinery costs more than the sort itself
    at that size.
    """
    if values.size <= 1:
        return np.sort(values)
    ordered = np.sort(values)
    keep = np.empty(values.size, dtype=bool)
    keep[0] = True
    np.not_equal(ordered[1:], ordered[:-1], out=keep[1:])
    return ordered[keep]


def _fold_probabilities(
    base: np.ndarray, columns: Sequence[np.ndarray]
) -> np.ndarray:
    """``1 - ∏(1 - p_i)`` across per-packet probability columns.

    The independent-process fold the scalar path performs one packet at
    a time, computed as a log-space sum (``log1p``) so stacking many
    sources stays numerically stable; a column entry at exactly 1 gives
    ``-inf`` and correctly folds to probability 1.
    """
    if not columns:
        return base
    if _compiled.compiled_enabled():
        base_arr = np.asarray(base, dtype=np.float64)
        if base_arr.ndim == 1:
            matrix = np.stack(
                [np.broadcast_to(column, base_arr.shape) for column in columns]
            )
            return _compiled.fold_probabilities(base_arr, matrix)
    with np.errstate(divide="ignore"):
        log_keep = np.log1p(-base)
        for column in columns:
            log_keep = log_keep + np.log1p(-column)
    return 1.0 - np.exp(log_keep)


def _flat_unique(values: np.ndarray) -> np.ndarray:
    """Sort-based ``np.unique`` for large 1-D int arrays.

    numpy's hash-based unique kernel is several times slower than a
    plain sort + run-length mask at the millions-of-keys sizes the bulk
    damage merge produces; this keeps the merge sort-bound.
    """
    if values.size <= 1:
        return np.sort(values)
    ordered = np.sort(values)
    keep = np.empty(values.size, dtype=bool)
    keep[0] = True
    np.not_equal(ordered[1:], ordered[:-1], out=keep[1:])
    return ordered[keep]


def _distinct_uniform_rounds(
    spans: np.ndarray,
    sizes: np.ndarray,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Round-based exact distinct-subset sampler (small-domain helper).

    Returns flat ``(row_ids, values)`` arrays (order not meaningful).
    Equal in distribution to per-row
    ``rng.choice(span, size, replace=False)``: repeatedly drawing iid
    uniforms and keeping the first ``size`` distinct values is uniform
    over size-subsets by exchangeability.  Rows wanting more than half
    their span sample the *complement* subset instead, so every top-up
    round retires at least half of the remaining need in expectation
    and the loop converges geometrically.

    The membership bitmap makes each round O(draws), which is ideal for
    the small strides this is now used for (the excess-drop step of
    :func:`_distinct_uniform_bulk`); the oversampling sampler below is
    faster on the big flat jam-window workloads.
    """
    total_rows = spans.shape[0]
    if total_rows == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    spans_all = spans.astype(np.int64)
    sizes_all = np.minimum(sizes.astype(np.int64), spans_all)
    stride = int(spans_all.max())
    # Membership is a flat per-chunk bitmap (row-major, ``stride`` bits
    # per row); chunking bounds its footprint on huge damaged sets.
    chunk_rows = max(1, min(total_rows, 32_000_000 // stride))
    out_rows: list[np.ndarray] = []
    out_vals: list[np.ndarray] = []
    for chunk_start in range(0, total_rows, chunk_rows):
        chunk = slice(chunk_start, min(chunk_start + chunk_rows, total_rows))
        spans_c = spans_all[chunk]
        sizes_c = sizes_all[chunk]
        m = spans_c.shape[0]
        dense = sizes_c * 2 > spans_c
        want = np.where(dense, spans_c - sizes_c, sizes_c)
        small_keys = m * stride < 2**31
        taken = np.zeros(m * stride, dtype=bool)
        need = want.copy()
        for _ in range(10_000):
            pending = np.nonzero(need > 0)[0]
            if pending.size == 0:
                break
            reps = need[pending]
            rows = np.repeat(pending, reps)
            bounds = np.repeat(spans_c[pending], reps)
            if rows.size >= 4096:
                # Scalar-bound draw + rejection against each row's
                # span: numpy's array-bound integers() runs per-element
                # and is several times slower, while rejecting the few
                # overshoots (spans cluster near the max) keeps exact
                # uniformity.  Small tails use the exact draw directly
                # so a narrow-span straggler can't spin the loop.
                draws = rng.integers(0, stride, size=rows.size)
                in_span = draws < bounds
                rows = rows[in_span]
                draws = draws[in_span]
            else:
                draws = rng.integers(0, bounds)
            keys = rows * stride + draws
            if small_keys:
                keys = keys.astype(np.int32)
            # In-round dedup + bitmap probe: the union of accepted
            # values is the same set the sequential first-distinct
            # process produces, so uniformity is preserved.
            keys = _flat_unique(keys)
            keys = keys[~taken[keys]]
            taken[keys] = True
            rows_new = keys // stride
            need -= np.bincount(rows_new, minlength=m)
            if not dense.all():
                emit = ~dense[rows_new]
                kept = keys[emit]
                rows_kept = rows_new[emit]
                out_rows.append(rows_kept.astype(np.int64) + chunk_start)
                out_vals.append(
                    kept.astype(np.int64) - rows_kept.astype(np.int64) * stride
                )
        else:  # pragma: no cover - density ≤ 1/2 makes this unreachable
            raise RuntimeError("distinct-subset sampling failed to converge")
        dense_rows = np.nonzero(dense)[0]
        if dense_rows.size:
            # Dense rows selected their *exclusions*; emit the
            # complement of each row's bitmap slice.
            counts = spans_c[dense_rows]
            rep_rows = np.repeat(dense_rows, counts)
            starts = np.cumsum(counts) - counts
            vals = np.arange(int(counts.sum()), dtype=np.int64) - np.repeat(
                starts, counts
            )
            keep = ~taken[rep_rows * stride + vals]
            out_rows.append(rep_rows[keep] + chunk_start)
            out_vals.append(vals[keep])
    if not out_rows:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    return np.concatenate(out_rows), np.concatenate(out_vals)


def _distinct_uniform_bulk(
    spans: np.ndarray,
    sizes: np.ndarray,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample ``sizes[i]`` distinct uniform integers from ``[0, spans[i])``
    for every row at once.

    Returns flat ``(row_ids, values)`` arrays **grouped by ascending
    row, ascending within each row** — callers can treat the output as
    ready-made CSR content without re-sorting.

    Strategy (one sort instead of a bitmap round loop): oversample each
    row past its need (covering in-row collisions), sort + dedup all
    draws in one combined-key pass, then *uniformly drop* the per-row
    excess.  The distinct set of iid uniform draws is exchangeable, so
    dropping a uniformly-chosen excess subset leaves a uniform
    ``size``-subset; rows that come up short (a few per million) redraw
    wholesale, which preserves uniformity by independence of attempts.
    Rows wanting more than half their span sample the *complement*
    subset instead and emit the inverse at the end.

    Per-row bounded draws use 53-bit float scaling
    (``floor(random() * span)``), whose deviation from exact uniformity
    is at most ``span * 2**-53`` per value — orders of magnitude below
    anything the statistical equivalence suite (or the paper's
    statistics) could resolve, and several times faster than numpy's
    per-element bounded-integer path.
    """
    m = spans.shape[0]
    empty = np.empty(0, dtype=np.int64)
    if m == 0:
        return empty, empty
    spans_all = spans.astype(np.int64)
    sizes_all = np.minimum(sizes.astype(np.int64), spans_all)
    stride = int(spans_all.max())
    if stride <= 0:
        return empty, empty
    small_keys = m * stride < 2**31
    key_dtype = np.int32 if small_keys else np.int64
    key_stride = key_dtype(stride)
    dense = sizes_all * 2 > spans_all
    has_dense = bool(dense.any())
    # Dense rows select their *exclusions* (the complement subset).
    want = np.where(dense, spans_all - sizes_all, sizes_all)
    need = want.copy()
    streams: list[np.ndarray] = []  # sorted, disjoint key arrays
    excl_streams: list[np.ndarray] = []  # dense rows' exclusion keys
    for _ in range(10_000):
        pending = np.nonzero(need > 0)[0]
        if pending.size == 0:
            break
        need_p = need[pending]
        spans_p = spans_all[pending]
        # Oversample quota: expected collisions (birthday term) plus a
        # small safety margin sized so shortfalls are ~5-sigma events.
        n_draw = need_p + (need_p * need_p) // (2 * spans_p) + (need_p >> 5) + 6
        rows = np.repeat(pending.astype(key_dtype), n_draw)
        bounds = np.repeat(spans_p.astype(key_dtype), n_draw)
        draws = (rng.random(rows.size) * bounds).astype(key_dtype)
        # float rounding can land exactly on the bound; fold it back.
        over = draws >= bounds
        if over.any():
            draws[over] = bounds[over] - key_dtype(1)
        keys = rows * key_stride + draws
        keys = _flat_unique(keys)
        if keys.size == 0:  # pragma: no cover - all draws rejected
            continue
        rows_new = keys // key_stride
        # Per-row distinct counts via run lengths (sorted => grouped).
        boundary = np.empty(rows_new.size, dtype=bool)
        boundary[0] = True
        np.not_equal(rows_new[1:], rows_new[:-1], out=boundary[1:])
        run_starts = np.flatnonzero(boundary)
        run_rows = rows_new[run_starts].astype(np.int64)
        run_counts = np.diff(np.append(run_starts, rows_new.size))
        ok_run = run_counts >= need[run_rows]
        if not ok_run.all():
            # Shortfall rows redraw from scratch next round; drop their
            # partial draws entirely (keeping them would bias the set).
            keys = keys[np.repeat(ok_run, run_counts)]
            run_rows = run_rows[ok_run]
            run_counts = run_counts[ok_run]
            if keys.size == 0:
                continue
        need_ok = need[run_rows]
        excess = run_counts - need_ok
        if int(excess.sum()) > 0:
            # Uniformly drop the excess: positions within each row's
            # run are labels of an exchangeable set, so a uniform
            # distinct position subset removes a uniform value subset.
            drop_rows, drop_pos = _distinct_uniform_rounds(
                run_counts, excess, rng
            )
            keep = np.ones(keys.size, dtype=bool)
            stream_offsets = np.cumsum(run_counts) - run_counts
            keep[stream_offsets[drop_rows] + drop_pos] = False
            keys = keys[keep]
        need[run_rows] = 0
        if has_dense:
            elem_dense = np.repeat(dense[run_rows], need_ok)
            excl_streams.append(keys[elem_dense])
            streams.append(keys[~elem_dense])
        else:
            streams.append(keys)
    else:  # pragma: no cover - margins make this unreachable
        raise RuntimeError("distinct-subset sampling failed to converge")
    if has_dense:
        dense_rows = np.nonzero(dense)[0]
        spans_d = spans_all[dense_rows]
        rep_rows = np.repeat(dense_rows, spans_d)
        starts = np.cumsum(spans_d) - spans_d
        vals = np.arange(int(spans_d.sum()), dtype=np.int64) - np.repeat(
            starts, spans_d
        )
        cand = (rep_rows * stride + vals).astype(key_dtype)
        if excl_streams:
            excl = (
                excl_streams[0]
                if len(excl_streams) == 1
                else np.sort(np.concatenate(excl_streams))
            )
            if excl.size:
                pos = np.searchsorted(excl, cand)
                hit = (pos < excl.size) & (
                    excl[np.minimum(pos, excl.size - 1)] == cand
                )
                cand = cand[~hit]
        streams.append(cand)
    if not streams:
        return empty, empty
    if len(streams) == 1:
        keys = streams[0]
    else:
        keys = np.sort(np.concatenate(streams))
    rows_out = (keys // key_stride).astype(np.int64)
    vals_out = keys.astype(np.int64) - rows_out * stride
    return rows_out, vals_out


def _record_fate_metrics(fate: PacketFate) -> None:
    """Mirror one sampled fate into the ``phy.*`` counters.

    The vectorized path accounts its bulk flags separately (see
    :meth:`WaveLanErrorModel.sample_bulk`), so this is only
    called on the per-packet paths.
    """
    state = _obs.STATE
    if not state.enabled:
        return
    metrics = state.metrics
    metrics.counter("phy.packets_sampled").inc()
    if fate.missed:
        metrics.counter("phy.missed").inc()
        return
    if fate.truncated:
        metrics.counter("phy.truncated").inc()
    flipped = len(fate.flipped_bits)
    if flipped:
        metrics.counter("phy.corrupted_packets").inc()
        metrics.counter("phy.bits_flipped").inc(flipped)


class WaveLanErrorModel:
    """Samples per-packet fates given channel state."""

    # In-window bit error density of a bursty jammer's contiguous
    # corruption window.
    JAM_DENSITY = 0.03

    def __init__(self, params: ErrorModelParams | None = None) -> None:
        self.params = params or ErrorModelParams()
        self.stress_model = ClockStressModel(self.params.stress)

    # ------------------------------------------------------------------
    # Component probabilities (deterministic functions of level)
    # ------------------------------------------------------------------
    def bof_miss_probability(self, level: float) -> float:
        """Chance the beginning-of-frame marker is missed at this level."""
        p = self.params
        return _logistic(p.bof_steepness * (p.bof_midpoint_level - level))

    def miss_probability(self, level: float) -> float:
        """Total attenuation+host miss probability at this level."""
        p_bof = self.bof_miss_probability(level)
        p_host = self.params.host_loss_probability
        return 1.0 - (1.0 - p_bof) * (1.0 - p_host)

    # The burst-hit and clock-slip processes are *events in time*: a
    # frame is exposed in proportion to its airtime.  Calibration is
    # anchored at the paper's 1072-byte test frame.
    REFERENCE_FRAME_BYTES = 1072

    def hit_probability(self, level: float, frame_bytes: int | None = None) -> float:
        """Chance of an attenuation-driven corruption burst.

        Scales with frame airtime; the calibrated value applies to the
        paper's 1072-byte test frame.
        """
        p = self.params
        base = _logistic(p.hit_steepness * (p.hit_midpoint_level - level))
        if frame_bytes is None:
            return base
        return min(1.0, base * frame_bytes / self.REFERENCE_FRAME_BYTES)

    # ------------------------------------------------------------------
    # Burst synthesis
    # ------------------------------------------------------------------
    def _burst_positions(
        self, frame_bits: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Bit offsets of one corruption burst, clustered in the frame."""
        p = self.params
        count = 1 + rng.geometric(1.0 - p.burst_continue_probability) - 1
        start = int(rng.integers(0, frame_bits))
        positions = [start]
        cursor = start
        for _ in range(count - 1):
            cursor += int(rng.integers(1, p.burst_max_gap_bits + 1))
            if cursor >= frame_bits:
                break
            positions.append(cursor)
        return np.array(sorted(set(positions)), dtype=np.int64)

    def _jam_positions(
        self,
        frame_bits: int,
        jam_ber: float,
        bursty: bool,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Bit errors injected by an interference source.

        ``bursty`` sources (spread-spectrum phone stompers) concentrate
        their errors in contiguous clumps; others scatter uniformly.
        """
        expected = jam_ber * frame_bits
        if expected <= 0.0:
            return np.empty(0, dtype=np.int64)
        total = int(rng.poisson(expected))
        return self._jam_positions_from_total(frame_bits, total, bursty, rng)

    def _jam_positions_from_total(
        self,
        frame_bits: int,
        total: int,
        bursty: bool,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Place ``total`` jam errors (the count having been drawn already).

        Split from :meth:`_jam_positions` so the bulk path can draw all
        packets' Poisson totals vectorized and only place positions for
        the damaged minority.
        """
        if total == 0:
            return np.empty(0, dtype=np.int64)
        if not bursty:
            return _sorted_unique(rng.integers(0, frame_bits, size=total))
        # Bursty: one contiguous jam window at a fixed in-window error
        # density, biased toward the frame interior — the receiver's
        # AGC and clock are freshly trained at the frame edges, so the
        # observed wrapper-damage rate is far below the body rate
        # (Table 11: 1 % wrapper vs 59 % body).
        window_bits = min(frame_bits, max(total, int(total / self.JAM_DENSITY)))
        lead_margin = int(frame_bits * 0.045)
        tail_margin = int(frame_bits * 0.005)
        if rng.random() < 0.03:
            # Occasionally the jam does catch the frame edges (the paper
            # saw ~1 % wrapper damage under the SS phone).
            lead_margin = 0
            tail_margin = 0
        latest_start = max(lead_margin + 1, frame_bits - tail_margin - window_bits)
        start = int(rng.integers(lead_margin, latest_start))
        span = max(1, min(window_bits, frame_bits - tail_margin - start))
        positions = start + rng.choice(span, size=min(total, span), replace=False)
        # choice(replace=False) already yields distinct offsets; sorting
        # is all that is left to normalize.
        return np.sort(positions.astype(np.int64))

    # ------------------------------------------------------------------
    # Main per-packet pipeline
    # ------------------------------------------------------------------
    def sample_packet(
        self,
        level: float,
        frame_bytes: int,
        rng: np.random.Generator,
        interference: Sequence[InterferenceSample] = (),
    ) -> PacketFate:
        """Decide one packet's fate on a channel at ``level``.

        ``level`` is the continuous post-diversity signal level; the
        caller derives the *register* readings separately via the AGC
        model (they fold in interference power).
        """
        frame_bits = frame_bytes * 8

        # 1. Miss?
        p_miss = self.miss_probability(level)
        for sample in interference:
            p_miss = 1.0 - (1.0 - p_miss) * (1.0 - sample.miss_probability)
        if rng.random() < p_miss:
            fate = PacketFate(
                missed=True,
                truncated_at_byte=None,
                flipped_bits=np.empty(0, dtype=np.int64),
                stress=0.0,
                quality=0,
            )
            _record_fate_metrics(fate)
            return fate

        # 2. Clock stress and truncation.
        interference_stress = sum(s.clock_stress for s in interference)
        stress = self.stress_model.sample_stress(level, interference_stress, rng)
        # A clock slip truncates the packet and jumps the stress above
        # the threshold; interference can also slip the clock directly
        # or push the stress over the threshold by itself.  Slip chance
        # scales with airtime (calibrated at the 1072-byte test frame).
        truncated = self.stress_model.causes_truncation(stress)
        if not truncated:
            p_slip = self.stress_model.truncation_probability(level) * (
                frame_bytes / self.REFERENCE_FRAME_BYTES
            )
            for sample in interference:
                p_slip = 1.0 - (1.0 - p_slip) * (1.0 - sample.truncate_probability)
            truncated = rng.random() < p_slip
            if truncated:
                stress = max(stress, self.stress_model.slip_stress(rng))
        truncated_at: Optional[int] = None
        if truncated:
            # Clock loss can strike anywhere after the first few bytes.
            truncated_at = int(rng.integers(8, frame_bytes))

        # 3. Bit corruption.
        flipped: list[np.ndarray] = []
        if rng.random() < self.hit_probability(level, frame_bytes):
            flipped.append(self._burst_positions(frame_bits, rng))
        if self.params.residual_ber > 0.0:
            # Binomial thinning of the residual channel BER.  (The old
            # ``rng.random() < residual_ber * frame_bits`` shortcut flips
            # at most one bit and breaks down once the expected count
            # approaches 1.)
            residual_bits = int(
                rng.binomial(frame_bits, min(1.0, self.params.residual_ber))
            )
            if residual_bits:
                flipped.append(
                    _sorted_unique(rng.integers(0, frame_bits, size=residual_bits))
                )
        for sample in interference:
            flipped.append(
                self._jam_positions(frame_bits, sample.jam_ber, sample.bursty, rng)
            )
        if flipped:
            all_flips = _sorted_unique(np.concatenate(flipped))
        else:
            all_flips = np.empty(0, dtype=np.int64)
        if truncated_at is not None:
            all_flips = all_flips[all_flips < truncated_at * 8]

        # 4. Quality register.
        quality = self.stress_model.quality_reading(
            stress, had_bit_errors=len(all_flips) > 0, rng=rng
        )

        fate = PacketFate(
            missed=False,
            truncated_at_byte=truncated_at,
            flipped_bits=all_flips,
            stress=stress,
            quality=quality,
        )
        _record_fate_metrics(fate)
        return fate

    # ------------------------------------------------------------------
    # Vectorized fast path (whole-trial fates)
    # ------------------------------------------------------------------
    def sample_bulk(
        self,
        levels: np.ndarray,
        frame_bytes: int,
        interference: Sequence["BulkInterference"],
        rng: np.random.Generator,
    ) -> dict[str, np.ndarray]:
        """Vectorized fates for a whole trial, interference included.

        ``interference`` is a sequence of per-source
        :class:`~repro.interference.base.BulkInterference` schedules
        (empty for a clean channel).  Source probability columns fold
        into the attenuation probabilities via vectorized log-space
        products — the same independent-process combination the scalar
        :meth:`sample_packet` performs one packet at a time.

        Returns arrays: ``missed`` (bool), ``stress`` (float),
        ``truncated`` (bool), ``hit`` (bool), ``residual_bits`` (int),
        ``jam_totals`` (one int array per source, Poisson error counts),
        and ``needs_detail`` (bool: packets that must be expanded via
        :meth:`detail_packet`).  For realistic channels the flagged set
        is a small minority, which is what makes half-million packet
        trials (Table 2) and the interference tables (10-14) tractable.
        """
        p = self.params
        n = len(levels)
        frame_bits = frame_bytes * 8

        # 1. Miss: host + beginning-of-frame, folded with each source's
        # per-packet stomp columns.
        p_bof = 1.0 / (1.0 + np.exp(
            np.clip(p.bof_steepness * (levels - p.bof_midpoint_level), -60, 60)
        ))
        p_miss = 1.0 - (1.0 - p_bof) * (1.0 - p.host_loss_probability)
        p_miss = _fold_probabilities(
            p_miss, [s.miss_probability for s in interference]
        )
        missed = rng.random(n) < p_miss

        # 2. Clock stress and truncation (slip chance scales with
        # airtime, calibrated at the 1072-byte test frame).
        interference_stress: np.ndarray | float = 0.0
        for schedule in interference:
            interference_stress = interference_stress + schedule.clock_stress
        stress = self.stress_model.sample_stress_bulk(
            levels, rng, interference_stress=interference_stress
        )
        p_slip = self.stress_model.truncation_probability_bulk(levels) * (
            frame_bytes / self.REFERENCE_FRAME_BYTES
        )
        p_slip = _fold_probabilities(
            p_slip, [s.truncate_probability for s in interference]
        )
        truncated = (
            (stress > p.stress.truncation_threshold) | (rng.random(n) < p_slip)
        ) & ~missed

        # 3. Corruption processes: attenuation burst hit, residual BER
        # (Binomial thinning), and per-source Poisson jam totals.
        p_hit = 1.0 / (1.0 + np.exp(
            np.clip(p.hit_steepness * (levels - p.hit_midpoint_level), -60, 60)
        ))
        p_hit = np.minimum(1.0, p_hit * (frame_bytes / self.REFERENCE_FRAME_BYTES))
        hit = (rng.random(n) < p_hit) & ~missed
        if p.residual_ber > 0.0:
            residual_bits = rng.binomial(frame_bits, min(1.0, p.residual_ber), size=n)
            residual_bits[missed] = 0
        else:
            residual_bits = np.zeros(n, dtype=np.int64)
        jam_totals: list[np.ndarray] = []
        for schedule in interference:
            totals = rng.poisson(schedule.jam_ber * frame_bits)
            totals[missed] = 0
            jam_totals.append(totals)

        needs_detail = truncated | hit | (residual_bits > 0)
        for totals in jam_totals:
            needs_detail = needs_detail | (totals > 0)
        needs_detail &= ~missed

        state = _obs.STATE
        if state.enabled:
            # Bulk accounting: one increment batch per trial, so the
            # vectorized hot path pays nothing per packet.
            metrics = state.metrics
            metrics.counter("phy.packets_sampled").inc(n)
            metrics.counter("phy.missed").inc(int(np.count_nonzero(missed)))
            metrics.counter("phy.truncated").inc(
                int(np.count_nonzero(truncated))
            )
            metrics.counter("phy.corruption_hits").inc(
                int(np.count_nonzero(hit))
                + int(np.count_nonzero(residual_bits > 0))
            )

        return {
            "missed": missed,
            "stress": stress,
            "truncated": truncated,
            "hit": hit,
            "residual_bits": residual_bits,
            "jam_totals": jam_totals,
            "needs_detail": needs_detail,
        }

    def sample_bulk_clean(
        self,
        levels: np.ndarray,
        frame_bytes: int,
        rng: np.random.Generator,
    ) -> dict[str, np.ndarray]:
        """Vectorized fates for a clean channel (no interference).

        Thin wrapper over :meth:`sample_bulk` with an empty schedule;
        kept for callers that want the historical ``residual_hit``
        boolean view of the residual-BER column.
        """
        fates = self.sample_bulk(levels, frame_bytes, (), rng)
        fates["residual_hit"] = fates["residual_bits"] > 0
        return fates

    def detail_packet(
        self,
        stress: float,
        truncated: bool,
        hit: bool,
        residual_bits: int,
        frame_bytes: int,
        rng: np.random.Generator,
        jam: Sequence[tuple[int, bool]] = (),
    ) -> PacketFate:
        """Expand one bulk-flagged packet into a full :class:`PacketFate`.

        ``jam`` carries one ``(error_total, bursty)`` pair per
        interference source, with totals as drawn by
        :meth:`sample_bulk`; only position placement happens here.
        """
        frame_bits = frame_bytes * 8
        truncated_at = None
        if truncated:
            truncated_at = int(rng.integers(8, frame_bytes))
            if not self.stress_model.causes_truncation(stress):
                stress = max(stress, self.stress_model.slip_stress(rng))
        flipped: list[np.ndarray] = []
        if hit:
            flipped.append(self._burst_positions(frame_bits, rng))
        if residual_bits:
            flipped.append(
                _sorted_unique(rng.integers(0, frame_bits, size=int(residual_bits)))
            )
        for total, bursty in jam:
            if total:
                flipped.append(
                    self._jam_positions_from_total(
                        frame_bits, int(total), bursty, rng
                    )
                )
        # Each component is already sorted and duplicate-free; merging
        # is only needed when several processes fired on one packet.
        if not flipped:
            all_flips = np.empty(0, dtype=np.int64)
        elif len(flipped) == 1:
            all_flips = flipped[0]
        else:
            all_flips = _sorted_unique(np.concatenate(flipped))
        if truncated_at is not None:
            all_flips = all_flips[all_flips < truncated_at * 8]
        quality = self.stress_model.quality_reading(
            stress, had_bit_errors=len(all_flips) > 0, rng=rng
        )
        state = _obs.STATE
        if state.enabled and len(all_flips):
            # sample_bulk already counted this packet's sampling, miss
            # and truncation flags; only the materialized bit damage is
            # new information here.
            metrics = state.metrics
            metrics.counter("phy.corrupted_packets").inc()
            metrics.counter("phy.bits_flipped").inc(len(all_flips))
        return PacketFate(
            missed=False,
            truncated_at_byte=truncated_at,
            flipped_bits=all_flips,
            stress=stress,
            quality=quality,
        )

    def detail_clean_packet(
        self,
        stress: float,
        truncated: bool,
        hit: bool,
        residual_bits: int,
        frame_bytes: int,
        rng: np.random.Generator,
    ) -> PacketFate:
        """Expand a bulk-flagged packet of an interference-free trial."""
        return self.detail_packet(
            stress, truncated, hit, residual_bits, frame_bytes, rng
        )

    # ------------------------------------------------------------------
    # Vectorized detail expansion (whole damaged minority at once)
    # ------------------------------------------------------------------
    def _jam_windows_bulk(
        self,
        frame_bits: int,
        totals: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Bursty jam-window placement for many packets at once.

        The batched twin of the ``bursty`` arm of
        :meth:`_jam_positions_from_total`: same window sizing, edge
        margins (with the 3 % edge-catch exception), start distribution
        and in-window uniform distinct sampling — only the draw *count*
        per packet differs, which the scalar/bulk equivalence suite
        treats as free (all draws are independent).
        """
        m = totals.shape[0]
        window_bits = np.minimum(
            frame_bits,
            np.maximum(totals, (totals / self.JAM_DENSITY).astype(np.int64)),
        )
        lead = int(frame_bits * 0.045)
        tail = int(frame_bits * 0.005)
        edge = rng.random(m) < 0.03
        lead_arr = np.where(edge, 0, lead)
        tail_arr = np.where(edge, 0, tail)
        latest_start = np.maximum(
            lead_arr + 1, frame_bits - tail_arr - window_bits
        )
        start = rng.integers(lead_arr, latest_start)
        span = np.maximum(
            1, np.minimum(window_bits, frame_bits - tail_arr - start)
        )
        rows, offsets = _distinct_uniform_bulk(
            span, np.minimum(totals, span), rng
        )
        return rows, start[rows] + offsets

    def detail_bulk(
        self,
        stress: np.ndarray,
        truncated: np.ndarray,
        hit: np.ndarray,
        residual_bits: np.ndarray,
        frame_bytes: int,
        rng: np.random.Generator,
        jam: Sequence[tuple[np.ndarray, bool]] = (),
    ) -> dict[str, np.ndarray]:
        """Batched :meth:`detail_packet` over the damaged minority.

        Arguments are the flagged rows' columns from :meth:`sample_bulk`
        (``jam``: one ``(totals, bursty)`` pair per source, totals
        aligned with the rows).  Returns columns over the same rows:

        * ``truncated_at`` — int64 cut byte, ``-1`` where not truncated;
        * ``stress`` — updated stress (clock slips raise it);
        * ``quality`` — int16 quality register;
        * ``flip_positions`` / ``flip_offsets`` — all packets' sorted,
          deduplicated, truncation-cut bit offsets in one flat int64
          array with CSR row offsets (``k + 1`` entries).

        Statistically equivalent to looping :meth:`detail_packet` (the
        equivalence suite pins it against ``force_per_packet`` trials);
        RNG draw order differs, so individual packets are not
        byte-comparable across the two paths.
        """
        k = stress.shape[0]
        frame_bits = frame_bytes * 8
        stress = np.asarray(stress, dtype=np.float64).copy()

        # Truncation points, plus the clock-slip stress jump for rows
        # whose stress did not already explain the truncation.
        truncated_at = np.full(k, -1, dtype=np.int64)
        t_rows = np.nonzero(truncated)[0]
        if t_rows.size:
            truncated_at[t_rows] = rng.integers(
                8, frame_bytes, size=t_rows.size
            )
            threshold = self.params.stress.truncation_threshold
            slip_rows = t_rows[stress[t_rows] <= threshold]
            if slip_rows.size:
                stress[slip_rows] = np.maximum(
                    stress[slip_rows],
                    self.stress_model.slip_stress_bulk(slip_rows.size, rng),
                )

        rows_parts: list[np.ndarray] = []
        pos_parts: list[np.ndarray] = []
        # Count of parts already grouped by row with distinct, sorted
        # in-row positions (only the bursty-jam sampler guarantees
        # this); a lone such part can skip the merge sort below.
        grouped_parts = 0

        # Attenuation bursts: geometric lengths, uniform starts, then a
        # gap matrix wide enough for the longest burst.  Masking the
        # positions that ran past the frame end is equivalent to the
        # scalar early break (the cursor is monotone).
        h_rows = np.nonzero(hit)[0]
        if h_rows.size:
            p = self.params
            counts = rng.geometric(
                1.0 - p.burst_continue_probability, size=h_rows.size
            )
            starts = rng.integers(0, frame_bits, size=h_rows.size)
            rows_parts.append(h_rows)
            pos_parts.append(starts)
            max_extra = int(counts.max()) - 1
            if max_extra > 0:
                gaps = rng.integers(
                    1,
                    p.burst_max_gap_bits + 1,
                    size=(h_rows.size, max_extra),
                )
                extra = starts[:, None] + np.cumsum(gaps, axis=1)
                valid = (
                    np.arange(max_extra)[None, :] < (counts - 1)[:, None]
                ) & (extra < frame_bits)
                rr, cc = np.nonzero(valid)
                rows_parts.append(h_rows[rr])
                pos_parts.append(extra[rr, cc])

        # Residual BER and non-bursty jam: flat uniform draws.
        r_rows = np.nonzero(residual_bits > 0)[0]
        if r_rows.size:
            reps = residual_bits[r_rows].astype(np.int64)
            rows_parts.append(np.repeat(r_rows, reps))
            pos_parts.append(
                rng.integers(0, frame_bits, size=int(reps.sum()))
            )
        for totals, bursty in jam:
            j_rows = np.nonzero(totals > 0)[0]
            if not j_rows.size:
                continue
            j_totals = totals[j_rows].astype(np.int64)
            if not bursty:
                rows_parts.append(np.repeat(j_rows, j_totals))
                pos_parts.append(
                    rng.integers(0, frame_bits, size=int(j_totals.sum()))
                )
            else:
                local, positions = self._jam_windows_bulk(
                    frame_bits, j_totals, rng
                )
                rows_parts.append(j_rows[local])
                pos_parts.append(positions)
                grouped_parts += 1

        # Merge all processes: one combined-key unique performs the
        # per-packet sort + dedup for every packet at once, then the
        # truncation cut drops flips past each packet's cut byte.  When
        # a single grouped-distinct source contributed (the dominant
        # jamming-interference case) the merge sort is a no-op and is
        # skipped outright.
        if len(rows_parts) == 1 and grouped_parts == 1:
            flat_rows = rows_parts[0]
            flat_pos = pos_parts[0]
            if t_rows.size:
                cut = truncated_at[flat_rows]
                keep = (cut < 0) | (flat_pos < cut * 8)
                flat_rows = flat_rows[keep]
                flat_pos = flat_pos[keep]
        elif rows_parts:
            keys = np.concatenate(rows_parts) * frame_bits + np.concatenate(
                pos_parts
            )
            if k * frame_bits < 2**31:
                keys = keys.astype(np.int32)
            keys = _flat_unique(keys)
            flat_rows = (keys // frame_bits).astype(np.int64)
            flat_pos = keys.astype(np.int64) - flat_rows * frame_bits
            cut = truncated_at[flat_rows]
            keep = (cut < 0) | (flat_pos < cut * 8)
            flat_rows = flat_rows[keep]
            flat_pos = flat_pos[keep]
        else:
            flat_rows = np.empty(0, dtype=np.int64)
            flat_pos = np.empty(0, dtype=np.int64)
        flip_counts = np.bincount(flat_rows, minlength=k)
        flip_offsets = np.zeros(k + 1, dtype=np.int64)
        np.cumsum(flip_counts, out=flip_offsets[1:])

        quality = self.stress_model.quality_reading_bulk(
            stress, flip_counts > 0, rng
        )

        state = _obs.STATE
        if state.enabled:
            corrupted = int(np.count_nonzero(flip_counts))
            if corrupted:
                metrics = state.metrics
                metrics.counter("phy.corrupted_packets").inc(corrupted)
                metrics.counter("phy.bits_flipped").inc(int(flat_pos.size))

        return {
            "truncated_at": truncated_at,
            "stress": stress,
            "quality": quality,
            "flip_positions": flat_pos,
            "flip_offsets": flip_offsets,
        }
