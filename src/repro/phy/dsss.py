"""Direct-sequence spread spectrum at chip level.

WaveLAN modulates each data bit with an 11-chip sequence, expanding the
1 megabaud DQPSK symbol stream into an 11 MHz wide signal (paper,
Section 2).  The receiver correlates against the same sequence; a
narrowband jammer's energy is spread by the correlation while the
desired signal is compressed, yielding a processing gain of
10*log10(11) ≈ 10.4 dB.

This module implements the chip-level codec so that the narrowband
resistance the paper observes (Section 7.2) is demonstrated by actual
correlation arithmetic, not merely asserted: flipping up to 5 of the 11
chips of a bit still decodes correctly.
"""

from __future__ import annotations

import math

import numpy as np

# The 11-chip Barker sequence (ideal autocorrelation sidelobes of ±1),
# the spreading sequence class WaveLAN-era DSSS radios used.
BARKER_11 = np.array([1, -1, 1, 1, -1, 1, 1, 1, -1, -1, -1], dtype=np.int8)

CHIPS_PER_BIT = 11


def processing_gain_db(chips_per_bit: int = CHIPS_PER_BIT) -> float:
    """Spreading processing gain in dB.

    >>> round(processing_gain_db(), 1)
    10.4
    """
    return 10.0 * math.log10(chips_per_bit)


class DsssCodec:
    """Spread/despread bit streams with a chip sequence.

    Chips are represented as int8 values in {-1, +1}.
    """

    def __init__(self, sequence: np.ndarray = BARKER_11) -> None:
        sequence = np.asarray(sequence, dtype=np.int8)
        if sequence.ndim != 1 or len(sequence) == 0:
            raise ValueError("spreading sequence must be a non-empty 1-D array")
        if not np.all(np.abs(sequence) == 1):
            raise ValueError("spreading sequence chips must be +/-1")
        self.sequence = sequence
        self.chips_per_bit = len(sequence)

    def spread(self, bits: np.ndarray) -> np.ndarray:
        """Map bits {0,1} to chips: bit 1 → +sequence, bit 0 → -sequence."""
        bits = np.asarray(bits)
        symbols = np.where(bits > 0, 1, -1).astype(np.int8)
        return (symbols[:, None] * self.sequence[None, :]).reshape(-1)

    def despread(self, chips: np.ndarray) -> np.ndarray:
        """Correlate chips against the sequence and hard-decide bits.

        A bit decodes correctly as long as fewer than half of its chips
        (≤ 5 of 11 for Barker-11) are inverted — this is the mechanism
        behind DSSS narrowband-jam resistance.
        """
        chips = np.asarray(chips, dtype=np.int32)
        if len(chips) % self.chips_per_bit != 0:
            raise ValueError(
                f"chip count {len(chips)} is not a multiple of {self.chips_per_bit}"
            )
        grouped = chips.reshape(-1, self.chips_per_bit)
        correlation = grouped @ self.sequence.astype(np.int32)
        return (correlation > 0).astype(np.uint8)

    def chip_error_tolerance(self) -> int:
        """Maximum chip flips per bit that still decode correctly."""
        return (self.chips_per_bit - 1) // 2

    def autocorrelation(self) -> np.ndarray:
        """Aperiodic autocorrelation of the sequence (peak at zero lag).

        For Barker-11 all off-peak magnitudes are ≤ 1 — the "very low
        self-correlation" the paper credits for multipath resistance.
        """
        seq = self.sequence.astype(np.int32)
        n = len(seq)
        lags = []
        for lag in range(n):
            lags.append(int(np.dot(seq[: n - lag], seq[lag:])))
        return np.array(lags, dtype=np.int32)

    def cross_correlation(self, other: "DsssCodec") -> int:
        """Peak-magnitude cross-correlation with another codec's sequence.

        The paper notes (Section 8) that large sequence families with
        simultaneously low self- and cross-correlation are hard to build;
        this hook lets the CDMA extension experiments quantify that.
        """
        if other.chips_per_bit != self.chips_per_bit:
            raise ValueError("sequences must have the same length")
        a = self.sequence.astype(np.int32)
        b = other.sequence.astype(np.int32)
        n = len(a)
        peak = 0
        for lag in range(n):
            forward = int(np.dot(a[: n - lag], b[lag:]))
            backward = int(np.dot(b[: n - lag], a[lag:]))
            peak = max(peak, abs(forward), abs(backward))
        return peak
