"""Automatic gain control readings.

The signal and silence levels "are derived from the receiver's automatic
gain control (AGC) setting just after the beginning and end of the
packet, respectively" (paper, Section 2).  The AGC responds to *total*
in-band power, so an active interferer inflates both readings — the
paper's Tables 12 and 14 show test-packet signal levels well above the
clean-channel value when spread-spectrum phones or competing WaveLAN
units are active.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.units import clamp_agc, dbm_to_level, level_to_dbm


def power_sum_dbm(components_dbm: Iterable[Optional[float]]) -> Optional[float]:
    """Sum powers expressed in dBm (ignoring ``None`` entries).

    Returns None when every component is None (nothing on the air).

    >>> round(power_sum_dbm([-20.0, -20.0]), 2)
    -16.99
    """
    total_mw = 0.0
    seen = False
    for dbm in components_dbm:
        if dbm is None:
            continue
        seen = True
        total_mw += 10.0 ** (dbm / 10.0)
    if not seen:
        return None
    return 10.0 * math.log10(total_mw)


@dataclass
class AgcModel:
    """Converts on-air power composition into AGC register readings."""

    # Per-sample measurement jitter of the AGC, in level units.  The
    # paper's clean trials show per-trial level standard deviations of
    # 0.5-0.9 (Tables 4, 6); antenna diversity contributes part of that,
    # the AGC sample the rest.
    reading_jitter_sd: float = 0.35

    def signal_reading(
        self,
        signal_level: float,
        interference_dbm: Iterable[Optional[float]] = (),
        rng: Optional[np.random.Generator] = None,
    ) -> int:
        """Register value sampled just after the start of a packet.

        ``signal_level`` is the continuous level of the desired signal
        (after antenna selection); active interference power folds in.
        """
        components = [level_to_dbm(signal_level)]
        components.extend(interference_dbm)
        total_dbm = power_sum_dbm(components)
        reading = dbm_to_level(total_dbm) if total_dbm is not None else 0.0
        if rng is not None:
            reading += rng.normal(0.0, self.reading_jitter_sd)
        return clamp_agc(reading)

    def silence_reading(
        self,
        ambient_level: float,
        interference_dbm: Iterable[Optional[float]] = (),
        rng: Optional[np.random.Generator] = None,
    ) -> int:
        """Register value sampled during the inter-packet gap.

        "Measuring the silence level during an inter-packet time is
        typically a good indication of the amount of non-WaveLAN
        background interference" (paper, Section 2).
        """
        components: list[Optional[float]] = [level_to_dbm(ambient_level)]
        components.extend(interference_dbm)
        total_dbm = power_sum_dbm(components)
        reading = dbm_to_level(total_dbm) if total_dbm is not None else 0.0
        if rng is not None:
            reading += rng.normal(0.0, self.reading_jitter_sd)
        return clamp_agc(reading)

    def readings_bulk(
        self,
        base_levels: np.ndarray,
        interference_dbm: Sequence[np.ndarray],
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Vectorized reading column for a whole trial.

        ``base_levels`` is the desired-signal (or ambient) level per
        packet; ``interference_dbm`` holds one dBm column per source
        with ``NaN`` marking quiet sampling instants (the array analogue
        of the scalar paths' ``None``).  Powers are summed in mW exactly
        as :func:`power_sum_dbm` does, jitter is added, and the
        *continuous* reading is returned — callers round/clamp to the
        register range themselves.
        """
        total_mw = 10.0 ** (level_to_dbm(base_levels) / 10.0)
        for column in interference_dbm:
            with np.errstate(invalid="ignore"):
                total_mw = total_mw + np.where(
                    np.isnan(column), 0.0, 10.0 ** (column / 10.0)
                )
        readings = dbm_to_level(10.0 * np.log10(total_mw))
        return readings + rng.normal(
            0.0, self.reading_jitter_sd, size=len(base_levels)
        )
