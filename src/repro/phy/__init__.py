"""The WaveLAN physical layer model.

The modem control unit reports, for every received packet: signal level
and silence level (AGC readings) and signal quality (4-bit), and selects
between two antennas (paper, Section 2).  This package models:

* :mod:`~repro.phy.dsss` — the 11-chip direct-sequence spread spectrum
  layer, implemented at chip level, which is what confers WaveLAN's
  resistance to narrowband interference.
* :mod:`~repro.phy.dqpsk` — DQPSK bit-error-rate theory curves.
* :mod:`~repro.phy.agc` — AGC power summation and register readings.
* :mod:`~repro.phy.antenna` — dual-antenna selection diversity.
* :mod:`~repro.phy.quality` — the clock-recovery "stress" model behind
  the signal-quality register.
* :mod:`~repro.phy.errormodel` — the calibrated per-packet impairment
  pipeline (miss / truncate / corrupt), the heart of the simulator.
* :mod:`~repro.phy.modem` — the modem control unit: receive/quality
  thresholds and per-packet status reporting.
"""

from repro.phy.agc import AgcModel, power_sum_dbm
from repro.phy.antenna import AntennaDiversity
from repro.phy.dqpsk import dqpsk_ber
from repro.phy.dsss import BARKER_11, DsssCodec, processing_gain_db
from repro.phy.errormodel import (
    ErrorModelParams,
    InterferenceSample,
    PacketFate,
    WaveLanErrorModel,
)
from repro.phy.modem import ModemConfig, ModemRxStatus, WaveLanModem

__all__ = [
    "AgcModel",
    "AntennaDiversity",
    "BARKER_11",
    "DsssCodec",
    "dqpsk_ber",
    "ErrorModelParams",
    "InterferenceSample",
    "ModemConfig",
    "ModemRxStatus",
    "PacketFate",
    "WaveLanErrorModel",
    "power_sum_dbm",
    "processing_gain_db",
]
