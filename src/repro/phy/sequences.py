"""Spreading-sequence families for the Section-8 CDMA extension.

"While it is difficult to construct large sequence families which
simultaneously have low self-correlation and low cross-correlation,
and the effect of higher correlation would be more errors, the current
WaveLAN seems to have processing gain to spare" (paper, Section 8).

This module makes that trade-off concrete for 11-chip sequences: it
enumerates the whole ±1 sequence space (2^11 = 2048 candidates),
measures aperiodic auto- and cross-correlations, and greedily builds
families under (self, cross) constraints.  The cross-correlation peak
of a family bounds how much one cell's signal leaks through another
cell's despreader:

    rejection_db = 20 * log10(n_chips / peak_cross_correlation)

— the full processing gain when codes are orthogonal-ish, and nothing
at all when cells share one code (today's WaveLAN).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

import numpy as np

from repro.phy.dsss import BARKER_11, DsssCodec

CHIPS = 11


def int_to_sequence(value: int, n_chips: int = CHIPS) -> np.ndarray:
    """Map an integer's bits to a ±1 chip sequence."""
    bits = [(value >> (n_chips - 1 - i)) & 1 for i in range(n_chips)]
    return np.array([1 if bit else -1 for bit in bits], dtype=np.int8)


def peak_autocorrelation_sidelobe(sequence: np.ndarray) -> int:
    """Largest |aperiodic autocorrelation| at non-zero lag."""
    codec = DsssCodec(sequence)
    auto = codec.autocorrelation()
    return int(np.abs(auto[1:]).max())


def peak_cross_correlation(a: np.ndarray, b: np.ndarray) -> int:
    """Largest |aperiodic cross-correlation| over all lags."""
    return DsssCodec(a).cross_correlation(DsssCodec(b))


@dataclass
class SequenceFamily:
    """A set of spreading sequences with measured correlation bounds."""

    sequences: list[np.ndarray]
    max_self_sidelobe: int
    max_cross_peak: int

    @property
    def size(self) -> int:
        return len(self.sequences)

    def rejection_db(self) -> float:
        """Cross-code rejection the family guarantees (dB).

        One code against another: interference energy after despreading
        is down by (peak_cross / n_chips)^2 relative to the matched
        code's full correlation.
        """
        if self.max_cross_peak <= 0:
            return 40.0  # orthogonal within measurement: cap the claim
        return 20.0 * math.log10(CHIPS / self.max_cross_peak)

    def rejection_levels(self) -> float:
        """The same rejection in WaveLAN AGC level units (2 dB/unit)."""
        from repro.units import DB_PER_LEVEL

        return self.rejection_db() / DB_PER_LEVEL


def candidate_sequences(max_self_sidelobe: int) -> list[np.ndarray]:
    """All 11-chip sequences whose autocorrelation sidelobes are small.

    Barker-11 achieves sidelobes of 1; WaveLAN-era radios need low
    self-correlation for multipath resistance, so a family member must
    be individually good before cross-correlation even matters.
    """
    good = []
    for value in range(1 << CHIPS):
        sequence = int_to_sequence(value)
        if peak_autocorrelation_sidelobe(sequence) <= max_self_sidelobe:
            good.append(sequence)
    return good


def build_family(
    max_self_sidelobe: int, max_cross_peak: int, limit: int = 16
) -> SequenceFamily:
    """Greedily assemble a family under the given correlation bounds.

    Starts from Barker-11 when it qualifies (it does for sidelobe >= 1),
    then adds candidates that keep every pairwise cross-correlation peak
    within the bound.
    """
    candidates = candidate_sequences(max_self_sidelobe)
    chosen: list[np.ndarray] = []
    if peak_autocorrelation_sidelobe(BARKER_11) <= max_self_sidelobe:
        chosen.append(BARKER_11.copy())
    for sequence in candidates:
        if len(chosen) >= limit:
            break
        if any(np.array_equal(sequence, existing) for existing in chosen):
            continue
        if all(
            peak_cross_correlation(sequence, existing) <= max_cross_peak
            for existing in chosen
        ):
            chosen.append(sequence)
    actual_cross = 0
    for a, b in itertools.combinations(chosen, 2):
        actual_cross = max(actual_cross, peak_cross_correlation(a, b))
    actual_self = max(
        (peak_autocorrelation_sidelobe(s) for s in chosen), default=0
    )
    return SequenceFamily(
        sequences=chosen,
        max_self_sidelobe=actual_self,
        max_cross_peak=actual_cross,
    )


def family_size_tradeoff(
    self_bounds: tuple[int, ...] = (1, 2, 3, 4),
    cross_bounds: tuple[int, ...] = (3, 5, 7, 9),
) -> dict[tuple[int, int], int]:
    """Family size achievable at each (self, cross) constraint pair —
    the quantified version of the paper's "it is difficult" remark."""
    table: dict[tuple[int, int], int] = {}
    for self_bound in self_bounds:
        for cross_bound in cross_bounds:
            family = build_family(self_bound, cross_bound)
            table[(self_bound, cross_bound)] = family.size
    return table
