"""A small reliable-transport layer over the simulated WaveLAN link.

The paper's Section 9.3 surveys the mobile-IP community's work on
TCP-over-wireless (I-TCP, proxies, snooping) and closes with a claim
this package makes testable: "Our initial experience suggests that
there may be a class of high-performance wireless networks for which
less aggressive approaches may suffice."

* :mod:`~repro.transport.link` — a half-duplex WaveLAN link adapter:
  one shared transmit queue, per-packet fates from the calibrated PHY
  pipeline, optional transparent link-layer ARQ.
* :mod:`~repro.transport.tcp` — a compact TCP-Reno sender/receiver
  (slow start, congestion avoidance, fast retransmit, Jacobson/Karels
  RTO) driven by the event kernel.
"""

from repro.transport.link import HalfDuplexLink, LinkConfig
from repro.transport.snoop import SnoopNetwork, WiredPipe, run_snoop_transfer
from repro.transport.tcp import (
    DirectNetwork,
    TcpConfig,
    TcpReceiver,
    TcpSender,
    run_transfer,
)

__all__ = [
    "DirectNetwork",
    "HalfDuplexLink",
    "LinkConfig",
    "SnoopNetwork",
    "TcpConfig",
    "TcpReceiver",
    "TcpSender",
    "WiredPipe",
    "run_snoop_transfer",
    "run_transfer",
]
