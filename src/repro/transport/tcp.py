"""A compact TCP-Reno sender and receiver.

Enough of TCP to reproduce its wireless pathology: slow start,
congestion avoidance, duplicate-ACK fast retransmit with fast recovery
halving, Jacobson/Karels RTT estimation, and exponential RTO backoff.
No SACK, no delayed ACKs, segment-granular sequence numbers, a fixed
receive window.

The pathology under test (Sections 1 and 9.3 of the paper): TCP reads
*any* loss as congestion, so corruption losses on a wireless hop cut
the window and strangle throughput even though the channel has
capacity to spare.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from typing import Protocol

from repro.simkit.simulator import Simulator
from repro.transport.link import HalfDuplexLink

ACK_BYTES = 0  # ACK payload; headers are counted by the link overhead


class Network(Protocol):
    """The path between the TCP endpoints.

    :class:`DirectNetwork` is a single (wireless) hop;
    :class:`repro.transport.snoop.SnoopNetwork` is the wired+wireless
    two-hop topology of the mobile-IP literature with a base-station
    agent in the middle.
    """

    sender: "TcpSender"
    receiver: "TcpReceiver"

    def send_data(self, seq: int, payload_bytes: int) -> None:
        """Carry a data segment toward the receiver."""

    def send_ack(self, ack: int) -> None:
        """Carry a cumulative ACK toward the sender."""


class DirectNetwork:
    """Both directions over one shared wireless link."""

    def __init__(self, link: HalfDuplexLink) -> None:
        self.link = link
        self.sender: Optional["TcpSender"] = None
        self.receiver: Optional["TcpReceiver"] = None

    def send_data(self, seq: int, payload_bytes: int) -> None:
        self.link.send(payload_bytes, lambda: self.receiver.on_segment(seq))

    def send_ack(self, ack: int) -> None:
        self.link.send(ACK_BYTES, lambda: self.sender.on_ack(ack))


@dataclass
class TcpConfig:
    """Sender parameters (segment-granular)."""

    mss_bytes: int = 1024
    initial_cwnd: int = 2
    initial_ssthresh: int = 32
    receive_window: int = 32
    dupack_threshold: int = 3
    # 1996 BSD TCPs ran coarse-grained (500 ms) retransmission timers
    # with an effective minimum RTO around a second — the setting the
    # paper's contemporaries (I-TCP, snoop) assumed.
    rto_min_s: float = 1.0
    rto_max_s: float = 30.0


@dataclass
class TcpStats:
    segments_sent: int = 0
    retransmissions: int = 0
    timeouts: int = 0
    fast_retransmits: int = 0
    acks_received: int = 0

    @property
    def goodput_segments(self) -> int:
        return self.segments_sent - self.retransmissions


class TcpReceiver:
    """Cumulative-ACK receiver."""

    def __init__(self, sim: Simulator, network: "Network") -> None:
        self.sim = sim
        self.network = network
        network.receiver = self
        self.next_expected = 0
        self.out_of_order: set[int] = set()

    def on_segment(self, seq: int) -> None:
        """A data segment arrived; return a cumulative ACK."""
        if seq == self.next_expected:
            self.next_expected += 1
            while self.next_expected in self.out_of_order:
                self.out_of_order.discard(self.next_expected)
                self.next_expected += 1
        elif seq > self.next_expected:
            self.out_of_order.add(seq)
        self.network.send_ack(self.next_expected)


class TcpSender:
    """Reno congestion control over the half-duplex link."""

    def __init__(
        self,
        sim: Simulator,
        network: "Network",
        total_segments: int,
        config: TcpConfig | None = None,
    ) -> None:
        self.sim = sim
        self.network = network
        network.sender = self
        self.config = config or TcpConfig()
        self.total_segments = total_segments
        self.stats = TcpStats()

        self.cwnd = float(self.config.initial_cwnd)
        self.ssthresh = float(self.config.initial_ssthresh)
        self.next_to_send = 0
        self.highest_acked = 0  # first unacked segment index
        self.dupacks = 0
        self.in_fast_recovery = False

        # Jacobson/Karels RTT estimation.
        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        self.rto = 1.0
        self._rto_event = None
        self._send_times: dict[int, float] = {}
        self._retransmitted: set[int] = set()

        self.finished = False
        self.finish_time: Optional[float] = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        self._fill_window()

    @property
    def window(self) -> int:
        return int(min(self.cwnd, self.config.receive_window))

    def _outstanding(self) -> int:
        return self.next_to_send - self.highest_acked

    def _fill_window(self) -> None:
        while (
            self._outstanding() < self.window
            and self.next_to_send < self.total_segments
        ):
            self._transmit(self.next_to_send)
            self.next_to_send += 1

    def _transmit(self, seq: int, retransmission: bool = False) -> None:
        self.stats.segments_sent += 1
        if retransmission:
            self.stats.retransmissions += 1
            self._retransmitted.add(seq)
        else:
            self._send_times[seq] = self.sim.now
        self.network.send_data(seq, self.config.mss_bytes)
        if self._rto_event is None:
            self._arm_rto()

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def _arm_rto(self) -> None:
        self._cancel_rto()
        self._rto_event = self.sim.schedule(self.rto, self._on_timeout, name="tcp.rto")

    def _cancel_rto(self) -> None:
        if self._rto_event is not None:
            self.sim.cancel(self._rto_event)
            self._rto_event = None

    def _update_rtt(self, seq: int) -> None:
        sent_at = self._send_times.pop(seq, None)
        if sent_at is None or seq in self._retransmitted:
            return  # Karn's algorithm: never sample retransmits
        sample = self.sim.now - sent_at
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2.0
        else:
            delta = sample - self.srtt
            self.srtt += 0.125 * delta
            self.rttvar += 0.25 * (abs(delta) - self.rttvar)
        self.rto = min(
            self.config.rto_max_s,
            max(self.config.rto_min_s, self.srtt + 4.0 * self.rttvar),
        )

    def _on_timeout(self) -> None:
        self._rto_event = None
        if self.finished or self.highest_acked >= self.total_segments:
            return
        self.stats.timeouts += 1
        # Classic Reno timeout response.
        self.ssthresh = max(2.0, self._outstanding() / 2.0)
        self.cwnd = 1.0
        self.dupacks = 0
        self.in_fast_recovery = False
        self.rto = min(self.config.rto_max_s, self.rto * 2.0)
        self._transmit(self.highest_acked, retransmission=True)
        self._arm_rto()

    # ------------------------------------------------------------------
    # ACK clock
    # ------------------------------------------------------------------
    def on_ack(self, ack: int) -> None:
        if self.finished:
            return
        self.stats.acks_received += 1
        if ack > self.highest_acked:
            newly_acked = ack - self.highest_acked
            for seq in range(self.highest_acked, ack):
                self._update_rtt(seq)
            self.highest_acked = ack
            self.dupacks = 0
            if self.in_fast_recovery:
                # Fast recovery exit: deflate to ssthresh.
                self.cwnd = self.ssthresh
                self.in_fast_recovery = False
            elif self.cwnd < self.ssthresh:
                self.cwnd += newly_acked  # slow start
            else:
                self.cwnd += newly_acked / self.cwnd  # congestion avoidance
            if self.highest_acked >= self.total_segments:
                self.finished = True
                self.finish_time = self.sim.now
                self._cancel_rto()
                return
            self._arm_rto()
            self._fill_window()
        else:
            self.dupacks += 1
            if (
                self.dupacks == self.config.dupack_threshold
                and not self.in_fast_recovery
            ):
                # Fast retransmit + enter fast recovery.
                self.stats.fast_retransmits += 1
                self.ssthresh = max(2.0, self._outstanding() / 2.0)
                self.cwnd = self.ssthresh + 3
                self.in_fast_recovery = True
                self._transmit(self.highest_acked, retransmission=True)
            elif self.in_fast_recovery:
                self.cwnd += 1.0  # inflate per extra dupack
                self._fill_window()


def run_transfer(
    link_config,
    total_segments: int = 400,
    seed: int = 0,
    tcp_config: TcpConfig | None = None,
    time_limit_s: float = 600.0,
):
    """Transfer ``total_segments`` over a link; return (sender, link, sim).

    The simulation stops at ``time_limit_s`` if the transfer stalls
    (deep error region with no ARQ can starve entirely).
    """
    sim = Simulator(seed=seed)
    link = HalfDuplexLink(sim, link_config)
    network = DirectNetwork(link)
    TcpReceiver(sim, network)
    sender = TcpSender(sim, network, total_segments, tcp_config)
    sender.start()
    sim.run_until(time_limit_s)
    return sender, link, sim
