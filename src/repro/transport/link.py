"""A half-duplex WaveLAN link for transport-layer experiments.

One shared 2 Mb/s channel serves both directions FIFO (WaveLAN is a
single channel; CSMA/CA interleaves data and ACKs).  Each frame's fate
comes from the same calibrated impairment pipeline the measurement
experiments use: a frame is delivered iff the modem didn't miss it and
the payload survived intact (a corrupted TCP segment fails its checksum
and is dropped by the receiver — invisible loss, exactly what the
mobile-IP literature worries about).

``LinkConfig.arq_retries`` enables transparent link-layer
retransmission — the "less aggressive approach" of Section 9.3: the
link immediately retries a failed frame up to N times, costing airtime
instead of triggering TCP's congestion response.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.environment.geometry import Point
from repro.interference.base import InterferenceSource
from repro.link.channel import DATA_RATE_BPS
from repro.phy.errormodel import WaveLanErrorModel
from repro.simkit.simulator import Simulator

# Per-frame MAC/PHY overhead: modem id + Ethernet + IP + TCP headers +
# FCS, plus interframe spacing folded into the byte count.
FRAME_OVERHEAD_BYTES = 2 + 14 + 20 + 20 + 4 + 12


@dataclass
class LinkConfig:
    """The channel conditions of one transport experiment."""

    mean_level: float = 29.5
    data_rate_bps: float = DATA_RATE_BPS
    # One-way propagation + processing latency per frame.
    latency_s: float = 1.5e-3
    # Transparent link-layer retransmissions (0 = the paper's WaveLAN,
    # which "does not include such a mechanism").
    arq_retries: int = 0
    interference: Sequence[InterferenceSource] = ()
    rx_position: Point = Point(0.0, 0.0)


@dataclass
class LinkStats:
    frames_offered: int = 0
    frames_failed_first_try: int = 0
    frames_lost_after_arq: int = 0
    arq_retransmissions: int = 0
    busy_time_s: float = 0.0


class HalfDuplexLink:
    """The shared channel both TCP directions ride on."""

    def __init__(
        self,
        sim: Simulator,
        config: LinkConfig,
        error_model: Optional[WaveLanErrorModel] = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.error_model = error_model or WaveLanErrorModel()
        self.rng = sim.rng.stream("transport.link")
        self.stats = LinkStats()
        self._queue: list[tuple[int, Callable[[], None]]] = []
        self._busy = False

    # ------------------------------------------------------------------
    def airtime(self, payload_bytes: int) -> float:
        frame_bytes = payload_bytes + FRAME_OVERHEAD_BYTES
        return frame_bytes * 8.0 / self.config.data_rate_bps

    def _frame_survives(self, payload_bytes: int) -> bool:
        """One on-air attempt: does the frame arrive intact?"""
        samples = [
            source.sample_packet(
                self.config.rx_position, self.config.mean_level, self.rng
            )
            for source in self.config.interference
        ]
        fate = self.error_model.sample_packet(
            self.config.mean_level,
            payload_bytes + FRAME_OVERHEAD_BYTES,
            self.rng,
            samples,
        )
        return not fate.missed and not fate.damaged

    # ------------------------------------------------------------------
    def send(
        self,
        payload_bytes: int,
        on_delivered: Callable[[], None],
        priority: bool = False,
    ) -> None:
        """Queue a frame; ``on_delivered`` fires only if it survives.

        ``priority`` frames jump the queue (the snoop agent's local
        retransmissions must not wait behind a window of fresh data).
        """
        self.stats.frames_offered += 1
        if priority:
            self._queue.insert(0, (payload_bytes, on_delivered))
        else:
            self._queue.append((payload_bytes, on_delivered))
        if not self._busy:
            self._service()

    def _service(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        payload_bytes, on_delivered = self._queue.pop(0)

        attempts = 0
        survived = False
        while attempts <= self.config.arq_retries:
            attempts += 1
            if self._frame_survives(payload_bytes):
                survived = True
                break
        if attempts > 1:
            self.stats.arq_retransmissions += attempts - 1
        if not survived:
            self.stats.frames_lost_after_arq += 1
        if attempts > 1 or not survived:
            self.stats.frames_failed_first_try += 1

        occupancy = attempts * self.airtime(payload_bytes)
        self.stats.busy_time_s += occupancy
        if survived:
            self.sim.schedule(
                occupancy + self.config.latency_s,
                on_delivered,
                name="link.deliver",
            )
        self.sim.schedule(occupancy, self._service, name="link.service")
