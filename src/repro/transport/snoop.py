"""A snoop agent at the base station (Balakrishnan et al., the paper's
citation [5]).

Topology: the fixed host reaches the base station over a wired segment
(lossless, fast, with real latency); the mobile host hangs off the
WaveLAN hop.  The agent snoops both directions:

* **data, wired → wireless**: cache each segment before forwarding;
* **ACKs, wireless → wired**: a *new* cumulative ACK purges the cache
  and is forwarded; a *duplicate* ACK for a cached segment triggers a
  local wireless retransmission and is suppressed — the fixed sender
  never learns a wireless loss happened, so its congestion window never
  collapses.  A per-segment local timer covers losses that produce no
  dupacks.

This is the "TCP-aware link layer" point in the design space between
plain end-to-end TCP and blind link ARQ.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.simkit.simulator import Simulator
from repro.transport.link import HalfDuplexLink
from repro.transport.tcp import ACK_BYTES, TcpReceiver, TcpSender


@dataclass
class WiredConfig:
    """The fixed-network segment between sender and base station."""

    bandwidth_bps: float = 10_000_000.0
    latency_s: float = 10e-3
    overhead_bytes: int = 58  # Ethernet + IP + TCP headers


class WiredPipe:
    """A lossless FIFO pipe (classic wired Ethernet segment)."""

    def __init__(self, sim: Simulator, config: WiredConfig | None = None) -> None:
        self.sim = sim
        self.config = config or WiredConfig()
        self._free_at = 0.0

    def send(self, payload_bytes: int, on_delivered) -> None:
        airtime = (
            (payload_bytes + self.config.overhead_bytes)
            * 8.0
            / self.config.bandwidth_bps
        )
        start = max(self.sim.now, self._free_at)
        self._free_at = start + airtime
        delay = (start - self.sim.now) + airtime + self.config.latency_s
        self.sim.schedule(delay, on_delivered, name="wired.deliver")


@dataclass
class SnoopStats:
    segments_cached: int = 0
    local_retransmissions: int = 0
    dupacks_suppressed: int = 0
    timer_retransmissions: int = 0


class SnoopNetwork:
    """Wired + wireless two-hop path with a snoop agent at the junction.

    Local recovery follows the snoop protocol's discipline: the agent
    keeps its own smoothed estimate of the *wireless* round trip
    (including queueing behind the shared channel), runs one timer for
    the head-of-line cached segment, retransmits a missing segment at
    most once per loss event (suppressing the dupack burst), and backs
    its timer off exponentially.
    """

    def __init__(
        self,
        sim: Simulator,
        wired: WiredPipe,
        wireless: HalfDuplexLink,
        mss_bytes: int = 1024,
        initial_local_rto_s: float = 0.3,
        min_local_rto_s: float = 0.02,
        max_local_rto_s: float = 0.6,
        max_local_retries: int = 10,
    ) -> None:
        self.sim = sim
        self.wired = wired
        self.wireless = wireless
        self.mss_bytes = mss_bytes
        self.min_local_rto_s = min_local_rto_s
        self.max_local_rto_s = max_local_rto_s
        self.max_local_retries = max_local_retries
        self.stats = SnoopStats()

        self.sender: Optional[TcpSender] = None
        self.receiver: Optional[TcpReceiver] = None

        # Agent state.
        self._cache: dict[int, int] = {}  # seq -> local retransmit count
        self._first_forward_time: dict[int, float] = {}
        self._rtx_inflight: set[int] = set()
        self._last_rtx_time: dict[int, float] = {}
        self._last_ack_seen = 0
        # A lost local retransmission shows up as continuing dupacks;
        # retransmit again once this much time has passed (about one
        # unqueued wireless round trip).
        self.rtx_interval_s = 0.012
        # Local wireless-RTT estimator (Jacobson-style).
        self._srtt: Optional[float] = None
        self._rttvar = 0.0
        self._local_rto = initial_local_rto_s
        self._backed_off_rto: Optional[float] = None
        self._head_timer = None
        self._timer_head: Optional[int] = None

    # ------------------------------------------------------------------
    # Data path: fixed sender -> wired -> agent -> wireless -> mobile
    # ------------------------------------------------------------------
    def send_data(self, seq: int, payload_bytes: int) -> None:
        self.wired.send(
            payload_bytes, lambda: self._agent_data_arrived(seq, payload_bytes)
        )

    def _agent_data_arrived(self, seq: int, payload_bytes: int) -> None:
        if seq >= self._last_ack_seen and seq not in self._cache:
            self._cache[seq] = 0
            self._first_forward_time[seq] = self.sim.now
            self.stats.segments_cached += 1
        self._forward_wireless(seq, payload_bytes)
        self._arm_head_timer()

    def _forward_wireless(
        self, seq: int, payload_bytes: int, priority: bool = False
    ) -> None:
        self.wireless.send(
            payload_bytes, lambda: self.receiver.on_segment(seq), priority
        )

    # ------------------------------------------------------------------
    # The single head-of-line timer
    # ------------------------------------------------------------------
    def _current_rto(self) -> float:
        rto = (
            self._backed_off_rto
            if self._backed_off_rto is not None
            else self._local_rto
        )
        # The retry is one frame of airtime: keeping the timer tight is
        # cheap, and an unbounded backoff deadlocks recovery once the
        # sender's window is exhausted (no data in flight => no dupacks
        # to clock the agent).
        return min(rto, self.max_local_rto_s)

    def _arm_head_timer(self, force: bool = False) -> None:
        if not self._cache:
            self._cancel_head_timer()
            self._timer_head = None
            return
        head = min(self._cache)
        if not force and self._head_timer is not None and self._timer_head == head:
            return  # a deadline for this head is already pending
        self._cancel_head_timer()
        self._timer_head = head
        self._head_timer = self.sim.schedule(
            self._current_rto(), self._head_timeout, name="snoop.timer"
        )

    def _cancel_head_timer(self) -> None:
        if self._head_timer is not None:
            self.sim.cancel(self._head_timer)
            self._head_timer = None

    def _head_timeout(self) -> None:
        self._head_timer = None
        if not self._cache:
            return
        head = min(self._cache)
        if self._cache[head] >= self.max_local_retries:
            # Give up on this segment; end-to-end recovery takes over.
            del self._cache[head]
            self._rtx_inflight.discard(head)
            self._arm_head_timer()
            return
        self._cache[head] += 1
        self.stats.local_retransmissions += 1
        self.stats.timer_retransmissions += 1
        self._forward_wireless(head, self.mss_bytes, priority=True)
        self._backed_off_rto = 2.0 * self._current_rto()
        self._arm_head_timer(force=True)

    def _sample_rtt(self, acked_up_to: int) -> None:
        """Sample the wireless RTT from the newest cleanly acked segment."""
        seq = acked_up_to - 1
        forwarded_at = self._first_forward_time.pop(seq, None)
        if forwarded_at is None or seq in self._rtx_inflight:
            return
        sample = self.sim.now - forwarded_at
        if self._srtt is None:
            self._srtt = sample
            self._rttvar = sample / 2.0
        else:
            delta = sample - self._srtt
            self._srtt += 0.125 * delta
            self._rttvar += 0.25 * (abs(delta) - self._rttvar)
        self._local_rto = min(
            self.max_local_rto_s,
            max(self.min_local_rto_s, self._srtt + 4.0 * self._rttvar),
        )

    # ------------------------------------------------------------------
    # ACK path: mobile -> wireless -> agent -> wired -> fixed sender
    # ------------------------------------------------------------------
    def send_ack(self, ack: int) -> None:
        self.wireless.send(ACK_BYTES, lambda: self._agent_ack_arrived(ack))

    def _agent_ack_arrived(self, ack: int) -> None:
        if ack > self._last_ack_seen:
            # New data acknowledged: sample RTT, purge, forward the ACK.
            self._sample_rtt(ack)
            for seq in [s for s in self._cache if s < ack]:
                del self._cache[seq]
                self._first_forward_time.pop(seq, None)
            self._rtx_inflight = {s for s in self._rtx_inflight if s >= ack}
            self._last_rtx_time = {
                s: t for s, t in self._last_rtx_time.items() if s >= ack
            }
            self._last_ack_seen = ack
            self._backed_off_rto = None
            self._arm_head_timer(force=True)
            self.wired.send(ACK_BYTES, lambda: self.sender.on_ack(ack))
            return
        # Duplicate ACK: the mobile is missing segment `ack`.
        if ack in self._cache:
            self.stats.dupacks_suppressed += 1
            since_last = self.sim.now - self._last_rtx_time.get(ack, -1.0)
            first_time = ack not in self._rtx_inflight
            if self._cache[ack] < self.max_local_retries and (
                first_time or since_last > self.rtx_interval_s
            ):
                # Retransmit once per loss event, dupack-clocked: if the
                # retransmission itself dies, the continuing dupacks
                # trigger another after rtx_interval_s.
                self._cache[ack] += 1
                self._rtx_inflight.add(ack)
                self._last_rtx_time[ack] = self.sim.now
                self.stats.local_retransmissions += 1
                # Jump the queue: recovery latency gates the whole
                # window's progress.
                self._forward_wireless(ack, self.mss_bytes, priority=True)
                self._arm_head_timer()
            return
        # Not cached: let the sender handle it end to end.
        self.wired.send(ACK_BYTES, lambda: self.sender.on_ack(ack))


def run_snoop_transfer(
    link_config,
    total_segments: int = 400,
    seed: int = 0,
    wired_config: WiredConfig | None = None,
    tcp_config=None,
    time_limit_s: float = 600.0,
):
    """Transfer over wired+wireless with a snoop agent; return
    (sender, network, wireless link, sim)."""
    sim = Simulator(seed=seed)
    wireless = HalfDuplexLink(sim, link_config)
    wired = WiredPipe(sim, wired_config)
    network = SnoopNetwork(sim, wired, wireless)
    TcpReceiver(sim, network)
    sender = TcpSender(sim, network, total_segments, tcp_config)
    network.mss_bytes = sender.config.mss_bytes
    sender.start()
    sim.run_until(time_limit_s)
    return sender, network, wireless, sim
