"""Competing radiation sources (paper, Section 7).

Each source model produces, per packet, an
:class:`~repro.phy.errormodel.InterferenceSample` describing its
contribution at a given receiver: in-band power during the signal and
silence AGC samples, plus the impairments it induces (jam BER, missed
starts, truncation, clock stress).  The paper characterizes each source
class by exactly these effect signatures:

* **Narrowband** 900 MHz FM cordless phones and AMPS cellular: raise the
  silence level, damage *nothing* (DSSS processing gain) — Table 10.
* **Spread-spectrum** 900 MHz cordless phones: knife-edge behaviour —
  devastating when near (≈50 % loss, 100 % truncation), an intermediate
  regime of frequent correctable body damage, harmless (but noisy) when
  far — Tables 11-13.
* **Front-end overload** sources (144 MHz amateur transmitter, microwave
  oven): no observed effect — Section 7.1.
* **Competing WaveLAN units**: carrier + packet interference, handled
  jointly with the MAC in :mod:`repro.link` — Table 14.
"""

from repro.interference.base import EmitterGeometry, InterferenceSource
from repro.interference.frontend import AmateurRadioTransmitter, MicrowaveOven
from repro.interference.narrowband import AmpsCellPhone, NarrowbandPhonePair
from repro.interference.spreadspectrum import SpreadSpectrumPhonePair
from repro.interference.wavelan import CompetingWaveLanTransmitter

__all__ = [
    "AmateurRadioTransmitter",
    "AmpsCellPhone",
    "CompetingWaveLanTransmitter",
    "EmitterGeometry",
    "InterferenceSource",
    "MicrowaveOven",
    "NarrowbandPhonePair",
    "SpreadSpectrumPhonePair",
]
