"""The interference source interface and shared emitter geometry."""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

import numpy as np

from repro.environment.geometry import Point
from repro.phy.errormodel import InterferenceSample

# Emitters decay like free space (the phones and WaveLAN units sit in
# the same rooms as the receivers, mostly line of sight): path-loss
# exponent 2 = 10 levels per decade in our 2 dB/level AGC mapping.
EMITTER_LEVELS_PER_DECADE = 10.0
MIN_EMITTER_DISTANCE_FT = 0.25


@dataclass(frozen=True)
class EmitterGeometry:
    """A point emitter characterized in AGC level units.

    ``level_at_1ft`` is the AGC level its signal would read at one foot;
    received level decays log-linearly with distance.
    """

    position: Point
    level_at_1ft: float

    def level_at(self, rx: Point) -> float:
        distance = max(self.position.distance_to(rx), MIN_EMITTER_DISTANCE_FT)
        return self.level_at_1ft - EMITTER_LEVELS_PER_DECADE * math.log10(distance)


class InterferenceSource(abc.ABC):
    """A competing radiation source.

    ``sample_packet`` is called once per test packet and returns this
    source's contribution; ``name`` labels it in traces and diagnostics.
    """

    name: str = "interference"

    @abc.abstractmethod
    def sample_packet(
        self,
        rx_position: Point,
        signal_level: float,
        rng: np.random.Generator,
    ) -> InterferenceSample:
        """This source's effect on one packet arriving at ``rx_position``
        with desired-signal level ``signal_level``."""

    def quiet_sample(self) -> InterferenceSample:
        """A no-effect sample (source inactive for this packet)."""
        return InterferenceSample(source_name=self.name)
