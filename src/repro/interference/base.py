"""The interference source interface and shared emitter geometry.

Two sampling surfaces coexist:

* :meth:`InterferenceSource.sample_packet` — one packet at a time,
  consumed by the event-driven MAC simulation and the scalar reference
  trial path;
* :func:`bulk_schedule` — a whole trial at once, returning per-packet
  *arrays* (:class:`BulkInterference`).  The burst-and-jam processes the
  paper measures are memoryless between packets (each packet's exposure
  is an independent draw against the source's duty cycle), so a trial's
  interference schedule factorizes into independent per-packet columns
  that vectorize cleanly.  Concrete sources override ``sample_bulk``
  with closed-form vectorized draws; any source that only implements
  ``sample_packet`` still works through the generic stacking fallback.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.environment.geometry import Point
from repro.phy.errormodel import InterferenceSample

# Emitters decay like free space (the phones and WaveLAN units sit in
# the same rooms as the receivers, mostly line of sight): path-loss
# exponent 2 = 10 levels per decade in our 2 dB/level AGC mapping.
EMITTER_LEVELS_PER_DECADE = 10.0
MIN_EMITTER_DISTANCE_FT = 0.25


@dataclass(frozen=True)
class EmitterGeometry:
    """A point emitter characterized in AGC level units.

    ``level_at_1ft`` is the AGC level its signal would read at one foot;
    received level decays log-linearly with distance.
    """

    position: Point
    level_at_1ft: float

    def level_at(self, rx: Point) -> float:
        distance = max(self.position.distance_to(rx), MIN_EMITTER_DISTANCE_FT)
        return self.level_at_1ft - EMITTER_LEVELS_PER_DECADE * math.log10(distance)


@dataclass
class BulkInterference:
    """One source's contribution to every packet of a trial, as arrays.

    The column-per-packet counterpart of :class:`InterferenceSample`:
    each array has one entry per test packet.  dBm columns use ``NaN``
    where the source was quiet at that AGC sampling instant (the array
    analogue of ``None``); probability/stress columns are zero where the
    source had no effect.  ``bursty`` is a per-source property of the
    emission process, not a per-packet draw.
    """

    source_name: str
    signal_sample_dbm: np.ndarray
    silence_sample_dbm: np.ndarray
    jam_ber: np.ndarray
    miss_probability: np.ndarray
    truncate_probability: np.ndarray
    clock_stress: np.ndarray
    bursty: bool = False

    @classmethod
    def quiet(cls, name: str, count: int) -> "BulkInterference":
        """A schedule on which the source never fires."""
        return cls(
            source_name=name,
            signal_sample_dbm=np.full(count, np.nan),
            silence_sample_dbm=np.full(count, np.nan),
            jam_ber=np.zeros(count),
            miss_probability=np.zeros(count),
            truncate_probability=np.zeros(count),
            clock_stress=np.zeros(count),
        )

    @classmethod
    def from_samples(
        cls, name: str, samples: Sequence[InterferenceSample]
    ) -> "BulkInterference":
        """Stack per-packet samples into columns (the generic fallback)."""
        return cls(
            source_name=name,
            signal_sample_dbm=np.array(
                [np.nan if s.signal_sample_dbm is None else s.signal_sample_dbm
                 for s in samples]
            ),
            silence_sample_dbm=np.array(
                [np.nan if s.silence_sample_dbm is None else s.silence_sample_dbm
                 for s in samples]
            ),
            jam_ber=np.array([s.jam_ber for s in samples]),
            miss_probability=np.array([s.miss_probability for s in samples]),
            truncate_probability=np.array(
                [s.truncate_probability for s in samples]
            ),
            clock_stress=np.array([s.clock_stress for s in samples]),
            bursty=any(s.bursty for s in samples),
        )

    def __len__(self) -> int:
        return len(self.jam_ber)

    def sample_at(self, index: int) -> InterferenceSample:
        """The packet-``index`` column as a scalar sample (diagnostics)."""
        signal = float(self.signal_sample_dbm[index])
        silence = float(self.silence_sample_dbm[index])
        return InterferenceSample(
            source_name=self.source_name,
            signal_sample_dbm=None if math.isnan(signal) else signal,
            silence_sample_dbm=None if math.isnan(silence) else silence,
            jam_ber=float(self.jam_ber[index]),
            miss_probability=float(self.miss_probability[index]),
            truncate_probability=float(self.truncate_probability[index]),
            clock_stress=float(self.clock_stress[index]),
            bursty=self.bursty,
        )


def bulk_schedule(
    source: "InterferenceSource",
    rx_position: Point,
    signal_level: float,
    count: int,
    rng: np.random.Generator,
) -> BulkInterference:
    """``count`` packets' worth of one source's contributions.

    Dispatches to the source's vectorized ``sample_bulk`` when it has
    one; otherwise stacks ``count`` scalar :meth:`sample_packet` draws
    (statistically identical, just slower).  Sources are registered as
    virtual subclasses, so the fallback lives here rather than on the
    ABC.
    """
    sample_bulk = getattr(source, "sample_bulk", None)
    if sample_bulk is not None:
        return sample_bulk(rx_position, signal_level, count, rng)
    return BulkInterference.from_samples(
        source.name,
        [source.sample_packet(rx_position, signal_level, rng) for _ in range(count)],
    )


class InterferenceSource(abc.ABC):
    """A competing radiation source.

    ``sample_packet`` is called once per test packet and returns this
    source's contribution; ``name`` labels it in traces and diagnostics.
    Sources may additionally provide ``sample_bulk(rx_position,
    signal_level, count, rng) -> BulkInterference`` — a vectorized
    whole-trial schedule that :func:`bulk_schedule` prefers.
    """

    name: str = "interference"

    @abc.abstractmethod
    def sample_packet(
        self,
        rx_position: Point,
        signal_level: float,
        rng: np.random.Generator,
    ) -> InterferenceSample:
        """This source's effect on one packet arriving at ``rx_position``
        with desired-signal level ``signal_level``."""

    def quiet_sample(self) -> InterferenceSample:
        """A no-effect sample (source inactive for this packet)."""
        return InterferenceSample(source_name=self.name)
