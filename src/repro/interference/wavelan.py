"""Competing WaveLAN transmitters (paper, Section 7.4).

The paper configured two extra WaveLAN units to transmit continuously
(receive threshold raised to 35 so they never defer) and observed:

* with the victim's receive threshold at the default 3, the link was
  "completely unusable": hundreds of corrupted Ethernet addresses, high
  packet loss, very rare collision-free transmissions;
* with the threshold raised to 25 — safely above the interferers'
  received levels — the victims "completely mask[ed] out the
  competition": no bit errors, insignificant loss, but a silence level
  elevated from ~3.4 to ~13.6 (Table 14).

This module models the *receiver-side* effect; the carrier-sense /
deference side lives in the MAC+channel simulation (:mod:`repro.link`),
which uses real overlapping transmissions.  The masked/unmasked split is
physical: when the victim's modem ignores carrier below its threshold it
never tries to synchronize on the competing signal, and the 15-level
power advantage of the desired signal (capture) keeps its bits clean.
When the threshold is low, the modem spends its time locked onto the
continuous competing signal and the test packets arrive to a busy,
mis-locked receiver.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.environment.geometry import Point
from repro.interference.base import (
    BulkInterference,
    EmitterGeometry,
    InterferenceSource,
)
from repro.phy.errormodel import InterferenceSample
from repro.units import level_to_dbm

# Collision-regime effect strengths (threshold does not mask the
# interferer).  Calibrated to "completely unusable": high loss, frequent
# corrupted headers, rare clean packets.
UNMASKED_MISS_PROBABILITY = 0.72
UNMASKED_TRUNCATE_PROBABILITY = 0.45
UNMASKED_JAM_BER = 4.0e-3
UNMASKED_CLOCK_STRESS = 2.0


@dataclass
class CompetingWaveLanTransmitter:
    """A hostile WaveLAN unit transmitting continuously.

    ``level_at_1ft`` describes its emitted power in the same AGC units
    as the test stations (WaveLAN units all transmit 500 mW; per-room
    propagation differences are captured by the scenario's geometry).
    ``victim_receive_threshold`` is the threshold of the receiver this
    sample stream feeds — the scenario wires one instance per victim.
    """

    position: Point
    level_at_1ft: float = 45.3  # same emitted power as a test station
    duty: float = 1.0  # continuous transmission
    victim_receive_threshold: int = 3
    name: str = "competing-wavelan"

    def received_level(self, rx_position: Point) -> float:
        return EmitterGeometry(self.position, self.level_at_1ft).level_at(rx_position)

    def masked_at(self, rx_position: Point) -> bool:
        """Is this interferer below the victim's receive threshold?"""
        return self.received_level(rx_position) < self.victim_receive_threshold

    def sample_packet(
        self,
        rx_position: Point,
        signal_level: float,
        rng: np.random.Generator,
    ) -> InterferenceSample:
        level = self.received_level(rx_position)
        active = rng.random() < self.duty
        dbm = level_to_dbm(level) if active else None
        if self.masked_at(rx_position):
            # Masked: pure silence-level contribution; capture keeps the
            # desired bits clean (Table 14: no bit errors, level/quality
            # unchanged, silence up ~10 levels).
            return InterferenceSample(
                source_name=self.name,
                signal_sample_dbm=dbm,
                silence_sample_dbm=dbm,
            )
        return InterferenceSample(
            source_name=self.name,
            signal_sample_dbm=dbm,
            silence_sample_dbm=dbm,
            jam_ber=UNMASKED_JAM_BER if active else 0.0,
            miss_probability=UNMASKED_MISS_PROBABILITY if active else 0.0,
            truncate_probability=UNMASKED_TRUNCATE_PROBABILITY if active else 0.0,
            clock_stress=UNMASKED_CLOCK_STRESS if active else 0.0,
            bursty=True,
        )

    def sample_bulk(
        self,
        rx_position: Point,
        signal_level: float,
        count: int,
        rng: np.random.Generator,
    ) -> BulkInterference:
        """Vectorized whole-trial schedule.

        Per packet only the duty-cycle activity draw varies; the
        masked/unmasked regime and effect strengths are fixed by the
        geometry and threshold for the whole trial.
        """
        level = self.received_level(rx_position)
        active = rng.random(count) < self.duty
        schedule = BulkInterference.quiet(self.name, count)
        dbm = np.where(active, level_to_dbm(level), np.nan)
        schedule.signal_sample_dbm = dbm
        schedule.silence_sample_dbm = dbm.copy()
        if self.masked_at(rx_position):
            return schedule
        schedule.bursty = True
        schedule.jam_ber = np.where(active, UNMASKED_JAM_BER, 0.0)
        schedule.miss_probability = np.where(active, UNMASKED_MISS_PROBABILITY, 0.0)
        schedule.truncate_probability = np.where(
            active, UNMASKED_TRUNCATE_PROBABILITY, 0.0
        )
        schedule.clock_stress = np.where(active, UNMASKED_CLOCK_STRESS, 0.0)
        return schedule


InterferenceSource.register(CompetingWaveLanTransmitter)
