"""900 MHz spread-spectrum cordless phones (paper, Section 7.3).

These are the worst interferers the paper found, with a knife-edge,
geometry-dependent signature (Tables 11-13):

* **base unit near** the receiver (alone or with its handset): roughly
  half of all packets lost outright, and **every** received packet
  truncated;
* **handset near, base far** ("AT&T handset"): an intermediate regime —
  ~1 % loss, ~4 % truncation, but nearly two thirds of packets carrying
  correctable body errors (worst packet: 4.9 % of body bits);
* **both units far** ("RS remote cluster"): link unharmed, but the
  silence level sits ~20 levels above ambient.

The model: handset and base are TDD burst transmitters with different
powers (the base is mains powered and much hotter) and burst rates.
Per packet, each end may be active at the AGC signal sample, may cover
the packet's start (a miss), and may overlap the packet body.  Effect
strengths are logistic functions of the interference-to-signal level
margin ``x = I - S``; below ``CAPTURE_CUTOFF_LEVELS`` the DSSS
processing gain (10.4 dB ≈ 5.2 levels) plus receiver capture makes the
phone harmless, reproducing the paper's sharp near/far contrast.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.environment.geometry import Point
from repro.interference.base import (
    BulkInterference,
    EmitterGeometry,
    InterferenceSource,
)
from repro.phy.errormodel import InterferenceSample
from repro.units import level_to_dbm


def _logistic(x: float) -> float:
    if x > 60.0:
        return 1.0
    if x < -60.0:
        return 0.0
    return 1.0 / (1.0 + math.exp(-x))


# Below this interference-minus-signal margin (level units) the phone
# has no bit-level effect at all: the despreader's processing gain plus
# the capture effect of the multipath-resistant receiver reject it.
CAPTURE_CUTOFF_LEVELS = -8.0


@dataclass
class _PhoneEnd:
    """One end (handset or base) of a spread-spectrum phone."""

    position: Point
    level_at_1ft: float
    duty: float  # fraction of time transmitting during a call
    bursts_per_packet: float  # expected TX bursts overlapping one packet

    def received_level(self, rx: Point) -> float:
        return EmitterGeometry(self.position, self.level_at_1ft).level_at(rx)


@dataclass
class SpreadSpectrumPhonePair:
    """One spread-spectrum cordless phone (handset + base) on a call.

    ``variant`` selects small calibration differences between the two
    models the paper tested (AT&T 9300 and Radio Shack ET-909); they
    behaved "quite similar".
    """

    handset_position: Point
    base_position: Point
    talking: bool = True
    variant: str = "att"
    name: str = "ss-cordless-phone"

    # Calibrated emitter parameters (see module docstring / DESIGN.md).
    base_level_at_1ft: float = 33.0
    handset_level_at_1ft: float = 20.0
    base_duty: float = 0.50
    handset_duty: float = 0.45
    base_bursts_per_packet: float = 4.0
    handset_bursts_per_packet: float = 0.9
    # The AGC sample integrates a wider window than an instant, so it
    # catches energy from bursts adjacent in time: the probability that
    # an AGC sample reads the phone's power exceeds the instantaneous
    # transmit duty.
    agc_duty: float = 0.85

    # Effect-strength curves (logistic in the margin x = I - S).
    stomp_midpoint: float = 1.0
    stomp_scale: float = 1.2
    trunc_midpoint: float = 0.5
    trunc_scale: float = 1.3
    jam_peak_ber: float = 0.05
    jam_midpoint: float = -4.5
    jam_scale: float = 1.0

    _ends: list[_PhoneEnd] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        self._ends = [
            _PhoneEnd(
                self.base_position,
                self.base_level_at_1ft,
                self.base_duty,
                self.base_bursts_per_packet,
            ),
            _PhoneEnd(
                self.handset_position,
                self.handset_level_at_1ft,
                self.handset_duty,
                self.handset_bursts_per_packet,
            ),
        ]

    # ------------------------------------------------------------------
    def _stomp_strength(self, x: float) -> float:
        return _logistic((x - self.stomp_midpoint) / self.stomp_scale)

    def _trunc_strength(self, x: float) -> float:
        return _logistic((x - self.trunc_midpoint) / self.trunc_scale)

    def _jam_ber(self, x: float) -> float:
        return self.jam_peak_ber * _logistic((x - self.jam_midpoint) / self.jam_scale)

    # ------------------------------------------------------------------
    def sample_packet(
        self,
        rx_position: Point,
        signal_level: float,
        rng: np.random.Generator,
    ) -> InterferenceSample:
        if not self.talking:
            return InterferenceSample(source_name=self.name)

        miss_p = 0.0
        trunc_p = 0.0
        jam_ber = 0.0
        clock_stress = 0.0
        signal_sample: list[float] = []
        silence_sample: list[float] = []

        for end in self._ends:
            interference_level = end.received_level(rx_position)
            x = interference_level - signal_level

            # AGC samples: the end's energy lands in each AGC sampling
            # window with the (window-widened) AGC duty.
            if rng.random() < self.agc_duty:
                signal_sample.append(level_to_dbm(interference_level))
            if rng.random() < self.agc_duty:
                silence_sample.append(level_to_dbm(interference_level))

            if x < CAPTURE_CUTOFF_LEVELS:
                continue  # processing gain + capture: no bit-level effect

            # A burst covering the packet start stomps the BOF marker.
            miss_p = 1.0 - (1.0 - miss_p) * (
                1.0 - end.duty * self._stomp_strength(x)
            )
            # A burst overlapping the body can break clock recovery.
            p_overlap = 1.0 - math.exp(-end.bursts_per_packet)
            trunc_p = 1.0 - (1.0 - trunc_p) * (
                1.0 - p_overlap * self._trunc_strength(x)
            )
            # Overlapped bits take errors; fold the overlap fraction into
            # an effective whole-packet BER.
            overlap_fraction = float(
                np.clip(rng.uniform(0.05, 1.0), 0.0, 1.0)
            ) if rng.random() < p_overlap else 0.0
            jam_ber += self._jam_ber(x) * overlap_fraction
            if overlap_fraction > 0.0:
                clock_stress += 1.5 * _logistic((x + 4.0) / 1.0)

        return InterferenceSample(
            source_name=self.name,
            signal_sample_dbm=_power_sum(signal_sample),
            silence_sample_dbm=_power_sum(silence_sample),
            jam_ber=jam_ber,
            miss_probability=miss_p,
            truncate_probability=trunc_p,
            clock_stress=clock_stress,
            bursty=True,
        )

    def sample_bulk(
        self,
        rx_position: Point,
        signal_level: float,
        count: int,
        rng: np.random.Generator,
    ) -> BulkInterference:
        """Vectorized whole-trial schedule.

        The effect strengths (stomp/truncate/jam curves) are functions
        of the geometry-fixed margin ``x = I - S``, so they are scalars
        over a trial; only the TDD burst timing varies per packet.  The
        per-packet draws — AGC-window occupancy, body-overlap Bernoulli,
        and the overlapped fraction — are independent across packets,
        which is exactly what makes the column-wise form equal in
        distribution to ``count`` scalar :meth:`sample_packet` calls.
        """
        schedule = BulkInterference.quiet(self.name, count)
        schedule.bursty = True
        if not self.talking:
            return schedule

        miss_p = 0.0
        trunc_p = 0.0
        jam_ber = np.zeros(count)
        clock_stress = np.zeros(count)
        signal_mw = np.zeros(count)
        silence_mw = np.zeros(count)

        for end in self._ends:
            interference_level = end.received_level(rx_position)
            x = interference_level - signal_level
            end_mw = 10.0 ** (level_to_dbm(interference_level) / 10.0)
            signal_mw += np.where(rng.random(count) < self.agc_duty, end_mw, 0.0)
            silence_mw += np.where(rng.random(count) < self.agc_duty, end_mw, 0.0)

            if x < CAPTURE_CUTOFF_LEVELS:
                continue  # processing gain + capture: no bit-level effect

            miss_p = 1.0 - (1.0 - miss_p) * (
                1.0 - end.duty * self._stomp_strength(x)
            )
            p_overlap = 1.0 - math.exp(-end.bursts_per_packet)
            trunc_p = 1.0 - (1.0 - trunc_p) * (
                1.0 - p_overlap * self._trunc_strength(x)
            )
            # Overlap is a minority event at realistic burst rates:
            # draw the per-packet fractions only for the rows that
            # overlapped (each an independent U(0.05, 1), so the joint
            # distribution is unchanged) instead of a full column.
            overlap_rows = np.nonzero(rng.random(count) < p_overlap)[0]
            if overlap_rows.size:
                fractions = rng.uniform(0.05, 1.0, size=overlap_rows.size)
                jam_ber[overlap_rows] += self._jam_ber(x) * fractions
                clock_stress[overlap_rows] += 1.5 * _logistic((x + 4.0) / 1.0)

        with np.errstate(divide="ignore"):
            schedule.signal_sample_dbm = np.where(
                signal_mw > 0.0, 10.0 * np.log10(signal_mw), np.nan
            )
            schedule.silence_sample_dbm = np.where(
                silence_mw > 0.0, 10.0 * np.log10(silence_mw), np.nan
            )
        schedule.jam_ber = jam_ber
        schedule.miss_probability = np.full(count, miss_p)
        schedule.truncate_probability = np.full(count, trunc_p)
        schedule.clock_stress = clock_stress
        return schedule


def _power_sum(components_dbm: list[float]) -> float | None:
    if not components_dbm:
        return None
    total_mw = sum(10.0 ** (dbm / 10.0) for dbm in components_dbm)
    return 10.0 * math.log10(total_mw)


InterferenceSource.register(SpreadSpectrumPhonePair)
