"""Narrowband interferers: 900 MHz FM cordless phones, AMPS cellular.

The paper's Table 10 finding: narrowband FM phones raise the WaveLAN
silence level — sometimes dramatically — but cause **no damaged test
packets** and only background packet loss, because DSSS despreading
crushes narrowband energy ("WaveLAN's resistance to these interference
sources is probably due to the DSSS modulation").

The interesting behaviour the paper teases out of the silence numbers is
**power control**: the phones appear to reduce transmit power when their
own link is good ("perhaps to extend handset battery life") — the
highest silence level came with *bases* nearby and handsets distant, not
with the whole cluster nearby.  We model a phone pair as handset+base
emitters whose emitted power drops by a fixed amount once their link is
established (talking, or handset docked near its base).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.environment.geometry import Point
from repro.interference.base import (
    BulkInterference,
    EmitterGeometry,
    InterferenceSource,
)
from repro.phy.errormodel import InterferenceSample
from repro.units import level_to_dbm

# Calibrated emitted levels (AGC level at 1 ft) — see Table 10 analysis
# in DESIGN.md.  Bases are mains powered and run much hotter than the
# battery-powered handsets' idle beacons.
BASE_LEVEL_AT_1FT = 14.0
HANDSET_LEVEL_AT_1FT = 7.5
# Power-control reductions once the phone link is established; the
# handset cuts back harder ("perhaps to extend handset battery life").
BASE_POWER_CONTROL_REDUCTION = 4.0
HANDSET_POWER_CONTROL_REDUCTION = 5.5
# Handset-base distance below which the link counts as established even
# when idle (docked/cradled units).
DOCKED_DISTANCE_FT = 3.0


@dataclass
class NarrowbandPhonePair:
    """One FM cordless phone: a handset and a base unit.

    Parameters mirror the paper's trial configurations: unit positions
    plus whether a call is up ("talking").
    """

    handset_position: Point
    base_position: Point
    talking: bool = False
    power_control: bool = True
    name: str = "fm-cordless-phone"

    def _link_established(self) -> bool:
        if self.talking:
            return True
        docked = (
            self.handset_position.distance_to(self.base_position)
            <= DOCKED_DISTANCE_FT
        )
        return docked

    def _emitters(self) -> list[EmitterGeometry]:
        handset_reduction = 0.0
        base_reduction = 0.0
        if self.power_control and self._link_established():
            handset_reduction = HANDSET_POWER_CONTROL_REDUCTION
            base_reduction = BASE_POWER_CONTROL_REDUCTION
        return [
            EmitterGeometry(
                self.handset_position, HANDSET_LEVEL_AT_1FT - handset_reduction
            ),
            EmitterGeometry(self.base_position, BASE_LEVEL_AT_1FT - base_reduction),
        ]

    def sample_packet(
        self,
        rx_position: Point,
        signal_level: float,
        rng: np.random.Generator,
    ) -> InterferenceSample:
        """Narrowband energy raises both AGC samples, damages nothing."""
        levels = [e.level_at(rx_position) for e in self._emitters()]
        # Fold the two units into one dBm figure for the AGC (power sum
        # happens again at the AGC across sources; pre-summing the pair
        # keeps one sample per source).
        total_mw = sum(10.0 ** (level_to_dbm(lv) / 10.0) for lv in levels)
        total_dbm = 10.0 * np.log10(total_mw)
        return InterferenceSample(
            source_name=self.name,
            signal_sample_dbm=total_dbm,
            silence_sample_dbm=total_dbm,
            # DSSS despreading rejects narrowband energy entirely.
            jam_ber=0.0,
            miss_probability=0.0,
            truncate_probability=0.0,
            clock_stress=0.0,
        )

    def sample_bulk(
        self,
        rx_position: Point,
        signal_level: float,
        count: int,
        rng: np.random.Generator,
    ) -> BulkInterference:
        """Vectorized schedule: the pair's effect is deterministic (a
        constant silence-raising power, no bit-level processes), so the
        whole trial is one broadcast column."""
        sample = self.sample_packet(rx_position, signal_level, rng)
        schedule = BulkInterference.quiet(self.name, count)
        schedule.signal_sample_dbm[:] = sample.signal_sample_dbm
        schedule.silence_sample_dbm[:] = sample.silence_sample_dbm
        return schedule


InterferenceSource.register(NarrowbandPhonePair)


@dataclass
class AmpsCellPhone:
    """An AMPS narrowband FM cellular phone (paper, Section 7.2).

    "At varying distances, the WaveLAN seemed immune to bit errors" —
    the phone contributes a modest silence rise at close range and
    nothing else.  (The paper's memorable observation runs the other
    way: the *phone* received significant white noise from WaveLAN.)
    """

    position: Point
    level_at_1ft: float = 8.0
    transmitting: bool = True
    name: str = "amps-cell-phone"

    def sample_packet(
        self,
        rx_position: Point,
        signal_level: float,
        rng: np.random.Generator,
    ) -> InterferenceSample:
        if not self.transmitting:
            return InterferenceSample(source_name=self.name)
        emitter = EmitterGeometry(self.position, self.level_at_1ft)
        dbm = level_to_dbm(emitter.level_at(rx_position))
        return InterferenceSample(
            source_name=self.name,
            signal_sample_dbm=dbm,
            silence_sample_dbm=dbm,
        )

    def sample_bulk(
        self,
        rx_position: Point,
        signal_level: float,
        count: int,
        rng: np.random.Generator,
    ) -> BulkInterference:
        """Vectorized schedule (the phone's contribution is constant)."""
        sample = self.sample_packet(rx_position, signal_level, rng)
        schedule = BulkInterference.quiet(self.name, count)
        if sample.signal_sample_dbm is not None:
            schedule.signal_sample_dbm[:] = sample.signal_sample_dbm
            schedule.silence_sample_dbm[:] = sample.silence_sample_dbm
        return schedule


InterferenceSource.register(AmpsCellPhone)
