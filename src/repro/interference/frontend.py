"""Front-end overload sources (paper, Section 7.1).

"If a very powerful transmitter of one frequency band is near a receiver
of another band, the transmitter may overwhelm filters in the receiver."
The paper tested a 2 W 144 MHz amateur-radio FM transmitter in physical
contact with the modem and a microwave oven touching the receiver, and
observed **no bit errors** in either case.  The models accordingly
contribute nothing by default; a ``leakage_level`` knob lets what-if
experiments explore a receiver with worse front-end filtering (the paper
notes 2.4 GHz WaveLAN units might receive more microwave interference).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.environment.geometry import Point
from repro.interference.base import (
    BulkInterference,
    EmitterGeometry,
    InterferenceSource,
)
from repro.phy.errormodel import InterferenceSample
from repro.units import level_to_dbm


@dataclass
class AmateurRadioTransmitter:
    """A 144 MHz FM transmitter (out of band for 900 MHz WaveLAN).

    ``leakage_level`` is the AGC level (at 1 ft) of whatever energy makes
    it through the receiver's front-end filters; the paper's observation
    corresponds to the default of no measurable leakage.
    """

    position: Point
    transmit_power_watts: float = 2.0
    leakage_level: float = 0.0
    name: str = "144mhz-ham-transmitter"

    def sample_packet(
        self,
        rx_position: Point,
        signal_level: float,
        rng: np.random.Generator,
    ) -> InterferenceSample:
        if self.leakage_level <= 0.0:
            return InterferenceSample(source_name=self.name)
        dbm = level_to_dbm(
            EmitterGeometry(self.position, self.leakage_level).level_at(rx_position)
        )
        return InterferenceSample(
            source_name=self.name,
            signal_sample_dbm=dbm,
            silence_sample_dbm=dbm,
        )

    def sample_bulk(
        self,
        rx_position: Point,
        signal_level: float,
        count: int,
        rng: np.random.Generator,
    ) -> BulkInterference:
        """Vectorized schedule (deterministic: leakage is constant)."""
        schedule = BulkInterference.quiet(self.name, count)
        if self.leakage_level > 0.0:
            dbm = level_to_dbm(
                EmitterGeometry(self.position, self.leakage_level).level_at(
                    rx_position
                )
            )
            schedule.signal_sample_dbm[:] = dbm
            schedule.silence_sample_dbm[:] = dbm
        return schedule


InterferenceSource.register(AmateurRadioTransmitter)


@dataclass
class MicrowaveOven:
    """A microwave oven operating with the door closed.

    For the paper's 900 MHz units the oven (a ~2.45 GHz source) produced
    no errors.  Setting ``band_ghz`` to 2.4 models the paper's caveat
    that 2.4 GHz WaveLAN units "would receive more interference": the
    oven then contributes in-band noise at the magnetron's 60 Hz duty
    cycle and a mild jam BER at very close range.
    """

    position: Point
    operating: bool = True
    band_ghz: float = 0.915
    in_band_level_at_1ft: float = 18.0
    magnetron_duty: float = 0.5
    name: str = "microwave-oven"

    def _in_band(self) -> bool:
        return self.operating and self.band_ghz >= 2.0

    def sample_packet(
        self,
        rx_position: Point,
        signal_level: float,
        rng: np.random.Generator,
    ) -> InterferenceSample:
        if not self._in_band():
            return InterferenceSample(source_name=self.name)
        if rng.random() >= self.magnetron_duty:
            return InterferenceSample(source_name=self.name)
        level = EmitterGeometry(
            self.position, self.in_band_level_at_1ft
        ).level_at(rx_position)
        dbm = level_to_dbm(level)
        margin = level - signal_level
        jam = 2e-4 if margin > -4.0 else 0.0
        return InterferenceSample(
            source_name=self.name,
            signal_sample_dbm=dbm,
            silence_sample_dbm=dbm,
            jam_ber=jam,
            bursty=True,
        )

    def sample_bulk(
        self,
        rx_position: Point,
        signal_level: float,
        count: int,
        rng: np.random.Generator,
    ) -> BulkInterference:
        """Vectorized schedule: one magnetron duty-cycle draw per packet."""
        schedule = BulkInterference.quiet(self.name, count)
        if not self._in_band():
            return schedule
        firing = rng.random(count) < self.magnetron_duty
        level = EmitterGeometry(
            self.position, self.in_band_level_at_1ft
        ).level_at(rx_position)
        dbm = np.where(firing, level_to_dbm(level), np.nan)
        schedule.signal_sample_dbm = dbm
        schedule.silence_sample_dbm = dbm.copy()
        margin = level - signal_level
        if margin > -4.0:
            schedule.jam_ber = np.where(firing, 2e-4, 0.0)
        schedule.bursty = bool(firing.any())
        return schedule


InterferenceSource.register(MicrowaveOven)
