"""Tables 11, 12 and 13 — 900 MHz spread-spectrum cordless phones
(Section 7.3), the worst interferer the paper found.

Six configurations of two phone models around a WaveLAN pair 25 ft apart
in a conference room.  Paper findings to preserve (Table 11):

* base unit near the receiver (RS base / RS cluster / AT&T cluster):
  ~50 % packet loss and **100 % truncation** of what arrives;
* both units far ("RS remote cluster"): link unharmed, silence ~20
  levels above ambient;
* handset near, base far ("AT&T handset"): ~1 % loss, ~4 % truncation,
  but ~59 % of packets carrying correctable body errors, worst packet
  ~4.9 % of body bits — the regime that motivates variable FEC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.analysis.classify import ClassifiedTrace, classify_trace
from repro.analysis.metrics import TrialMetrics, metrics_from_classified
from repro.analysis.signalstats import (
    SignalStats,
    signal_stats_by_class,
    stats_for_packets,
)
from repro.analysis.tables import render_signal_table
from repro.experiments.engine import ENGINE, PlanContext, TrialPlan, experiment
from repro.experiments.tracedir import trial_trace_path
from repro.framing.testpacket import BODY_BITS
from repro.parallel.handoff import (
    PortableClassifiedTrace,
    export_classified,
    resolve_portable,
)
from repro.scenario.builtin import TABLE11_SCENARIOS
from repro.trace.persist import save_trace
from repro.trace.trial import run_fast_trial

PAPER_PACKETS = 1_440

# Table 11, paper values (loss %, truncated % of received, body-damaged
# % of received, worst body fraction of body bits).
PAPER_TABLE_11 = {
    "Phones off": dict(loss=0.5, truncated=0.0, body=0.0, worst=0.0),
    "RS base": dict(loss=52.0, truncated=100.0, body=0.0, worst=0.0),
    "RS cluster": dict(loss=51.0, truncated=100.0, body=0.0, worst=0.0),
    "AT&T cluster": dict(loss=52.0, truncated=100.0, body=0.0, worst=0.0),
    "RS remote cluster": dict(loss=0.0, truncated=0.0, body=0.0, worst=0.0),
    "AT&T handset": dict(loss=1.0, truncated=4.0, body=59.0, worst=4.9),
}


# Phone placements, power levels, and outsider traffic per trial now
# live declaratively in the registry (TABLE11_SCENARIOS names them);
# the compiled scenarios are pinned equivalent by the golden tests.
TRIALS = list(PAPER_TABLE_11)


@dataclass
class TrialSummary:
    """Measured Table-11 row."""

    name: str
    loss_percent: float
    truncated_percent: float
    wrapper_percent: float
    body_percent: float
    worst_body_fraction: float


@dataclass
class SpreadResult:
    summaries: list[TrialSummary] = field(default_factory=list)
    signal_rows: list[SignalStats] = field(default_factory=list)
    metrics_rows: list[TrialMetrics] = field(default_factory=list)
    classified: dict[str, ClassifiedTrace] = field(default_factory=dict)
    handset_breakdown: list[SignalStats] = field(default_factory=list)

    def summary(self, trial: str) -> TrialSummary:
        for row in self.summaries:
            if row.name == trial:
                return row
        raise KeyError(trial)

    def silence_mean(self, trial: str) -> float:
        for row in self.signal_rows:
            if row.group == trial and row.silence is not None:
                return row.silence.mean
        raise KeyError(trial)


@dataclass
class _TrialBundle:
    """Everything one Table-11 trial contributes to the result.

    ``classified`` crosses the pool boundary as a
    :class:`~repro.parallel.handoff.PortableClassifiedTrace` (columnar
    handle + verdict columns) rather than a pickled record graph;
    ``run_tasks`` calls ``__portable_resolve__`` on the parent side, so
    consumers always see a resolved :class:`ClassifiedTrace` (or
    ``None`` when the caller asked to drop it).
    """

    trial: str
    classified: Optional[Union[ClassifiedTrace, PortableClassifiedTrace]]
    metrics: TrialMetrics
    summary: TrialSummary
    signal_row: SignalStats
    handset_breakdown: list[SignalStats]

    def __portable_resolve__(self) -> "_TrialBundle":
        self.classified = resolve_portable(self.classified)
        return self


def _run_trial(
    trial: str,
    packets: int,
    seed: int,
    transport: Optional[str] = None,
    keep_classified: bool = True,
    trace_dir: Optional[str] = None,
    trace_format: str = "v2",
) -> _TrialBundle:
    """One Table-11 configuration, self-contained and picklable.

    Compiles the registered scenario in-process; the bundle is
    identical whether it runs inline or on a pool worker.  ``transport``
    (``"file"`` / ``"shm"`` / ``"inline"``) exports the classified
    trace as a columnar handoff block instead of returning the live
    object — set on pool paths via the plan's ``pool_kwargs``.
    ``keep_classified=False`` drops the per-packet output entirely for
    callers that only read the summary tables.
    """
    from repro.scenario.registry import REGISTRY

    config = REGISTRY.compile(TABLE11_SCENARIOS[trial]).trial_config(
        name=trial, packets=packets, seed=seed
    )
    output = run_fast_trial(config)
    if trace_dir is not None:
        save_trace(
            output.trace,
            trial_trace_path(trace_dir, trial, trace_format),
            format=trace_format,
        )
    classified = classify_trace(output.trace)
    metrics = metrics_from_classified(classified)
    received = max(1, metrics.packets_received)
    summary = TrialSummary(
        name=trial,
        loss_percent=metrics.packet_loss_percent,
        truncated_percent=100.0 * metrics.packets_truncated / received,
        wrapper_percent=100.0 * metrics.wrapper_damaged / received,
        body_percent=100.0 * metrics.body_damaged_packets / received,
        worst_body_fraction=(metrics.worst_body_bits or 0) / BODY_BITS,
    )
    shipped: Optional[Union[ClassifiedTrace, PortableClassifiedTrace]]
    if not keep_classified:
        shipped = None
    elif transport is not None:
        shipped = export_classified(classified, via=transport)
    else:
        shipped = classified
    return _TrialBundle(
        trial=trial,
        classified=shipped,
        metrics=metrics,
        summary=summary,
        signal_row=stats_for_packets(trial, classified.test_packets),
        handset_breakdown=(
            signal_stats_by_class(classified) if trial == "AT&T handset" else []
        ),
    )


def _aggregate(ctx: PlanContext, values: list) -> SpreadResult:
    result = SpreadResult()
    for bundle in values:
        if bundle.classified is not None:
            result.classified[bundle.trial] = bundle.classified
        result.metrics_rows.append(bundle.metrics)
        result.summaries.append(bundle.summary)
        result.signal_rows.append(bundle.signal_row)
        if bundle.handset_breakdown:
            result.handset_breakdown = bundle.handset_breakdown
    return result


def _render(result: SpreadResult, scale: float) -> None:
    print("Table 11: Summary of spread spectrum cordless phones "
          f"(scale={scale:g})")
    header = (f"{'Trial':>18} | {'Loss':>6} | {'Trunc%':>7} | "
              f"{'Wrap%':>6} | {'Body%':>6} | {'Worst':>6}")
    print(header)
    print("-" * len(header))
    for s in result.summaries:
        print(
            f"{s.name:>18} | {s.loss_percent:5.1f}% | {s.truncated_percent:6.1f}% | "
            f"{s.wrapper_percent:5.1f}% | {s.body_percent:5.1f}% | "
            f"{100 * s.worst_body_fraction:5.2f}%"
        )
    print("\nTable 12: Signal measurements for spread spectrum phones")
    print(render_signal_table(result.signal_rows, label="Trial"))
    print("\nTable 13-style breakdown for the 'AT&T handset' trial:")
    print(render_signal_table(result.handset_breakdown))
    print("\nPaper Table 11:", PAPER_TABLE_11)


def _report_lines(report, result: SpreadResult, scale: float) -> None:
    stomped = result.summary("RS base")
    handset = result.summary("AT&T handset")
    report.add(
        "T11-13 SS phones", "base-near loss", "~52%",
        f"{stomped.loss_percent:.0f}%", 35 < stomped.loss_percent < 70,
    )
    report.add(
        "T11-13 SS phones", "base-near truncation", "100%",
        f"{stomped.truncated_percent:.0f}%", stomped.truncated_percent > 80,
    )
    report.add(
        "T11-13 SS phones", "handset body damage", "59%",
        f"{handset.body_percent:.0f}%", 40 < handset.body_percent < 75,
    )
    report.add(
        "T11-13 SS phones", "remote cluster", "harmless",
        f"{result.summary('RS remote cluster').loss_percent:.1f}% loss",
        result.summary("RS remote cluster").loss_percent < 1.0,
    )


@experiment(
    name="table11",
    artifact="Tables 11-13",
    description="Tables 11-13: spread-spectrum phones",
    aggregate=_aggregate,
    render=_render,
    default_scale=1.0,
    default_seed=73,
    aliases=("table12", "table13"),
    traceable=True,
    report_lines=_report_lines,
    # The report reads only the summary tables, so its workers ship no
    # per-packet records at all.
    report_extras={"keep_classified": False},
)
def _plans(ctx: PlanContext) -> list[TrialPlan]:
    """One plan per Table-11 phone configuration."""
    packets = max(400, int(PAPER_PACKETS * ctx.scale))
    keep_classified = ctx.extra("keep_classified", True)
    transport = ctx.extra("transport", "file")
    return [
        TrialPlan(
            trial,
            _run_trial,
            {
                "trial": trial,
                "packets": packets,
                "keep_classified": keep_classified,
            },
            traceable=True,
            pool_kwargs={"transport": transport},
            scenario=TABLE11_SCENARIOS[trial],
        )
        for trial in TRIALS
    ]


def run(
    scale: float = 1.0,
    seed: int = 73,
    jobs: int = 1,
    transport: str = "file",
    keep_classified: bool = True,
    trace_dir: Optional[str] = None,
    trace_format: str = "v2",
) -> SpreadResult:
    """Run the six Table-11 configurations.

    The trials are mutually independent, so ``jobs > 1`` fans them over
    a process pool; the assembled result is identical to a serial run.
    Pool workers hand their classified traces back through a columnar
    handoff block (``transport``: ``"file"`` temp file, ``"shm"``
    shared memory, ``"inline"`` bytes-in-pickle) instead of pickling
    per-packet record objects.  ``keep_classified=False`` omits
    ``SpreadResult.classified`` for callers that only read the summary
    tables — e.g. the report, which then ships no records at all.
    """
    return ENGINE.run(
        "table11", scale=scale, seed=seed, jobs=jobs,
        trace_dir=trace_dir, trace_format=trace_format,
        extras={"keep_classified": keep_classified, "transport": transport},
    )


def main(
    scale: float = 1.0,
    seed: int = 73,
    jobs: int = 1,
    trace_dir: Optional[str] = None,
    trace_format: str = "v2",
) -> SpreadResult:
    result = run(scale=scale, seed=seed, jobs=jobs, trace_dir=trace_dir,
                 trace_format=trace_format)
    _render(result, scale)
    return result


if __name__ == "__main__":
    main()
