"""Table 2 — in-room base case (Section 5.1).

Nine long office trials at signal level ≈ 29.5.  Paper findings the
reproduction must preserve: more than 10^10 body bits with almost no
bit errors (single corrupted bits in two trials), and a residual packet
loss "well under one per thousand" (.01-.07 %) even in a near-perfect
environment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.analysis.metrics import TrialMetrics, analyze_trial
from repro.analysis.tables import render_metrics_table
from repro.experiments.scenarios import office_scenario
from repro.experiments.tracedir import trial_trace_path
from repro.parallel import Task, run_tasks
from repro.trace.persist import save_trace
from repro.trace.trial import TrialConfig, run_fast_trial

# The paper's nine office trials and their packet counts (Table 2).
PAPER_TRIALS: list[tuple[str, int]] = [
    ("office1", 102_720),
    ("office2", 40_080),
    ("office3", 102_720),
    ("office4", 122_159),
    ("office5", 488_399),
    ("office6", 122_160),
    ("office7", 122_160),
    ("office8", 125_040),
    ("office9", 122_160),
]

# Paper-reported loss percentages, for EXPERIMENTS.md comparison.
PAPER_LOSS_PERCENT = {
    "office1": 0.03, "office2": 0.0, "office3": 0.01, "office4": 0.02,
    "office5": 0.07, "office6": 0.04, "office7": 0.02, "office8": 0.02,
    "office9": 0.02,
}


@dataclass
class BaselineResult:
    """All nine trial rows plus the aggregate the abstract quotes."""

    rows: list[TrialMetrics] = field(default_factory=list)

    @property
    def total_body_bits(self) -> int:
        return sum(r.body_bits_received for r in self.rows)

    @property
    def total_damaged_bits(self) -> int:
        return sum(r.body_bits_damaged for r in self.rows)

    @property
    def aggregate_ber(self) -> float:
        if self.total_body_bits == 0:
            return 0.0
        return self.total_damaged_bits / self.total_body_bits

    @property
    def worst_loss_percent(self) -> float:
        return max((r.packet_loss_percent for r in self.rows), default=0.0)


def _run_trial(
    name: str,
    packets: int,
    seed: int,
    trace_dir: Optional[str] = None,
    trace_format: str = "v2",
) -> TrialMetrics:
    """One office trial, self-contained and picklable.

    Rebuilds the (deterministic, RNG-free) scenario in-process rather
    than shipping model objects to workers; every random stream derives
    from ``seed``, so the row is identical on any worker or inline.
    ``trace_dir`` persists the raw trace (capture-then-analyze-offline,
    like the paper's workflow) as ``<dir>/<name>.wlt2`` columnar or
    ``<dir>/<name>.jsonl`` v1, per ``trace_format``.
    """
    propagation, tx, rx = office_scenario()
    config = TrialConfig(
        name=name,
        packets=packets,
        seed=seed,
        propagation=propagation,
        tx_position=tx,
        rx_position=rx,
    )
    output = run_fast_trial(config)
    if trace_dir is not None:
        save_trace(
            output.trace,
            trial_trace_path(trace_dir, name, trace_format),
            format=trace_format,
        )
    return analyze_trial(output.trace)


def trial_tasks(
    scale: float,
    seed: int,
    trace_dir: Optional[str] = None,
    trace_format: str = "v2",
) -> list[Task]:
    """The nine trials as independent tasks (seeds fixed in the parent)."""
    return [
        Task(
            name,
            _run_trial,
            {
                "name": name,
                "packets": max(1000, int(paper_count * scale)),
                "seed": seed + index,
                "trace_dir": trace_dir,
                "trace_format": trace_format,
            },
            seed=seed + index,
            scale=scale,
        )
        for index, (name, paper_count) in enumerate(PAPER_TRIALS)
    ]


def run(
    scale: float = 1.0,
    seed: int = 1996,
    jobs: int = 1,
    trace_dir: Optional[str] = None,
    trace_format: str = "v2",
) -> BaselineResult:
    """Run the nine office trials at ``scale`` times the paper's lengths.

    The trials are mutually independent, so ``jobs > 1`` fans them over
    a process pool (:mod:`repro.parallel`); rows come back in trial
    order and are identical to a serial run.  ``trace_dir`` saves each
    trial's raw trace there for offline analysis (workers write their
    own shard files directly — nothing extra crosses the pool
    boundary).
    """
    if trace_dir is not None:
        Path(trace_dir).mkdir(parents=True, exist_ok=True)
    tasks = trial_tasks(scale, seed, trace_dir=trace_dir,
                        trace_format=trace_format)
    if jobs <= 1:
        return BaselineResult(rows=[_run_trial(**task.kwargs) for task in tasks])
    results = run_tasks(tasks, jobs=jobs, label="table2-trials")
    return BaselineResult(rows=[r.value for r in results])


def main(
    scale: float = 0.1,
    seed: int = 1996,
    jobs: int = 1,
    trace_dir: Optional[str] = None,
    trace_format: str = "v2",
) -> BaselineResult:
    result = run(scale=scale, seed=seed, jobs=jobs, trace_dir=trace_dir,
                 trace_format=trace_format)
    print("Table 2: Results of in-room experiment "
          f"(scale={scale:g} x paper trial lengths)")
    print(render_metrics_table(result.rows))
    print(
        f"\nAggregate: {result.total_body_bits:.3g} body bits received, "
        f"{result.total_damaged_bits} damaged "
        f"(BER ~ {result.aggregate_ber:.2g}); "
        f"worst trial loss {result.worst_loss_percent:.3f}%"
    )
    return result


if __name__ == "__main__":
    main()
