"""Table 2 — in-room base case (Section 5.1).

Nine long office trials at signal level ≈ 29.5.  Paper findings the
reproduction must preserve: more than 10^10 body bits with almost no
bit errors (single corrupted bits in two trials), and a residual packet
loss "well under one per thousand" (.01-.07 %) even in a near-perfect
environment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.metrics import TrialMetrics, analyze_trial
from repro.analysis.tables import render_metrics_table
from repro.experiments.engine import ENGINE, PlanContext, TrialPlan, experiment
from repro.experiments.tracedir import trial_trace_path
from repro.trace.persist import save_trace
from repro.trace.trial import run_fast_trial

#: The registered topology all nine trials share.
SCENARIO = "paper/office"

# The paper's nine office trials and their packet counts (Table 2).
PAPER_TRIALS: list[tuple[str, int]] = [
    ("office1", 102_720),
    ("office2", 40_080),
    ("office3", 102_720),
    ("office4", 122_159),
    ("office5", 488_399),
    ("office6", 122_160),
    ("office7", 122_160),
    ("office8", 125_040),
    ("office9", 122_160),
]

# Paper-reported loss percentages, for EXPERIMENTS.md comparison.
PAPER_LOSS_PERCENT = {
    "office1": 0.03, "office2": 0.0, "office3": 0.01, "office4": 0.02,
    "office5": 0.07, "office6": 0.04, "office7": 0.02, "office8": 0.02,
    "office9": 0.02,
}


@dataclass
class BaselineResult:
    """All nine trial rows plus the aggregate the abstract quotes."""

    rows: list[TrialMetrics] = field(default_factory=list)

    @property
    def total_body_bits(self) -> int:
        return sum(r.body_bits_received for r in self.rows)

    @property
    def total_damaged_bits(self) -> int:
        return sum(r.body_bits_damaged for r in self.rows)

    @property
    def aggregate_ber(self) -> float:
        if self.total_body_bits == 0:
            return 0.0
        return self.total_damaged_bits / self.total_body_bits

    @property
    def worst_loss_percent(self) -> float:
        return max((r.packet_loss_percent for r in self.rows), default=0.0)


def _run_trial(
    name: str,
    packets: int,
    seed: int,
    trace_dir: Optional[str] = None,
    trace_format: str = "v2",
) -> TrialMetrics:
    """One office trial, self-contained and picklable.

    Compiles the (deterministic, RNG-free) registered scenario
    in-process rather than shipping model objects to workers; every
    random stream derives from ``seed``, so the row is identical on any
    worker or inline.  ``trace_dir`` persists the raw trace
    (capture-then-analyze-offline, like the paper's workflow) as
    ``<dir>/<name>.wlt2`` columnar or ``<dir>/<name>.jsonl`` v1, per
    ``trace_format``.
    """
    from repro.scenario.registry import REGISTRY

    config = REGISTRY.compile(SCENARIO).trial_config(
        name=name, packets=packets, seed=seed
    )
    output = run_fast_trial(config)
    if trace_dir is not None:
        save_trace(
            output.trace,
            trial_trace_path(trace_dir, name, trace_format),
            format=trace_format,
        )
    return analyze_trial(output.trace)


def _aggregate(ctx: PlanContext, values: list) -> BaselineResult:
    return BaselineResult(rows=list(values))


def _render(result: BaselineResult, scale: float) -> None:
    print("Table 2: Results of in-room experiment "
          f"(scale={scale:g} x paper trial lengths)")
    print(render_metrics_table(result.rows))
    print(
        f"\nAggregate: {result.total_body_bits:.3g} body bits received, "
        f"{result.total_damaged_bits} damaged "
        f"(BER ~ {result.aggregate_ber:.2g}); "
        f"worst trial loss {result.worst_loss_percent:.3f}%"
    )


def _report_lines(report, result: BaselineResult, scale: float) -> None:
    report.add(
        "T2 baseline", "worst trial loss", "<= .07%",
        f"{result.worst_loss_percent:.3f}%", result.worst_loss_percent < 0.2,
    )
    report.add(
        "T2 baseline", "aggregate BER", "~1e-10",
        f"{result.aggregate_ber:.1e}", result.aggregate_ber < 1e-7,
    )


def _report_scale(scale: float) -> float:
    # The paper's office trials are ~70x longer than everything else;
    # a fifth of the report scale keeps the report tractable.
    return max(scale * 0.2, 0.01)


@experiment(
    name="table2",
    artifact="Table 2",
    description="Table 2: in-room base case",
    aggregate=_aggregate,
    render=_render,
    default_scale=0.05,
    default_seed=1996,
    traceable=True,
    report_lines=_report_lines,
    report_scale=_report_scale,
)
def _plans(ctx: PlanContext) -> list[TrialPlan]:
    """The nine office trials as independent plans."""
    return [
        TrialPlan(
            name,
            _run_trial,
            {"name": name, "packets": max(1000, int(paper_count * ctx.scale))},
            traceable=True,
            scenario=SCENARIO,
        )
        for name, paper_count in PAPER_TRIALS
    ]


def run(
    scale: float = 1.0,
    seed: int = 1996,
    jobs: int = 1,
    trace_dir: Optional[str] = None,
    trace_format: str = "v2",
) -> BaselineResult:
    """Run the nine office trials at ``scale`` times the paper's lengths.

    The trials are mutually independent, so ``jobs > 1`` fans them over
    a process pool (:mod:`repro.parallel`); rows come back in trial
    order and are identical to a serial run.  ``trace_dir`` saves each
    trial's raw trace there for offline analysis (workers write their
    own shard files directly — nothing extra crosses the pool
    boundary).
    """
    return ENGINE.run(
        "table2", scale=scale, seed=seed, jobs=jobs,
        trace_dir=trace_dir, trace_format=trace_format,
    )


def main(
    scale: float = 0.1,
    seed: int = 1996,
    jobs: int = 1,
    trace_dir: Optional[str] = None,
    trace_format: str = "v2",
) -> BaselineResult:
    result = run(scale=scale, seed=seed, jobs=jobs, trace_dir=trace_dir,
                 trace_format=trace_format)
    _render(result, scale)
    return result


if __name__ == "__main__":
    main()
