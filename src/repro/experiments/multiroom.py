"""Tables 5, 6 and 7 — the Figure-4 multi-room experiment (Section 6.2).

Four transmitter locations at increasing distance/obstacle cost from a
fixed receiver.  Paper findings to preserve:

* Tx1/Tx2 (same office / one concrete wall): essentially perfect, the
  wall costs ~2 levels;
* Tx4 (45 ft, walls + door, level ≈ 13.8): still clean, a single
  truncation;
* Tx5 (30 ft, walls + metal, level ≈ 9.5): the first corrupted bodies —
  ~25 packets carrying ~82 bit errors (worst 7), trivially correctable
  with coding "but the existing WaveLAN system does not include such a
  mechanism";
* within Tx5, corrupted packets have noticeably *lower level*, the
  truncated packet noticeably *lower quality* (Table 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.classify import ClassifiedTrace, classify_trace
from repro.analysis.metrics import TrialMetrics, metrics_from_classified
from repro.analysis.signalstats import (
    SignalStats,
    signal_stats_by_class,
    stats_for_packets,
)
from repro.analysis.tables import render_metrics_table, render_signal_table
from repro.experiments.engine import ENGINE, PlanContext, TrialPlan, experiment
from repro.experiments.tracedir import trial_trace_path
from repro.trace.persist import save_trace
from repro.trace.trial import run_fast_trial

#: The registered Figure-4 topology; its four links are Tx1/Tx2/Tx4/Tx5.
SCENARIO = "paper/multiroom"

# Paper packet counts per location (Table 5).
PAPER_PACKETS = {"Tx1": 12_715, "Tx2": 12_720, "Tx4": 1_440, "Tx5": 1_440}

PAPER_LEVEL_MEANS = {"Tx1": 28.58, "Tx2": 26.66, "Tx4": 13.81, "Tx5": 9.50}


@dataclass
class MultiroomResult:
    metrics_rows: list[TrialMetrics] = field(default_factory=list)
    signal_rows: list[SignalStats] = field(default_factory=list)
    tx5_classified: ClassifiedTrace | None = None
    tx5_breakdown: list[SignalStats] = field(default_factory=list)

    def metrics(self, name: str) -> TrialMetrics:
        for row in self.metrics_rows:
            if row.name == name:
                return row
        raise KeyError(name)

    def level_mean(self, name: str) -> float:
        for row in self.signal_rows:
            if row.group == name and row.level is not None:
                return row.level.mean
        raise KeyError(name)


def _run_location(
    name: str,
    packets: int,
    seed: int,
    trace_dir: Optional[str] = None,
    trace_format: str = "v2",
) -> tuple:
    """One transmitter location, self-contained and picklable.

    Compiles the registered layout in-process (models don't travel to
    workers) and returns everything the result aggregates: metrics
    row, signal row, and — for Tx5 — the classified trace itself.
    The location name doubles as the compiled scenario's link name.
    """
    from repro.scenario.registry import REGISTRY

    config = REGISTRY.compile(SCENARIO).trial_config(
        link=name, packets=packets, seed=seed
    )
    output = run_fast_trial(config)
    if trace_dir is not None:
        save_trace(
            output.trace,
            trial_trace_path(trace_dir, name, trace_format),
            format=trace_format,
        )
    classified = classify_trace(output.trace)
    return (
        metrics_from_classified(classified),
        stats_for_packets(name, classified.test_packets),
        classified if name == "Tx5" else None,
    )


def _aggregate(ctx: PlanContext, values: list) -> MultiroomResult:
    result = MultiroomResult()
    for metrics_row, signal_row, classified in values:
        result.metrics_rows.append(metrics_row)
        result.signal_rows.append(signal_row)
        if classified is not None:
            result.tx5_classified = classified
            result.tx5_breakdown = signal_stats_by_class(classified)
    return result


def _render(result: MultiroomResult, scale: float) -> None:
    print(f"Table 5: Results of multi-room experiments (scale={scale:g})")
    print(render_metrics_table(result.metrics_rows))
    print("\nTable 6: Signal metrics for multi-room experiment")
    print(render_signal_table(result.signal_rows, label="Trial"))
    print("\nTable 7: Signal metrics for multi-room scenario Tx5")
    print(render_signal_table(result.tx5_breakdown))
    print("\nPaper level means:", PAPER_LEVEL_MEANS)


def _report_lines(report, result: MultiroomResult, scale: float) -> None:
    tx5 = result.metrics("Tx5")
    report.add(
        "T5-7 multiroom", "Tx5 level mean", "9.50",
        f"{result.level_mean('Tx5'):.2f}",
        abs(result.level_mean("Tx5") - 9.5) < 1.5,
    )
    report.add(
        "T5-7 multiroom", "Tx5 damaged packets / 1440", "~25",
        f"{tx5.body_damaged_packets / max(scale, 1e-9):.0f} (scaled)",
        tx5.body_damaged_packets > 0,
    )


@experiment(
    name="table5",
    artifact="Tables 5-7",
    description="Tables 5-7: multi-room experiment",
    aggregate=_aggregate,
    render=_render,
    default_scale=1.0,
    default_seed=65,
    aliases=("table6", "table7"),
    traceable=True,
    report_lines=_report_lines,
)
def _plans(ctx: PlanContext) -> list[TrialPlan]:
    """The four transmitter locations, in layout order."""
    return [
        TrialPlan(
            name,
            _run_location,
            {
                "name": name,
                "packets": max(400, int(PAPER_PACKETS[name] * ctx.scale)),
            },
            traceable=True,
            scenario=SCENARIO,
        )
        for name in PAPER_PACKETS
    ]


def run(scale: float = 1.0, seed: int = 65, jobs: int = 1,
        trace_dir: Optional[str] = None,
        trace_format: str = "v2") -> MultiroomResult:
    """Run the four locations; ``jobs > 1`` fans them over a pool.

    Location order, seeds, and every row are identical for any ``jobs``
    value (see :mod:`repro.parallel`).
    """
    return ENGINE.run(
        "table5", scale=scale, seed=seed, jobs=jobs,
        trace_dir=trace_dir, trace_format=trace_format,
    )


def main(scale: float = 1.0, seed: int = 65, jobs: int = 1,
         trace_dir: Optional[str] = None,
         trace_format: str = "v2") -> MultiroomResult:
    result = run(scale=scale, seed=seed, jobs=jobs, trace_dir=trace_dir,
                 trace_format=trace_format)
    _render(result, scale)
    return result


if __name__ == "__main__":
    main()
