"""Tables 5, 6 and 7 — the Figure-4 multi-room experiment (Section 6.2).

Four transmitter locations at increasing distance/obstacle cost from a
fixed receiver.  Paper findings to preserve:

* Tx1/Tx2 (same office / one concrete wall): essentially perfect, the
  wall costs ~2 levels;
* Tx4 (45 ft, walls + door, level ≈ 13.8): still clean, a single
  truncation;
* Tx5 (30 ft, walls + metal, level ≈ 9.5): the first corrupted bodies —
  ~25 packets carrying ~82 bit errors (worst 7), trivially correctable
  with coding "but the existing WaveLAN system does not include such a
  mechanism";
* within Tx5, corrupted packets have noticeably *lower level*, the
  truncated packet noticeably *lower quality* (Table 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.classify import ClassifiedTrace, classify_trace
from repro.analysis.metrics import TrialMetrics, metrics_from_classified
from repro.analysis.signalstats import (
    SignalStats,
    signal_stats_by_class,
    stats_for_packets,
)
from repro.analysis.tables import render_metrics_table, render_signal_table
from repro.experiments.scenarios import multiroom_scenario
from repro.parallel import Task, run_tasks
from repro.trace.trial import TrialConfig, run_fast_trial

# Paper packet counts per location (Table 5).
PAPER_PACKETS = {"Tx1": 12_715, "Tx2": 12_720, "Tx4": 1_440, "Tx5": 1_440}

PAPER_LEVEL_MEANS = {"Tx1": 28.58, "Tx2": 26.66, "Tx4": 13.81, "Tx5": 9.50}


@dataclass
class MultiroomResult:
    metrics_rows: list[TrialMetrics] = field(default_factory=list)
    signal_rows: list[SignalStats] = field(default_factory=list)
    tx5_classified: ClassifiedTrace | None = None
    tx5_breakdown: list[SignalStats] = field(default_factory=list)

    def metrics(self, name: str) -> TrialMetrics:
        for row in self.metrics_rows:
            if row.name == name:
                return row
        raise KeyError(name)

    def level_mean(self, name: str) -> float:
        for row in self.signal_rows:
            if row.group == name and row.level is not None:
                return row.level.mean
        raise KeyError(name)


def _run_location(name: str, packets: int, seed: int) -> tuple:
    """One transmitter location, self-contained and picklable.

    Rebuilds the deterministic layout in-process (models don't travel
    to workers) and returns everything the result aggregates: metrics
    row, signal row, and — for Tx5 — the classified trace itself.
    """
    layout = multiroom_scenario()
    config = TrialConfig(
        name=name,
        packets=packets,
        seed=seed,
        propagation=layout.propagation,
        tx_position=layout.tx_positions()[name],
        rx_position=layout.rx,
    )
    output = run_fast_trial(config)
    classified = classify_trace(output.trace)
    return (
        metrics_from_classified(classified),
        stats_for_packets(name, classified.test_packets),
        classified if name == "Tx5" else None,
    )


def location_tasks(scale: float, seed: int) -> list[Task]:
    """The four locations as independent tasks, in layout order."""
    layout = multiroom_scenario()
    return [
        Task(
            name,
            _run_location,
            {
                "name": name,
                "packets": max(400, int(PAPER_PACKETS[name] * scale)),
                "seed": seed + index,
            },
            seed=seed + index,
            scale=scale,
        )
        for index, name in enumerate(layout.tx_positions())
    ]


def run(scale: float = 1.0, seed: int = 65, jobs: int = 1) -> MultiroomResult:
    """Run the four locations; ``jobs > 1`` fans them over a pool.

    Location order, seeds, and every row are identical for any ``jobs``
    value (see :mod:`repro.parallel`).
    """
    tasks = location_tasks(scale, seed)
    if jobs <= 1:
        outputs = [_run_location(**task.kwargs) for task in tasks]
    else:
        outputs = [
            r.value
            for r in run_tasks(tasks, jobs=jobs, label="table5-locations")
        ]
    result = MultiroomResult()
    for metrics_row, signal_row, classified in outputs:
        result.metrics_rows.append(metrics_row)
        result.signal_rows.append(signal_row)
        if classified is not None:
            result.tx5_classified = classified
            result.tx5_breakdown = signal_stats_by_class(classified)
    return result


def main(scale: float = 1.0, seed: int = 65, jobs: int = 1) -> MultiroomResult:
    result = run(scale=scale, seed=seed, jobs=jobs)
    print(f"Table 5: Results of multi-room experiments (scale={scale:g})")
    print(render_metrics_table(result.metrics_rows))
    print("\nTable 6: Signal metrics for multi-room experiment")
    print(render_signal_table(result.signal_rows, label="Trial"))
    print("\nTable 7: Signal metrics for multi-room scenario Tx5")
    print(render_signal_table(result.tx5_breakdown))
    print("\nPaper level means:", PAPER_LEVEL_MEANS)
    return result


if __name__ == "__main__":
    main()
