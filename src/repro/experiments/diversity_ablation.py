"""Ablation X8 — what the second antenna buys.

"The receiver selects between two perpendicular antennas and multiple
incoming signal paths to combat multipath interference" (Section 2).
This ablation reruns marginal links with the diversity selector
disabled (one antenna) and widened fading, and measures what the
hardware feature is worth where it matters: at the edge of the
Figure-2 error region, where a fraction of a level decides between a
clean packet and a damaged one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.classify import PacketClass, classify_trace
from repro.experiments.engine import ENGINE, PlanContext, TrialPlan, experiment
from repro.trace.trial import TrialConfig, run_fast_trial

LEVELS = (9.5, 8.0, 7.0, 6.0)
PACKETS_PER_POINT = 2_000
BRANCH_COUNTS = (1, 2, 4)  # 4 = a hypothetical richer array


@dataclass
class DiversityPoint:
    level: float
    branches: int
    packets_sent: int
    lost: int
    damaged: int

    @property
    def error_fraction(self) -> float:
        """Lost or damaged packets per packet sent."""
        return (self.lost + self.damaged) / self.packets_sent


@dataclass
class DiversityResult:
    points: list[DiversityPoint] = field(default_factory=list)

    def point(self, level: float, branches: int) -> DiversityPoint:
        for p in self.points:
            if p.level == level and p.branches == branches:
                return p
        raise KeyError((level, branches))

    def improvement(self, level: float) -> float:
        """Error-rate ratio single-antenna : two-antenna at one level."""
        single = self.point(level, 1).error_fraction
        double = self.point(level, 2).error_fraction
        if double == 0.0:
            return float("inf") if single > 0 else 1.0
        return single / double


def _run_level(level: float, packets: int, seed: int) -> list[DiversityPoint]:
    """All branch counts at one signal level, with one shared seed:
    identical channel draws, the only change is the selector."""
    points = []
    for branches in BRANCH_COUNTS:
        output = run_fast_trial(
            TrialConfig(
                name=f"div-{level}-{branches}",
                packets=packets,
                seed=seed,
                mean_level=level,
                antenna_branches=branches,
            )
        )
        classified = classify_trace(output.trace)
        damaged = sum(
            1
            for p in classified.test_packets
            if p.packet_class is not PacketClass.UNDAMAGED
        )
        points.append(
            DiversityPoint(
                level=level,
                branches=branches,
                packets_sent=packets,
                lost=packets - len(classified.test_packets),
                damaged=damaged,
            )
        )
    return points


def _aggregate(ctx: PlanContext, values: list) -> DiversityResult:
    result = DiversityResult()
    for points in values:
        result.points.extend(points)
    return result


@experiment(
    name="diversity",
    artifact="X8",
    description="X8: antenna diversity ablation",
    aggregate=_aggregate,
    render=lambda result, scale: _render(result, scale),
    default_scale=1.0,
    default_seed=101,
)
def _plans(ctx: PlanContext) -> list[TrialPlan]:
    """One plan per signal level (branch counts share the seed)."""
    packets = max(400, int(PACKETS_PER_POINT * ctx.scale))
    return [
        TrialPlan(
            f"level-{level:g}",
            _run_level,
            {"level": level, "packets": packets},
        )
        for level in LEVELS
    ]


def run(scale: float = 1.0, seed: int = 101, jobs: int = 1) -> DiversityResult:
    return ENGINE.run("diversity", scale=scale, seed=seed, jobs=jobs)


def _render(result: DiversityResult, scale: float) -> None:
    print("Ablation X8: antenna selection diversity at the error-region edge")
    header = f"{'level':>6} | " + " | ".join(
        f"{b} antenna{'s' if b > 1 else ' '}" for b in BRANCH_COUNTS
    ) + " | 1-ant/2-ant error ratio"
    print(header)
    for level in LEVELS:
        cells = []
        for branches in BRANCH_COUNTS:
            p = result.point(level, branches)
            cells.append(f"{100 * p.error_fraction:8.2f}%")
        print(f"{level:6.1f} | " + " | ".join(cells)
              + f" | {result.improvement(level):8.2f}x")
    print("\nSelection diversity trims the deep fades that push marginal "
          "packets under the corruption thresholds; its value concentrates "
          "exactly at the Figure-2 boundary, which is why the hardware "
          "pays for a second antenna.")


def main(scale: float = 1.0, seed: int = 101, jobs: int = 1) -> DiversityResult:
    result = run(scale=scale, seed=seed, jobs=jobs)
    _render(result, scale)
    return result


if __name__ == "__main__":
    main()
