"""Figure 1 — signal level as a function of distance (Section 5.2).

The receiver is fixed against one wall of a large lecture hall; the
transmitter moves away in steps (zero = units in physical contact).
Paper findings: a smooth dropoff dominates, with multipath dips at 6 and
30 feet "likely to be particular to the room"; error bars span the
min/max observed per distance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.classify import classify_trace
from repro.analysis.signalstats import stats_for_packets
from repro.environment.geometry import Point
from repro.experiments.engine import ENGINE, PlanContext, TrialPlan, experiment
from repro.experiments.scenarios import lecture_hall_scenario
from repro.experiments.tracedir import trial_trace_path
from repro.trace.persist import save_trace
from repro.trace.trial import TrialConfig, run_fast_trial

# Transmitter distances in feet (0 = physical contact).
DISTANCES_FT = [0, 2, 4, 6, 8, 10, 15, 20, 25, 30, 35, 40, 50, 60, 70, 80]
PACKETS_PER_POINT = 500


@dataclass
class DistancePoint:
    """One x-position of the Figure-1 series."""

    distance_ft: float
    packets_received: int
    level_min: int
    level_mean: float
    level_max: int


@dataclass
class PathLossResult:
    points: list[DistancePoint] = field(default_factory=list)

    def mean_series(self) -> list[tuple[float, float]]:
        return [(p.distance_ft, p.level_mean) for p in self.points]

    def dip_depth(self, dip_ft: float, window_ft: float = 6.0) -> float:
        """How far the level at a dip sits below its neighbours' mean."""
        at_dip = [p for p in self.points if abs(p.distance_ft - dip_ft) < 1.0]
        neighbours = [
            p
            for p in self.points
            if 1.0 <= abs(p.distance_ft - dip_ft) <= window_ft
        ]
        if not at_dip or not neighbours:
            return 0.0
        neighbour_mean = sum(p.level_mean for p in neighbours) / len(neighbours)
        return neighbour_mean - at_dip[0].level_mean


def _run_point(
    distance: float,
    packets: int,
    seed: int,
    trace_dir: Optional[str] = None,
    trace_format: str = "v2",
) -> DistancePoint:
    """One distance step, picklable."""
    propagation = lecture_hall_scenario()
    config = TrialConfig(
        name=f"d={distance}ft",
        packets=packets,
        seed=seed,
        propagation=propagation,
        tx_position=Point(float(distance), 0.0),
        rx_position=Point(0.0, 0.0),
    )
    output = run_fast_trial(config)
    if trace_dir is not None:
        save_trace(
            output.trace,
            trial_trace_path(trace_dir, config.name, trace_format),
            format=trace_format,
        )
    classified = classify_trace(output.trace)
    stats = stats_for_packets(config.name, classified.test_packets)
    if stats.level is None:
        return DistancePoint(distance, 0, 0, 0.0, 0)
    return DistancePoint(
        distance_ft=distance,
        packets_received=stats.packets,
        level_min=stats.level.minimum,
        level_mean=stats.level.mean,
        level_max=stats.level.maximum,
    )


def _aggregate(ctx: PlanContext, values: list) -> PathLossResult:
    return PathLossResult(points=list(values))


def _render(result: PathLossResult, scale: float) -> None:
    print("Figure 1: Signal level as a function of distance "
          "(lecture hall; error bars = min/max)")
    print(f"{'ft':>4} | {'min':>4} | {'mean':>6} | {'max':>4} | bar")
    for p in result.points:
        bar = "#" * max(0, int(round(p.level_mean)))
        print(f"{p.distance_ft:4.0f} | {p.level_min:4d} | {p.level_mean:6.2f} | "
              f"{p.level_max:4d} | {bar}")
    print(f"\nMultipath dip depths: 6 ft -> {result.dip_depth(6.0):.1f} levels, "
          f"30 ft -> {result.dip_depth(30.0):.1f} levels "
          "(paper: noticeable dips at both)")


def _report_lines(report, result: PathLossResult, scale: float) -> None:
    report.add(
        "F1 path loss", "dip at 6 ft", "noticeable",
        f"{result.dip_depth(6.0):.1f} levels", result.dip_depth(6.0) > 2.0,
    )
    report.add(
        "F1 path loss", "dip at 30 ft", "noticeable",
        f"{result.dip_depth(30.0):.1f} levels", result.dip_depth(30.0) > 2.0,
    )


@experiment(
    name="figure1",
    artifact="Figure 1",
    description="Figure 1: signal level vs distance",
    aggregate=_aggregate,
    render=_render,
    default_scale=1.0,
    default_seed=51,
    traceable=True,
    report_lines=_report_lines,
)
def _plans(ctx: PlanContext) -> list[TrialPlan]:
    """One plan per distance step."""
    packets = max(100, int(PACKETS_PER_POINT * ctx.scale))
    return [
        TrialPlan(
            f"d={distance}ft",
            _run_point,
            {"distance": float(distance), "packets": packets},
            traceable=True,
        )
        for distance in DISTANCES_FT
    ]


def run(scale: float = 1.0, seed: int = 51, jobs: int = 1,
        trace_dir: Optional[str] = None,
        trace_format: str = "v2") -> PathLossResult:
    return ENGINE.run(
        "figure1", scale=scale, seed=seed, jobs=jobs,
        trace_dir=trace_dir, trace_format=trace_format,
    )


def main(scale: float = 1.0, seed: int = 51, jobs: int = 1,
         trace_dir: Optional[str] = None,
         trace_format: str = "v2") -> PathLossResult:
    result = run(scale=scale, seed=seed, jobs=jobs, trace_dir=trace_dir,
                 trace_format=trace_format)
    _render(result, scale)
    return result


if __name__ == "__main__":
    main()
