"""Figure 1 — signal level as a function of distance (Section 5.2).

The receiver is fixed against one wall of a large lecture hall; the
transmitter moves away in steps (zero = units in physical contact).
Paper findings: a smooth dropoff dominates, with multipath dips at 6 and
30 feet "likely to be particular to the room"; error bars span the
min/max observed per distance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.classify import classify_trace
from repro.analysis.signalstats import stats_for_packets
from repro.environment.geometry import Point
from repro.experiments.scenarios import lecture_hall_scenario
from repro.trace.trial import TrialConfig, run_fast_trial

# Transmitter distances in feet (0 = physical contact).
DISTANCES_FT = [0, 2, 4, 6, 8, 10, 15, 20, 25, 30, 35, 40, 50, 60, 70, 80]
PACKETS_PER_POINT = 500


@dataclass
class DistancePoint:
    """One x-position of the Figure-1 series."""

    distance_ft: float
    packets_received: int
    level_min: int
    level_mean: float
    level_max: int


@dataclass
class PathLossResult:
    points: list[DistancePoint] = field(default_factory=list)

    def mean_series(self) -> list[tuple[float, float]]:
        return [(p.distance_ft, p.level_mean) for p in self.points]

    def dip_depth(self, dip_ft: float, window_ft: float = 6.0) -> float:
        """How far the level at a dip sits below its neighbours' mean."""
        at_dip = [p for p in self.points if abs(p.distance_ft - dip_ft) < 1.0]
        neighbours = [
            p
            for p in self.points
            if 1.0 <= abs(p.distance_ft - dip_ft) <= window_ft
        ]
        if not at_dip or not neighbours:
            return 0.0
        neighbour_mean = sum(p.level_mean for p in neighbours) / len(neighbours)
        return neighbour_mean - at_dip[0].level_mean


def run(scale: float = 1.0, seed: int = 51) -> PathLossResult:
    propagation = lecture_hall_scenario()
    rx = Point(0.0, 0.0)
    result = PathLossResult()
    packets = max(100, int(PACKETS_PER_POINT * scale))
    for index, distance in enumerate(DISTANCES_FT):
        config = TrialConfig(
            name=f"d={distance}ft",
            packets=packets,
            seed=seed + index,
            propagation=propagation,
            tx_position=Point(float(distance), 0.0),
            rx_position=rx,
        )
        output = run_fast_trial(config)
        classified = classify_trace(output.trace)
        stats = stats_for_packets(config.name, classified.test_packets)
        if stats.level is None:
            result.points.append(
                DistancePoint(distance, 0, 0, 0.0, 0)
            )
            continue
        result.points.append(
            DistancePoint(
                distance_ft=distance,
                packets_received=stats.packets,
                level_min=stats.level.minimum,
                level_mean=stats.level.mean,
                level_max=stats.level.maximum,
            )
        )
    return result


def main(scale: float = 1.0, seed: int = 51) -> PathLossResult:
    result = run(scale=scale, seed=seed)
    print("Figure 1: Signal level as a function of distance "
          "(lecture hall; error bars = min/max)")
    print(f"{'ft':>4} | {'min':>4} | {'mean':>6} | {'max':>4} | bar")
    for p in result.points:
        bar = "#" * max(0, int(round(p.level_mean)))
        print(f"{p.distance_ft:4.0f} | {p.level_min:4d} | {p.level_mean:6.2f} | "
              f"{p.level_max:4d} | {bar}")
    print(f"\nMultipath dip depths: 6 ft -> {result.dip_depth(6.0):.1f} levels, "
          f"30 ft -> {result.dip_depth(30.0):.1f} levels "
          "(paper: noticeable dips at both)")
    return result


if __name__ == "__main__":
    main()
