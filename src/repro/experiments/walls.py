"""Table 4 — signal metrics with a single wall (Section 6.1).

Two wall materials, each compared against the same path without the
wall.  Paper findings: 10^8 bits with no loss or error in every
location; the plaster-with-wire-mesh wall costs ~5 signal levels, the
concrete-block wall only ~2; signal *quality* is unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.classify import classify_trace
from repro.analysis.metrics import TrialMetrics, metrics_from_classified
from repro.analysis.signalstats import SignalStats, stats_for_packets
from repro.analysis.tables import render_signal_table
from repro.experiments.engine import ENGINE, PlanContext, TrialPlan, experiment
from repro.experiments.tracedir import trial_trace_path
from repro.scenario.builtin import TABLE4_SCENARIOS
from repro.trace.persist import save_trace
from repro.trace.trial import run_fast_trial

# Table 4 ran 12,720 packets per trial (~10^8 body bits).
PAPER_PACKETS = 12_720

PAPER_LEVEL_MEANS = {"Air 1": 30.58, "Wall 1": 25.78, "Air 2": 28.58, "Wall 2": 26.66}


@dataclass
class WallsResult:
    signal_rows: list[SignalStats] = field(default_factory=list)
    metrics_rows: list[TrialMetrics] = field(default_factory=list)

    def level_mean(self, trial: str) -> float:
        for row in self.signal_rows:
            if row.group == trial and row.level is not None:
                return row.level.mean
        raise KeyError(trial)

    def wall_cost(self, material_pair: tuple[str, str]) -> float:
        """Signal-level cost of a wall: air mean minus wall mean."""
        air, wall = material_pair
        return self.level_mean(air) - self.level_mean(wall)


def _run_wall(
    name: str,
    packets: int,
    seed: int,
    trace_dir: Optional[str] = None,
    trace_format: str = "v2",
) -> tuple[TrialMetrics, SignalStats]:
    """One wall trial, picklable: compiles the registered scenario
    in-process (registry names pinned in ``TABLE4_SCENARIOS``)."""
    from repro.scenario.registry import REGISTRY

    compiled = REGISTRY.compile(TABLE4_SCENARIOS[name])
    config = compiled.trial_config(name=name, packets=packets, seed=seed)
    output = run_fast_trial(config)
    if trace_dir is not None:
        save_trace(
            output.trace,
            trial_trace_path(trace_dir, name, trace_format),
            format=trace_format,
        )
    classified = classify_trace(output.trace)
    return (
        metrics_from_classified(classified),
        stats_for_packets(name, classified.test_packets),
    )


def _aggregate(ctx: PlanContext, values: list) -> WallsResult:
    result = WallsResult()
    for metrics, signal_row in values:
        result.metrics_rows.append(metrics)
        result.signal_rows.append(signal_row)
    return result


def _render(result: WallsResult, scale: float) -> None:
    print("Table 4: Signal metrics with a single wall "
          f"(scale={scale:g})")
    print(render_signal_table(result.signal_rows, label="Trial"))
    plaster = result.wall_cost(("Air 1", "Wall 1"))
    concrete = result.wall_cost(("Air 2", "Wall 2"))
    print(f"\nWall cost: plaster+mesh {plaster:.1f} levels (paper ~5), "
          f"concrete {concrete:.1f} levels (paper ~2)")
    total_damage = sum(m.body_bits_damaged for m in result.metrics_rows)
    total_loss = sum(m.packets_lost for m in result.metrics_rows)
    print(f"Damaged bits across all four trials: {total_damage} (paper: 0); "
          f"lost packets: {total_loss} (paper: 0)")


def _report_lines(report, result: WallsResult, scale: float) -> None:
    plaster = result.wall_cost(("Air 1", "Wall 1"))
    concrete = result.wall_cost(("Air 2", "Wall 2"))
    report.add("T4 walls", "plaster+mesh cost", "~5 levels",
               f"{plaster:.1f}", 4.0 < plaster < 6.0)
    report.add("T4 walls", "concrete cost", "~2 levels",
               f"{concrete:.1f}", 1.0 < concrete < 3.0)


@experiment(
    name="table4",
    artifact="Table 4",
    description="Table 4: single wall",
    aggregate=_aggregate,
    render=_render,
    default_scale=0.5,
    default_seed=64,
    traceable=True,
    report_lines=_report_lines,
)
def _plans(ctx: PlanContext) -> list[TrialPlan]:
    """One plan per wall setup (two air references, two walls)."""
    return [
        TrialPlan(
            trial,
            _run_wall,
            {
                "name": trial,
                "packets": max(500, int(PAPER_PACKETS * ctx.scale)),
            },
            traceable=True,
            scenario=scenario,
        )
        for trial, scenario in TABLE4_SCENARIOS.items()
    ]


def run(scale: float = 1.0, seed: int = 64, jobs: int = 1,
        trace_dir: Optional[str] = None,
        trace_format: str = "v2") -> WallsResult:
    return ENGINE.run(
        "table4", scale=scale, seed=seed, jobs=jobs,
        trace_dir=trace_dir, trace_format=trace_format,
    )


def main(scale: float = 0.25, seed: int = 64, jobs: int = 1,
         trace_dir: Optional[str] = None,
         trace_format: str = "v2") -> WallsResult:
    result = run(scale=scale, seed=seed, jobs=jobs, trace_dir=trace_dir,
                 trace_format=trace_format)
    _render(result, scale)
    return result


if __name__ == "__main__":
    main()
